"""Backoff schedule and circuit-breaker state machine properties.

The ISSUE's two pinned properties live here: the seeded jitter
schedule is reproducible and capped, and quarantine opens after
*exactly* the configured strike count — plus the half-open probe
choreography the pool leans on.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.backoff import BackoffPolicy, CircuitBreakers

KEYS = st.text(min_size=1, max_size=24)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestBackoffPolicy:
    @given(seed=st.integers(0, 2**32), key=KEYS)
    @settings(max_examples=50)
    def test_schedule_reproducible(self, seed, key):
        a = BackoffPolicy(seed=seed).schedule(key, 8)
        b = BackoffPolicy(seed=seed).schedule(key, 8)
        assert a == b

    @given(
        seed=st.integers(0, 2**32),
        key=KEYS,
        attempt=st.integers(0, 40),
    )
    @settings(max_examples=100)
    def test_delay_capped_and_bounded_below(self, seed, key, attempt):
        policy = BackoffPolicy(
            base_s=0.05, cap_s=2.0, jitter=0.5, seed=seed
        )
        delay = policy.delay(key, attempt)
        assert delay <= policy.cap_s
        assert delay >= min(policy.cap_s, policy.base_s * 2.0 ** attempt)

    @given(key=KEYS, attempt=st.integers(0, 10))
    @settings(max_examples=50)
    def test_jitter_unit_in_range(self, key, attempt):
        unit = BackoffPolicy().unit(key, attempt)
        assert 0.0 <= unit < 1.0

    def test_unjittered_base_doubles(self):
        policy = BackoffPolicy(base_s=0.05, cap_s=1e9, jitter=0.0, seed=0)
        schedule = policy.schedule("k", 6)
        for previous, current in zip(schedule, schedule[1:]):
            assert current == pytest.approx(2.0 * previous)

    def test_distinct_keys_get_distinct_jitter(self):
        policy = BackoffPolicy(jitter=1.0)
        draws = {policy.unit(f"key-{i}", 0) for i in range(32)}
        assert len(draws) == 32  # SHA-256 spreads the herd

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=0.0)
        with pytest.raises(ValueError):
            BackoffPolicy(base_s=1.0, cap_s=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            BackoffPolicy().delay("k", -1)


class TestCircuitBreakers:
    @given(strikes=st.integers(1, 6))
    @settings(max_examples=20)
    def test_opens_after_exactly_configured_strikes(self, strikes):
        breakers = CircuitBreakers(strikes=strikes, clock=FakeClock())
        for _ in range(strikes - 1):
            assert breakers.record_strike("poison") is False
            assert breakers.admit("poison") == "allow"
        assert breakers.record_strike("poison") is True
        assert breakers.is_open("poison")
        assert breakers.admit("poison") == "reject"

    def test_cooldown_admits_one_probe(self):
        clock = FakeClock()
        breakers = CircuitBreakers(strikes=1, cooldown_s=10.0, clock=clock)
        breakers.record_strike("poison")
        assert breakers.admit("poison") == "reject"
        clock.now = 10.0
        assert breakers.admit("poison") == "probe"
        # While the probe is outstanding everyone else is rejected.
        assert breakers.admit("poison") == "reject"

    def test_probe_success_closes(self):
        clock = FakeClock()
        breakers = CircuitBreakers(strikes=1, cooldown_s=1.0, clock=clock)
        breakers.record_strike("poison")
        clock.now = 1.0
        assert breakers.admit("poison") == "probe"
        breakers.record_success("poison")
        assert breakers.admit("poison") == "allow"
        assert not breakers.is_open("poison")

    def test_probe_strike_reopens_for_fresh_cooldown(self):
        clock = FakeClock()
        breakers = CircuitBreakers(strikes=2, cooldown_s=5.0, clock=clock)
        breakers.record_strike("poison")
        breakers.record_strike("poison")
        clock.now = 5.0
        assert breakers.admit("poison") == "probe"
        assert breakers.record_strike("poison") is True
        assert breakers.admit("poison") == "reject"
        clock.now = 9.9
        assert breakers.admit("poison") == "reject"
        clock.now = 10.0
        assert breakers.admit("poison") == "probe"

    def test_success_clears_partial_strikes(self):
        breakers = CircuitBreakers(strikes=2, clock=FakeClock())
        breakers.record_strike("flaky")
        breakers.record_success("flaky")
        assert breakers.record_strike("flaky") is False

    def test_keys_are_independent(self):
        breakers = CircuitBreakers(strikes=1, clock=FakeClock())
        breakers.record_strike("poison")
        assert breakers.admit("healthy") == "allow"
        assert breakers.counts() == {
            "closed": 0, "open": 1, "half_open": 0,
        }

    def test_states_snapshot_skips_clean_keys(self):
        breakers = CircuitBreakers(strikes=2, clock=FakeClock())
        breakers.admit("clean")
        breakers.record_strike("hit")
        assert "clean" not in breakers.states()
        assert breakers.states()["hit"] == {
            "state": "closed", "strikes": 1,
        }

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreakers(strikes=0)
