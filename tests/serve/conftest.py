"""Shared serve-suite fixtures: one chaos-enabled live service.

Booting a service costs worker processes, so the expensive fixture is
module-scoped per test module that wants it; tests that only need the
pool, the breaker state machine or the HTTP parser construct those
directly and never pay for a socket.
"""

from __future__ import annotations

import pytest

from repro.serve import ServeConfig, ServiceRunner

#: A program every machine in the registry can run.
ADD_SRC = """
    put a,2
    add a,a,3
    exit a
"""

#: Spins forever; only a deadline (or the watchdog) ends it.
WEDGE_SRC = """
    put a,1
loop:
    add a,a,1
    jump loop
"""


@pytest.fixture(scope="module")
def service(tmp_path_factory):
    """A live chaos-enabled service with fast retries and breakers."""
    config = ServeConfig(
        workers=2,
        enable_chaos=True,
        cache_dir=str(tmp_path_factory.mktemp("serve-cache")),
        retry_base_s=0.01,
        retry_cap_s=0.2,
        breaker_strikes=2,
        breaker_cooldown_s=0.2,
        kill_grace_s=0.5,
        seed=1980,
    )
    with ServiceRunner(config) as runner:
        yield runner
