"""Cross-request micro-batching: gather, demux, chaos, spans, laws.

The contract under test is byte-identity: a request served through a
lockstep batch must produce exactly the response it would have
produced alone — same result block, same error text — with batching
observable only through the ``serve.batch`` counters and obs spans.
"""

import threading
import time
from concurrent.futures import ThreadPoolExecutor

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.tracer import Tracer
from repro.serve import ServeConfig, ServiceRunner
from repro.serve.backoff import BackoffPolicy, CircuitBreakers
from repro.serve.jobs import (
    batch_group_key,
    batch_refused,
    dedup_key,
    execute_job,
    job_key,
)
from repro.serve.pool import WorkerPool
from tests.pipeline.golden_programs import YALLL_MUL
from tests.serve.conftest import ADD_SRC

FAST_BACKOFF = BackoffPolicy(base_s=0.01, cap_s=0.1, jitter=0.5, seed=7)


def mul_job(a: int, n: int = 3, **extra) -> dict:
    """One multiply run whose answer (``p = a*n``) names its lane."""
    return {
        "op": "run", "source": YALLL_MUL, "lang": "yalll",
        "set": {"a": a, "n": n}, "show": ["p"], **extra,
    }


@pytest.fixture
def make_pool(tmp_path):
    pools = []

    def _make(**kwargs):
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("backoff", FAST_BACKOFF)
        pool = WorkerPool(kwargs.pop("n_workers", 1), **kwargs)
        pool.start()
        pools.append(pool)
        return pool

    yield _make
    for pool in pools:
        pool.close(drain=False, timeout=10)


def submit_batchable(pool, job, **kwargs):
    assert batch_refused(job) is None
    return pool.submit(
        job, key=job_key(job), batch_key=batch_group_key(job), **kwargs
    )


class TestPoolBatching:
    def test_gathered_lanes_share_one_flush(self, make_pool, tmp_path):
        pool = make_pool(batch_window_s=0.5, batch_max_lanes=8)
        futures = [
            submit_batchable(pool, mul_job(a), deadline_s=30)
            for a in range(8)
        ]
        outcomes = [f.result(timeout=60) for f in futures]
        assert pool.stats.batch_flushes == 1
        assert pool.stats.batch_lanes == 8
        for a, outcome in enumerate(outcomes):
            assert outcome["status"] == "ok"
            scalar = execute_job(
                mul_job(a), budget_s=30,
                cache_dir=str(tmp_path / "scalar-cache"),
            )
            # Byte-identity of the served result (the ``cache`` block
            # is worker-cumulative telemetry, legitimately different).
            assert outcome["result"] == scalar["result"]

    def test_lanes_demux_to_their_own_futures(self, make_pool):
        pool = make_pool(batch_window_s=0.5, batch_max_lanes=8)
        futures = {
            a: submit_batchable(pool, mul_job(a, n=5), deadline_s=30)
            for a in range(6)
        }
        for a, future in futures.items():
            outcome = future.result(timeout=60)
            assert outcome["status"] == "ok"
            assert outcome["result"]["registers"]["p"] == a * 5
            assert outcome["result"]["exit_value"] == a * 5

    def test_max_lanes_one_never_batches(self, make_pool):
        pool = make_pool(batch_window_s=0.5, batch_max_lanes=1)
        futures = [
            pool.submit(mul_job(a), key=job_key(mul_job(a)),
                        deadline_s=30, batch_key=batch_group_key(mul_job(a)))
            for a in range(4)
        ]
        for future in futures:
            assert future.result(timeout=60)["status"] == "ok"
        assert pool.stats.batch_flushes == 0
        assert pool.stats.batch_lanes == 0

    def test_distinct_group_keys_never_share_a_flush(self, make_pool):
        pool = make_pool(batch_window_s=0.3, batch_max_lanes=8)
        add = {"op": "run", "source": ADD_SRC, "lang": "yalll"}
        futures = [
            submit_batchable(pool, mul_job(a), deadline_s=30)
            for a in range(2)
        ]
        futures += [
            submit_batchable(pool, dict(add, show=["a"]), deadline_s=30),
        ]
        outcomes = [f.result(timeout=60) for f in futures]
        assert [o["status"] for o in outcomes] == ["ok"] * 3
        assert outcomes[0]["result"]["registers"]["p"] == 0
        assert outcomes[2]["result"]["registers"]["a"] == 5
        # The add job must not have ridden in the mul batch.
        assert pool.stats.batch_lanes <= 2

    def test_window_expiry_flushes_partial_group(self, make_pool):
        pool = make_pool(batch_window_s=0.05, batch_max_lanes=8)
        futures = [
            submit_batchable(pool, mul_job(a), deadline_s=30)
            for a in range(2)
        ]
        outcomes = [f.result(timeout=60) for f in futures]
        assert [o["status"] for o in outcomes] == ["ok", "ok"]
        # Two lanes were all that arrived inside the window; the group
        # flushed without waiting for the other six.
        assert pool.stats.batch_flushes == 1
        assert pool.stats.batch_lanes == 2


class TestBatchSpans:
    def test_gather_and_execute_spans_carry_lane_counts(self, make_pool):
        tracer = Tracer()
        pool = make_pool(
            batch_window_s=0.3, batch_max_lanes=4, tracer=tracer
        )
        futures = [
            submit_batchable(pool, mul_job(a), deadline_s=30)
            for a in range(4)
        ]
        for future in futures:
            assert future.result(timeout=60)["status"] == "ok"
        by_name = {}
        for event in tracer.events:
            by_name.setdefault(event.name, []).append(event)
        gathers = by_name.get("serve.batch.gather", [])
        executes = by_name.get("serve.batch.execute", [])
        assert len(gathers) == 1 and len(executes) == 1
        assert gathers[0].args["lanes"] == 4
        assert executes[0].args["lanes"] == 4
        assert gathers[0].cat == "serve"
        assert executes[0].dur >= 0


class TestChaosMidBatch:
    def test_worker_killed_mid_batch_resolves_every_lane(
        self, make_pool, tmp_path
    ):
        lanes = 6
        pool = make_pool(
            batch_window_s=0.5, batch_max_lanes=lanes,
            breakers=CircuitBreakers(strikes=100),
            max_requeues=4,
        )
        # Enough loop trips that the batch is still running when the
        # worker dies under it.
        jobs = [mul_job(a, n=30_000) for a in range(lanes)]
        futures = [
            submit_batchable(pool, job, deadline_s=120) for job in jobs
        ]
        deadline = time.monotonic() + 30
        while pool.depth()["inflight"] < lanes:
            assert time.monotonic() < deadline, "batch never dispatched"
            time.sleep(0.002)
        pool._workers[0].process.kill()
        outcomes = [f.result(timeout=120) for f in futures]
        terminal = {"ok", "timeout", "error",
                    "quarantined", "crashed", "shutdown"}
        assert all(o["status"] in terminal for o in outcomes)
        # Generous breaker + retry budget: every re-queued lane must
        # re-execute to the same bytes a scalar run produces.
        assert pool.stats.crashes >= 1
        for job, outcome in zip(jobs, outcomes):
            assert outcome["status"] == "ok"
            scalar = execute_job(
                job, budget_s=120,
                cache_dir=str(tmp_path / "rerun-cache"),
            )
            assert outcome["result"] == scalar["result"]


class TestServiceBatching:
    def _flood(self, runner, count, n=50):
        def post(a):
            return runner.request(
                "POST", "/run", mul_job(a, n=n), timeout=60
            )

        with ThreadPoolExecutor(max_workers=count) as pool:
            return list(pool.map(post, range(count)))

    def test_flood_batches_and_matches_scalar_bytes(self, tmp_path):
        batched_config = ServeConfig(
            workers=2, batch_window_ms=150.0, batch_max_lanes=8,
            cache_dir=str(tmp_path / "batched-cache"), seed=11,
        )
        scalar_config = ServeConfig(
            workers=2, batch_max_lanes=1,
            cache_dir=str(tmp_path / "scalar-cache"), seed=11,
        )
        with ServiceRunner(batched_config) as batched:
            responses = self._flood(batched, 12)
            _, health = batched.request("GET", "/healthz")
        with ServiceRunner(scalar_config) as scalar:
            serial = [
                scalar.request("POST", "/run", mul_job(a, n=50),
                               timeout=60)
                for a in range(12)
            ]
        assert all(status == 200 for status, _ in responses)
        assert health["pool"]["batch_lanes"] >= 2
        assert health["pool"]["batch_flushes"] >= 1
        for (_, body), (_, serial_body) in zip(responses, serial):
            assert body["result"] == serial_body["result"]

    def test_explicit_deadline_refuses_batching(self, tmp_path):
        config = ServeConfig(
            workers=1, batch_window_ms=50.0, batch_max_lanes=8,
            cache_dir=str(tmp_path / "cache"),
        )
        with ServiceRunner(config) as runner:
            status, body = runner.request(
                "POST", "/run", mul_job(1, deadline_s=30)
            )
            _, health = runner.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        assert health["requests"]["batch_refused"].get("deadline") == 1
        assert health["pool"]["batch_lanes"] == 0

    def test_metrics_expose_batch_family(self, tmp_path):
        config = ServeConfig(
            workers=2, batch_window_ms=150.0, batch_max_lanes=8,
            cache_dir=str(tmp_path / "cache"),
        )
        with ServiceRunner(config) as runner:
            self._flood(runner, 8)
            runner.request("POST", "/run", mul_job(99, deadline_s=30))
            _, document = runner.request("GET", "/metrics")
        assert 'repro_serve_batch_total{kind="flushes"}' in document
        assert 'repro_serve_batch_total{kind="lanes"}' in document
        assert 'repro_serve_batch_total{kind="refused"} 1' in document
        assert ('repro_serve_batch_refused_total{reason="deadline"} 1'
                in document)


class TestDedupDeadlineSafety:
    def test_patient_follower_never_attaches_to_tight_leader(
        self, tmp_path
    ):
        config = ServeConfig(
            workers=2, enable_chaos=True,
            cache_dir=str(tmp_path / "cache"),
            kill_grace_s=0.3, breaker_strikes=100,
            retry_base_s=0.01, retry_cap_s=0.1,
        )
        # Identical payloads except the deadline (which dedup_key
        # excludes): the leader wedges past its tiny budget and times
        # out; the patient follower's own budget comfortably covers
        # the wedge, so attaching would hand it a timeout it did not
        # earn.
        payload = {
            "op": "run", "source": ADD_SRC, "lang": "yalll",
            "show": ["a"], "chaos": {"sleep_s": 1.0},
        }
        with ServiceRunner(config) as runner:
            results = {}

            def post(name, deadline):
                results[name] = runner.request(
                    "POST", "/run", dict(payload, deadline_s=deadline),
                    timeout=60,
                )

            leader = threading.Thread(target=post, args=("leader", 0.4))
            leader.start()
            time.sleep(0.15)  # leader is in flight, wedged
            post("follower", 30.0)
            leader.join()
            _, health = runner.request("GET", "/healthz")
        leader_status, leader_body = results["leader"]
        follower_status, follower_body = results["follower"]
        assert leader_status == 504
        assert leader_body["status"] == "timeout"
        assert follower_status == 200
        assert follower_body["status"] == "ok"
        assert follower_body["result"]["registers"]["a"] == 5
        # The follower fell through to normal admission: no coalesce.
        assert health["requests"]["dedup"] == {}
        assert health["requests"]["accepted"]["run"] == 2

    def test_tight_follower_still_attaches_to_patient_leader(
        self, tmp_path
    ):
        config = ServeConfig(
            workers=2, enable_chaos=True,
            cache_dir=str(tmp_path / "cache"),
        )
        payload = {
            "op": "run", "source": ADD_SRC, "lang": "yalll",
            "show": ["a"], "chaos": {"sleep_s": 0.6},
        }
        with ServiceRunner(config) as runner:
            results = {}

            def post(name, deadline):
                results[name] = runner.request(
                    "POST", "/run", dict(payload, deadline_s=deadline),
                    timeout=60,
                )

            leader = threading.Thread(target=post, args=("leader", 30.0))
            leader.start()
            time.sleep(0.15)
            post("follower", 10.0)
            leader.join()
            _, health = runner.request("GET", "/healthz")
        assert results["leader"][0] == 200
        assert results["follower"][0] == 200
        assert (results["follower"][1]["result"]
                == results["leader"][1]["result"])
        assert health["requests"]["dedup"] == {"run": 1}
        assert health["requests"]["accepted"]["run"] == 1


#: Arbitrary JSON-ish payload values: nested dicts are where bare
#: ``repr`` used to bake insertion order into the key.
_VALUES = st.recursive(
    st.integers(min_value=-10, max_value=10)
    | st.text(max_size=4) | st.booleans(),
    lambda children: st.lists(children, max_size=3)
    | st.dictionaries(st.text(max_size=3), children, max_size=3),
    max_leaves=8,
)


class TestDedupCanonicalisation:
    @settings(max_examples=60, deadline=None)
    @given(
        options=st.dictionaries(
            st.text(min_size=1, max_size=4), _VALUES,
            min_size=1, max_size=4,
        ),
        mem=st.dictionaries(
            st.text(min_size=1, max_size=3), st.integers(0, 255),
            min_size=1, max_size=4,
        ),
        data=st.data(),
    )
    def test_insertion_order_never_changes_the_key(
        self, options, mem, data
    ):
        job = {
            "op": "run", "source": ADD_SRC, "lang": "yalll",
            "options": options, "mem": mem,
        }
        shuffled_options = dict(data.draw(
            st.permutations(list(options.items()))
        ))
        shuffled_mem = dict(data.draw(
            st.permutations(list(mem.items()))
        ))
        shuffled = dict(data.draw(st.permutations(list({
            **job, "options": shuffled_options, "mem": shuffled_mem,
        }.items()))))
        assert shuffled == job  # same content, different insertion order
        assert dedup_key(shuffled) == dedup_key(job)
        assert batch_group_key(shuffled) == batch_group_key(job)

    def test_show_is_still_key_variant(self):
        base = {"op": "run", "source": ADD_SRC, "lang": "yalll"}
        assert (dedup_key(dict(base, show=["a"]))
                != dedup_key(dict(base, show=["b"])))
        # ...while the batch group key ignores per-lane fields.
        assert (batch_group_key(dict(base, show=["a"]))
                == batch_group_key(dict(base, show=["b"])))

    def test_deadline_is_key_invariant(self):
        base = {"op": "run", "source": ADD_SRC, "lang": "yalll"}
        assert (dedup_key(dict(base, deadline_s=5))
                == dedup_key(base))


class TestCounterLaws:
    def test_completed_accounts_for_accepted_plus_dedup(self, tmp_path):
        config = ServeConfig(
            workers=2, enable_chaos=True,
            cache_dir=str(tmp_path / "cache"),
        )
        shared = {
            "op": "run", "source": ADD_SRC, "lang": "yalll",
            "show": ["a"], "chaos": {"sleep_s": 0.6},
        }
        campaign = {"source": ADD_SRC, "lang": "yalll", "n": 4, "seed": 3}
        with ServiceRunner(config) as runner:
            with ThreadPoolExecutor(max_workers=3) as posters:
                leader = posters.submit(
                    runner.request, "POST", "/run", shared
                )
                time.sleep(0.15)
                followers = [
                    posters.submit(runner.request, "POST", "/run", shared)
                    for _ in range(2)
                ]
                for future in (leader, *followers):
                    status, _ = future.result(timeout=60)
                    assert status == 200
            for _ in range(2):
                status, _ = runner.request("POST", "/campaign", campaign)
                assert status == 200
            status, _ = runner.request("POST", "/compile", {
                "source": ADD_SRC, "lang": "yalll",
            })
            assert status == 200
            _, health = runner.request("GET", "/healthz")
        requests = health["requests"]
        for job_class in ("compile", "run", "campaign"):
            assert requests["completed"].get(job_class, 0) == (
                requests["accepted"].get(job_class, 0)
                + requests["dedup"].get(job_class, 0)
            )
        assert requests["dedup"] == {"run": 2}
        # One fold per executed campaign — dedup never double-folds
        # (dedup is run-class only, pinned by the laws above).
        assert requests["campaign_folds"] == 2
