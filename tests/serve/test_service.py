"""End-to-end service behaviour over a real socket.

One chaos-enabled service (module-scoped, see conftest) serves every
test here; each test asserts one slice of the request lifecycle —
routing, validation, admission, deadline propagation, health and
metrics exposition, drain.
"""

import asyncio
import threading
import time

import pytest

from repro.registry import language_names
from repro.serve import ReproService, ServeConfig
from repro.serve.http import Request
from tests.serve.conftest import ADD_SRC, WEDGE_SRC


class TestRouting:
    def test_unknown_route_is_404_with_directory(self, service):
        status, body = service.request("GET", "/nope")
        assert status == 404
        assert "/compile" in body["routes"]
        assert "/healthz" in body["routes"]

    def test_wrong_method_is_405(self, service):
        status, body = service.request("GET", "/compile")
        assert status == 405

    def test_bad_json_body_is_400(self, service):
        import http.client

        connection = http.client.HTTPConnection(*service.address,
                                                timeout=30)
        try:
            connection.request("POST", "/compile", body="not json{")
            response = connection.getresponse()
            assert response.status == 400
            response.read()
        finally:
            connection.close()


class TestValidation:
    def test_missing_source(self, service):
        status, body = service.request("POST", "/compile",
                                       {"lang": "yalll"})
        assert status == 400
        assert body["error"] == "missing_source"

    def test_unknown_lang_names_the_registry(self, service):
        status, body = service.request(
            "POST", "/compile", {"source": ADD_SRC, "lang": "cobol"}
        )
        assert status == 400
        assert body["error"] == "unknown_lang"
        assert "yalll" in body["detail"]

    def test_unknown_machine(self, service):
        status, body = service.request(
            "POST", "/compile",
            {"source": ADD_SRC, "lang": "yalll", "machine": "PDP-99"},
        )
        assert status == 400
        assert body["error"] == "unknown_machine"

    def test_bad_deadline(self, service):
        status, body = service.request(
            "POST", "/run",
            {"source": ADD_SRC, "lang": "yalll", "deadline_s": -1},
        )
        assert status == 400
        assert body["error"] == "bad_deadline"

    def test_chaos_rejected_unless_enabled(self):
        # Unit-level: default config refuses chaos fields outright.
        plain = ReproService(ServeConfig())
        from repro.serve.http import HttpError

        with pytest.raises(HttpError) as info:
            plain._validate(
                {"source": ADD_SRC, "lang": "yalll", "chaos": {}},
                "run",
            )
        assert info.value.code == "chaos_disabled"


class TestLifecycle:
    def test_compile_round_trip(self, service):
        status, body = service.request(
            "POST", "/compile", {"source": ADD_SRC, "lang": "yalll"}
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["result"]["n_words"] >= 1
        assert body["result"]["machine"] == "HM1"
        assert "yalll" in language_names()

    def test_run_round_trip(self, service):
        status, body = service.request(
            "POST", "/run",
            {"source": ADD_SRC, "lang": "yalll", "show": ["a"]},
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["result"]["exit_value"] == 5
        assert body["result"]["registers"]["a"] == 5

    def test_campaign_round_trip(self, service):
        status, body = service.request(
            "POST", "/campaign",
            {"source": ADD_SRC, "lang": "yalll", "n": 6, "seed": 3},
        )
        assert status == 200
        assert body["status"] == "ok"
        counts = body["result"]["counts"]
        assert sum(counts.values()) == 6

    def test_deadline_propagates_to_simulator_as_504(self, service):
        status, body = service.request(
            "POST", "/run",
            {
                "source": WEDGE_SRC,
                "lang": "yalll",
                "deadline_s": 0.3,
                "max_cycles": 2_000_000_000,
            },
        )
        assert status == 504
        assert body["status"] == "timeout"
        assert body["where"] == "simulator"
        assert body["error"]["kind"] == "deadline"

    def test_healthz_shape(self, service):
        status, body = service.request("GET", "/healthz")
        assert status == 200
        assert body["status"] == "ok"
        assert set(body["queue"]) == {"compile", "run", "campaign"}
        for entry in body["queue"].values():
            assert {"active", "limit"} <= set(entry)
        assert body["pool"]["workers"] == 2
        assert "restarts" in body["pool"]
        assert "breakers" in body

    def test_metrics_exposition(self, service):
        service.request(
            "POST", "/compile", {"source": ADD_SRC, "lang": "yalll"}
        )
        status, text = service.request("GET", "/metrics")
        assert status == 200
        assert "repro_serve_requests_total" in text
        assert "repro_serve_queue_depth" in text
        assert "repro_serve_pool_events_total" in text


class TestAdmission:
    def test_class_limit_sheds_with_typed_429(self, tmp_path):
        from repro.serve import ServiceRunner

        config = ServeConfig(
            workers=1,
            class_limits={"compile": 8, "run": 1, "campaign": 8},
            shed_campaigns_at=1.0,
            enable_chaos=True,
            cache_dir=str(tmp_path / "cache"),
        )
        with ServiceRunner(config) as runner:
            # Pin the single run slot with a wedged request...
            slow = threading.Thread(
                target=runner.request,
                args=("POST", "/run"),
                kwargs={"payload": {
                    "source": ADD_SRC, "lang": "yalll",
                    "chaos": {"sleep_s": 3},
                    "deadline_s": 10,
                }},
            )
            slow.start()
            try:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    _, health = runner.request("GET", "/healthz")
                    if health["queue"]["run"]["active"] >= 1:
                        break
                    time.sleep(0.02)
                status, body = runner.request(
                    "POST", "/run",
                    {"source": ADD_SRC, "lang": "yalll"},
                )
            finally:
                slow.join(timeout=30)
        assert status == 429
        assert body["error"] == "overloaded"
        assert body["class"] == "run"
        assert body["shed_policy"] == "class_limit"
        assert body["retry_after_s"] == 1

    def test_campaigns_shed_first_compiles_survive(self, tmp_path):
        from repro.serve import ServiceRunner

        config = ServeConfig(
            workers=2,
            enable_chaos=True,
            class_limits={"compile": 8, "run": 8, "campaign": 8},
            shed_campaigns_at=0.01,  # any load puts us in degrade mode
            cache_dir=str(tmp_path / "cache"),
        )
        with ServiceRunner(config) as runner:
            slow = threading.Thread(
                target=runner.request,
                args=("POST", "/run"),
                kwargs={"payload": {
                    "source": ADD_SRC, "lang": "yalll",
                    "chaos": {"sleep_s": 3},
                    "deadline_s": 10,
                }},
            )
            slow.start()
            try:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    _, health = runner.request("GET", "/healthz")
                    if health["queue"]["run"]["active"] >= 1:
                        break
                    time.sleep(0.02)
                campaign_status, campaign_body = runner.request(
                    "POST", "/campaign",
                    {"source": ADD_SRC, "lang": "yalll", "n": 4},
                )
                compile_status, compile_body = runner.request(
                    "POST", "/compile",
                    {"source": ADD_SRC, "lang": "yalll"},
                )
            finally:
                slow.join(timeout=30)
        assert campaign_status == 429
        assert campaign_body["shed_policy"] == "campaigns_first"
        assert compile_status == 200
        assert compile_body["status"] == "ok"


class TestDedup:
    def test_dedup_key_tracks_every_result_field(self):
        from repro.serve.jobs import dedup_key

        base = {"op": "run", "source": ADD_SRC, "lang": "yalll"}
        assert dedup_key(dict(base)) == dedup_key(dict(base))
        # show changes the response's registers block -> new identity.
        assert dedup_key({**base, "show": ["a"]}) != dedup_key(base)
        # deadline tolerance is the one excluded field: a follower may
        # wait longer than the leader yet share the result.
        assert dedup_key({**base, "deadline_s": 9}) == dedup_key(base)

    def test_identical_inflight_runs_share_one_execution(self, tmp_path):
        from repro.serve import ServiceRunner

        config = ServeConfig(
            workers=1,
            enable_chaos=True,
            cache_dir=str(tmp_path / "cache"),
        )
        payload = {
            "source": ADD_SRC, "lang": "yalll", "show": ["a"],
            "chaos": {"sleep_s": 1.5}, "deadline_s": 10,
        }
        with ServiceRunner(config) as runner:
            results = []
            leader = threading.Thread(
                target=lambda: results.append(
                    runner.request("POST", "/run", payload)
                )
            )
            leader.start()
            try:
                deadline = time.monotonic() + 10
                while time.monotonic() < deadline:
                    _, health = runner.request("GET", "/healthz")
                    if health["queue"]["run"]["active"] >= 1:
                        break
                    time.sleep(0.02)
                follower_status, follower_body = runner.request(
                    "POST", "/run", dict(payload)
                )
            finally:
                leader.join(timeout=30)
            _, health = runner.request("GET", "/healthz")
            _, exposition = runner.request("GET", "/metrics")
        leader_status, leader_body = results[0]
        assert leader_status == follower_status == 200
        assert leader_body["result"] == follower_body["result"]
        assert leader_body["result"]["registers"]["a"] == 5
        # One admission, two terminal responses, one coalesced.
        requests = health["requests"]
        assert requests["accepted"]["run"] == 1
        assert requests["completed"]["run"] == 2
        assert requests["dedup"]["run"] == 1
        assert 'repro_serve_dedup_total{class="run"} 1' in exposition


class TestDrain:
    def test_draining_route_answers_503(self):
        # The drain branch guards connections accepted before the
        # listener closed; drive _route directly with a fake writer.
        service = ReproService(ServeConfig())
        service._draining = True

        class FakeWriter:
            def __init__(self):
                self.data = b""

            def write(self, chunk):
                self.data += chunk

            async def drain(self):
                pass

        writer = FakeWriter()
        request = Request(method="POST", path="/compile")
        asyncio.run(service._route(request, writer))
        assert b"HTTP/1.1 503" in writer.data
        assert b"Retry-After: 5" in writer.data
        assert service.metrics.drained_rejects == 1

    def test_stop_drains_and_closes_socket(self, tmp_path):
        import socket

        from repro.serve import ServiceRunner

        config = ServeConfig(
            workers=1, cache_dir=str(tmp_path / "cache")
        )
        runner = ServiceRunner(config).start()
        port = runner.port
        status, _ = runner.request(
            "POST", "/compile", {"source": ADD_SRC, "lang": "yalll"}
        )
        assert status == 200
        runner.stop(drain=True)
        with pytest.raises(OSError):
            probe = socket.create_connection(
                ("127.0.0.1", port), timeout=1
            )
            probe.close()
