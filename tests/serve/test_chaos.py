"""The seeded chaos suite: worker kills, corrupt cache, floods.

The acceptance bar from the robustness issue, verbatim: every
accepted request reaches a terminal structured response (success,
timeout or quarantine — never a hang, never a dropped connection),
and re-queued work after a worker kill produces byte-identical
results to an undisturbed run.  Everything here runs on fixed seeds;
there is no wall-clock randomness to flake on.
"""

import concurrent.futures
import json

from repro.registry import build_machine
from repro.serve import ServeConfig, ServiceRunner
from tests.serve.conftest import ADD_SRC

CAMPAIGN = {
    "source": ADD_SRC,
    "lang": "yalll",
    "n": 8,
    "seed": 1980,
    "deadline_s": 60,
}

TERMINAL_STATUSES = {
    "ok", "error", "timeout", "quarantined", "crashed", "shutdown",
}


def result_bytes(body: dict) -> bytes:
    """The canonical bytes of a response's result payload.

    The ``cache`` field is worker-lifetime cumulative (a retry on a
    fresh worker legitimately reports different hit counts), so byte
    identity is asserted over ``result`` — the part that is a pure
    function of the request.
    """
    return json.dumps(body["result"], sort_keys=True).encode()


class TestWorkerKillRecovery:
    def test_killed_campaign_classifies_byte_identically(self, service):
        undisturbed = service.request("POST", "/campaign", CAMPAIGN)
        killed = service.request(
            "POST", "/campaign",
            {**CAMPAIGN, "chaos": {"kill_on_attempts": [0]}},
        )
        assert undisturbed[0] == 200
        assert killed[0] == 200
        assert killed[1]["status"] == "ok"
        assert result_bytes(killed[1]) == result_bytes(undisturbed[1])

    def test_kill_mid_sequence_leaves_service_healthy(self, service):
        before = service.request("GET", "/healthz")[1]["pool"]
        status, body = service.request(
            "POST", "/run",
            {
                "source": ADD_SRC,
                "lang": "yalll",
                "chaos": {"kill_on_attempts": [0]},
            },
        )
        assert status == 200
        assert body["result"]["exit_value"] == 5
        after = service.request("GET", "/healthz")[1]["pool"]
        assert after["crashes"] >= before["crashes"] + 1
        assert after["restarts"] >= before["restarts"] + 1
        # The respawned worker serves the next request normally.
        status, body = service.request(
            "POST", "/run", {"source": ADD_SRC, "lang": "yalll"}
        )
        assert status == 200

    def test_poison_request_quarantined_then_rejected(self, service):
        poison = {
            "source": ADD_SRC,
            "lang": "yalll",
            "seed": 13,  # distinct key from other tests' requests
            "chaos": {"kill_on_attempts": list(range(12))},
        }
        first = service.request("POST", "/campaign", poison)
        assert first[0] == 503
        assert first[1]["status"] == "quarantined"
        assert first[1]["attempts"] == 2  # breaker_strikes in conftest
        second = service.request("POST", "/campaign", poison)
        assert second[0] == 503
        assert second[1]["status"] == "quarantined"
        health = service.request("GET", "/healthz")[1]
        assert any(
            entry["state"] in ("open", "half_open")
            for entry in health["breakers"].values()
        )


class TestCorruptCache:
    def test_corrupt_disk_entry_is_evicted_not_fatal(self, service):
        # A source no other test compiles, so the worker's memory tier
        # is cold and the corrupt disk entry is actually probed.  The
        # cache key includes the pipeline's resolved default options,
        # so derive it by compiling into a throwaway disk tier.
        import tempfile
        from pathlib import Path

        from repro.cache import CompileCache
        from repro.registry import get_language

        source = "    put a,4\n    add a,a,9\n    exit a\n"
        cache_dir = service.config.cache_dir
        with tempfile.TemporaryDirectory() as scratch:
            probe = CompileCache(disk_dir=scratch)
            get_language("yalll").compile(
                source, build_machine("HM1"), cache=probe
            )
            key = next(Path(scratch).glob("*.pkl")).stem
        corrupt = f"{cache_dir}/{key}.pkl"
        with open(corrupt, "wb") as handle:
            handle.write(b"\x80\x04 this is not a pickle")
        status, body = service.request(
            "POST", "/compile", {"source": source, "lang": "yalll"}
        )
        assert status == 200
        assert body["status"] == "ok"
        assert body["cache"]["corrupt"] >= 1  # evicted, counted
        # The poisoned entry was replaced by a valid one.
        import pickle

        with open(corrupt, "rb") as handle:
            pickle.load(handle)


class TestFlood:
    def test_flood_gets_terminal_answers_and_sheds(self, tmp_path):
        config = ServeConfig(
            workers=2,
            class_limits={"compile": 2, "run": 2, "campaign": 1},
            shed_campaigns_at=0.75,
            cache_dir=str(tmp_path / "cache"),
            seed=1980,
        )
        requests = [
            ("/campaign", {**CAMPAIGN, "n": 12, "seed": i})
            for i in range(8)
        ] + [
            ("/compile", {"source": ADD_SRC, "lang": "yalll"})
            for _ in range(8)
        ]
        with ServiceRunner(config) as runner:
            with concurrent.futures.ThreadPoolExecutor(16) as pool:
                answers = list(pool.map(
                    lambda item: runner.request(
                        "POST", item[0], item[1], timeout=120
                    ),
                    requests,
                ))
            health = runner.request("GET", "/healthz")[1]
        assert len(answers) == len(requests)  # nothing hung or dropped
        shed = [a for a in answers if a[0] == 429]
        accepted = [a for a in answers if a[0] != 429]
        for status, body in accepted:
            assert body["status"] in TERMINAL_STATUSES
        for status, body in shed:
            assert body["error"] == "overloaded"
            assert body["retry_after_s"] == 1
        # 4x the campaign capacity guarantees shedding kicked in.
        assert shed
        assert health["requests"]["shed"]["campaign"] >= 1

    def test_shed_campaigns_byte_identical_when_resubmitted(
        self, service
    ):
        # A request that was shed and retried later must classify the
        # same as one that was never shed: admission is stateless with
        # respect to results.
        first = service.request("POST", "/campaign", CAMPAIGN)
        again = service.request("POST", "/campaign", CAMPAIGN)
        assert first[0] == again[0] == 200
        assert result_bytes(first[1]) == result_bytes(again[1])
