"""The hand-rolled HTTP layer: strict parsing, canonical output."""

import asyncio
import json

import pytest

from repro.serve.http import (
    MAX_BODY_BYTES,
    HttpError,
    Request,
    read_request,
    write_json,
)


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class FakeWriter:
    def __init__(self):
        self.data = b""

    def write(self, chunk):
        self.data += chunk

    async def drain(self):
        pass


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/healthz"
        assert request.headers["host"] == "x"
        assert request.body == b""

    def test_post_with_body(self):
        body = b'{"lang": "yalll"}'
        raw = (
            b"POST /compile HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.json() == {"lang": "yalll"}

    def test_query_string(self):
        request = parse(b"GET /healthz?full=1&x HTTP/1.1\r\n\r\n")
        assert request.path == "/healthz"
        assert request.query == {"full": "1", "x": ""}

    def test_clean_eof_is_none(self):
        assert parse(b"") is None

    def test_malformed_request_line(self):
        with pytest.raises(HttpError) as info:
            parse(b"GARBAGE\r\n\r\n")
        assert info.value.status == 400

    def test_oversized_body_is_413(self):
        raw = (
            b"POST /compile HTTP/1.1\r\n"
            + f"Content-Length: {MAX_BODY_BYTES + 1}\r\n\r\n".encode()
        )
        with pytest.raises(HttpError) as info:
            parse(raw)
        assert info.value.status == 413

    def test_negative_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n"
        with pytest.raises(HttpError) as info:
            parse(raw)
        assert info.value.status == 400

    def test_bad_content_length(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: nope\r\n\r\n"
        with pytest.raises(HttpError) as info:
            parse(raw)
        assert info.value.status == 400

    def test_truncated_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 50\r\n\r\nshort"
        with pytest.raises(HttpError) as info:
            parse(raw)
        assert info.value.status == 400

    def test_oversized_headers_431(self):
        filler = b"X-Pad: " + b"a" * 1024 + b"\r\n"
        raw = b"GET / HTTP/1.1\r\n" + filler * 32 + b"\r\n"
        with pytest.raises(HttpError) as info:
            parse(raw)
        assert info.value.status == 431


class TestRequestJson:
    def test_empty_body_is_empty_object(self):
        assert Request(method="POST", path="/x").json() == {}

    def test_non_json_body(self):
        request = Request(method="POST", path="/x", body=b"not json")
        with pytest.raises(HttpError) as info:
            request.json()
        assert info.value.code == "bad_json"

    def test_non_object_body(self):
        request = Request(method="POST", path="/x", body=b"[1, 2]")
        with pytest.raises(HttpError) as info:
            request.json()
        assert info.value.code == "bad_json"


class TestWriteJson:
    def _render(self, payload) -> bytes:
        writer = FakeWriter()
        asyncio.run(write_json(writer, 200, payload))
        return writer.data

    def test_canonical_serialization(self):
        # Key order in the payload dict must not leak into the bytes:
        # chaos retries rebuild responses in arbitrary construction
        # order and still have to be byte-identical.
        a = self._render({"b": 1, "a": {"y": 2, "x": 3}})
        b = self._render({"a": {"x": 3, "y": 2}, "b": 1})
        assert a == b

    def test_framing(self):
        data = self._render({"ok": True})
        head, _, body = data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert f"Content-Length: {len(body)}".encode() in head
        assert json.loads(body) == {"ok": True}

    def test_extra_headers(self):
        writer = FakeWriter()
        asyncio.run(write_json(
            writer, 429, {"error": "overloaded"},
            headers={"Retry-After": "1"},
        ))
        assert b"HTTP/1.1 429 Too Many Requests" in writer.data
        assert b"Retry-After: 1" in writer.data
