"""WorkerPool crash detection, re-queueing, quarantine, deadlines.

All chaos here is deterministic: workers SIGKILL themselves on listed
dispatch attempts (or wedge with a sleep), so every assertion about
crash counts, retry outcomes and breaker states is exact.
"""

import pytest

from repro.serve.backoff import BackoffPolicy, CircuitBreakers
from repro.serve.jobs import job_key
from repro.serve.pool import WorkerPool
from tests.serve.conftest import ADD_SRC

FAST_BACKOFF = BackoffPolicy(base_s=0.01, cap_s=0.1, jitter=0.5, seed=7)


def run_job(**extra) -> dict:
    return {"op": "run", "source": ADD_SRC, "lang": "yalll", **extra}


@pytest.fixture
def make_pool(tmp_path):
    pools = []

    def _make(**kwargs):
        kwargs.setdefault("cache_dir", str(tmp_path / "cache"))
        kwargs.setdefault("backoff", FAST_BACKOFF)
        pool = WorkerPool(kwargs.pop("n_workers", 1), **kwargs)
        pool.start()
        pools.append(pool)
        return pool

    yield _make
    for pool in pools:
        pool.close(drain=False, timeout=10)


def submit(pool, job, **kwargs) -> dict:
    future = pool.submit(job, key=job_key(job), **kwargs)
    return future.result(timeout=60)


class TestHappyPath:
    def test_run_job_resolves_ok(self, make_pool):
        pool = make_pool()
        outcome = submit(pool, run_job())
        assert outcome["status"] == "ok"
        assert outcome["result"]["exit_value"] == 5
        assert pool.stats.completed == 1
        assert pool.stats.crashes == 0

    def test_submit_after_close_is_shutdown(self, make_pool):
        pool = make_pool()
        pool.close(drain=True, timeout=10)
        outcome = submit(pool, run_job())
        assert outcome["status"] == "shutdown"


class TestCrashRecovery:
    def test_single_crash_recovers_with_identical_result(
        self, make_pool
    ):
        pool = make_pool(max_requeues=4)
        undisturbed = submit(pool, run_job())
        chaotic = submit(
            pool, run_job(chaos={"kill_on_attempts": [0]})
        )
        assert chaotic["status"] == "ok"
        # The crash retry recomputes the same pure function.
        assert chaotic["result"] == undisturbed["result"]
        assert pool.stats.crashes == 1
        assert pool.stats.restarts == 1
        assert pool.stats.requeues == 1

    def test_retry_budget_exhaustion_is_crashed(self, make_pool):
        pool = make_pool(
            max_requeues=1,
            breakers=CircuitBreakers(strikes=100),
        )
        outcome = submit(
            pool, run_job(chaos={"kill_on_attempts": [0, 1]})
        )
        assert outcome["status"] == "crashed"
        assert outcome["attempts"] == 2
        assert pool.stats.crashed_out == 1

    def test_crash_does_not_poison_other_work(self, make_pool):
        pool = make_pool(n_workers=2, max_requeues=4)
        chaotic = pool.submit(
            run_job(chaos={"kill_on_attempts": [0]}),
            key=job_key(run_job(chaos={"kill_on_attempts": [0]})),
        )
        clean = pool.submit(run_job(), key=job_key(run_job()))
        assert clean.result(timeout=60)["status"] == "ok"
        assert chaotic.result(timeout=60)["status"] == "ok"


class TestQuarantine:
    POISON = {"kill_on_attempts": list(range(10))}

    def test_poison_pill_quarantined_after_strikes(self, make_pool):
        pool = make_pool(
            breakers=CircuitBreakers(strikes=2, cooldown_s=60.0),
            max_requeues=8,
        )
        outcome = submit(pool, run_job(chaos=self.POISON))
        assert outcome["status"] == "quarantined"
        assert outcome["attempts"] == 2  # exactly `strikes` worker deaths
        assert pool.stats.quarantined == 1
        assert pool.stats.crashes == 2

    def test_open_breaker_rejects_resubmission_immediately(
        self, make_pool
    ):
        pool = make_pool(
            breakers=CircuitBreakers(strikes=1, cooldown_s=60.0),
            max_requeues=8,
        )
        submit(pool, run_job(chaos=self.POISON))
        outcome = submit(pool, run_job(chaos=self.POISON))
        assert outcome["status"] == "quarantined"
        assert "breaker" in outcome["detail"]
        assert pool.stats.rejected_open == 1
        # No fresh worker was spent on the rejected submission.
        assert pool.stats.crashes == 1

    def test_half_open_probe_crash_requarantines(self, make_pool):
        pool = make_pool(
            breakers=CircuitBreakers(strikes=1, cooldown_s=0.05),
            max_requeues=8,
        )
        submit(pool, run_job(chaos=self.POISON))
        import time

        time.sleep(0.1)  # past cooldown: next submission is the probe
        outcome = submit(pool, run_job(chaos=self.POISON))
        assert outcome["status"] == "quarantined"
        assert outcome["attempts"] == 1  # the probe died once
        assert pool.breakers.is_open(job_key(run_job(chaos=self.POISON)))


class TestDeadlines:
    def test_queue_stage_expiry_never_dispatches(self, make_pool):
        pool = make_pool()
        outcome = submit(pool, run_job(), deadline_s=0.0)
        assert outcome["status"] == "timeout"
        assert outcome["where"] == "queue"
        assert pool.stats.timeouts == 1

    def test_wedged_worker_is_deadline_killed(self, make_pool):
        pool = make_pool(kill_grace_s=0.2)
        outcome = submit(
            pool, run_job(chaos={"sleep_s": 30}), deadline_s=0.2
        )
        assert outcome["status"] == "timeout"
        assert outcome["where"] == "worker"
        assert pool.stats.deadline_kills == 1
        assert pool.stats.restarts == 1
        # The pool stays usable on the respawned worker.
        assert submit(pool, run_job())["status"] == "ok"


class TestDrain:
    def test_drain_close_finishes_queued_work(self, make_pool):
        pool = make_pool(n_workers=2)
        futures = [
            pool.submit(run_job(), key=job_key(run_job()))
            for _ in range(6)
        ]
        pool.close(drain=True, timeout=30)
        outcomes = [f.result(timeout=1) for f in futures]
        assert all(o["status"] == "ok" for o in outcomes)

    def test_abort_close_resolves_everything_shutdown(self, make_pool):
        pool = make_pool()
        futures = [
            pool.submit(
                run_job(chaos={"sleep_s": 30}),
                key=f"wedge-{i}",
            )
            for i in range(3)
        ]
        pool.close(drain=False, timeout=10)
        statuses = {f.result(timeout=1)["status"] for f in futures}
        assert statuses == {"shutdown"}
