"""The command-line interface."""

import pytest

from repro.cli import main

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

SSTAR_SWAP = """
program swap;
pre  "x = a and y = b";
post "x = b and y = a";
var x : seq [15..0] bit bind R1;
var y : seq [15..0] bit bind R2;
begin cobegin x := y; y := x coend end
"""


@pytest.fixture
def yalll_file(tmp_path):
    path = tmp_path / "mul.yalll"
    path.write_text(YALLL_MUL)
    return str(path)


class TestCompile:
    def test_listing_printed(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--machine", "HM1"]) == 0
        out = capsys.readouterr().out
        assert "control words" in out
        assert "loop:" in out

    def test_unknown_language_rejected(self, yalll_file):
        with pytest.raises(SystemExit):
            main(["compile", yalll_file, "--lang", "cobol"])

    def test_parse_error_is_clean_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.yalll"
        bad.write_text("florble a,b\n")
        assert main(["compile", str(bad), "--lang", "yalll"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_with_inputs(self, yalll_file, capsys):
        code = main([
            "run", yalll_file, "--lang", "yalll", "--machine", "HM1",
            "--set", "a=6", "--set", "n=7", "--show", "p",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exit value: 42" in out
        assert "p = 42" in out

    def test_memory_initialization(self, tmp_path, capsys):
        source = tmp_path / "load.yalll"
        source.write_text("put addr,100\nload v,addr\nexit v\n")
        code = main([
            "run", str(source), "--lang", "yalll",
            "--mem", "100=1234",
        ])
        assert code == 0
        assert "exit value: 1234" in capsys.readouterr().out

    def test_bad_assignment(self, yalll_file, capsys):
        assert main(["run", yalll_file, "--lang", "yalll",
                     "--set", "nonsense"]) == 2


class TestOther:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("HM1", "VAXm", "VM1"):
            assert name in out

    def test_machines_verbose_shows_fields(self, capsys):
        assert main(["machines", "-v"]) == 0
        assert "alu_op" in capsys.readouterr().out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "SIMPL" in out and "CHAMIL" in out
        assert "sequential specification" in out

    def test_verify_pass_and_fail(self, tmp_path, capsys):
        good = tmp_path / "swap.sstar"
        good.write_text(SSTAR_SWAP)
        assert main(["verify", str(good)]) == 0
        bad = tmp_path / "bad.sstar"
        bad.write_text(SSTAR_SWAP.replace(
            "cobegin x := y; y := x coend", "begin x := y; y := x end"
        ))
        assert main(["verify", str(bad)]) == 1


class TestLanguages:
    def test_lists_languages_and_machines(self, capsys):
        assert main(["languages"]) == 0
        out = capsys.readouterr().out
        for lang in ("simpl", "empl", "sstar", "yalll", "mpl"):
            assert lang in out
        for machine in ("HM1", "VM1", "VAXm"):
            assert machine in out

    def test_shows_stages_and_capabilities(self, capsys):
        assert main(["languages"]) == 0
        out = capsys.readouterr().out
        assert "parse -> " in out and "-> assemble" in out
        assert "symbolic_variables" in out
        assert "programmer_binding" in out


class TestDumpAfter:
    def test_single_stage(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "regalloc"]) == 0
        out = capsys.readouterr().out
        assert "--- after regalloc ---" in out

    def test_all_stages(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "all"]) == 0
        out = capsys.readouterr().out
        for stage in ("parse", "codegen", "legalize", "regalloc",
                      "compose", "assemble"):
            assert f"--- after {stage} ---" in out

    def test_unknown_stage_is_clean_failure(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "linking"]) == 2
        assert "no stage named" in capsys.readouterr().err
