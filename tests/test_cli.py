"""The command-line interface."""

import json

import pytest

from repro.cli import main

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

SSTAR_SWAP = """
program swap;
pre  "x = a and y = b";
post "x = b and y = a";
var x : seq [15..0] bit bind R1;
var y : seq [15..0] bit bind R2;
begin cobegin x := y; y := x coend end
"""


@pytest.fixture
def yalll_file(tmp_path):
    path = tmp_path / "mul.yalll"
    path.write_text(YALLL_MUL)
    return str(path)


class TestCompile:
    def test_listing_printed(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--machine", "HM1"]) == 0
        out = capsys.readouterr().out
        assert "control words" in out
        assert "loop:" in out

    def test_unknown_language_rejected(self, yalll_file):
        with pytest.raises(SystemExit):
            main(["compile", yalll_file, "--lang", "cobol"])

    def test_parse_error_is_clean_failure(self, tmp_path, capsys):
        bad = tmp_path / "bad.yalll"
        bad.write_text("florble a,b\n")
        assert main(["compile", str(bad), "--lang", "yalll"]) == 2
        assert "error:" in capsys.readouterr().err


class TestRun:
    def test_run_with_inputs(self, yalll_file, capsys):
        code = main([
            "run", yalll_file, "--lang", "yalll", "--machine", "HM1",
            "--set", "a=6", "--set", "n=7", "--show", "p",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "exit value: 42" in out
        assert "p = 42" in out

    def test_memory_initialization(self, tmp_path, capsys):
        source = tmp_path / "load.yalll"
        source.write_text("put addr,100\nload v,addr\nexit v\n")
        code = main([
            "run", str(source), "--lang", "yalll",
            "--mem", "100=1234",
        ])
        assert code == 0
        assert "exit value: 1234" in capsys.readouterr().out

    def test_bad_assignment(self, yalll_file, capsys):
        assert main(["run", yalll_file, "--lang", "yalll",
                     "--set", "nonsense"]) == 2


class TestOther:
    def test_machines(self, capsys):
        assert main(["machines"]) == 0
        out = capsys.readouterr().out
        for name in ("HM1", "VAXm", "VM1"):
            assert name in out

    def test_machines_verbose_shows_fields(self, capsys):
        assert main(["machines", "-v"]) == 0
        assert "alu_op" in capsys.readouterr().out

    def test_survey(self, capsys):
        assert main(["survey"]) == 0
        out = capsys.readouterr().out
        assert "SIMPL" in out and "CHAMIL" in out
        assert "sequential specification" in out

    def test_verify_pass_and_fail(self, tmp_path, capsys):
        good = tmp_path / "swap.sstar"
        good.write_text(SSTAR_SWAP)
        assert main(["verify", str(good)]) == 0
        bad = tmp_path / "bad.sstar"
        bad.write_text(SSTAR_SWAP.replace(
            "cobegin x := y; y := x coend", "begin x := y; y := x end"
        ))
        assert main(["verify", str(bad)]) == 1


class TestLanguages:
    def test_lists_languages_and_machines(self, capsys):
        assert main(["languages"]) == 0
        out = capsys.readouterr().out
        for lang in ("simpl", "empl", "sstar", "yalll", "mpl"):
            assert lang in out
        for machine in ("HM1", "VM1", "VAXm"):
            assert machine in out

    def test_shows_stages_and_capabilities(self, capsys):
        assert main(["languages"]) == 0
        out = capsys.readouterr().out
        assert "parse -> " in out and "-> assemble" in out
        assert "symbolic_variables" in out
        assert "programmer_binding" in out


class TestProfile:
    def run_profile(self, yalll_file, *extra):
        return main([
            "profile", yalll_file, "--lang", "yalll", "--machine", "HM1",
            "--set", "a=3", "--set", "n=50", *extra,
        ])

    def test_hot_trace_report(self, yalll_file, capsys):
        assert self.run_profile(yalll_file) == 0
        out = capsys.readouterr().out
        assert "#1 loop@" in out
        assert "50 iterations" in out
        # Heat report rides along.
        assert "#" in out

    def test_json_output(self, yalll_file, capsys):
        assert self.run_profile(yalll_file, "--json") == 0
        analysis = json.loads(capsys.readouterr().out)
        assert analysis["traces"][0]["iterations"] == 50

    def test_save_and_replay_round_trip(self, yalll_file, tmp_path, capsys):
        saved = tmp_path / "profile.json"
        assert self.run_profile(yalll_file, "--save", str(saved),
                                "--json") == 0
        # Drop the "profile written to ..." notice; keep the JSON.
        live = json.loads(capsys.readouterr().out.split("\n", 1)[1])
        assert main(["profile", "--replay", str(saved), "--json"]) == 0
        replayed = json.loads(capsys.readouterr().out)
        # Cache counters are run artifacts, not analysis — they appear
        # only on live runs and never on replay.
        assert "plan_cache" in live
        assert "plan_cache" not in replayed
        assert "trace_cache" not in replayed
        live.pop("plan_cache", None)
        live.pop("trace_cache", None)
        assert replayed == live

    def test_artifact_exports(self, yalll_file, tmp_path, capsys):
        stacks = tmp_path / "stacks.txt"
        prom = tmp_path / "metrics.prom"
        assert self.run_profile(
            yalll_file, "--flamegraph", str(stacks),
            "--prometheus", str(prom),
        ) == 0
        assert "loop@" in stacks.read_text()
        assert "repro_sim_instructions_total" in prom.read_text()

    def test_requires_file_or_replay(self, capsys):
        assert main(["profile"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_requires_lang_with_file(self, yalll_file, capsys):
        assert main(["profile", yalll_file]) == 2
        assert "error:" in capsys.readouterr().err

    def test_replay_missing_file_is_clean_failure(self, tmp_path, capsys):
        assert main(["profile", "--replay",
                     str(tmp_path / "absent.json")]) == 2
        assert "error:" in capsys.readouterr().err


class TestCampaignMetrics:
    def test_metrics_flag_renders_rollup(self, tmp_path, capsys):
        source = tmp_path / "load.yalll"
        source.write_text(
            "put addr,100\nload v,addr\nadd v,v,1\nexit v\n"
        )
        code = main([
            "campaign", str(source), "--lang", "yalll", "-n", "3",
            "--seed", "0", "--mem", "100=41", "--metrics",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "campaign metrics:" in out
        assert "4 runs" in out  # 3 scenarios + the golden run


class TestDumpAfter:
    def test_single_stage(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "regalloc"]) == 0
        out = capsys.readouterr().out
        assert "--- after regalloc ---" in out

    def test_all_stages(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "all"]) == 0
        out = capsys.readouterr().out
        for stage in ("parse", "codegen", "legalize", "regalloc",
                      "compose", "assemble"):
            assert f"--- after {stage} ---" in out

    def test_unknown_stage_is_clean_failure(self, yalll_file, capsys):
        assert main(["compile", yalll_file, "--lang", "yalll",
                     "--dump-after", "linking"]) == 2
        assert "no stage named" in capsys.readouterr().err


class TestDeadline:
    """``--deadline-s`` plumbs to ``Simulator.deadline_s`` (serve S21)."""

    WEDGE = """
    put a,1
loop:
    add a,a,1
    jump loop
"""

    def test_run_deadline_is_structured_exit(self, tmp_path, capsys):
        wedge = tmp_path / "wedge.yalll"
        wedge.write_text(self.WEDGE)
        code = main([
            "run", str(wedge), "--lang", "yalll",
            "--deadline-s", "0.2", "--max-cycles", "2000000000",
        ])
        assert code == 3
        err = capsys.readouterr().err
        assert "simulation limit: kind=deadline" in err

    def test_run_without_deadline_unchanged(self, yalll_file, capsys):
        code = main([
            "run", yalll_file, "--lang", "yalll",
            "--set", "a=6", "--set", "n=7",
        ])
        assert code == 0
        assert "exit value: 42" in capsys.readouterr().out

    def test_faultsim_accepts_deadline(self, tmp_path, capsys):
        source = tmp_path / "load.yalll"
        source.write_text("put addr,100\nload v,addr\nexit v\n")
        code = main([
            "faultsim", str(source), "--lang", "yalll",
            "--fault", "memfault:op=read,nth=1",
            "--mem", "100=1234", "--deadline-s", "30",
        ])
        assert code in (0, 1)  # classified, not a usage error
        assert "memfault" in capsys.readouterr().out
