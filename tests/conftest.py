"""Shared fixtures: machine descriptions and an end-to-end runner."""

from __future__ import annotations

import pytest

from repro.asm import ControlStore, assemble
from repro.compose import ListScheduler, SequentialComposer, compose_program
from repro.machine.machines import (
    build_hm1,
    build_hp300,
    build_id3200,
    build_vax,
    build_vm1,
)
from repro.sim import Simulator


@pytest.fixture(scope="session")
def hm1():
    return build_hm1()


@pytest.fixture(scope="session")
def hp300():
    return build_hp300()


@pytest.fixture(scope="session")
def vax():
    return build_vax()


@pytest.fixture(scope="session")
def vm1():
    return build_vm1()


@pytest.fixture(scope="session")
def id3200():
    return build_id3200()


@pytest.fixture(scope="session")
def all_machines(hm1, hp300, vax, vm1, id3200):
    return [hm1, hp300, vax, vm1, id3200]


def run_mir(program, machine, composer=None, registers=None, memory=None,
            max_cycles=200_000, simulator_kwargs=None):
    """Compose, assemble, load and run a micro-IR program.

    Returns (RunResult, Simulator) so tests can inspect final state.
    """
    composed = compose_program(program, machine, composer or ListScheduler())
    loaded = assemble(composed, machine)
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store, **(simulator_kwargs or {}))
    for name, value in (registers or {}).items():
        simulator.state.write_reg(name, value)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    result = simulator.run(program.name, max_cycles=max_cycles)
    return result, simulator


@pytest.fixture
def mir_runner():
    return run_mir
