"""Hand-written reference microprograms: correctness and quality."""

import pytest

from repro.bench import HAND_CORPUS, hand_compile, run_hand, run_program
from repro.machine.machines import get_machine

MACHINES = ["HM1", "HP300m", "VAXm"]


@pytest.fixture(scope="module", params=MACHINES)
def machine(request):
    return get_machine(request.param)


class TestCorrectness:
    def test_translit(self, machine):
        hand = hand_compile(HAND_CORPUS["translit"](machine), machine)
        memory = {100 + i: v for i, v in enumerate([1, 2, 0])}
        memory.update({200 + v: v + 10 for v in range(8)})
        _, simulator = run_hand(hand, machine, {"str": 100, "tbl": 200},
                                memory=memory)
        assert simulator.state.memory.dump_words(100, 3) == [11, 12, 0]

    def test_memcpy(self, machine):
        hand = hand_compile(HAND_CORPUS["memcpy"](machine), machine)
        memory = {300 + i: i + 1 for i in range(4)}
        _, simulator = run_hand(
            hand, machine, {"src": 300, "dst": 400, "n": 4}, memory=memory
        )
        assert simulator.state.memory.dump_words(400, 4) == [1, 2, 3, 4]

    def test_checksum(self, machine):
        hand = hand_compile(HAND_CORPUS["checksum"](machine), machine)
        memory = {500 + i: v for i, v in enumerate([3, 5, 9])}
        result, _ = run_hand(hand, machine, {"base": 500, "n": 3},
                             memory=memory)
        assert result.exit_value == 3 ^ 5 ^ 9

    def test_bitcount(self, machine):
        hand = hand_compile(HAND_CORPUS["bitcount"](machine), machine)
        result, _ = run_hand(hand, machine, {"x": 0b11011})
        assert result.exit_value == 4

    def test_strcmp(self, machine):
        hand = hand_compile(HAND_CORPUS["strcmp"](machine), machine)
        memory = {600: 5, 601: 0, 700: 5, 701: 0}
        result, _ = run_hand(hand, machine, {"a": 600, "b": 700},
                             memory=memory)
        assert result.exit_value == 0
        hand2 = hand_compile(HAND_CORPUS["strcmp"](machine), machine)
        memory[700] = 6
        result, _ = run_hand(hand2, machine, {"a": 600, "b": 700},
                             memory=memory)
        assert result.exit_value == 1

    def test_fib(self, machine):
        hand = hand_compile(HAND_CORPUS["fib"](machine), machine)
        result, _ = run_hand(hand, machine, {"n": 9})
        assert result.exit_value == 34


class TestQuality:
    def test_hand_never_larger_than_compiled(self):
        """E6's premise: expert code is the lower bound the compilers
        chase (MPGL claimed to stay within 15% of it)."""
        machine = get_machine("HM1")
        for name, builder in HAND_CORPUS.items():
            hand = hand_compile(builder(machine), machine)
            compiled = run_program(name, machine, _inputs(name),
                                   memory=_memory(name))
            assert hand.n_instructions() <= len(
                compiled.compile_result.loaded
            ), name


def _inputs(name):
    return {
        "translit": {"str": 100, "tbl": 200},
        "memcpy": {"src": 300, "dst": 400, "n": 2},
        "checksum": {"base": 500, "n": 2},
        "bitcount": {"x": 3},
        "strcmp": {"a": 600, "b": 700},
        "fib": {"n": 3},
    }[name]


def _memory(name):
    return {
        "translit": {100: 1, 101: 0, **{200 + v: v for v in range(4)}},
        "memcpy": {300: 1, 301: 2},
        "checksum": {500: 1, 501: 2},
        "strcmp": {600: 0, 700: 0},
    }.get(name, {})
