"""The YALLL benchmark corpus runs correctly on every machine."""

import pytest

from repro.bench import CORPUS, run_program
from repro.machine.machines import get_machine

MACHINES = ["HM1", "HP300m", "VAXm", "VM1", "ID3200m"]


@pytest.fixture(scope="module", params=MACHINES)
def machine(request):
    return get_machine(request.param)


class TestCorpusCorrectness:
    def test_translit(self, machine):
        memory = {100 + i: v for i, v in enumerate([1, 2, 3, 0])}
        memory.update({200 + v: v + 10 for v in range(16)})
        run = run_program("translit", machine, {"str": 100, "tbl": 200},
                          memory=memory)
        data = run.simulator.state.memory.dump_words(100, 4)
        assert data == [11, 12, 13, 0]

    def test_memcpy(self, machine):
        memory = {300 + i: i + 7 for i in range(5)}
        run = run_program("memcpy", machine,
                          {"src": 300, "dst": 400, "n": 5}, memory=memory)
        copied = run.simulator.state.memory.dump_words(400, 5)
        assert copied == [7, 8, 9, 10, 11]

    def test_checksum(self, machine):
        values = [3, 5, 7, 11, 13]
        memory = {500 + i: v for i, v in enumerate(values)}
        run = run_program("checksum", machine, {"base": 500, "n": 5},
                          memory=memory)
        expected = 0
        for value in values:
            expected ^= value
        assert run.run_result.exit_value == expected

    @pytest.mark.parametrize("value,expected", [
        (0, 0), (1, 1), (0b1011, 3), (0xFFFF, 16),
    ])
    def test_bitcount(self, machine, value, expected):
        run = run_program("bitcount", machine, {"x": value})
        assert run.run_result.exit_value == expected

    @pytest.mark.parametrize("a,b,expected", [
        ([5, 6, 0], [5, 6, 0], 0),
        ([5, 6, 0], [5, 7, 0], 1),
        ([5, 0], [5, 6, 0], 1),
        ([0], [0], 0),
    ])
    def test_strcmp(self, machine, a, b, expected):
        memory = {600 + i: v for i, v in enumerate(a)}
        memory.update({700 + i: v for i, v in enumerate(b)})
        run = run_program("strcmp", machine, {"a": 600, "b": 700},
                          memory=memory)
        assert run.run_result.exit_value == expected

    @pytest.mark.parametrize("n,expected", [(0, 0), (1, 1), (7, 13), (10, 55)])
    def test_fib(self, machine, n, expected):
        run = run_program("fib", machine, {"n": n})
        assert run.run_result.exit_value == expected


class TestCorpusShape:
    def test_unoptimized_never_smaller(self):
        machine = get_machine("HM1")
        for name in CORPUS:
            fast = run_program(name, machine, _inputs(name), memory=_memory(name))
            slow = run_program(name, machine, _inputs(name),
                               memory=_memory(name), optimize=False)
            assert len(slow.compile_result.loaded) >= len(
                fast.compile_result.loaded
            ), name

    def test_vax_code_larger_than_hp(self):
        hp = get_machine("HP300m")
        vax = get_machine("VAXm")
        for name in CORPUS:
            hp_run = run_program(name, hp, _inputs(name), memory=_memory(name))
            vax_run = run_program(name, vax, _inputs(name),
                                  memory=_memory(name), optimize=False)
            assert len(vax_run.compile_result.loaded) >= len(
                hp_run.compile_result.loaded
            ), name


def _inputs(name):
    return {
        "translit": {"str": 100, "tbl": 200},
        "memcpy": {"src": 300, "dst": 400, "n": 3},
        "checksum": {"base": 500, "n": 3},
        "bitcount": {"x": 0b101},
        "strcmp": {"a": 600, "b": 700},
        "fib": {"n": 5},
    }[name]


def _memory(name):
    base = {
        "translit": {100: 1, 101: 0, **{200 + v: v + 1 for v in range(8)}},
        "memcpy": {300: 1, 301: 2, 302: 3},
        "checksum": {500: 1, 501: 2, 502: 3},
        "strcmp": {600: 0, 700: 0},
    }
    return base.get(name, {})
