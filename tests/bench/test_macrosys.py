"""The M1 macro system: assembler and microcoded interpreter."""

import pytest

from repro.bench import OPCODES, assemble_macro, build_macro_system
from repro.errors import ReproError
from repro.machine.machines import get_machine


class TestAssembler:
    def test_encoding(self):
        words, symbols = assemble_macro("start: LDA 5\nHALT\n")
        assert words == [(OPCODES["LDA"] << 12) | 5, 0]
        assert symbols == {"start": 0}

    def test_symbols_resolve_with_base(self):
        words, _ = assemble_macro("JMP data\ndata: .word 7\n", base=0x100)
        assert words[0] == (OPCODES["JMP"] << 12) | 0x101

    def test_words_and_comments(self):
        words, _ = assemble_macro(".word 0xFFFF ; comment\n")
        assert words == [0xFFFF]

    def test_unknown_mnemonic(self):
        with pytest.raises(ReproError):
            assemble_macro("FLY 1\n")


@pytest.fixture(scope="module", params=["HM1", "HP300m"])
def system(request):
    return build_macro_system(get_machine(request.param))


class TestInterpreter:
    def test_arithmetic_instructions(self, system):
        symbols = system.load_macro("""
            start: LDI 10
                   ADD k5
                   SUB k3
                   AND k6
                   HALT
            k5: .word 5
            k3: .word 3
            k6: .word 6
        """)
        result = system.run_macro(symbols["start"])
        assert result.exit_value == ((10 + 5 - 3) & 6)

    def test_store_and_load(self, system):
        symbols = system.load_macro("""
            start: LDI 42
                   STA cell
                   LDI 0
                   LDA cell
                   HALT
            cell:  .word 0
        """, base=0x180)
        result = system.run_macro(symbols["start"])
        assert result.exit_value == 42

    def test_loop_with_jz(self, system):
        symbols = system.load_macro("""
            start: LDA count
            loop:  JZ done
                   SUB one
                   STA count
                   LDA total
                   ADD seven
                   STA total
                   LDA count
                   JMP loop
            done:  LDA total
                   HALT
            one:   .word 1
            seven: .word 7
            count: .word 6
            total: .word 0
        """, base=0x200)
        result = system.run_macro(symbols["start"])
        assert result.exit_value == 42

    def test_interpreter_overhead_visible(self, system):
        """Every macro instruction costs several microcycles — the
        premise of the survey's 5x/10x speedup discussion (§3)."""
        symbols = system.load_macro("start: LDI 1\nHALT\n", base=0x240)
        result = system.run_macro(symbols["start"])
        assert result.cycles >= 2 * 3  # several microcycles per macro instr
