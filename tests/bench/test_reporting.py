"""Table rendering for the benchmark harnesses."""

from repro.bench import render_table


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "count"],
            [["alpha", 5], ["b", 123]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Numeric cells right-justified under their header.
        assert lines[3].rstrip().endswith("5")
        assert lines[4].rstrip().endswith("123")

    def test_floats_formatted(self):
        text = render_table(["x"], [[1.23456]])
        assert "1.23" in text and "1.2345" not in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = render_table(["k", "v"], [["ratio", 0.5], ["words", 7]])
        assert "0.50" in text and "7" in text
