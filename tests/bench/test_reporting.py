"""Table rendering and the perf-regression gate for the benchmarks."""

from repro.bench import compare_throughput, render_regression, render_table


def payload(*rows):
    """(engine, workload, mi_per_s) triples -> bench payload shape."""
    return {
        "results": [
            {"engine": engine, "workload": workload, "mi_per_s": rate}
            for engine, workload, rate in rows
        ]
    }


class TestRenderTable:
    def test_alignment_and_title(self):
        text = render_table(
            ["name", "count"],
            [["alpha", 5], ["b", 123]],
            title="demo",
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "name" in lines[1] and "count" in lines[1]
        assert set(lines[2]) <= {"-", " "}
        # Numeric cells right-justified under their header.
        assert lines[3].rstrip().endswith("5")
        assert lines[4].rstrip().endswith("123")

    def test_floats_formatted(self):
        text = render_table(["x"], [[1.23456]])
        assert "1.23" in text and "1.2345" not in text

    def test_empty_rows(self):
        text = render_table(["a", "b"], [])
        assert "a" in text

    def test_mixed_types(self):
        text = render_table(["k", "v"], [["ratio", 0.5], ["words", 7]])
        assert "0.50" in text and "7" in text


class TestThroughputGate:
    def test_passes_when_within_floor(self):
        check = compare_throughput(
            payload(("decoded", "mul", 900.0)),
            payload(("decoded", "mul", 1000.0)),
        )
        assert check["passed"]
        assert check["worst_ratio"] == 0.9
        assert check["cells"][0]["ok"]

    def test_fails_below_floor(self):
        check = compare_throughput(
            payload(("decoded", "mul", 500.0), ("interpretive", "mul", 99.0)),
            payload(("decoded", "mul", 1000.0), ("interpretive", "mul", 100.0)),
        )
        assert not check["passed"]
        assert check["worst_ratio"] == 0.5
        bad = next(c for c in check["cells"] if not c["ok"])
        assert (bad["engine"], bad["workload"]) == ("decoded", "mul")

    def test_floor_is_configurable(self):
        fresh = payload(("decoded", "mul", 600.0))
        base = payload(("decoded", "mul", 1000.0))
        assert not compare_throughput(fresh, base)["passed"]
        assert compare_throughput(fresh, base, floor=0.5)["passed"]

    def test_unmatched_cells_reported_not_failed(self):
        check = compare_throughput(
            payload(("decoded", "mul", 900.0), ("decoded", "new", 1.0)),
            payload(("decoded", "mul", 1000.0), ("decoded", "old", 1.0)),
        )
        assert check["passed"]
        assert check["unmatched"] == ["decoded/new", "decoded/old"]

    def test_zero_baseline_never_fails(self):
        check = compare_throughput(
            payload(("decoded", "mul", 900.0)),
            payload(("decoded", "mul", 0.0)),
        )
        assert check["passed"]
        assert check["worst_ratio"] is None
        assert check["cells"][0]["ratio"] is None

    def test_empty_payloads(self):
        check = compare_throughput({}, {})
        assert check["passed"] and check["cells"] == []

    def test_render_verdicts(self):
        passing = compare_throughput(
            payload(("decoded", "mul", 900.0), ("decoded", "extra", 1.0)),
            payload(("decoded", "mul", 1000.0)),
        )
        text = render_regression(passing)
        assert "PASS" in text and "0.900" in text
        assert "no baseline for: decoded/extra" in text
        failing = compare_throughput(
            payload(("decoded", "mul", 100.0)),
            payload(("decoded", "mul", 1000.0)),
        )
        text = render_regression(failing)
        assert "REGRESSION" in text and "REGRESSED" in text
