"""Workload generators: determinism and well-formedness."""

from repro.bench import random_block, random_program
from repro.compose import SequentialComposer
from repro.machine.machines import build_hm1


class TestRandomBlock:
    def test_deterministic_per_seed(self, hm1):
        a = random_block(hm1, 10, seed=3)
        b = random_block(hm1, 10, seed=3)
        assert [str(op) for op in a.ops] == [str(op) for op in b.ops]

    def test_different_seeds_differ(self, hm1):
        a = random_block(hm1, 10, seed=1)
        b = random_block(hm1, 10, seed=2)
        assert [str(op) for op in a.ops] != [str(op) for op in b.ops]

    def test_requested_size(self, hm1):
        assert len(random_block(hm1, 17, seed=0).ops) == 17

    def test_only_machine_ops(self, hm1):
        block = random_block(hm1, 30, seed=5)
        assert all(hm1.has_op(op.op) for op in block.ops)

    def test_every_op_composable(self, hm1):
        block = random_block(hm1, 20, seed=7)
        instructions = SequentialComposer().compose_block(block, hm1)
        assert len(instructions) == 20

    def test_reuse_controls_dependence_density(self, hm1):
        from repro.mir import build_dependence_graph

        sparse = build_dependence_graph(
            random_block(hm1, 30, seed=11, reuse=0.0), hm1
        )
        dense = build_dependence_graph(
            random_block(hm1, 30, seed=11, reuse=1.0), hm1
        )
        assert len(dense.edges) > len(sparse.edges)


class TestRandomProgram:
    def test_validates_and_has_exit(self, hm1):
        program = random_program(hm1, n_blocks=3, ops_per_block=5, seed=2)
        program.validate()
        assert program.virtual_regs()

    def test_variable_count_respected(self, hm1):
        program = random_program(
            hm1, n_blocks=2, ops_per_block=4, seed=0, n_variables=9
        )
        names = {r.name for r in program.virtual_regs()}
        assert names == {f"v{i}" for i in range(9)}


class TestOpMix:
    """Empty effective op mixes fail loudly, not in rng.choice (PR 5)."""

    def test_unsupported_mix_raises_with_machine_name(self, hm1):
        import pytest

        with pytest.raises(ValueError, match="HM1"):
            random_block(hm1, 5, op_mix=[("frobnicate", 2, False)])

    def test_unsupported_mix_raises_for_programs_too(self, hm1):
        import pytest

        with pytest.raises(ValueError, match="frobnicate"):
            random_program(
                hm1, n_blocks=1, ops_per_block=3,
                op_mix=[("frobnicate", 2, False)],
            )

    def test_explicit_mix_is_honoured(self, hm1):
        block = random_block(
            hm1, 8, seed=1, op_mix=[("add", 2, False), ("xor", 2, False)]
        )
        assert {op.op for op in block.ops} <= {"add", "xor"}

    def test_partially_supported_mix_keeps_supported_ops(self, hm1):
        block = random_block(
            hm1, 8, seed=1,
            op_mix=[("add", 2, False), ("frobnicate", 2, False)],
        )
        assert {op.op for op in block.ops} == {"add"}
