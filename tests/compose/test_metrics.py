"""Composition metrics and comparison helpers."""

import pytest

from repro.compose import (
    BranchBoundComposer,
    CompactionStats,
    ListScheduler,
    SequentialComposer,
    block_stats,
    compare_composers,
    estimate_cycles,
    program_stats,
)
from repro.mir import BasicBlock, Imm, Jump, ProgramBuilder, mop, preg


def wide_block():
    block = BasicBlock("b", ops=[
        mop("mov", preg("R1"), preg("R2")),
        mop("shl", preg("R3"), preg("R4"), Imm(1)),
        mop("add", preg("R5"), preg("R6"), preg("R7")),
    ])
    block.terminate(Jump("b"))
    return block


class TestStats:
    def test_block_stats(self, hm1):
        stats = block_stats(BranchBoundComposer(), wide_block(), hm1)
        assert stats.n_ops == 3
        assert stats.n_instructions == 1
        assert stats.ratio == pytest.approx(3.0)
        assert stats.composer == "branch-bound"

    def test_sequential_ratio_is_one(self, hm1):
        stats = block_stats(SequentialComposer(), wide_block(), hm1)
        assert stats.ratio == pytest.approx(1.0)

    def test_empty_ratio_is_zero(self):
        assert CompactionStats("x", 0, 0, 0).ratio == 0.0

    def test_estimate_cycles_counts_latency(self, hm1):
        block = BasicBlock("b", ops=[
            mop("mov", preg("MAR"), preg("R1")),
            mop("read", preg("MBR"), preg("MAR")),
        ])
        block.terminate(Jump("b"))
        instructions = SequentialComposer().compose_block(block, hm1)
        assert estimate_cycles(instructions, hm1) == 1 + 2

    def test_program_stats_and_compare(self, hm1):
        builder = ProgramBuilder("t", hm1)
        builder.start_block("a")
        for op in wide_block().ops:
            builder.emit(op)
        builder.exit()
        program = builder.finish()
        results = compare_composers(
            [SequentialComposer(), ListScheduler()], program, hm1
        )
        assert results[0].n_instructions >= results[1].n_instructions
        assert all(isinstance(r, CompactionStats) for r in results)
        assert results[0].n_ops == results[1].n_ops == 3
