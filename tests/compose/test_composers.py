"""The four composition algorithms: quality ordering and legality."""

import pytest

from repro.compose import (
    BranchBoundComposer,
    ConflictModel,
    LevelComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
    compose_program,
    data_parallelism,
    maximal_parallel_sets,
)
from repro.errors import CompositionError
from repro.mir import (
    BasicBlock,
    Imm,
    Jump,
    ProgramBuilder,
    build_dependence_graph,
    mop,
    preg,
)

ALL = [SequentialComposer(), LinearComposer(), LevelComposer(),
       ListScheduler(), BranchBoundComposer()]


def wide_block():
    """Four independent ops on different units + one dependent add."""
    block = BasicBlock("b", ops=[
        mop("mov", preg("R1"), preg("R2")),
        mop("mov", preg("R3"), preg("R4")),
        mop("shl", preg("R6"), preg("R7"), Imm(2)),
        mop("add", preg("R5"), preg("R1"), preg("R3")),
        mop("inc", preg("R7"), preg("R7")),
    ])
    block.terminate(Jump("b"))
    return block


def assert_legal(instructions, block, machine):
    """Every op placed once; no field conflicts; dependences honoured."""
    model = ConflictModel(machine)
    placed_ops = [p.op for mi in instructions for p in mi.placed]
    assert sorted(map(str, placed_ops)) == sorted(map(str, block.ops))
    for mi in instructions:
        model.check_instruction(mi)
        mi.settings(machine)  # merged settings must not clash
    graph = build_dependence_graph(block, machine)
    location = {}
    for mi_index, mi in enumerate(instructions):
        for placed in mi.placed:
            # Identify by object identity within the original list.
            for op_index, op in enumerate(block.ops):
                if op is placed.op and op_index not in location:
                    location[op_index] = (mi_index, placed)
                    break
    for edge in graph.edges:
        if edge.dst >= graph.n_ops:
            continue
        src_mi, src_placed = location[edge.src]
        dst_mi, dst_placed = location[edge.dst]
        assert src_mi <= dst_mi, f"edge {edge} violated"
        if src_mi == dst_mi:
            assert model.dependence_legal(
                src_placed, dst_placed, {edge.kind}
            ), f"same-MI edge {edge} illegal"


class TestLegality:
    @pytest.mark.parametrize("composer", ALL, ids=lambda c: c.name)
    def test_wide_block_legal_on_hm1(self, composer, hm1):
        block = wide_block()
        assert_legal(composer.compose_block(block, hm1), block, hm1)

    @pytest.mark.parametrize("composer", ALL, ids=lambda c: c.name)
    def test_wide_block_legal_on_vax(self, composer, vax):
        block = BasicBlock("b", ops=[
            mop("mov", preg("T5"), preg("T6")),
            mop("add", preg("T0"), preg("T7"), preg("T8")),
            mop("sub", preg("T1"), preg("T9"), preg("T5")),
        ])
        block.terminate(Jump("b"))
        assert_legal(composer.compose_block(block, vax), block, vax)

    @pytest.mark.parametrize("composer", ALL, ids=lambda c: c.name)
    def test_empty_block(self, composer, hm1):
        block = BasicBlock("b")
        block.terminate(Jump("b"))
        assert composer.compose_block(block, hm1) == []


class TestQualityOrdering:
    def test_expected_counts_on_wide_block(self, hm1):
        block = wide_block()
        lengths = {
            c.name: len(c.compose_block(block, hm1)) for c in ALL
        }
        assert lengths["sequential"] == 5
        assert lengths["branch-bound"] <= lengths["list"]
        assert lengths["list"] <= lengths["sequential"]
        assert lengths["linear"] <= lengths["sequential"]
        assert lengths["branch-bound"] == 2

    def test_vertical_machine_forces_sequential(self, vm1):
        block = BasicBlock("b", ops=[
            mop("mov", preg("R1"), preg("R2")),
            mop("mov", preg("R3"), preg("R4")),
            mop("add", preg("R5"), preg("R6"), preg("R7")),
        ])
        block.terminate(Jump("b"))
        for composer in ALL:
            assert len(composer.compose_block(block, vm1)) == 3, composer.name

    def test_single_op(self, hm1):
        block = BasicBlock("b", ops=[mop("inc", preg("R1"), preg("R1"))])
        block.terminate(Jump("b"))
        for composer in ALL:
            assert len(composer.compose_block(block, hm1)) == 1


class TestDasguptaTartar:
    def test_maximal_sets_are_levels(self, hm1):
        block = wide_block()
        sets = maximal_parallel_sets(block, hm1)
        # The inc is anti-dependent on the shl, so it lands in level 1
        # alongside the flow-dependent add.
        assert sets[0] == [0, 1, 2]
        assert sets[1] == [3, 4]

    def test_data_parallelism_metric(self, hm1):
        assert data_parallelism(wide_block(), hm1) == pytest.approx(2.5)

    def test_empty(self, hm1):
        block = BasicBlock("b")
        block.terminate(Jump("b"))
        assert maximal_parallel_sets(block, hm1) == []
        assert data_parallelism(block, hm1) == 0.0


class TestComposeProgram:
    def test_terminator_attached_to_last_mi(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("inc", preg("R1"), preg("R1")))
        b.exit(preg("R1"))
        program = b.finish()
        composed = compose_program(program, hm1, ListScheduler())
        last = composed.blocks["a"].instructions[-1]
        assert last.terminator is not None

    def test_empty_block_gets_nop_word(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.terminate(Jump("b"))
        b.start_block("b")
        b.exit()
        composed = compose_program(b.finish(), hm1, ListScheduler())
        assert len(composed.blocks["a"].instructions) == 1
        assert composed.blocks["a"].instructions[0].placed == []

    def test_compaction_ratio(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        for op in wide_block().ops:
            b.emit(op)
        b.exit()
        composed = compose_program(b.finish(), hm1, BranchBoundComposer())
        assert composed.compaction_ratio() == pytest.approx(5 / 2)


class TestBranchBound:
    def test_budget_falls_back_to_seed(self, hm1):
        block = wide_block()
        tight = BranchBoundComposer(node_budget=1)
        seeded = tight.compose_block(block, hm1)
        reference = ListScheduler().compose_block(block, hm1)
        assert len(seeded) <= len(reference)
        assert_legal(seeded, block, hm1)

    def test_optimal_on_chain(self, hm1):
        # A pure dependence chain cannot be compacted below its length
        # on a machine where every op is an ALU op.
        block = BasicBlock("b", ops=[
            mop("inc", preg("R1"), preg("R1")) for _ in range(4)
        ])
        block.terminate(Jump("b"))
        assert len(BranchBoundComposer().compose_block(block, hm1)) == 4
