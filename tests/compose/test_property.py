"""Property-based tests: composition preserves semantics.

The strongest invariant in the toolkit: for any random straight-line
block, every composition algorithm must produce a program that leaves
the machine in exactly the same architectural state as fully
sequential execution.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import ControlStore, assemble
from repro.bench.workloads import random_block
from repro.compose import (
    BranchBoundComposer,
    ConflictModel,
    LevelComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
    compose_program,
)
from repro.machine.machines import build_hm1, build_hp300, build_vax
from repro.mir import Exit, ProgramBuilder
from repro.sim import Simulator

MACHINES = {"HM1": build_hm1(), "HP300m": build_hp300(), "VAXm": build_vax()}
COMPOSERS = [
    LinearComposer(),
    LevelComposer(),
    ListScheduler(),
    BranchBoundComposer(node_budget=20_000),
]


def _as_program(block, machine):
    builder = ProgramBuilder("prop", machine)
    started = builder.start_block("entry")
    for op in block.ops:
        started.append(op)
    builder.exit()
    return builder.finish()


def _final_state(program, machine, composer):
    composed = compose_program(program, machine, composer)
    loaded = assemble(composed, machine)
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store)
    # Deterministic non-trivial starting register values.
    for index, register in enumerate(machine.registers):
        if not register.readonly:
            simulator.state.poke_reg(register.name, (index * 2654435761) & register.mask)
    simulator.run("prop")
    return simulator.state.registers


@settings(max_examples=30, deadline=None)
@given(
    machine_name=st.sampled_from(sorted(MACHINES)),
    n_ops=st.integers(min_value=1, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
    reuse=st.floats(min_value=0.0, max_value=1.0),
)
def test_composition_preserves_semantics(machine_name, n_ops, seed, reuse):
    machine = MACHINES[machine_name]
    block = random_block(machine, n_ops, seed=seed, reuse=reuse, label="entry")
    block.terminator = None
    program = _as_program(block, machine)
    reference = _final_state(program, machine, SequentialComposer())
    for composer in COMPOSERS:
        outcome = _final_state(program, machine, composer)
        assert outcome == reference, (
            f"{composer.name} diverged on {machine_name} seed={seed}"
        )


@settings(max_examples=30, deadline=None)
@given(
    machine_name=st.sampled_from(sorted(MACHINES)),
    n_ops=st.integers(min_value=1, max_value=14),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_no_instruction_has_field_clashes(machine_name, n_ops, seed):
    machine = MACHINES[machine_name]
    block = random_block(machine, n_ops, seed=seed, label="entry")
    model = ConflictModel(machine)
    for composer in COMPOSERS:
        for mi in composer.compose_block(block, machine):
            model.check_instruction(mi)
            mi.settings(machine)


@settings(max_examples=30, deadline=None)
@given(
    n_ops=st.integers(min_value=1, max_value=12),
    seed=st.integers(min_value=0, max_value=10_000),
)
def test_branch_bound_never_worse_than_list(n_ops, seed):
    machine = MACHINES["HM1"]
    block = random_block(machine, n_ops, seed=seed, label="entry")
    optimal = BranchBoundComposer(node_budget=20_000).compose_block(block, machine)
    greedy = ListScheduler().compose_block(block, machine)
    assert len(optimal) <= len(greedy)
