"""The control-word conflict model."""

import pytest

from repro.compose import ConflictModel, MicroInstruction, PlacedOp
from repro.errors import ConflictError
from repro.mir import FLOW, ANTI, OUTPUT, Imm, mop, preg


def placed(machine, name, dest=None, srcs=(), variant=None):
    op = mop(name, dest, *srcs)
    specs = machine.op_variants(name)
    spec = specs[0] if variant is None else next(
        s for s in specs if s.variant == variant
    )
    return PlacedOp(op, spec)


class TestFieldConflicts:
    def test_same_unit_same_fields_conflict(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "add", preg("R1"), (preg("R2"), preg("R3")))
        b = placed(hm1, "sub", preg("R4"), (preg("R5"), preg("R6")))
        assert model.fields_conflict(a, b)

    def test_different_units_no_conflict(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "add", preg("R1"), (preg("R2"), preg("R3")))
        b = placed(hm1, "shl", preg("R4"), (preg("R5"), Imm(1)))
        assert not model.fields_conflict(a, b)

    def test_identical_settings_coexist(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a")
        assert not model.fields_conflict(a, a)

    def test_two_movs_different_paths_ok(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a")
        b = placed(hm1, "mov", preg("R3"), (preg("R4"),), variant="b")
        assert not model.fields_conflict(a, b)

    def test_two_movs_same_path_conflict(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a")
        b = placed(hm1, "mov", preg("R3"), (preg("R4"),), variant="a")
        assert model.fields_conflict(a, b)

    def test_vax_memory_jams_move(self, vax):
        model = ConflictModel(vax)
        read = placed(vax, "read", preg("MBR"), (preg("MAR"),))
        move = placed(vax, "mov", preg("T5"), (preg("T6"),))
        assert model.fields_conflict(read, move)


class TestUnitCapacity:
    def test_capacity_one(self, hm1):
        model = ConflictModel(hm1)
        mi = MicroInstruction()
        mi.placed.append(placed(hm1, "add", preg("R1"), (preg("R2"), preg("R3"))))
        again = placed(hm1, "add", preg("R4"), (preg("R5"), preg("R6")))
        assert model.unit_overflow(mi, again)

    def test_null_unit_capacity_many(self, hm1):
        model = ConflictModel(hm1)
        mi = MicroInstruction()
        for _ in range(4):
            nop = placed(hm1, "nop")
            assert not model.unit_overflow(mi, nop)
            mi.placed.append(nop)


class TestDependenceRules:
    def test_flow_requires_chaining_and_later_phase(self, hm1):
        model = ConflictModel(hm1)
        producer = placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a")  # phase 1
        consumer = placed(hm1, "add", preg("R3"), (preg("R1"), preg("R4")))  # phase 2
        assert model.dependence_legal(producer, consumer, {FLOW})
        # Reversed phases: consumer earlier than producer is illegal.
        assert not model.dependence_legal(consumer, producer, {FLOW})

    def test_flow_illegal_without_chaining(self, vax):
        model = ConflictModel(vax)
        producer = placed(vax, "mov", preg("T5"), (preg("T6"),))
        consumer = placed(vax, "add", preg("T0"), (preg("T5"), preg("T7")))
        assert not model.dependence_legal(producer, consumer, {FLOW})

    def test_flow_illegal_from_multicycle_producer(self, hm1):
        model = ConflictModel(hm1)
        read = placed(hm1, "read", preg("MBR"), (preg("MAR"),))  # latency 2
        consumer = placed(hm1, "mov", preg("R1"), (preg("MBR"),), variant="w")
        assert not model.dependence_legal(read, consumer, {FLOW})

    def test_output_never_shares(self, hm1):
        model = ConflictModel(hm1)
        a = placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a")
        b = placed(hm1, "mov", preg("R1"), (preg("R3"),), variant="w")
        assert not model.dependence_legal(a, b, {OUTPUT})

    def test_anti_same_phase_ok(self, hm1):
        model = ConflictModel(hm1)
        reader = placed(hm1, "add", preg("R3"), (preg("R1"), preg("R4")))
        writer = placed(hm1, "shl", preg("R1"), (preg("R5"), Imm(1)))
        assert model.dependence_legal(reader, writer, {ANTI})

    def test_anti_earlier_phase_writer_illegal(self, hm1):
        model = ConflictModel(hm1)
        reader = placed(hm1, "add", preg("R3"), (preg("R1"), preg("R4")))  # phase 2
        writer = placed(hm1, "mov", preg("R1"), (preg("R5"),), variant="a")  # phase 1
        assert not model.dependence_legal(reader, writer, {ANTI})


class TestPlacements:
    def test_all_variants_offered(self, hm1):
        model = ConflictModel(hm1)
        variants = model.placements(mop("mov", preg("R1"), preg("R2")))
        assert len(variants) == 3

    def test_unencodable_filtered(self, hm1):
        model = ConflictModel(hm1)
        # R0 is not a writable destination in any selector.
        with pytest.raises(ConflictError):
            model.placements(mop("mov", preg("R0"), preg("R1")))

    def test_check_instruction_raises_on_conflict(self, hm1):
        model = ConflictModel(hm1)
        mi = MicroInstruction(placed=[
            placed(hm1, "add", preg("R1"), (preg("R2"), preg("R3"))),
            placed(hm1, "sub", preg("R4"), (preg("R5"), preg("R6"))),
        ])
        with pytest.raises(ConflictError):
            model.check_instruction(mi)

    def test_check_instruction_accepts_clean(self, hm1):
        model = ConflictModel(hm1)
        mi = MicroInstruction(placed=[
            placed(hm1, "mov", preg("R1"), (preg("R2"),), variant="a"),
            placed(hm1, "add", preg("R3"), (preg("R4"), preg("R5"))),
        ])
        model.check_instruction(mi)  # no exception


class TestSettingsCacheBound:
    """The memoised placement-settings cache must stay bounded when one
    model instance lives across a long campaign run."""

    def test_cache_never_exceeds_limit(self, hm1):
        model = ConflictModel(hm1, settings_cache_limit=8)
        for index in range(50):
            model.settings_of(
                placed(hm1, "movi", preg("R1"), (Imm(index % 64),))
            )
        assert len(model._settings_cache) <= 8

    def test_eviction_is_fifo_and_lossless(self, hm1):
        model = ConflictModel(hm1, settings_cache_limit=2)
        a = placed(hm1, "movi", preg("R1"), (Imm(1),))
        b = placed(hm1, "movi", preg("R1"), (Imm(2),))
        c = placed(hm1, "movi", preg("R1"), (Imm(3),))
        first = model.settings_of(a)
        model.settings_of(b)
        model.settings_of(c)  # evicts a
        assert a not in model._settings_cache
        # Evicted placements simply re-resolve to the same settings.
        assert model.settings_of(a) == first

    def test_reset_clears_cache_and_tallies(self, hm1):
        model = ConflictModel(hm1)
        mi = MicroInstruction(placed=[
            placed(hm1, "add", preg("R1"), (preg("R2"), preg("R3"))),
        ])
        candidate = placed(hm1, "sub", preg("R4"), (preg("R5"), preg("R6")))
        assert not model.can_add(mi, candidate)
        assert model.rejection_counts()["unit"] == 1
        model.settings_of(mi.placed[0])
        assert model._settings_cache
        model.reset()
        assert not model._settings_cache
        assert model.rejection_counts() == {
            "field": 0, "unit": 0, "dependence": 0,
        }
