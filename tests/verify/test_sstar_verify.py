"""S* program verification end to end (§2.2.3 / Strum §2.2.5)."""

import pytest

from repro.errors import VerificationError
from repro.lang.sstar import parse_sstar, verify_sstar
from repro.verify import BoundedChecker


def verify(source, hm1, **kwargs):
    return verify_sstar(parse_sstar(source), hm1, **kwargs)


class TestStraightLine:
    def test_parallel_swap_proves(self, hm1):
        report = verify("""
            program swap;
            pre  "x = a and y = b";
            post "x = b and y = a";
            var x : seq [15..0] bit bind R1;
            var y : seq [15..0] bit bind R2;
            begin cobegin x := y; y := x coend end
        """, hm1)
        assert report.passed

    def test_sequential_swap_refuted(self, hm1):
        report = verify("""
            program notswap;
            pre  "x = a and y = b";
            post "x = b and y = a";
            var x : seq [15..0] bit bind R1;
            var y : seq [15..0] bit bind R2;
            begin x := y; y := x end
        """, hm1)
        assert not report.passed
        assert report.failures[0].counterexample is not None

    def test_synonyms_alias_in_proofs(self, hm1):
        """Two names bound to one register must verify as one variable."""
        report = verify("""
            program alias;
            pre  "true";
            post "x = 1";
            var x : seq [15..0] bit bind R1;
            syn also_x = x;
            begin also_x := 1 end
        """, hm1)
        assert report.passed

    def test_field_deposit_semantics(self, hm1):
        report = verify("""
            program fields;
            pre  "true";
            post "(ir >> 12) & 0xF = 5";
            var ir : tuple opcode: seq [3..0] bit; addr: seq [11..0] bit end bind R1;
            var v : seq [15..0] bit bind R2;
            begin
              v := 5;
              ir.opcode := v
            end
        """, hm1)
        assert report.passed

    def test_constants_fold(self, hm1):
        report = verify("""
            program consts;
            pre  "true";
            post "x = 0xFFFF";
            var x : seq [15..0] bit bind R1;
            const minus1 = dec (16) -1;
            begin x := minus1 end
        """, hm1)
        assert report.passed


class TestLoops:
    def test_while_with_invariant(self, hm1):
        report = verify("""
            program zero;
            pre  "true";
            post "i = 0";
            var i : seq [15..0] bit bind R1;
            begin
              while i <> 0 inv "true" do i := i - 1
            end
        """, hm1)
        assert report.passed

    def test_missing_invariant_rejected(self, hm1):
        with pytest.raises(VerificationError):
            verify("""
                program t;
                var i : seq [15..0] bit bind R1;
                begin while i <> 0 do i := i - 1 end
            """, hm1)

    def test_wrong_invariant_caught(self, hm1):
        report = verify("""
            program t;
            pre  "s = 0";
            post "s = 0";
            var s : seq [15..0] bit bind R1;
            var i : seq [15..0] bit bind R2;
            begin
              while i <> 0 inv "s = 0" do
              begin
                s := s + 1;
                i := i - 1
              end
            end
        """, hm1)
        assert not report.passed  # s = 0 is not preserved

    def test_repeat_until(self, hm1):
        report = verify("""
            program t;
            pre  "true";
            post "i = 0";
            var i : seq [15..0] bit bind R1;
            begin
              repeat i := i - 1 until i = 0 inv "true"
            end
        """, hm1)
        assert report.passed


class TestLimitations:
    def test_flag_tests_rejected(self, hm1):
        with pytest.raises(VerificationError):
            verify("""
                program t;
                var i : seq [15..0] bit bind R1;
                begin
                  if Z then i := 0 fi
                end
            """, hm1)

    def test_memory_statements_rejected(self, hm1):
        with pytest.raises(VerificationError):
            verify("""
                program t;
                var a : seq [15..0] bit bind R1;
                var v : seq [15..0] bit bind R2;
                begin v := read(a) end
            """, hm1)

    def test_custom_checker_width(self, hm1):
        report = verify("""
            program t;
            pre  "true";
            post "x = 255";
            var x : seq [15..0] bit bind R1;
            begin x := 255 end
        """, hm1, checker=BoundedChecker(width=16, samples=10))
        assert report.passed
