"""Verification subsystem: expressions, wp calculus, bounded checking."""

import pytest

from repro.errors import VerificationError
from repro.verify import (
    BinOp,
    BoundedChecker,
    Compare,
    Const,
    Not,
    TRUE,
    VAssert,
    VAssign,
    VIf,
    VParallel,
    VSeq,
    VWhile,
    Var,
    conj,
    generate_vcs,
    implies,
    parse_assertion,
    weakest_precondition,
)
from repro.verify.hoare import VerificationCondition


def check(formula, **kwargs):
    condition = VerificationCondition("test", formula)
    return BoundedChecker(**kwargs).check(condition)


class TestExpr:
    def test_eval_arithmetic(self):
        expr = parse_assertion("x + y * 2")
        assert expr.evaluate({"x": 1, "y": 3}, 16) == 7

    def test_eval_wraps_at_width(self):
        expr = parse_assertion("x + 1")
        assert expr.evaluate({"x": 0xFFFF}, 16) == 0
        assert expr.evaluate({"x": 0xF}, 4) == 0

    def test_substitution(self):
        expr = parse_assertion("x = y")
        substituted = expr.substitute({"x": BinOp("+", Var("y"), Const(1))})
        assert substituted.evaluate({"y": 5}, 16) == 0  # y+1 != y

    def test_variables(self):
        assert parse_assertion("a & b | ~c").variables() == {"a", "b", "c"}

    def test_unbound_variable_raises(self):
        with pytest.raises(VerificationError):
            Var("ghost").evaluate({}, 16)


class TestParser:
    def test_precedence_compare_over_bool(self):
        expr = parse_assertion("x = 1 and y = 2")
        assert expr.evaluate({"x": 1, "y": 2}, 16) == 1
        assert expr.evaluate({"x": 1, "y": 3}, 16) == 0

    def test_implies_right_associative(self):
        expr = parse_assertion("a = 1 implies b = 1 implies c = 1")
        # a=1 -> (b=1 -> c=1): false only when a=1, b=1, c!=1.
        assert expr.evaluate({"a": 1, "b": 1, "c": 0}, 16) == 0
        assert expr.evaluate({"a": 0, "b": 1, "c": 0}, 16) == 1

    def test_shift_and_mask(self):
        expr = parse_assertion("(x >> 4) & 0xF")
        assert expr.evaluate({"x": 0xABCD}, 16) == 0xC

    def test_true_false_literals(self):
        assert parse_assertion("true").evaluate({}, 16) == 1
        assert parse_assertion("false").evaluate({}, 16) == 0

    def test_trailing_garbage_rejected(self):
        with pytest.raises(Exception):
            parse_assertion("x = 1 garbage ^^^")

    def test_not_and_unary(self):
        expr = parse_assertion("not x = 1")
        assert expr.evaluate({"x": 0}, 16) == 1
        assert parse_assertion("-1 = 0xFFFF").evaluate({}, 16) == 1


class TestWeakestPrecondition:
    def test_assign(self):
        post = parse_assertion("x = 5")
        pre = weakest_precondition(
            VAssign("x", BinOp("+", Var("y"), Const(1))), post, []
        )
        assert pre.evaluate({"y": 4}, 16) == 1
        assert pre.evaluate({"y": 7}, 16) == 0

    def test_seq_composes_right_to_left(self):
        statement = VSeq((
            VAssign("x", BinOp("+", Var("x"), Const(1))),
            VAssign("x", BinOp("*", Var("x"), Const(2))),
        ))
        pre = weakest_precondition(statement, parse_assertion("x = 6"), [])
        assert pre.evaluate({"x": 2}, 16) == 1  # (2+1)*2 = 6

    def test_parallel_is_simultaneous(self):
        swap = VParallel((
            VAssign("x", Var("y")),
            VAssign("y", Var("x")),
        ))
        post = parse_assertion("x = b and y = a")
        pre = weakest_precondition(swap, post, [])
        assert pre.evaluate({"x": 1, "y": 2, "a": 1, "b": 2}, 16) == 1

    def test_parallel_duplicate_targets_rejected(self):
        with pytest.raises(VerificationError):
            VParallel((VAssign("x", Const(1)), VAssign("x", Const(2))))

    def test_if_covers_both_arms(self):
        statement = VIf(
            arms=((Compare("=", Var("x"), Const(0)),
                   VAssign("r", Const(1))),),
            otherwise=VAssign("r", Const(2)),
        )
        pre = weakest_precondition(statement, parse_assertion("r >= 1"), [])
        assert pre.evaluate({"x": 0, "r": 0}, 16) == 1
        assert pre.evaluate({"x": 5, "r": 0}, 16) == 1

    def test_while_emits_invariant_obligations(self):
        loop = VWhile(
            condition=Compare("#", Var("i"), Const(0)),
            invariant=parse_assertion("i >= 0"),
            body=VAssign("i", BinOp("-", Var("i"), Const(1))),
        )
        conditions: list = []
        weakest_precondition(loop, TRUE, conditions)
        assert len(conditions) == 2
        descriptions = [c.description for c in conditions]
        assert any("preserved" in d for d in descriptions)
        assert any("exit" in d for d in descriptions)

    def test_assert_strengthens(self):
        statement = VSeq((
            VAssert(parse_assertion("x = 1")),
            VAssign("y", Var("x")),
        ))
        pre = weakest_precondition(statement, parse_assertion("y = 1"), [])
        assert pre.evaluate({"x": 1, "y": 0}, 16) == 1
        assert pre.evaluate({"x": 2, "y": 0}, 16) == 0


class TestBoundedChecker:
    def test_identity_passes_exhaustively(self):
        result = check(parse_assertion("(x & y) | (x & ~y) = x"))
        assert result.passed
        assert result.exhaustive_width is not None

    def test_failure_has_counterexample(self):
        result = check(parse_assertion("x + 1 > x"))  # fails at wrap
        assert not result.passed
        assert result.counterexample is not None
        formula = parse_assertion("x + 1 > x")
        assert formula.evaluate(result.counterexample, 16) == 0

    def test_closed_formula(self):
        assert check(parse_assertion("1 + 1 = 2")).passed
        assert not check(parse_assertion("1 = 2")).passed

    def test_many_variables_reduce_width(self):
        formula = parse_assertion("a ^ b ^ c ^ d ^ e = e ^ d ^ c ^ b ^ a")
        result = check(formula)
        assert result.passed
        assert result.exhaustive_width is not None
        assert result.exhaustive_width < 4  # grid capped by budget

    def test_deterministic(self):
        formula = parse_assertion("x * 3 = x + x + x")
        first = check(formula)
        second = check(formula)
        assert first.probes == second.probes
        assert first.passed and second.passed

    def test_report_aggregation(self):
        from repro.verify import VerificationReport

        conditions = [
            VerificationCondition("good", parse_assertion("x = x")),
            VerificationCondition("bad", parse_assertion("x = 0")),
        ]
        report = VerificationReport(BoundedChecker().check_all(conditions))
        assert not report.passed
        assert len(report.failures) == 1
        assert "1 failed" in str(report)


class TestGenerateVCs:
    def test_straight_line_triple(self):
        conditions = generate_vcs(
            parse_assertion("x = a"),
            VAssign("x", BinOp("+", Var("x"), Const(1))),
            parse_assertion("x = a + 1"),
        )
        report = BoundedChecker().check_all(conditions)
        assert all(r.passed for r in report)

    def test_survey_increment_overflow_rule(self):
        """§2.2.3's S(M) INC rule: the naive postcondition fails at the
        16-bit boundary, the width-aware one holds."""
        naive = generate_vcs(
            parse_assertion("x = v"),
            VAssign("x", BinOp("+", Var("x"), Const(1))),
            parse_assertion("x > v"),
        )
        assert not all(r.passed for r in BoundedChecker().check_all(naive))
        aware = generate_vcs(
            parse_assertion("x = v"),
            VAssign("x", BinOp("+", Var("x"), Const(1))),
            parse_assertion("x = v + 1"),
        )
        assert all(r.passed for r in BoundedChecker().check_all(aware))
