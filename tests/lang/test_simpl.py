"""SIMPL front end: the survey's example, single identity, control."""

import pytest

from repro.asm import ControlStore
from repro.errors import ParseError, SemanticError
from repro.lang.simpl import (
    compile_simpl,
    parallel_pairs,
    parse_simpl,
    single_identity_order,
)
from repro.sim import Simulator

FPMUL = """
program fpmul;
const M3 = 0x7C00;
const M4 = 0x03FF;
begin
    comment extract and determine exponent for product;
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    comment extract mantissas and clear ACC;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    R0 -> ACC;
    comment multiplication proper by shift and add;
    while R2 # 0 do
    begin
        ACC ^ -1 -> ACC;
        R2 ^ -1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    R3 | ACC -> R3;
end
"""


def run(source, machine, registers=None, name=None):
    result = compile_simpl(source, machine)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    for register, value in (registers or {}).items():
        simulator.state.write_reg(register, value)
    outcome = simulator.run(result.loaded.name)
    return outcome, simulator, result


class TestParser:
    def test_paper_example_parses(self):
        program = parse_simpl(FPMUL)
        assert program.name == "fpmul"
        assert program.constants == {"M3": 0x7C00, "M4": 0x03FF}
        assert len(program.body.body) == 9

    def test_comments_stripped(self):
        program = parse_simpl(
            "program t; begin comment noise -> here; R1 -> R2; end"
        )
        assert len(program.body.body) == 1

    def test_single_operator_enforced_by_grammar(self):
        with pytest.raises(ParseError):
            parse_simpl("program t; begin R1 + R2 + R3 -> R4; end")

    def test_equivalence_statement(self):
        program = parse_simpl(
            "program t; equiv EXP = R4; begin EXP -> ACC; end"
        )
        assert program.equivalences == {"EXP": "R4"}

    def test_case_statement(self):
        program = parse_simpl("""
            program t;
            begin
                case R1 of
                    0: R2 -> R3;
                    1: R4 -> R3;
                else R0 -> R3;
                esac;
            end
        """)
        case = program.body.body[0]
        assert len(case.arms) == 2
        assert case.default is not None

    def test_procedures(self):
        program = parse_simpl("""
            program t;
            procedure clear; R0 -> ACC;
            begin call clear; end
        """)
        assert program.procedures[0].name == "clear"


class TestSingleIdentity:
    def test_order_pairs(self):
        program = parse_simpl("""
            program t;
            begin
                R1 + R2 -> R3;
                R3 + R1 -> R4;
                R5 & R6 -> R5;
            end
        """)
        order = single_identity_order(program.body.body)
        assert (0, 1) in order      # flow through R3
        assert (0, 2) not in order  # independent

    def test_successive_values_ordered(self):
        program = parse_simpl("""
            program t;
            begin
                R1 + R2 -> R3;
                R4 + R5 -> R3;
            end
        """)
        assert (0, 1) in single_identity_order(program.body.body)

    def test_use_before_redefinition(self):
        program = parse_simpl("""
            program t;
            begin
                R3 + R1 -> R4;
                R5 + R6 -> R3;
            end
        """)
        assert (0, 1) in single_identity_order(program.body.body)

    def test_parallel_pairs_detected(self):
        program = parse_simpl("""
            program t;
            begin
                R1 & R2 -> R3;
                R4 & R5 -> R6;
            end
        """)
        assert parallel_pairs(program.body.body) == [(0, 1)]


class TestSemanticChecks:
    def test_unknown_variable_rejected(self, hm1):
        with pytest.raises(SemanticError):
            compile_simpl("program t; begin FOO -> ACC; end", hm1)

    def test_assignment_to_constant_rejected(self, hm1):
        with pytest.raises(SemanticError):
            compile_simpl(
                "program t; const K = 5; begin R1 -> K; end", hm1
            )

    def test_call_to_unknown_procedure(self, hm1):
        with pytest.raises(SemanticError):
            compile_simpl("program t; begin call ghost; end", hm1)

    def test_equivalence_resolves_to_register(self, hm1):
        outcome, simulator, _ = run(
            "program t; equiv X = R1; begin X -> R2; end",
            hm1, registers={"R1": 77},
        )
        assert simulator.state.read_reg("R2") == 77

    def test_circular_equivalence_rejected(self, hm1):
        with pytest.raises(SemanticError):
            compile_simpl(
                "program t; equiv A = B; equiv B = A; begin A -> R1; end",
                hm1,
            )


class TestExecution:
    def test_fpmul_packs_exponents(self, hm1):
        _, simulator, result = run(FPMUL, hm1, registers={
            "R1": (2 << 10) | 3,
            "R2": (3 << 10) | 5,
            "R3": 0,
        })
        r3 = simulator.state.read_reg("R3")
        assert (r3 >> 10) & 0x1F == 5  # exponents added
        assert result.loaded.constants  # masks went to the constant ROM

    def test_shift_left_and_right(self, hm1):
        _, simulator, _ = run("""
            program t;
            begin
                R1 ^ 2 -> R2;
                R1 ^ -1 -> R3;
            end
        """, hm1, registers={"R1": 8})
        assert simulator.state.read_reg("R2") == 32
        assert simulator.state.read_reg("R3") == 4

    def test_negation_and_xor(self, hm1):
        _, simulator, _ = run("""
            program t;
            begin
                ~R1 -> R2;
                R1 xor R3 -> R4;
            end
        """, hm1, registers={"R1": 0x00FF, "R3": 0x0F0F})
        assert simulator.state.read_reg("R2") == 0xFF00
        assert simulator.state.read_reg("R4") == 0x0FF0

    def test_if_else(self, hm1):
        source = """
            program t;
            begin
                if R1 = 0 then R0 -> R2;
                else ONE -> R2;
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 0})
        assert simulator.state.read_reg("R2") == 0
        _, simulator, _ = run(source, hm1, registers={"R1": 9})
        assert simulator.state.read_reg("R2") == 1

    def test_for_loop(self, hm1):
        _, simulator, _ = run("""
            program t;
            begin
                R0 -> R2;
                for R1 = 1 to 5 do
                begin
                    R2 + R1 -> R2;
                end;
            end
        """, hm1)
        assert simulator.state.read_reg("R2") == 15

    def test_case_multiway(self, hm1):
        source = """
            program t;
            begin
                case R1 of
                    0: ONE -> R2;
                    3: R1 -> R2;
                else R0 -> R2;
                esac;
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 0})
        assert simulator.state.read_reg("R2") == 1
        _, simulator, _ = run(source, hm1, registers={"R1": 3})
        assert simulator.state.read_reg("R2") == 3
        _, simulator, _ = run(source, hm1, registers={"R1": 7})
        assert simulator.state.read_reg("R2") == 0

    def test_memory_read_write(self, hm1):
        _, simulator, _ = run("""
            program t;
            const ADDR = 300;
            begin
                read(ADDR) -> R1;
                R1 + ONE -> R2;
                write(ADDR, R2);
            end
        """, hm1, registers=None)
        assert simulator.state.memory.dump_words(300, 1) == [1]

    def test_procedure_call(self, hm1):
        _, simulator, _ = run("""
            program t;
            procedure bump; R1 + ONE -> R1;
            begin
                call bump;
                call bump;
            end
        """, hm1)
        assert simulator.state.read_reg("R1") == 2

    def test_compaction_happens(self, hm1):
        """Independent SIMPL statements share microinstructions."""
        result = compile_simpl("""
            program t;
            begin
                R1 & R2 -> R3;
                R4 -> R5;
            end
        """, hm1)
        assert result.composed.n_instructions() < result.composed.n_ops() + 1
