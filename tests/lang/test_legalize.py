"""Machine legalization: expansions, literals, classes, multiway."""

import pytest

from repro.errors import MIRError
from repro.lang.common.legalize import legalize
from repro.mir import (
    Imm,
    MaskCase,
    Multiway,
    ProgramBuilder,
    mop,
    preg,
    vreg,
)
from repro.regalloc import LinearScanAllocator
from tests.conftest import run_mir


def finish_and_run(builder, machine, expect, allocate=True):
    program = builder.finish()
    stats = legalize(program, machine)
    if allocate and program.virtual_regs():
        LinearScanAllocator().allocate(program, machine)
    result, _ = run_mir(program, machine)
    assert result.exit_value == expect
    return stats


class TestOpExpansion:
    def test_inc_on_vax_becomes_add_one(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(41)))
        b.emit(mop("inc", vreg("x"), vreg("x")))
        b.exit(vreg("x"))
        stats = finish_and_run(b, vax, 42)
        assert stats.expansions.get("inc") == 1

    def test_dec_on_vax(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(43)))
        b.emit(mop("dec", vreg("x"), vreg("x")))
        b.exit(vreg("x"))
        stats = finish_and_run(b, vax, 42)
        assert stats.expansions.get("dec") == 1

    def test_neg_on_vax(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(1)))
        b.emit(mop("neg", vreg("x"), vreg("x")))
        b.exit(vreg("x"))
        finish_and_run(b, vax, 0xFFFF)

    def test_nand_on_vax(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("a"), Imm(0xF0)))
        b.emit(mop("movi", vreg("b"), Imm(0x3C)))
        b.emit(mop("nand", vreg("x"), vreg("a"), vreg("b")))
        b.exit(vreg("x"))
        finish_and_run(b, vax, (~(0xF0 & 0x3C)) & 0xFFFF)

    def test_rol_on_vax_built_from_shifts(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(0x81)))
        b.emit(mop("rol", vreg("x"), vreg("x"), Imm(4)))
        b.exit(vreg("x"))
        stats = finish_and_run(b, vax, 0x810)
        assert "rol" in stats.expansions

    def test_native_ops_untouched(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("e")
        b.emit(mop("inc", preg("R1"), preg("R1")))
        b.exit(preg("R1"))
        program = b.finish()
        stats = legalize(program, hm1)
        assert stats.growth == 1.0
        assert stats.expansions == {}

    def test_unexpandable_op_raises(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("teleport", preg("T0"), preg("T1")))
        b.exit()
        with pytest.raises(MIRError):
            legalize(b.finish(), vax)


class TestShiftUnrolling:
    def test_multi_bit_shift_unrolled_on_vax(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(1)))
        b.emit(mop("shl", vreg("x"), vreg("x"), Imm(5)))
        b.exit(vreg("x"))
        stats = finish_and_run(b, vax, 32)
        assert stats.expansions.get("shl-unroll") == 1
        assert stats.ops_after > stats.ops_before

    def test_hp_keeps_barrel_shift(self, hp300):
        b = ProgramBuilder("t", hp300)
        b.start_block("e")
        b.emit(mop("shl", preg("x"), preg("x"), Imm(5)))
        b.exit(preg("x"))
        program = b.finish()
        stats = legalize(program, hp300)
        assert stats.growth == 1.0


class TestWideLiterals:
    def test_vax_wide_literal_via_const_rom(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(0x1234)))
        b.exit(vreg("x"))
        program = b.finish()
        stats = legalize(program, vax)
        LinearScanAllocator().allocate(program, vax)
        assert stats.expansions.get("const-rom") == 1
        result, _ = run_mir(program, vax)
        assert result.exit_value == 0x1234

    def test_vax_wide_literal_synthesized_when_rom_full(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        values = [0x1111, 0x2222, 0x3333]  # 2 ROM slots, then synthesis
        accumulator = vreg("acc")
        b.emit(mop("movi", accumulator, Imm(0)))
        for index, value in enumerate(values):
            register = vreg(f"x{index}")
            b.emit(mop("movi", register, Imm(value)))
            b.emit(mop("xor", accumulator, accumulator, register))
        b.exit(accumulator)
        stats = finish_and_run(b, vax, 0x1111 ^ 0x2222 ^ 0x3333)
        assert stats.expansions.get("wide-literal", 0) >= 1

    def test_small_literal_untouched_on_vax(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(200)))
        b.exit(vreg("x"))
        program = b.finish()
        stats = legalize(program, vax)
        assert stats.expansions == {}


class TestDestClassEnforcement:
    def test_physical_dest_copied_through_temp(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        # T5 cannot take ALU results directly on VAXm.
        b.emit(mop("add", preg("T5"), preg("T6"), preg("ONE")))
        b.exit(preg("T5"))
        program = b.finish()
        stats = legalize(program, vax)
        assert stats.expansions.get("dest-class-copy") == 1
        LinearScanAllocator().allocate(program, vax)
        _, simulator = run_mir(program, vax, registers={"T6": 9})
        assert simulator.state.read_reg("T5") == 10

    def test_aluout_dest_untouched(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("add", preg("T0"), preg("T6"), preg("ONE")))
        b.exit(preg("T0"))
        stats = legalize(b.finish(), vax)
        assert "dest-class-copy" not in stats.expansions


class TestMultiwayLowering:
    def lowered_program(self, vax, value):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("x"), Imm(value)))
        b.terminate(Multiway(
            vreg("x"),
            (MaskCase("0001", "one"), MaskCase("001x", "twoish")),
            "other",
        ))
        for label, out in (("one", 100), ("twoish", 200), ("other", 300)):
            b.start_block(label)
            b.emit(mop("movi", vreg("r"), Imm(out)))
            b.exit(vreg("r"))
        program = b.finish()
        stats = legalize(program, vax)
        assert stats.multiway_lowered == 1
        LinearScanAllocator().allocate(program, vax)
        return program

    @pytest.mark.parametrize("value,expected", [
        (1, 100), (2, 200), (3, 200), (9, 300), (0, 300),
    ])
    def test_semantics_preserved(self, vax, value, expected):
        program = self.lowered_program(vax, value)
        result, _ = run_mir(program, vax)
        assert result.exit_value == expected

    def test_hm1_keeps_hardware_multiway(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("e")
        b.terminate(Multiway(preg("R1"), (MaskCase("1", "a"),), "a"))
        b.start_block("a")
        b.exit()
        program = b.finish()
        stats = legalize(program, hm1)
        assert stats.multiway_lowered == 0
