"""Layering lint: no front end may import from a sibling front end.

``CompileResult`` used to live in ``repro.lang.yalll.compiler`` and the
other four languages imported it from there — exactly the coupling this
test now forbids.  Shared machinery belongs in ``repro.lang.common`` or
``repro.pipeline``.
"""

import ast
from pathlib import Path

import pytest

SRC = Path(__file__).parent.parent.parent / "src" / "repro" / "lang"

#: Front-end packages (``common`` is the sanctioned shared layer).
FRONT_ENDS = sorted(
    p.name for p in SRC.iterdir()
    if p.is_dir() and p.name not in {"common", "__pycache__"}
)

MODULES = sorted(
    path for lang in FRONT_ENDS for path in (SRC / lang).rglob("*.py")
)


def _imported_modules(path: Path):
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield alias.name
        elif isinstance(node, ast.ImportFrom) and node.module:
            if node.level == 0:  # relative imports stay in-package
                yield node.module


def test_corpus_sanity():
    assert FRONT_ENDS == ["empl", "mpl", "simpl", "sstar", "yalll"]
    assert MODULES


@pytest.mark.parametrize(
    "path", MODULES, ids=[str(p.relative_to(SRC)) for p in MODULES]
)
def test_no_cross_frontend_imports(path):
    lang = path.relative_to(SRC).parts[0]
    offences = [
        module
        for module in _imported_modules(path)
        if module.startswith("repro.lang.")
        and module.split(".")[2] not in ("common", lang)
    ]
    assert not offences, (
        f"{path.relative_to(SRC)} imports sibling front end(s) "
        f"{offences}; share through repro.lang.common or repro.pipeline"
    )
