"""S* front end: schema instantiation, explicit composition, types."""

import pytest

from repro.asm import ControlStore
from repro.errors import ConflictError, ParseError, SemanticError
from repro.lang.sstar import compile_sstar, parse_sstar
from repro.sim import Simulator

MPY = """
program MPY;
var left_alu_in  : seq [15..0] bit bind R1;
var right_alu_in : seq [15..0] bit bind R2;
var aluout       : seq [15..0] bit bind ACC;
var mpr_reg      : seq [15..0] bit bind R4;
var mpnd_reg     : seq [15..0] bit bind R5;
var product_reg  : seq [15..0] bit bind R6;
const minus1 = dec (16) -1;
syn mpr = mpr_reg, mpnd = mpnd_reg, product = product_reg;

begin
  repeat
    cocycle
      cobegin left_alu_in := product; right_alu_in := mpnd coend;
      aluout := left_alu_in + right_alu_in;
      product := aluout
    coend;
    cocycle
      cobegin left_alu_in := mpr; right_alu_in := minus1 coend;
      aluout := left_alu_in + right_alu_in;
      mpr := aluout
    coend
  until aluout = 0
end
"""


def run(source, machine, registers=None):
    result = compile_sstar(source, machine)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    for register, value in (registers or {}).items():
        simulator.state.write_reg(register, value)
    outcome = simulator.run(result.loaded.name)
    return outcome, simulator, result


class TestParser:
    def test_mpy_parses(self):
        program = parse_sstar(MPY)
        assert program.name == "MPY"
        assert set(program.synonyms) == {"mpr", "mpnd", "product"}
        assert program.constants["minus1"].value == -1
        assert len(program.variables) == 6

    def test_types(self):
        program = parse_sstar("""
            program t;
            var a : seq [7..0] bit bind R1;
            var arr : array [0..3] of seq [15..0] bit bind scratch[8];
            var ir : tuple opcode: seq [3..0] bit; addr: seq [11..0] bit end bind R2;
            var stk : stack [8] of seq [15..0] bit bind mem[0x500] ptr R3;
            begin a := a end
        """)
        assert program.variables["a"].type.width == 8
        assert program.variables["arr"].type.length == 4
        assert program.variables["ir"].type.width == 16
        layout = program.variables["ir"].type.layout()
        assert layout == {"opcode": (12, 4), "addr": (0, 12)}
        assert program.variables["stk"].type.depth == 8

    def test_annotations(self):
        program = parse_sstar("""
            program t;
            pre "x = 0";
            post "x = 1";
            var x : seq [15..0] bit bind R1;
            begin x := 1 end
        """)
        assert program.pre == "x = 0"
        assert program.post == "x = 1"

    def test_region_and_dur(self):
        program = parse_sstar("""
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            begin
              region a := b; b := a end;
              dur a := b do b := a; a := b end
            end
        """)
        assert len(program.body.body) == 2

    def test_missing_bind_is_parse_error(self):
        with pytest.raises(ParseError):
            parse_sstar("program t; var a : seq [15..0] bit; begin a := a end")


class TestBindChecking:
    def test_unknown_register(self, hm1):
        with pytest.raises(SemanticError):
            compile_sstar(
                "program t; var a : seq [15..0] bit bind QX; begin a := a end",
                hm1,
            )

    def test_width_exceeds_register(self, hm1):
        with pytest.raises(SemanticError):
            compile_sstar(
                "program t; var a : seq [31..0] bit bind R1; begin a := a end",
                hm1,
            )

    def test_scratch_binding_bounds(self, hm1):
        with pytest.raises(SemanticError):
            compile_sstar(
                "program t; var a : array [0..999] of seq [15..0] bit "
                "bind scratch[0]; begin a[0] := a[0] end",
                hm1,
            )

    def test_register_list_length_mismatch(self, hm1):
        with pytest.raises(SemanticError):
            compile_sstar(
                "program t; var a : array [0..2] of seq [15..0] bit "
                "bind (R1, R2); begin a[0] := a[1] end",
                hm1,
            )


class TestExecution:
    def test_mpy_multiplies(self, hm1):
        outcome, simulator, result = run(MPY, hm1, registers={
            "R4": 5, "R5": 7, "R6": 0,
        })
        assert simulator.state.read_reg("R6") == 35

    def test_each_cocycle_is_one_word(self, hm1):
        _, _, result = run(MPY, hm1, registers={"R4": 1, "R5": 1, "R6": 0})
        body = result.composed.blocks["rp1"]
        # Two cocycles -> exactly two microinstructions of four ops each.
        assert len(body.instructions) == 2
        assert all(len(mi.placed) == 4 for mi in body.instructions)

    def test_tuple_field_select_and_deposit(self, hm1):
        source = """
            program t;
            var ir : tuple opcode: seq [3..0] bit; addr: seq [11..0] bit end bind R1;
            var x : seq [15..0] bit bind R2;
            var y : seq [15..0] bit bind R3;
            begin
              x := ir.opcode;
              y := ir.addr;
              ir.opcode := y
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 0xA123})
        assert simulator.state.read_reg("R2") == 0xA
        assert simulator.state.read_reg("R3") == 0x123
        assert simulator.state.read_reg("R1") == 0x3123

    def test_whole_tuple_reference(self, hm1):
        source = """
            program t;
            var ir : tuple opcode: seq [3..0] bit; addr: seq [11..0] bit end bind R1;
            var x : seq [15..0] bit bind R2;
            begin x := ir end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 0xBEEF})
        assert simulator.state.read_reg("R2") == 0xBEEF

    def test_scratch_array(self, hm1):
        source = """
            program t;
            var ls : array [0..3] of seq [15..0] bit bind scratch[4];
            var x : seq [15..0] bit bind R1;
            var y : seq [15..0] bit bind R2;
            begin
              ls[2] := x;
              y := ls[2]
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 99})
        assert simulator.state.read_reg("R2") == 99
        assert simulator.state.scratchpad.read(6) == 99

    def test_stack_push_pop(self, hm1):
        source = """
            program t;
            var stk : stack [8] of seq [15..0] bit bind mem[0x400] ptr R7;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            begin
              push(stk, a);
              push(stk, b);
              a := pop(stk);
              b := pop(stk)
            end
        """
        _, simulator, _ = run(source, hm1, registers={
            "R1": 10, "R2": 20, "R7": 0x400,
        })
        assert simulator.state.read_reg("R1") == 20
        assert simulator.state.read_reg("R2") == 10
        assert simulator.state.read_reg("R7") == 0x400

    def test_if_elif_else(self, hm1):
        source = """
            program t;
            var x : seq [15..0] bit bind R1;
            var r : seq [15..0] bit bind R2;
            begin
              if x = 0 then r := 1
              elif x = 1 then r := 2
              else r := 3
              fi
            end
        """
        for value, expected in ((0, 1), (1, 2), (9, 3)):
            _, simulator, _ = run(source, hm1, registers={"R1": value})
            assert simulator.state.read_reg("R2") == expected

    def test_while_loop(self, hm1):
        source = """
            program t;
            var i : seq [15..0] bit bind R1;
            var s : seq [15..0] bit bind R2;
            begin
              s := 0;
              while i <> 0 do
              begin
                s := s + i;
                i := i - 1
              end
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 4})
        assert simulator.state.read_reg("R2") == 10

    def test_procedures_with_uses(self, hm1):
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            proc bump (a);
            begin a := a + 1 end;
            begin
              call bump;
              call bump
            end
        """
        _, simulator, _ = run(source, hm1)
        assert simulator.state.read_reg("R1") == 2

    def test_memory_read_write(self, hm1):
        source = """
            program t;
            var addr : seq [15..0] bit bind R1;
            var v : seq [15..0] bit bind R2;
            begin
              v := read(addr);
              v := v + 1;
              write(addr, v)
            end
        """
        outcome, simulator, _ = run(source, hm1, registers={"R1": 500})
        assert simulator.state.memory.dump_words(500, 1) == [1]


class TestExplicitCompositionErrors:
    def test_two_alu_ops_in_cobegin_rejected(self, hm1):
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            var c : seq [15..0] bit bind R3;
            var d : seq [15..0] bit bind R4;
            begin
              cobegin a := a + b; c := c + d coend
            end
        """
        with pytest.raises(ConflictError):
            compile_sstar(source, hm1)

    def test_cobegin_has_parallel_read_old_semantics(self, hm1):
        # Simultaneous members read pre-cycle values: c gets the OLD a.
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            var c : seq [15..0] bit bind R3;
            begin
              cobegin a := b; c := a coend
            end
        """
        _, simulator, _ = run(source, hm1, registers={"R1": 7, "R2": 9})
        assert simulator.state.read_reg("R1") == 9
        assert simulator.state.read_reg("R3") == 7  # old a, not 9

    def test_cobegin_swap_compiles_and_swaps(self, hm1):
        source = """
            program t;
            var x : seq [15..0] bit bind R1;
            var y : seq [15..0] bit bind R2;
            begin
              cobegin x := y; y := x coend
            end
        """
        _, simulator, result = run(source, hm1, registers={"R1": 1, "R2": 2})
        assert simulator.state.read_reg("R1") == 2
        assert simulator.state.read_reg("R2") == 1
        # One word: the swap is a single microinstruction.
        body = result.composed.blocks["main"].instructions
        assert len(body[0].placed) == 2

    def test_cobegin_write_write_rejected(self, hm1):
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            var c : seq [15..0] bit bind R3;
            begin
              cobegin a := b; a := c coend
            end
        """
        with pytest.raises(ConflictError):
            compile_sstar(source, hm1)

    def test_cocycle_phase_mismatch_rejected(self, hm1):
        # An ALU op cannot execute in phase 1 of an HM1 cocycle.
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            begin
              cocycle a := a + b; b := a coend
            end
        """
        with pytest.raises(ConflictError):
            compile_sstar(source, hm1)

    def test_non_elementary_in_cobegin_rejected(self, hm1):
        source = """
            program t;
            var stk : stack [4] of seq [15..0] bit bind mem[0x400] ptr R7;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            begin
              cobegin push(stk, a); b := a coend
            end
        """
        with pytest.raises(SemanticError):
            compile_sstar(source, hm1)

    def test_machine_without_op_rejected(self, vax):
        source = """
            program t;
            var a : seq [15..0] bit bind T4;
            begin a := a + 1 end
        """
        # 'inc'-style a := a + 1 maps to add with a constant: fine.
        compile_sstar(source, vax)
        bad = """
            program t;
            var a : seq [15..0] bit bind T4;
            begin a := a nand a end
        """
        with pytest.raises((SemanticError, ParseError)):
            compile_sstar(bad, vax)

    def test_uses_list_violation(self, hm1):
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            proc bad (a);
            begin b := a end;
            begin call bad end
        """
        with pytest.raises(SemanticError):
            compile_sstar(source, hm1)

    def test_dur_overlaps_first_body_statement(self, hm1):
        source = """
            program t;
            var a : seq [15..0] bit bind R1;
            var b : seq [15..0] bit bind R2;
            var c : seq [15..0] bit bind R3;
            var d : seq [15..0] bit bind R4;
            begin
              dur a := b do c := c + d; d := c end
            end
        """
        result = compile_sstar(source, hm1)
        instructions = result.composed.blocks["main"].instructions
        # dur op + first body op share the first word.
        assert len(instructions[0].placed) == 2
