"""EMPL front end: extension types, operators, inlining, arrays."""

import pytest

from repro.asm import ControlStore
from repro.errors import ParseError, SemanticError
from repro.lang.empl import compile_empl, parse_empl
from repro.sim import Simulator

STACK_TYPE = """
TYPE STACK
     DECLARE STK(16) FIXED;
     DECLARE STKPTR FIXED;
     DECLARE VALUE FIXED;
     INITIALLY DO; STKPTR = 0; END;
     PUSH: OPERATION ACCEPTS (VALUE)
           MICROOP: PUSH 3 0;
           IF STKPTR = 16
           THEN ERROR;
           ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END
           END.
     POP:  OPERATION RETURNS (VALUE)
           MICROOP: POP 3 0;
           IF STKPTR = 0
           THEN ERROR;
           ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END
           END.
ENDTYPE;
"""


def run(source, machine, name="t", inputs=None):
    result = compile_empl(source, machine, name=name)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    outcome = simulator.run(name)
    return outcome, simulator, result


def variable(result, simulator, name):
    mapping = result.allocation.mapping
    key = f"g_{name.upper()}"
    if key in mapping:
        return simulator.state.read_reg(mapping[key])
    return simulator.state.scratchpad.read(
        result.allocation.spilled_slots[key]
    )


class TestParser:
    def test_paper_stack_type(self):
        program = parse_empl(STACK_TYPE)
        stack = program.types["STACK"]
        assert [f.name for f in stack.fields] == ["STK", "STKPTR", "VALUE"]
        assert stack.fields[0].array_size == 16
        assert set(stack.operations) == {"PUSH", "POP"}
        assert stack.operations["PUSH"].microop.name == "PUSH"
        assert stack.operations["POP"].returns == "VALUE"

    def test_top_level_operation(self):
        program = parse_empl("""
            DOUBLE: OPERATION ACCEPTS (A) RETURNS (B)
                B = A + A;
            END.
        """)
        assert program.operations["DOUBLE"].accepts == ("A",)

    def test_comments(self):
        program = parse_empl("DECLARE X FIXED; /* comment */ X = 1;")
        assert len(program.body) == 1

    def test_goto_and_labels(self):
        program = parse_empl("GOTO done; done: RETURN;")
        assert len(program.body) == 2

    def test_malformed_type_rejected(self):
        with pytest.raises(ParseError):
            parse_empl("TYPE T GARBAGE ENDTYPE;")


class TestExecution:
    def test_paper_stack_example(self, hm1):
        source = STACK_TYPE + """
            DECLARE ADDRESS_STK STACK;
            DECLARE X FIXED;
            DECLARE Y FIXED;
            X = 7;
            PUSH(ADDRESS_STK, X);
            X = 35;
            PUSH(ADDRESS_STK, X);
            Y = POP(ADDRESS_STK);
            X = POP(ADDRESS_STK);
            Y = Y + X;
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "Y") == 42
        assert result.inlined_ops >= 4  # no PUSH/POP microop on HM1

    def test_stack_underflow_hits_error(self, hm1):
        source = STACK_TYPE + """
            DECLARE S STACK;
            DECLARE Y FIXED;
            Y = POP(S);
        """
        outcome, _, _ = run(source, hm1)
        assert outcome.exit_value == 0xFFFF  # ERROR marker

    def test_two_instances_do_not_share_state(self, hm1):
        source = STACK_TYPE + """
            DECLARE A STACK;
            DECLARE B STACK;
            DECLARE X FIXED;
            X = 1;
            PUSH(A, X);
            X = 2;
            PUSH(B, X);
            X = POP(A);
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "X") == 1

    def test_microop_escape_used_on_hp(self, hp300):
        source = """
            MULT: OPERATION ACCEPTS (A, B) RETURNS (C)
                MICROOP: MUL 2 1;
                DECLARE N FIXED;
                C = 0;
                N = B;
            L:  IF N = 0 THEN GOTO DONE;
                C = C + A;
                N = N - 1;
                GOTO L;
            DONE: RETURN;
            END.
            DECLARE X FIXED;
            DECLARE R FIXED;
            X = 6;
            R = MULT(X, 7);
        """
        _, simulator, result = run(source, hp300)
        assert variable(result, simulator, "R") == 42
        assert result.hardware_ops == 1  # hardware multiply used
        assert result.inlined_ops == 0

    def test_operator_inlined_when_no_microop(self, hm1):
        source = """
            MULT: OPERATION ACCEPTS (A, B) RETURNS (C)
                MICROOP: MUL 2 1;
                DECLARE N FIXED;
                C = 0;
                N = B;
            L:  IF N = 0 THEN GOTO DONE;
                C = C + A;
                N = N - 1;
                GOTO L;
            DONE: RETURN;
            END.
            DECLARE R FIXED;
            DECLARE X FIXED;
            X = 6;
            R = MULT(X, 7);
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "R") == 42
        assert result.hardware_ops == 0
        assert result.inlined_ops >= 1

    def test_inlining_grows_code(self, hm1):
        def source(n_calls):
            calls = "\n".join(
                f"R = TRIPLE(R);" for _ in range(n_calls)
            )
            return f"""
                TRIPLE: OPERATION ACCEPTS (A) RETURNS (B)
                    DECLARE T FIXED;
                    T = A + A;
                    B = T + A;
                END.
                DECLARE R FIXED;
                R = 1;
                {calls}
            """
        one = compile_empl(source(1), hm1)
        four = compile_empl(source(4), hm1)
        assert four.n_ops > one.n_ops + 4  # body replicated per call

    def test_builtin_multiply_and_divide(self, hm1):
        source = """
            DECLARE A FIXED;
            DECLARE B FIXED;
            A = 13 * 5;
            B = A / 4;
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "A") == 65
        assert variable(result, simulator, "B") == 16

    def test_while_loop(self, hm1):
        source = """
            DECLARE I FIXED;
            DECLARE S FIXED;
            I = 5;
            S = 0;
            WHILE I # 0 DO;
                S = S + I;
                I = I - 1;
            END;
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "S") == 15

    def test_arrays_in_main_memory(self, hm1):
        source = """
            DECLARE A(8) FIXED;
            DECLARE I FIXED;
            DECLARE S FIXED;
            I = 1;
            WHILE I # 5 DO;
                A(I) = I;
                I = I + 1;
            END;
            S = A(1) + A(2);
            S = S + A(3);
            S = S + A(4);
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "S") == 10
        assert simulator.state.memory.reads > 0  # arrays live in memory

    def test_procedures(self, hm1):
        source = """
            DECLARE X FIXED;
            BUMP: PROCEDURE;
                X = X + 1;
            END;
            X = 0;
            CALL BUMP;
            CALL BUMP;
            CALL BUMP;
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "X") == 3

    def test_unary_minus_and_not(self, hm1):
        source = """
            DECLARE A FIXED;
            DECLARE B FIXED;
            A = - 5;
            B = ~ 0;
        """
        _, simulator, result = run(source, hm1)
        assert variable(result, simulator, "A") == (-5) & 0xFFFF
        assert variable(result, simulator, "B") == 0xFFFF


class TestSemanticErrors:
    def test_undeclared_variable(self, hm1):
        with pytest.raises(SemanticError):
            compile_empl("X = 1;", hm1)

    def test_unknown_operation(self, hm1):
        with pytest.raises(SemanticError):
            compile_empl("DECLARE X FIXED; X = GHOST(X);", hm1)

    def test_recursive_operator_rejected(self, hm1):
        source = """
            LOOPY: OPERATION ACCEPTS (A) RETURNS (B)
                B = LOOPY(A);
            END.
            DECLARE R FIXED;
            R = LOOPY(R);
        """
        with pytest.raises(SemanticError):
            compile_empl(source, hm1)

    def test_array_without_index(self, hm1):
        with pytest.raises(SemanticError):
            compile_empl("DECLARE A(4) FIXED; A = 1;", hm1)

    def test_index_out_of_bounds(self, hm1):
        with pytest.raises(SemanticError):
            compile_empl("DECLARE A(4) FIXED; A(9) = 1;", hm1)

    def test_unknown_type(self, hm1):
        with pytest.raises(SemanticError):
            compile_empl("DECLARE S WIDGET;", hm1)

    def test_field_not_selectable_from_outside(self, hm1):
        """§2.2.2: 'fields … cannot be selected from outside the class'."""
        source = STACK_TYPE + """
            DECLARE S STACK;
            DECLARE X FIXED;
            X = STKPTR;
        """
        with pytest.raises(SemanticError):
            compile_empl(source, hm1)


class TestPortability:
    @pytest.mark.parametrize("machine_name", ["HM1", "HP300m", "VAXm", "VM1"])
    def test_stack_example_portable(self, machine_name):
        from repro.machine.machines import get_machine

        machine = get_machine(machine_name)
        source = STACK_TYPE + """
            DECLARE S STACK;
            DECLARE X FIXED;
            X = 11;
            PUSH(S, X);
            X = 31;
            PUSH(S, X);
            X = POP(S);
        """
        _, simulator, result = run(source, machine)
        assert variable(result, simulator, "X") == 31
