"""MPL front end: virtual registers, arrays, SIMPL-like control."""

import pytest

from repro.asm import ControlStore
from repro.errors import ParseError, SemanticError
from repro.lang.mpl import compile_mpl, parse_mpl
from repro.sim import Simulator

DATA_BASE = 0x6800


def run(source, machine, registers=None, memory=None):
    result = compile_mpl(source, machine)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    for register, value in (registers or {}).items():
        simulator.state.write_reg(register, value)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    outcome = simulator.run(result.loaded.name)
    return outcome, simulator, result


def virtual32(simulator, high, low):
    return (simulator.state.read_reg(high) << 16) | simulator.state.read_reg(low)


class TestParser:
    def test_declarations(self):
        program = parse_mpl("""
            program t;
            virtual D = R1 : R2;
            array A[8];
            const K = 0x10;
            begin R3 -> R4; end
        """)
        assert program.virtuals["D"].high == "R1"
        assert program.arrays["A"].size == 8
        assert program.constants["K"] == 16

    def test_duplicate_virtual_rejected(self):
        with pytest.raises(ParseError):
            parse_mpl("""
                program t;
                virtual D = R1 : R2;
                virtual D = R3 : R4;
                begin R1 -> R1; end
            """)

    def test_array_indexing_forms(self):
        program = parse_mpl("""
            program t;
            array A[4];
            begin
                A[0] -> R1;
                A[R2] -> R3;
                R1 -> A[3];
            end
        """)
        assert len(program.body.body) == 3


class TestVirtualRegisters:
    @pytest.mark.parametrize("machine_name,regs", [
        ("VM1", ("R1", "R2", "R3", "R4")),
        ("HM1", ("R1", "R2", "R3", "R4")),
        ("HP300m", ("s0", "s1", "s2", "s3")),
    ])
    @pytest.mark.parametrize("d,e", [
        (0x00018000, 0x00009000),   # carry out of the low half
        (0xFFFFFFFF, 0x00000001),   # wrap at 32 bits
        (0x12345678, 0x0F0F0F0F),
        (0, 0),
    ])
    def test_32bit_add(self, machine_name, regs, d, e):
        from repro.machine.machines import get_machine

        machine = get_machine(machine_name)
        dh, dl, eh, el = regs
        source = f"""
            program t;
            virtual D = {dh} : {dl};
            virtual E = {eh} : {el};
            begin D + E -> D; end
        """
        _, simulator, _ = run(source, machine, registers={
            dh: d >> 16, dl: d & 0xFFFF,
            eh: e >> 16, el: e & 0xFFFF,
        })
        assert virtual32(simulator, dh, dl) == (d + e) & 0xFFFFFFFF

    @pytest.mark.parametrize("d,e", [
        (0x00010000, 0x00000001),   # borrow into the high half
        (0x00000000, 0x00000001),   # wrap below zero
        (0xDEADBEEF, 0x00C0FFEE),
    ])
    def test_32bit_sub(self, vm1, d, e):
        source = """
            program t;
            virtual D = R1 : R2;
            virtual E = R3 : R4;
            begin D - E -> D; end
        """
        _, simulator, _ = run(source, vm1, registers={
            "R1": d >> 16, "R2": d & 0xFFFF,
            "R3": e >> 16, "R4": e & 0xFFFF,
        })
        assert virtual32(simulator, "R1", "R2") == (d - e) & 0xFFFFFFFF

    def test_logical_per_half(self, vm1):
        source = """
            program t;
            virtual D = R1 : R2;
            virtual E = R3 : R4;
            begin D & E -> D; end
        """
        _, simulator, _ = run(source, vm1, registers={
            "R1": 0xF0F0, "R2": 0x0FF0, "R3": 0xFF00, "R4": 0x00FF,
        })
        assert virtual32(simulator, "R1", "R2") == 0xF00000F0

    def test_complement(self, vm1):
        source = """
            program t;
            virtual D = R1 : R2;
            begin ~D -> D; end
        """
        _, simulator, _ = run(source, vm1, registers={"R1": 0, "R2": 1})
        assert virtual32(simulator, "R1", "R2") == 0xFFFFFFFE

    def test_scalar_zero_extended_into_virtual(self, vm1):
        source = """
            program t;
            virtual D = R1 : R2;
            begin D + R5 -> D; end
        """
        _, simulator, _ = run(source, vm1, registers={
            "R1": 0, "R2": 0xFFFF, "R5": 2,
        })
        assert virtual32(simulator, "R1", "R2") == 0x10001

    def test_constant_into_virtual(self, vm1):
        source = """
            program t;
            virtual D = R1 : R2;
            const BIG = 0x12345;
            begin BIG -> D; end
        """
        _, simulator, _ = run(source, vm1)
        assert virtual32(simulator, "R1", "R2") == 0x12345

    def test_virtual_equality_loop(self, vm1):
        """A 32-bit countdown: loops until the full pair is zero."""
        source = """
            program t;
            virtual D = R1 : R2;
            virtual ONE32 = R3 : R4;
            begin
                0 -> R5;
                while D # 0 do
                begin
                    D - ONE32 -> D;
                    R5 + ONE -> R5;
                end;
            end
        """
        _, simulator, _ = run(source, vm1, registers={
            "R1": 0x0001, "R2": 0x0002,   # D = 0x10002 iterations
            "R3": 0, "R4": 1,
        })
        # 0x10002 iterations is too slow to simulate; use a small D.
        _, simulator, _ = run(source, vm1, registers={
            "R1": 0, "R2": 5, "R3": 0, "R4": 1,
        })
        assert simulator.state.read_reg("R5") == 5
        assert virtual32(simulator, "R1", "R2") == 0

    def test_shift_on_virtual_rejected(self, vm1):
        with pytest.raises(SemanticError):
            compile_mpl("""
                program t;
                virtual D = R1 : R2;
                begin D ^ 1 -> D; end
            """, vm1)

    def test_virtual_needs_known_registers(self, vm1):
        with pytest.raises(SemanticError):
            compile_mpl("""
                program t;
                virtual D = QX : R2;
                begin D + D -> D; end
            """, vm1)


class TestArrays:
    def test_constant_and_register_index(self, vm1):
        source = """
            program t;
            array A[4];
            begin
                A[R5] -> R6;
                R6 + ONE -> R6;
                R6 -> A[0];
            end
        """
        _, simulator, _ = run(source, vm1, registers={"R5": 2},
                              memory={DATA_BASE + 2: 41})
        assert simulator.state.memory.dump_words(DATA_BASE, 1) == [42]

    def test_two_arrays_get_distinct_bases(self, vm1):
        source = """
            program t;
            array A[4];
            array B[4];
            begin
                R1 -> A[0];
                R2 -> B[0];
            end
        """
        _, simulator, _ = run(source, vm1, registers={"R1": 7, "R2": 9})
        assert simulator.state.memory.dump_words(DATA_BASE, 1) == [7]
        assert simulator.state.memory.dump_words(DATA_BASE + 4, 1) == [9]

    def test_constant_index_bounds_checked(self, vm1):
        with pytest.raises(SemanticError):
            compile_mpl(
                "program t; array A[4]; begin A[9] -> R1; end", vm1
            )

    def test_undeclared_array(self, vm1):
        with pytest.raises(SemanticError):
            compile_mpl("program t; begin A[0] -> R1; end", vm1)

    def test_virtual_to_element_rejected(self, vm1):
        with pytest.raises(SemanticError):
            compile_mpl("""
                program t;
                virtual D = R1 : R2;
                array A[4];
                begin D -> A[0]; end
            """, vm1)


class TestScalarsAndControl:
    def test_scalar_statements_like_simpl(self, vm1):
        source = """
            program t;
            begin
                R1 + R2 -> R3;
                R3 ^ 1 -> R4;
                ~R4 -> R5;
            end
        """
        _, simulator, _ = run(source, vm1, registers={"R1": 3, "R2": 4})
        assert simulator.state.read_reg("R3") == 7
        assert simulator.state.read_reg("R4") == 14
        assert simulator.state.read_reg("R5") == (~14) & 0xFFFF

    def test_if_else(self, vm1):
        source = """
            program t;
            begin
                if R1 = 0 then ONE -> R2;
                else R0 -> R2;
            end
        """
        _, simulator, _ = run(source, vm1, registers={"R1": 0})
        assert simulator.state.read_reg("R2") == 1
        _, simulator, _ = run(source, vm1, registers={"R1": 3})
        assert simulator.state.read_reg("R2") == 0

    def test_carry_chain_survives_composition(self, hm1):
        """On a horizontal machine the composer must keep the add/adc
        carry chain intact even while packing other work around it."""
        from repro.compose import ListScheduler

        source = """
            program t;
            virtual D = R1 : R2;
            virtual E = R3 : R4;
            begin
                D + E -> D;
                R5 & R6 -> R7;
                D + E -> D;
            end
        """
        result = compile_mpl(source, hm1, composer=ListScheduler())
        store = ControlStore(hm1)
        store.load(result.loaded)
        simulator = Simulator(hm1, store)
        for register, value in (("R1", 0), ("R2", 0x8001), ("R3", 0),
                                ("R4", 0xFFFF), ("R5", 6), ("R6", 3)):
            simulator.state.write_reg(register, value)
        simulator.run("t")
        expected = (0x8001 + 0xFFFF + 0xFFFF) & 0xFFFFFFFF
        assert virtual32(simulator, "R1", "R2") == expected
        assert simulator.state.read_reg("R7") == 2
