"""The YALLL ``par`` extension — the survey's §2.1.4 compromise.

"The programmer must denote which statements are not data dependent …
while it relieves the compiler from a non-trivial analysis" and §3:
"It may be worthwhile though to investigate further the compromise
suggested in section 2.1.4."  Implemented here as future work.
"""

import pytest

from repro.asm import ControlStore
from repro.errors import ParseError, SemanticError
from repro.lang.yalll import compile_yalll, parse_yalll
from repro.lang.yalll.ast import ParGroup
from repro.sim import Simulator

FOUR_WAY = """
reg x = R1
reg y = R2
par
    shl  t1,x,2
    and  t2,y,1
    move t3,x
    move t4,y
endpar
    add  r,t1,t2
    add  r,r,t3
    add  r,r,t4
    exit r
"""


def run(source, machine, **kwargs):
    result = compile_yalll(source, machine, name="par", **kwargs)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    mapping = result.allocation.mapping
    simulator.state.write_reg(mapping.get("x", "R1"), 12)
    simulator.state.write_reg(mapping.get("y", "R2"), 9)
    outcome = simulator.run("par")
    return outcome, result


class TestParser:
    def test_group_collected(self):
        program = parse_yalll(FOUR_WAY)
        groups = [item for item in program.items if isinstance(item, ParGroup)]
        assert len(groups) == 1
        assert [m.opcode for m in groups[0].members] == [
            "shl", "and", "move", "move"
        ]

    def test_unterminated_par(self):
        with pytest.raises(ParseError):
            parse_yalll("par\n put a,1\n")

    def test_control_flow_inside_par_rejected(self):
        with pytest.raises(ParseError):
            parse_yalll("par\n jump somewhere\nendpar\nsomewhere: exit\n")


class TestIndependenceCheck:
    def test_flow_dependent_members_rejected(self, hm1):
        source = "par\n put a,1\n add b,a,a\nendpar\nexit b\n"
        with pytest.raises(SemanticError):
            compile_yalll(source, hm1)

    def test_output_dependent_members_rejected(self, hm1):
        source = "par\n put a,1\n put a,2\nendpar\nexit a\n"
        with pytest.raises(SemanticError):
            compile_yalll(source, hm1)

    def test_memory_conflict_rejected(self, hm1):
        source = """
            put p,100
            put q,200
par
            load a,p
            stor a2,q
endpar
            exit a
        """
        # stor writes memory while load reads it: not independent
        # (also both fight over MAR/MBR).
        with pytest.raises(SemanticError):
            compile_yalll(source, hm1)

    def test_independent_members_accepted(self, hm1):
        compile_yalll(FOUR_WAY, hm1)


class TestParallelismRealized:
    def test_semantics(self, hm1):
        outcome, _ = run(FOUR_WAY, hm1)
        assert outcome.exit_value == (12 << 2) + (9 & 1) + 12 + 9

    def test_group_packs_into_one_word(self, hm1):
        """Four members on four different units: with par-aware
        allocation the whole group fits one microinstruction."""
        _, result = run(FOUR_WAY, hm1)
        composed = result.composed
        # Find the word holding the shl: its instruction must also
        # contain the and, put and move.
        for block in composed.blocks.values():
            for instruction in block.instructions:
                ops = sorted(p.op.op for p in instruction.placed)
                if "shl" in ops:
                    assert ops == ["and", "mov", "mov", "shl"]
                    return
        pytest.fail("shl word not found")

    def test_allocator_is_par_aware_by_default(self, hm1):
        _, result = run(FOUR_WAY, hm1)
        assert result.allocation.allocator == "graph-color"
        temps = [result.allocation.mapping[f"t{i}"] for i in (1, 2, 3, 4)]
        assert len(set(temps)) == 4  # all distinct registers

    def test_par_on_vertical_machine_still_correct(self, vm1):
        """On VM1 nothing can pack, but the program stays correct."""
        outcome, _ = run(FOUR_WAY, vm1)
        assert outcome.exit_value == (12 << 2) + (9 & 1) + 12 + 9
