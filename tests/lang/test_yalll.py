"""YALLL front end: parser, codegen, both historical back ends."""

import pytest

from repro.asm import ControlStore
from repro.errors import ParseError, SemanticError
from repro.lang.yalll import compile_yalll, parse_yalll
from repro.lang.yalll.ast import Binding, Instruction, JumpInstr, MJumpInstr
from repro.sim import Simulator


def run(source, machine, registers=None, memory=None, name="t", **kwargs):
    result = compile_yalll(source, machine, name=name, **kwargs)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    mapping = result.allocation.mapping
    for variable, value in (registers or {}).items():
        simulator.state.write_reg(mapping.get(variable, variable), value)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    outcome = simulator.run(name)
    return outcome, simulator, result


class TestParser:
    def test_paper_example_parses(self):
        program = parse_yalll("""
            reg str = db
            reg tbl = sb
            reg char = mbr
            loop:
                load char,str
                jump out if char = 0
                add  mar,char,tbl
                load char,mar
                stor char,str
                add  str,str,1
                jump loop
            out: exit
        """)
        assert program.bindings == {"str": "db", "tbl": "sb", "char": "mbr"}
        assert "loop" in program.labels() and "out" in program.labels()

    def test_all_instruction_forms(self):
        program = parse_yalll("""
            add a,b,c
            sub a,b,2
            and a,b,c
            inc a,b
            not a,b
            shl a,b,3
            put a,0x1F
            load a,b
            stor a,b
            move a,b
            poll
            call p
            ret
            exit a
        """)
        opcodes = [i.opcode for i in program.items if isinstance(i, Instruction)]
        assert opcodes == ["add", "sub", "and", "inc", "not", "shl", "put",
                           "load", "stor", "move"]

    def test_mjump_masks(self):
        program = parse_yalll(
            "mjump r (10x1 -> a, 0b1100 -> b, default -> c)\n"
            "a: exit\nb: exit\nc: exit\n"
        )
        mjump = next(i for i in program.items if isinstance(i, MJumpInstr))
        assert [arm.mask for arm in mjump.arms] == ["10x1", "1100"]
        assert mjump.default == "c"

    def test_mjump_requires_default(self):
        with pytest.raises(ParseError):
            parse_yalll("mjump r (1 -> a)\na: exit\n")

    def test_flag_condition(self):
        program = parse_yalll("jump x if carry\nx: exit\n")
        jump = next(i for i in program.items if isinstance(i, JumpInstr))
        assert jump.condition.flag == "C"

    def test_bad_mask_rejected(self):
        with pytest.raises(ParseError):
            parse_yalll("mjump r (hello -> a, default -> b)\na: exit\nb: exit\n")

    def test_unknown_instruction(self):
        with pytest.raises(ParseError):
            parse_yalll("frobnicate a,b\n")

    def test_comments_ignored(self):
        program = parse_yalll("; nothing\nexit ; trailing\n")
        assert len(program.items) == 1


class TestSemantics:
    def test_label_as_register_rejected(self, hp300):
        with pytest.raises(SemanticError):
            compile_yalll("here: move here,x\n", hp300)

    def test_unknown_binding_target(self, hp300):
        with pytest.raises(SemanticError):
            compile_yalll("reg a = zork\nmove a,a\n", hp300)

    def test_fall_into_procedure_from_procedure(self, hp300):
        source = "exit\nproc p:\n  inc a,a\nproc q:\n  ret\n"
        with pytest.raises(SemanticError):
            compile_yalll(source, hp300)


class TestExecution:
    @pytest.mark.parametrize("relop,x,expected", [
        ("=", 5, 1), ("=", 4, 0),
        ("#", 5, 0), ("#", 4, 1),
        ("<", 3, 1), ("<", 5, 0), ("<", 7, 0),
        (">=", 5, 1), (">=", 7, 1), (">=", 3, 0),
        ("<=", 5, 1), ("<=", 3, 1), ("<=", 7, 0),
        (">", 7, 1), (">", 5, 0), (">", 3, 0),
    ])
    def test_all_relops(self, hp300, relop, x, expected):
        source = f"""
            put r,0
            jump yes if x {relop} 5
            exit r
        yes:
            put r,1
            exit r
        """
        outcome, _, _ = run(source, hp300, registers={"x": x})
        assert outcome.exit_value == expected

    def test_procedures(self, hp300):
        source = """
            put a,5
            call double
            call double
            exit a
        proc double:
            add a,a,a
            ret
        """
        outcome, _, _ = run(source, hp300)
        assert outcome.exit_value == 20

    def test_poll_generates_poll_op(self, hp300):
        result = compile_yalll("poll\nexit\n", hp300)
        ops = [op.op for block in result.mir.blocks.values() for op in block.ops]
        assert "poll" in ops

    def test_mjump_execution(self, hm1):
        source = """
            mjump x (0000 -> zero, 00x1 -> oddish, default -> other)
        zero:  put r,1
               exit r
        oddish: put r,2
               exit r
        other: put r,3
               exit r
        """
        assert run(source, hm1, registers={"x": 0})[0].exit_value == 1
        assert run(source, hm1, registers={"x": 1})[0].exit_value == 2
        assert run(source, hm1, registers={"x": 3})[0].exit_value == 2
        assert run(source, hm1, registers={"x": 8})[0].exit_value == 3

    def test_mjump_lowered_on_vax(self, vax):
        source = """
            mjump x (0001 -> one, default -> other)
        one:   put r,1
               exit r
        other: put r,2
               exit r
        """
        assert run(source, vax, registers={"x": 1})[0].exit_value == 1
        assert run(source, vax, registers={"x": 5})[0].exit_value == 2

    def test_memory_round_trip(self, hp300):
        source = """
            put addr,100
            load v,addr
            add v,v,1
            stor v,addr
            exit v
        """
        outcome, simulator, _ = run(source, hp300, memory={100: 41})
        assert outcome.exit_value == 42
        assert simulator.state.memory.dump_words(100, 1) == [42]


class TestTwoMachines:
    TRANSLIT_BODY = """
    loop:
        load char,str
        jump out if char = 0
        add  mar,char,tbl
        load char,mar
        stor char,str
        add  str,str,1
        jump loop
    out: exit
    """

    def setup_memory(self, simulator):
        simulator.state.memory.load_words(100, [1, 2, 3, 0])
        for value in range(16):
            simulator.state.memory.load_words(200 + value, [value + 10])

    def translit_on(self, machine, source, optimize, reg_names):
        result = compile_yalll(source, machine, name="translit",
                               optimize=optimize)
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(machine, store)
        self.setup_memory(simulator)
        simulator.state.write_reg(reg_names[0], 100)
        simulator.state.write_reg(reg_names[1], 200)
        outcome = simulator.run("translit")
        assert simulator.state.memory.dump_words(100, 4) == [11, 12, 13, 0]
        return outcome, result

    def test_hp_beats_vax(self, hp300, vax):
        """The survey's headline YALLL result (§2.2.4)."""
        hp_source = "reg str = db\nreg tbl = sb\nreg char = mbr\n" + self.TRANSLIT_BODY
        vax_source = "reg str = T4\nreg tbl = T5\nreg char = mbr\n" + self.TRANSLIT_BODY
        hp_outcome, hp_result = self.translit_on(hp300, hp_source, True, ("db", "sb"))
        vax_outcome, vax_result = self.translit_on(vax, vax_source, False, ("T4", "T5"))
        assert hp_outcome.cycles < vax_outcome.cycles
        assert len(hp_result.loaded) < len(vax_result.loaded)

    def test_same_source_symbolic_runs_everywhere(self, all_machines):
        for machine in all_machines:
            if not machine.has_multiway_branch and machine.name == "VM1":
                pass  # translit has no mjump; fine everywhere
            result = compile_yalll(self.TRANSLIT_BODY, machine, name="translit")
            store = ControlStore(machine)
            store.load(result.loaded)
            simulator = Simulator(machine, store)
            self.setup_memory(simulator)
            mapping = result.allocation.mapping
            simulator.state.write_reg(mapping["str"], 100)
            simulator.state.write_reg(mapping["tbl"], 200)
            simulator.run("translit")
            assert simulator.state.memory.dump_words(100, 4) == [11, 12, 13, 0], machine.name
