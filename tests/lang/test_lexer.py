"""The shared lexer toolkit."""

import pytest

from repro.errors import LexError, ParseError
from repro.lang.common.lexer import EOF, NEWLINE, Lexer, LexerSpec


def make_lexer(**overrides):
    spec = LexerSpec(
        patterns=[
            (None, r"[ \t]+"),
            ("NUMBER", r"[0-9]+"),
            ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
            ("PLUS", r"\+"),
        ],
        keywords={"begin", "end"},
        keywords_case_insensitive=True,
        **overrides,
    )
    return Lexer(spec)


class TestTokenization:
    def test_basic(self):
        stream = make_lexer().tokenize("abc 12 +")
        types = []
        while not stream.at_end():
            types.append(stream.advance().type)
        assert types == ["IDENT", "NUMBER", "PLUS"]

    def test_keywords_case_insensitive(self):
        stream = make_lexer().tokenize("BEGIN x End")
        assert stream.advance().type == "BEGIN"
        assert stream.advance().type == "IDENT"
        assert stream.advance().type == "END"

    def test_positions(self):
        stream = make_lexer().tokenize("a\n  b")
        first = stream.advance()
        second = stream.advance()
        assert (first.line, first.column) == (1, 1)
        assert (second.line, second.column) == (2, 3)

    def test_unknown_character(self):
        with pytest.raises(LexError):
            make_lexer().tokenize("a @ b")

    def test_eof_token(self):
        stream = make_lexer().tokenize("")
        assert stream.current.type == EOF
        assert stream.at_end()

    def test_line_comments(self):
        lexer = make_lexer(line_comment=";")
        stream = lexer.tokenize("a ; this is noise\nb")
        assert stream.advance().value == "a"
        assert stream.advance().value == "b"

    def test_block_comments_track_lines(self):
        lexer = make_lexer(block_comment=("/*", "*/"))
        stream = lexer.tokenize("a /* one\ntwo */ b")
        stream.advance()
        assert stream.advance().line == 2

    def test_unterminated_block_comment(self):
        lexer = make_lexer(block_comment=("/*", "*/"))
        with pytest.raises(LexError):
            lexer.tokenize("a /* never closed")

    def test_newlines_kept_when_requested(self):
        lexer = make_lexer(keep_newlines=True)
        stream = lexer.tokenize("a\nb")
        assert stream.advance().type == "IDENT"
        assert stream.advance().type == NEWLINE
        assert stream.advance().type == "IDENT"

    def test_consecutive_newlines_collapse(self):
        lexer = make_lexer(keep_newlines=True)
        stream = lexer.tokenize("a\n\n\nb")
        stream.advance()
        assert stream.advance().type == NEWLINE
        assert stream.advance().type == "IDENT"


class TestStream:
    def test_expect_success_and_failure(self):
        stream = make_lexer().tokenize("a 1")
        assert stream.expect("IDENT").value == "a"
        with pytest.raises(ParseError):
            stream.expect("IDENT")

    def test_accept_returns_none(self):
        stream = make_lexer().tokenize("1")
        assert stream.accept("IDENT") is None
        assert stream.accept("NUMBER").value == "1"

    def test_peek_does_not_consume(self):
        stream = make_lexer().tokenize("a b")
        assert stream.peek(1).value == "b"
        assert stream.current.value == "a"

    def test_peek_past_end_is_eof(self):
        stream = make_lexer().tokenize("a")
        assert stream.peek(10).type == EOF
