"""Hot-path analysis: CFG reconstruction, loops, traces, rendering."""

from repro.asm import ControlStore
from repro.lang.yalll import compile_yalll
from repro.obs import (
    Counters,
    SimProfile,
    TraceRecorder,
    analyze_profile,
    render_hot_traces,
)
from repro.sim import Simulator

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

YALLL_NESTED = """
    put total,0
outer:
    jump done if rows = 0
    put n,3
inner:
    jump next if n = 0
    add total,total,rows
    sub n,n,1
    jump inner
next:
    sub rows,rows,1
    jump outer
done:
    exit total
"""


def profiled_run(machine, source, *, registers, name="prog"):
    result = compile_yalll(source, machine, name=name)
    store = ControlStore(machine)
    store.load(result.loaded)
    recorder = TraceRecorder()
    simulator = Simulator(machine, store, recorder=recorder,
                          engine="decoded")
    mapping = result.allocation.mapping
    for var, value in registers.items():
        simulator.state.write_reg(mapping.get(var, var), value)
    simulator.run(name)
    return recorder.profile


def synthetic_loop_profile() -> SimProfile:
    """Entry 0 -> loop {1,2,3} x10 -> exit 4, by hand."""
    return SimProfile(
        program="toy",
        machine="HM1",
        entry=0,
        exec_counts=Counters({0: 1, 1: 11, 2: 10, 3: 10, 4: 1}),
        cycle_counts=Counters({0: 1, 1: 11, 2: 20, 3: 10, 4: 1}),
        edge_counts=Counters({
            (0, 1): 1, (1, 2): 10, (2, 3): 10, (3, 1): 10, (1, 4): 1,
        }),
        mi_text={0: "init", 1: "test", 2: "work", 3: "step", 4: "exit"},
        instructions=33,
        busy_cycles=43,
    )


class TestSyntheticCfg:
    def test_loop_detected_with_back_edge(self):
        analysis = analyze_profile(synthetic_loop_profile())
        assert len(analysis.loops) == 1
        loop = analysis.loops[0]
        assert loop.header == 1
        assert loop.body == frozenset({1, 2, 3})
        assert loop.back_edges == ((3, 1),)
        assert loop.iterations == 10
        assert loop.depth == 0

    def test_trace_path_follows_hot_successors(self):
        analysis = analyze_profile(synthetic_loop_profile())
        trace = analysis.hottest()
        assert trace.path == (1, 2, 3)
        assert trace.cycles == 41
        assert 0.95 < trace.cycle_share < 0.96
        assert trace.coverage == trace.cycle_share

    def test_basic_blocks_split_at_join_and_branch(self):
        analysis = analyze_profile(synthetic_loop_profile())
        starts = {b.start: b for b in analysis.blocks}
        # 1 is a join (preds 0 and 3) and a branch (succs 2 and 4).
        assert set(starts) == {0, 1, 2, 4}
        assert starts[2].addresses == (2, 3)
        assert starts[2].cycles == 30
        assert starts[0].addresses == (0,)

    def test_straight_line_profile_has_no_loops(self):
        profile = SimProfile(
            entry=0,
            exec_counts=Counters({0: 1, 1: 1}),
            cycle_counts=Counters({0: 1, 1: 1}),
            edge_counts=Counters({(0, 1): 1}),
            instructions=2, busy_cycles=2,
        )
        analysis = analyze_profile(profile)
        assert analysis.loops == []
        assert analysis.hottest() is None
        assert "no loops detected" in render_hot_traces(analysis)

    def test_empty_profile_analyzes_to_nothing(self):
        analysis = analyze_profile(SimProfile())
        assert analysis.blocks == [] and analysis.traces == []


class TestRealRuns:
    def test_mul_loop_dominates_cycles(self, hm1):
        profile = profiled_run(
            hm1, YALLL_MUL, registers={"a": 3, "n": 50}, name="mul"
        )
        analysis = analyze_profile(profile)
        trace = analysis.hottest()
        assert trace is not None
        assert trace.iterations == 50
        # The acceptance bar: the inner loop owns >=80% of the run.
        assert trace.cycle_share >= 0.8
        assert trace.header in trace.body
        for a, b in zip(trace.path, trace.path[1:]):
            assert profile.edge_counts.get((a, b)) > 0

    def test_nested_loops_get_depths(self, hm1):
        profile = profiled_run(
            hm1, YALLL_NESTED, registers={"rows": 4}, name="nested"
        )
        analysis = analyze_profile(profile)
        depths = sorted(loop.depth for loop in analysis.loops)
        assert depths == [0, 1]
        inner = next(l for l in analysis.loops if l.depth == 1)
        outer = next(l for l in analysis.loops if l.depth == 0)
        assert inner.body < outer.body
        assert inner.iterations == 12  # 4 rows x 3 inner steps
        assert outer.iterations == 4
        # Trace cycles cover the whole body (nested loops included),
        # so the outer region ranks first: compiling it captures more.
        assert analysis.traces[0].header == outer.header
        assert analysis.traces[0].cycles >= analysis.traces[1].cycles

    def test_analysis_is_pure_function_of_profile(self, hm1):
        profile = profiled_run(
            hm1, YALLL_MUL, registers={"a": 3, "n": 20}, name="mul"
        )
        replayed = SimProfile.from_json(profile.to_json())
        assert analyze_profile(profile).to_json() == \
            analyze_profile(replayed).to_json()

    def test_interpretive_and_decoded_profiles_agree(self, hm1):
        result = compile_yalll(YALLL_MUL, hm1, name="mul")
        analyses = []
        for engine in ("interpretive", "decoded"):
            store = ControlStore(hm1)
            store.load(result.loaded)
            recorder = TraceRecorder()
            simulator = Simulator(hm1, store, recorder=recorder,
                                  engine=engine)
            mapping = result.allocation.mapping
            simulator.state.write_reg(mapping["a"], 3)
            simulator.state.write_reg(mapping["n"], 25)
            simulator.run("mul")
            analyses.append(analyze_profile(recorder.profile).to_json())
        assert analyses[0] == analyses[1]


class TestRendering:
    def test_render_lists_ranked_traces(self):
        analysis = analyze_profile(synthetic_loop_profile())
        text = render_hot_traces(analysis, loops=True)
        assert "#1 loop@0001" in text
        assert "10 iterations" in text
        assert "path: 0001 -> 0002 -> 0003 -> 0001" in text
        assert "loop forest:" in text
        assert "work" in text  # mi_text shown per path address

    def test_to_json_is_deterministic(self):
        a = analyze_profile(synthetic_loop_profile()).to_json()
        b = analyze_profile(synthetic_loop_profile()).to_json()
        assert a == b
        assert a["traces"][0]["header"] == 1
