"""Counters and the per-stage compile-time breakdown."""

from repro.obs import Counters, Tracer, stage_breakdown
from repro.obs.events import PH_COMPLETE, TRACK_SIM, Event


class TestCounters:
    def test_inc_and_get(self):
        counters = Counters()
        counters.inc("a")
        counters.inc("a", 2)
        counters.inc("b", 5)
        assert counters.get("a") == 3
        assert counters.get("b") == 5
        assert counters.get("missing") == 0
        assert counters.total() == 8
        assert len(counters) == 2
        assert bool(counters)

    def test_top_ranks_descending_with_stable_ties(self):
        counters = Counters({"x": 1, "y": 3, "z": 3, "w": 2})
        assert counters.top(3) == [("y", 3), ("z", 3), ("w", 2)]

    def test_merge(self):
        left = Counters({"a": 1})
        right = Counters({"a": 2, "b": 4})
        left.merge(right)
        assert left.as_dict() == {"a": 3, "b": 4}

    def test_empty_is_falsy(self):
        assert not Counters()


class TestStageBreakdown:
    def test_orders_by_start_time_and_fractions_from_root(self):
        tracer = Tracer()
        with tracer.span("compile"):
            with tracer.span("parse"):
                pass
            with tracer.span("compose"):
                pass
        rows = stage_breakdown(tracer.events)
        assert [r.name for r in rows] == ["compile", "parse", "compose"]
        assert rows[0].depth == 0
        assert rows[0].fraction == 1.0
        assert all(0.0 <= r.fraction <= 1.0 for r in rows)
        assert rows[1].micros + rows[2].micros <= rows[0].micros + 1e-6

    def test_ignores_simulator_track_and_instants(self):
        tracer = Tracer()
        with tracer.span("compile"):
            tracer.instant("compose.place", word=0)
        tracer.emit(Event(name="mi@0001", cat="sim", ph=PH_COMPLETE,
                          ts=0, dur=3, track=TRACK_SIM))
        rows = stage_breakdown(tracer.events)
        assert [r.name for r in rows] == ["compile"]

    def test_category_prefix_filter(self):
        tracer = Tracer()
        with tracer.span("compose b0", cat="compose"):
            pass
        with tracer.span("parse", cat="compile"):
            pass
        rows = stage_breakdown(tracer.events, cat_prefix="compose")
        assert [r.name for r in rows] == ["compose b0"]

    def test_empty_events(self):
        assert stage_breakdown([]) == []
