"""Exporters: JSON-lines round-trip, Chrome trace shape, text reports."""

import json

from repro.obs import (
    CampaignMetrics,
    Counters,
    Event,
    SimProfile,
    Tracer,
    dump_chrome_trace,
    dump_flamegraph,
    dump_jsonl,
    load_jsonl,
    render_compile_report,
    render_heat,
    render_hotspots,
    to_chrome_trace,
    to_collapsed_stacks,
    to_prometheus,
    write_trace,
)
from repro.obs.events import PH_COMPLETE, PH_INSTANT, TRACK_SIM


def loop_profile() -> SimProfile:
    """Entry 0, loop {1,2} x5, exit 3."""
    return SimProfile(
        program="mul",
        machine="HM1",
        entry=0,
        exec_counts=Counters({0: 1, 1: 6, 2: 5, 3: 1}),
        cycle_counts=Counters({0: 2, 1: 6, 2: 10, 3: 1}),
        edge_counts=Counters({(0, 1): 1, (1, 2): 5, (2, 1): 5, (1, 3): 1}),
        mi_text={0: "init", 1: "test; br", 2: "add ; jump", 3: "exit"},
        instructions=13,
        busy_cycles=19,
        decodes=4,
    )


def sample_events():
    tracer = Tracer()
    with tracer.span("compile", machine="HM1") as span:
        with tracer.span("parse"):
            pass
        span.set(words=4)
    tracer.emit(Event(name="mi@0000", cat="sim", ph=PH_COMPLETE,
                      ts=0, dur=2, track=TRACK_SIM, args={"mi": "add"}))
    tracer.emit(Event(name="run p", cat="sim", ph=PH_INSTANT,
                      ts=0, track=TRACK_SIM))
    return tracer.events


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        events = sample_events()
        path = tmp_path / "events.jsonl"
        dump_jsonl(events, path)
        assert load_jsonl(path) == events

    def test_one_json_object_per_line(self, tmp_path):
        events = sample_events()
        path = tmp_path / "events.jsonl"
        dump_jsonl(events, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(events)
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_shape(self):
        trace = to_chrome_trace(sample_events())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        records = trace["traceEvents"]
        # One thread_name metadata record per track, in first-use order.
        meta = [r for r in records if r["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["compile", "sim"]
        tids = {m["args"]["name"]: m["tid"] for m in meta}
        assert tids["compile"] != tids["sim"]
        for record in records:
            assert record["pid"] == 1
            if record["ph"] == "X":
                assert "dur" in record
            if record["ph"] == "i":
                assert record["s"] == "t"
        spans = [r for r in records if r["ph"] == "X"]
        assert {s["tid"] for s in spans} == set(tids.values())

    def test_dump_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_chrome_trace(sample_events(), path)
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        events = sample_events()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        write_trace(events, chrome)
        write_trace(events, jsonl)
        assert "traceEvents" in json.loads(chrome.read_text())
        assert load_jsonl(jsonl) == events


class TestTextReports:
    def test_hotspot_report(self):
        profile = SimProfile(program="p", machine="HM1")
        profile.exec_counts.inc(3, 10)
        profile.cycle_counts.inc(3, 30)
        profile.mi_text[3] = "add r1,r1,r2"
        profile.instructions = 10
        profile.busy_cycles = 30
        profile.field_util.inc("alu", 10)
        text = render_hotspots(profile)
        assert "p on HM1" in text
        assert "add r1,r1,r2" in text
        assert "100.0%" in text
        assert "alu 100%" in text

    def test_compile_report(self):
        text = render_compile_report(sample_events())
        assert "compile-time breakdown" in text
        assert "parse" in text
        assert "100.0%" in text
        assert "words=4" in text

    def test_compile_report_without_spans(self):
        assert render_compile_report([]) == "no compile spans recorded"

    def test_hotspots_tie_break_is_numeric_address_order(self):
        profile = SimProfile()
        # Equal cycles at addresses 2 and 10: numeric order, not the
        # lexicographic "10" < "2".
        for address in (10, 2):
            profile.exec_counts.inc(address)
            profile.cycle_counts.inc(address, 7)
        spots = profile.hotspots()
        assert [s[0] for s in spots] == [2, 10]


class TestPrometheus:
    def test_profile_counter_families(self):
        text = to_prometheus(loop_profile())
        assert "# TYPE repro_sim_instructions_total counter" in text
        assert ('repro_sim_instructions_total'
                '{machine="HM1",program="mul"} 13') in text
        assert ('repro_sim_address_cycles_total'
                '{address="2",machine="HM1",program="mul"} 10') in text
        assert text.endswith("\n")

    def test_rollup_families(self):
        rollup = CampaignMetrics(runs=3, profile=loop_profile())
        rollup.classifications.inc("masked", 2)
        rollup.difftest.inc("cases", 5)
        rollup.plan_cache.inc("hits", 9)
        text = to_prometheus(rollup)
        assert "repro_campaign_runs_total 3" in text
        assert ('repro_campaign_outcomes_total'
                '{classification="masked"} 2') in text
        assert 'repro_difftest_total{kind="cases"} 5' in text
        assert 'repro_plan_cache_total{event="hits"} 9' in text
        assert 'repro_compile_cache_total{event="hits"} 0' in text
        assert "hit_rate" not in text

    def test_deterministic_output(self):
        assert to_prometheus(loop_profile()) == to_prometheus(loop_profile())

    def test_label_escaping(self):
        profile = loop_profile()
        profile.program = 'a"b\\c'
        text = to_prometheus(profile)
        assert 'program="a\\"b\\\\c"' in text


class TestCollapsedStacks:
    def test_loop_nesting_becomes_stack(self):
        text = to_collapsed_stacks(loop_profile())
        lines = text.strip().splitlines()
        # Loop members stack under the loop@ frame, others under root.
        assert "mul;loop@0001;0002 add , jump 10" in lines
        assert "mul;0000 init 2" in lines
        # Semicolons in mi text are escaped (frame separator).
        assert any("test, br" in line for line in lines)
        assert lines == sorted(lines)

    def test_exec_count_values(self):
        text = to_collapsed_stacks(loop_profile(), cycles=False)
        assert "mul;loop@0001;0002 add , jump 5" in text

    def test_dump_writes_file(self, tmp_path):
        path = tmp_path / "stacks.txt"
        dump_flamegraph(loop_profile(), path)
        assert path.read_text() == to_collapsed_stacks(loop_profile())

    def test_empty_profile_collapses_to_nothing(self):
        assert to_collapsed_stacks(SimProfile()) == ""


class TestHeatReport:
    def test_rows_markers_and_bars(self):
        text = render_heat(loop_profile())
        lines = text.splitlines()
        assert "mul on HM1" in lines[0]
        row2 = next(line for line in lines if line.strip().startswith("2 "))
        assert "·" in row2       # inside the loop
        assert "#" in row2       # heat bar
        assert "add ; jump" in row2
        row0 = next(line for line in lines if line.strip().startswith("0 "))
        assert "·" not in row0   # outside every loop

    def test_deterministic(self):
        assert render_heat(loop_profile()) == render_heat(loop_profile())
