"""Exporters: JSON-lines round-trip, Chrome trace shape, text reports."""

import json

from repro.obs import (
    Event,
    SimProfile,
    Tracer,
    dump_chrome_trace,
    dump_jsonl,
    load_jsonl,
    render_compile_report,
    render_hotspots,
    to_chrome_trace,
    write_trace,
)
from repro.obs.events import PH_COMPLETE, PH_INSTANT, TRACK_SIM


def sample_events():
    tracer = Tracer()
    with tracer.span("compile", machine="HM1") as span:
        with tracer.span("parse"):
            pass
        span.set(words=4)
    tracer.emit(Event(name="mi@0000", cat="sim", ph=PH_COMPLETE,
                      ts=0, dur=2, track=TRACK_SIM, args={"mi": "add"}))
    tracer.emit(Event(name="run p", cat="sim", ph=PH_INSTANT,
                      ts=0, track=TRACK_SIM))
    return tracer.events


class TestJsonl:
    def test_round_trip_is_lossless(self, tmp_path):
        events = sample_events()
        path = tmp_path / "events.jsonl"
        dump_jsonl(events, path)
        assert load_jsonl(path) == events

    def test_one_json_object_per_line(self, tmp_path):
        events = sample_events()
        path = tmp_path / "events.jsonl"
        dump_jsonl(events, path)
        lines = path.read_text().strip().splitlines()
        assert len(lines) == len(events)
        for line in lines:
            json.loads(line)


class TestChromeTrace:
    def test_shape(self):
        trace = to_chrome_trace(sample_events())
        assert set(trace) == {"traceEvents", "displayTimeUnit"}
        records = trace["traceEvents"]
        # One thread_name metadata record per track, in first-use order.
        meta = [r for r in records if r["ph"] == "M"]
        assert [m["args"]["name"] for m in meta] == ["compile", "sim"]
        tids = {m["args"]["name"]: m["tid"] for m in meta}
        assert tids["compile"] != tids["sim"]
        for record in records:
            assert record["pid"] == 1
            if record["ph"] == "X":
                assert "dur" in record
            if record["ph"] == "i":
                assert record["s"] == "t"
        spans = [r for r in records if r["ph"] == "X"]
        assert {s["tid"] for s in spans} == set(tids.values())

    def test_dump_is_valid_json(self, tmp_path):
        path = tmp_path / "trace.json"
        dump_chrome_trace(sample_events(), path)
        trace = json.loads(path.read_text())
        assert trace["traceEvents"]

    def test_write_trace_dispatches_on_extension(self, tmp_path):
        events = sample_events()
        chrome = tmp_path / "t.json"
        jsonl = tmp_path / "t.jsonl"
        write_trace(events, chrome)
        write_trace(events, jsonl)
        assert "traceEvents" in json.loads(chrome.read_text())
        assert load_jsonl(jsonl) == events


class TestTextReports:
    def test_hotspot_report(self):
        profile = SimProfile(program="p", machine="HM1")
        profile.exec_counts.inc(3, 10)
        profile.cycle_counts.inc(3, 30)
        profile.mi_text[3] = "add r1,r1,r2"
        profile.instructions = 10
        profile.busy_cycles = 30
        profile.field_util.inc("alu", 10)
        text = render_hotspots(profile)
        assert "p on HM1" in text
        assert "add r1,r1,r2" in text
        assert "100.0%" in text
        assert "alu 100%" in text

    def test_compile_report(self):
        text = render_compile_report(sample_events())
        assert "compile-time breakdown" in text
        assert "parse" in text
        assert "100.0%" in text
        assert "words=4" in text

    def test_compile_report_without_spans(self):
        assert render_compile_report([]) == "no compile spans recorded"
