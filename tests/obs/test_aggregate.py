"""Merge laws for shard-mergeable metrics, and shard byte-identity."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import CacheStats
from repro.faults.campaign import run_campaign
from repro.machine.machines import build_cm1, build_hm1
from repro.obs import (
    CampaignMetrics,
    Counters,
    SimProfile,
    merge_cache_stats,
    merge_profiles,
)

# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
addresses = st.integers(min_value=0, max_value=40)
counts = st.integers(min_value=1, max_value=1_000)


def counters(keys=addresses):
    return st.dictionaries(keys, counts, max_size=8).map(Counters)


edge_keys = st.tuples(addresses, addresses)

profiles = st.builds(
    SimProfile,
    program=st.sampled_from(["", "mul", "memloop"]),
    machine=st.sampled_from(["", "HM1", "CM1"]),
    entry=st.one_of(st.none(), addresses),
    exec_counts=counters(),
    cycle_counts=counters(),
    edge_counts=counters(edge_keys),
    field_util=counters(st.sampled_from(["alu", "seq", "mem"])),
    mi_text=st.dictionaries(
        addresses, st.sampled_from(["add", "sub", "jump"]), max_size=4
    ),
    instructions=st.integers(min_value=0, max_value=10_000),
    busy_cycles=st.integers(min_value=0, max_value=10_000),
    trap_cycles=st.integers(min_value=0, max_value=500),
    interrupt_cycles=st.integers(min_value=0, max_value=500),
    polls=st.integers(min_value=0, max_value=100),
    traps=st.integers(min_value=0, max_value=100),
    interrupts=st.integers(min_value=0, max_value=100),
    decodes=st.integers(min_value=0, max_value=100),
)

cache_stats = st.builds(
    CacheStats,
    hits=st.integers(min_value=0, max_value=100),
    misses=st.integers(min_value=0, max_value=100),
    disk_hits=st.integers(min_value=0, max_value=100),
    evictions=st.integers(min_value=0, max_value=100),
    corrupt=st.integers(min_value=0, max_value=100),
)

classifications = st.sampled_from(
    ["masked", "recovered", "sdc", "detected", "hang"]
)

metrics = st.builds(
    CampaignMetrics,
    runs=st.integers(min_value=0, max_value=100),
    profile=profiles,
    classifications=counters(classifications),
    difftest=counters(st.sampled_from(["cases", "pairs.engine"])),
    cache=cache_stats,
    plan_cache=counters(st.sampled_from(["hits", "misses"])),
)


# ----------------------------------------------------------------------
class TestProfileMergeLaws:
    @given(a=profiles, b=profiles)
    @settings(max_examples=60, deadline=None)
    def test_commutative(self, a, b):
        assert merge_profiles(a, b) == merge_profiles(b, a)

    @given(a=profiles)
    @settings(max_examples=60, deadline=None)
    def test_identity(self, a):
        empty = SimProfile()
        assert merge_profiles(a, empty) == a
        assert merge_profiles(empty, a) == a

    @given(a=profiles, b=profiles, c=profiles)
    @settings(max_examples=60, deadline=None)
    def test_associative(self, a, b, c):
        left = merge_profiles(merge_profiles(a, b), c)
        right = merge_profiles(a, merge_profiles(b, c))
        assert left == right

    @given(a=profiles, b=profiles)
    @settings(max_examples=30, deadline=None)
    def test_merge_is_pure(self, a, b):
        before = a.to_json()
        merge_profiles(a, b)
        assert a.to_json() == before

    @given(a=profiles, b=profiles)
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip_commutes_with_merge(self, a, b):
        merged = merge_profiles(a, b)
        assert SimProfile.from_json(merged.to_json()) == merged


class TestMetricsMergeLaws:
    @given(a=metrics, b=metrics)
    @settings(max_examples=40, deadline=None)
    def test_commutative(self, a, b):
        assert a.merge(b).to_json() == b.merge(a).to_json()

    @given(a=metrics)
    @settings(max_examples=40, deadline=None)
    def test_identity(self, a):
        assert a.merge(CampaignMetrics()).to_json() == a.to_json()

    @given(a=metrics, b=metrics, c=metrics)
    @settings(max_examples=40, deadline=None)
    def test_associative(self, a, b, c):
        assert a.merge(b).merge(c).to_json() == a.merge(b.merge(c)).to_json()

    @given(parts=st.lists(metrics, max_size=4))
    @settings(max_examples=30, deadline=None)
    def test_merged_fold_equals_pairwise(self, parts):
        rollup = CampaignMetrics()
        for part in parts:
            rollup = rollup.merge(part)
        assert CampaignMetrics.merged(parts).to_json() == rollup.to_json()

    @given(a=metrics)
    @settings(max_examples=30, deadline=None)
    def test_json_round_trip(self, a):
        assert CampaignMetrics.from_json(a.to_json()).to_json() == a.to_json()

    @given(a=cache_stats, b=cache_stats)
    @settings(max_examples=30, deadline=None)
    def test_cache_stats_merge_sums_fields(self, a, b):
        merged = merge_cache_stats(a, b)
        assert merged.hits == a.hits + b.hits
        assert merged.probes() == a.probes() + b.probes()
        assert merge_cache_stats(a, CacheStats()).to_json() == a.to_json()


# ----------------------------------------------------------------------
class TestShardByteIdentity:
    """--jobs shard rollups must equal the serial rollup byte for byte."""

    SOURCE = """
    put addr,100
    load v,addr
    add v,v,1
    stor v,addr
    exit v
    """
    MEMORY = {100: 41}

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("build", [build_hm1, build_cm1],
                             ids=["HM1", "CM1"])
    def test_sharded_equals_serial(self, seed, build):
        machine = build()
        kwargs = dict(
            n=8, seed=seed, memory=self.MEMORY, collect_metrics=True,
        )
        serial = run_campaign(
            self.SOURCE, "yalll", machine, jobs=1, **kwargs
        )
        sharded = run_campaign(
            self.SOURCE, "yalll", machine, jobs=2, **kwargs
        )
        serial_json = json.dumps(
            serial.to_json(), sort_keys=True, indent=2
        )
        sharded_json = json.dumps(
            sharded.to_json(), sort_keys=True, indent=2
        )
        assert serial_json == sharded_json
        assert serial.metrics.runs == len(serial.outcomes) + 1

    def test_metrics_off_keeps_json_unchanged(self, hm1):
        campaign = run_campaign(
            self.SOURCE, "yalll", hm1, n=3, seed=0, memory=self.MEMORY,
        )
        assert campaign.metrics is None
        assert "metrics" not in campaign.to_json()

    def test_add_run_accumulates(self):
        rollup = CampaignMetrics()
        profile = SimProfile(instructions=5, busy_cycles=9)
        rollup.add_run(profile, classification="masked",
                       plan_cache={"hits": 4, "misses": 1})
        rollup.add_run(profile, classification="sdc")
        assert rollup.runs == 2
        assert rollup.profile.instructions == 10
        assert int(rollup.classifications.get("masked")) == 1
        assert int(rollup.plan_cache.get("hits")) == 4
        text = rollup.render()
        assert "2 runs" in text and "masked=1" in text
