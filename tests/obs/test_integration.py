"""End-to-end observability: traced compile+run and the CLI flags."""

import json

import pytest

from repro.asm import ControlStore
from repro.cli import main
from repro.lang.simpl import compile_simpl
from repro.obs import TraceRecorder, Tracer, to_chrome_trace
from repro.sim import Simulator

FPMUL = """
program fpmul;
const M3 = 0x7C00;
const M4 = 0x03FF;
begin
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    R0 -> ACC;
    while R2 # 0 do
    begin
        ACC ^ -1 -> ACC;
        R2 ^ -1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    R3 | ACC -> R3;
end
"""

REGISTERS = {"R1": 0x3C03, "R2": 0x4002, "R3": 0}

STAGES = {"parse", "codegen", "legalize", "regalloc", "compose", "assemble"}


def traced_run(machine):
    tracer = Tracer()
    result = compile_simpl(FPMUL, machine, tracer=tracer)
    store = ControlStore(machine)
    store.load(result.loaded)
    recorder = TraceRecorder(tracer)
    simulator = Simulator(machine, store, recorder=recorder)
    for register, value in REGISTERS.items():
        simulator.state.write_reg(register, value)
    outcome = simulator.run(result.loaded.name)
    return outcome, tracer, recorder


class TestTracedCompileAndRun:
    def test_every_pipeline_stage_has_a_span(self, hm1):
        _, tracer, _ = traced_run(hm1)
        spans = {e.name for e in tracer.events if e.ph == "X"
                 and e.track == "compile"}
        assert STAGES <= spans

    def test_profile_matches_run_result(self, hm1):
        outcome, _, recorder = traced_run(hm1)
        profile = recorder.profile
        assert outcome.profile is profile
        assert profile.instructions == outcome.instructions
        assert profile.exec_counts.total() == outcome.instructions
        # No traps or interrupts here: all cycles are MI cycles.
        assert profile.busy_cycles == outcome.cycles
        assert profile.total_cycles() == outcome.cycles
        assert profile.cycle_counts.total() == profile.busy_cycles
        assert profile.hotspots(1)[0][1] > 0

    def test_one_sim_event_per_instruction(self, hm1):
        outcome, tracer, _ = traced_run(hm1)
        mi_events = [e for e in tracer.events
                     if e.track == "sim" and e.ph == "X"]
        assert len(mi_events) == outcome.instructions
        # Cycle-stamped and non-overlapping in program order.
        ends = [e.ts + e.dur for e in mi_events]
        assert all(e.ts >= end - 1e-9 for e, end in
                   zip(mi_events[1:], ends))
        assert sum(e.dur for e in mi_events) == outcome.cycles

    def test_chrome_trace_has_both_timelines(self, hm1):
        _, tracer, _ = traced_run(hm1)
        trace = to_chrome_trace(tracer.events)
        threads = {r["args"]["name"] for r in trace["traceEvents"]
                   if r["ph"] == "M"}
        assert threads == {"compile", "sim"}

    def test_recorder_does_not_change_cycles(self, hm1):
        traced, _, _ = traced_run(hm1)
        result = compile_simpl(FPMUL, hm1)
        store = ControlStore(hm1)
        store.load(result.loaded)
        plain = Simulator(hm1, store)
        for register, value in REGISTERS.items():
            plain.state.write_reg(register, value)
        untraced = plain.run(result.loaded.name)
        assert untraced.cycles == traced.cycles
        assert untraced.instructions == traced.instructions
        assert untraced.profile is None

    def test_run_result_reports_interrupt_wait(self, hm1):
        outcome, _, _ = traced_run(hm1)
        assert "interrupt-wait cycles" in str(outcome)


@pytest.fixture
def simpl_file(tmp_path):
    path = tmp_path / "fpmul.simpl"
    path.write_text(FPMUL)
    return str(path)


class TestCliFlags:
    def test_run_trace_writes_chrome_json(self, simpl_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(["run", simpl_file, "--lang", "simpl", "--machine", "HM1",
                     "--set", "R1=0x3C03", "--set", "R2=0x4002",
                     "--trace", str(trace_path)]) == 0
        assert "trace written" in capsys.readouterr().out
        trace = json.loads(trace_path.read_text())
        records = trace["traceEvents"]
        names = {r["name"] for r in records}
        assert STAGES <= names                       # compile-stage spans
        assert any(n.startswith("mi@") for n in names)  # sim cycle events
        threads = {r["args"]["name"] for r in records if r["ph"] == "M"}
        assert threads == {"compile", "sim"}

    def test_run_stats_prints_reports(self, simpl_file, capsys):
        assert main(["run", simpl_file, "--lang", "simpl", "--machine", "HM1",
                     "--set", "R1=0x3C03", "--set", "R2=0x4002",
                     "--stats"]) == 0
        out = capsys.readouterr().out
        assert "compile-time breakdown" in out
        assert "hot spots" in out
        assert "field utilisation" in out

    def test_compile_stats_and_jsonl_trace(self, simpl_file, tmp_path,
                                           capsys):
        trace_path = tmp_path / "trace.jsonl"
        assert main(["compile", simpl_file, "--lang", "simpl",
                     "--machine", "HM1", "--stats",
                     "--trace", str(trace_path)]) == 0
        out = capsys.readouterr().out
        assert "compile-time breakdown" in out
        lines = trace_path.read_text().strip().splitlines()
        assert {json.loads(line)["name"] for line in lines} >= STAGES

    def test_unwritable_trace_path_is_clean_failure(self, simpl_file,
                                                    tmp_path, capsys):
        assert main(["compile", simpl_file, "--lang", "simpl",
                     "--trace", str(tmp_path)]) == 2
        assert "cannot write trace" in capsys.readouterr().err

    def test_untraced_cli_run_still_works(self, simpl_file, capsys):
        assert main(["run", simpl_file, "--lang", "simpl", "--machine", "HM1",
                     "--set", "R1=0x3C03", "--set", "R2=0x4002"]) == 0
        out = capsys.readouterr().out
        assert "MIs in" in out
        assert "interrupt-wait cycles" in out
