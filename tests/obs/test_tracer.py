"""Tracer and null-tracer behaviour: ordering, nesting, no-ops."""

from repro.obs import (
    NULL_TRACER,
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TRACK_COMPILE,
    Event,
    NullTracer,
    Tracer,
)
from repro.obs.tracer import NULL_SPAN


class TestNullTracer:
    def test_is_disabled_singleton(self):
        assert NULL_TRACER.enabled is False
        assert isinstance(NULL_TRACER, NullTracer)

    def test_records_nothing(self):
        with NULL_TRACER.span("stage", cat="compile", ops=3) as span:
            span.set(words=2)
        NULL_TRACER.instant("point", detail="x")
        NULL_TRACER.counter("n", 7)
        NULL_TRACER.emit(Event(name="e"))
        assert NULL_TRACER.events == []

    def test_span_is_shared_noop(self):
        assert NULL_TRACER.span("a") is NULL_SPAN
        assert NULL_TRACER.span("b") is NULL_SPAN

    def test_null_span_swallows_nothing(self):
        """Exceptions still propagate through a null span."""
        try:
            with NULL_TRACER.span("stage"):
                raise ValueError("boom")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("exception was swallowed")


class TestTracer:
    def test_instants_record_in_order(self):
        tracer = Tracer()
        tracer.instant("first")
        tracer.instant("second", cat="regalloc", round=1)
        tracer.counter("live", 4)
        names = [e.name for e in tracer.events]
        assert names == ["first", "second", "live"]
        assert tracer.events[0].ph == PH_INSTANT
        assert tracer.events[1].cat == "regalloc"
        assert tracer.events[1].args == {"round": 1}
        assert tracer.events[2].ph == PH_COUNTER
        assert tracer.events[2].args == {"value": 4}

    def test_timestamps_are_monotonic(self):
        tracer = Tracer()
        tracer.instant("a")
        tracer.instant("b")
        a, b = tracer.events
        assert 0.0 <= a.ts <= b.ts

    def test_span_records_complete_event(self):
        tracer = Tracer()
        with tracer.span("legalize", cat="compile", ops=5) as span:
            span.set(ops_after=7)
        (event,) = tracer.events
        assert event.ph == PH_COMPLETE
        assert event.name == "legalize"
        assert event.track == TRACK_COMPILE
        assert event.dur >= 0.0
        assert event.args == {"ops": 5, "ops_after": 7, "depth": 0}

    def test_nested_spans_carry_depth(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        # Spans are appended at exit: children precede their parent.
        names = [e.name for e in tracer.events]
        assert names == ["inner", "inner2", "outer"]
        by_name = {e.name: e for e in tracer.events}
        assert by_name["outer"].args["depth"] == 0
        assert by_name["inner"].args["depth"] == 1
        assert by_name["inner2"].args["depth"] == 1
        # Children are contained in the parent's interval.
        outer = by_name["outer"]
        for child in (by_name["inner"], by_name["inner2"]):
            assert outer.ts <= child.ts
            assert child.ts + child.dur <= outer.ts + outer.dur + 1e-6

    def test_emit_appends_verbatim(self):
        tracer = Tracer()
        event = Event(name="mi@0003", cat="sim", ph=PH_COMPLETE,
                      ts=12, dur=2, track="sim")
        tracer.emit(event)
        assert tracer.events == [event]
