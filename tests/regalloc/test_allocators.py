"""Register allocators: binding, linear scan, graph colouring."""

import pytest

from repro.errors import AllocationError
from repro.mir import Branch, Imm, Jump, ProgramBuilder, mop, preg, vreg
from repro.regalloc import (
    BindingAllocator,
    GraphColorAllocator,
    LinearScanAllocator,
    build_interference_graph,
    collect_class_constraints,
    allowed_registers,
    live_intervals,
)
from tests.conftest import run_mir


def sum_program(machine, n_values):
    """movi v_i = i; acc = sum(v_i); exit acc."""
    b = ProgramBuilder("t", machine)
    b.start_block("e")
    for i in range(n_values):
        b.emit(mop("movi", vreg(f"v{i}"), Imm(i + 1)))
    acc = vreg("acc")
    b.emit(mop("movi", acc, Imm(0)))
    for i in range(n_values):
        b.emit(mop("add", acc, acc, vreg(f"v{i}")))
    b.exit(acc)
    return b.finish()


class TestBinding:
    def test_applies_binding(self, hm1):
        program = sum_program(hm1, 2)
        allocator = BindingAllocator(
            {"v0": "R1", "v1": "R2", "acc": "ACC"}
        )
        result = allocator.allocate(program, hm1)
        assert not program.virtual_regs()
        assert result.mapping["acc"] == "ACC"
        assert run_mir(program, hm1)[0].exit_value == 3

    def test_missing_binding_rejected(self, hm1):
        with pytest.raises(AllocationError):
            BindingAllocator({"v0": "R1"}).allocate(sum_program(hm1, 2), hm1)

    def test_unknown_register_rejected(self, hm1):
        allocator = BindingAllocator({"v0": "Q9", "v1": "R2", "acc": "ACC"})
        with pytest.raises(AllocationError):
            allocator.allocate(sum_program(hm1, 2), hm1)

    def test_aliases_rejected_by_default(self, hm1):
        allocator = BindingAllocator({"v0": "R1", "v1": "R1", "acc": "ACC"})
        with pytest.raises(AllocationError):
            allocator.allocate(sum_program(hm1, 2), hm1)

    def test_aliases_allowed_when_requested(self, hm1):
        program = sum_program(hm1, 1)
        allocator = BindingAllocator(
            {"v0": "R1", "acc": "R1"}, allow_aliases=True
        )
        allocator.allocate(program, hm1)  # SIMPL equivalence semantics

    def test_class_violation_rejected(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("add", vreg("x"), preg("T5"), preg("T6")))
        b.exit(vreg("x"))
        program = b.finish()
        allocator = BindingAllocator({"x": "T5"})  # not aluout
        with pytest.raises(AllocationError):
            allocator.allocate(program, vax)


@pytest.mark.parametrize("allocator_class", [LinearScanAllocator, GraphColorAllocator])
class TestAutomaticAllocators:
    def test_no_spill_small(self, hm1, allocator_class):
        program = sum_program(hm1, 3)
        result = allocator_class().allocate(program, hm1)
        assert result.n_spilled == 0
        assert not program.virtual_regs()
        assert run_mir(program, hm1)[0].exit_value == 6

    def test_spill_correctness(self, hm1, allocator_class):
        program = sum_program(hm1, 14)
        result = allocator_class().allocate(program, hm1)
        assert result.n_spilled > 0
        assert result.loads_inserted > 0
        assert run_mir(program, hm1)[0].exit_value == sum(range(1, 15))

    def test_respects_class_constraints(self, vax, allocator_class):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("movi", vreg("a"), Imm(5)))
        b.emit(mop("movi", vreg("b"), Imm(6)))
        b.emit(mop("add", vreg("c"), vreg("a"), vreg("b")))
        b.exit(vreg("c"))
        program = b.finish()
        result = allocator_class().allocate(program, vax)
        assert vax.registers[result.mapping["c"]].is_in("aluout")
        assert run_mir(program, vax)[0].exit_value == 11

    def test_loop_carried_values_survive(self, hm1, allocator_class):
        b = ProgramBuilder("t", hm1)
        b.start_block("e")
        b.emit(mop("movi", vreg("i"), Imm(5)))
        b.emit(mop("movi", vreg("acc"), Imm(0)))
        b.terminate(Jump("loop"))
        b.start_block("loop")
        b.emit(mop("add", vreg("acc"), vreg("acc"), vreg("i")))
        b.emit(mop("dec", vreg("i"), vreg("i")))
        b.emit(mop("cmp", None, vreg("i"), preg("R0")))
        b.terminate(Branch("Z", "done", "loop"))
        b.start_block("done")
        b.exit(vreg("acc"))
        program = b.finish()
        allocator_class().allocate(program, hm1)
        assert run_mir(program, hm1)[0].exit_value == 5 + 4 + 3 + 2 + 1

    def test_register_limit_forces_spills(self, hm1, allocator_class):
        generous = allocator_class().allocate(sum_program(hm1, 6), hm1)
        tight = allocator_class(register_limit=4).allocate(
            sum_program(hm1, 6), hm1
        )
        assert tight.n_spilled > generous.n_spilled

    def test_register_limit_correctness(self, hm1, allocator_class):
        program = sum_program(hm1, 6)
        allocator_class(register_limit=4).allocate(program, hm1)
        assert run_mir(program, hm1)[0].exit_value == 21


class TestConstraintCollection:
    def test_vax_alu_dest_constraint_collected(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("add", vreg("x"), preg("T5"), preg("T6")))
        b.exit(vreg("x"))
        constraints = collect_class_constraints(b.finish(), vax)
        assert constraints[vreg("x")] == {"aluout"}

    def test_unconstrained_on_regular_machine(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("e")
        b.emit(mop("add", vreg("x"), preg("R1"), preg("R2")))
        b.exit(vreg("x"))
        constraints = collect_class_constraints(b.finish(), hm1)
        assert constraints[vreg("x")] == set()

    def test_restart_temps_avoid_macro_visible(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("e")
        b.emit(mop("mov", vreg("_rs1"), preg("T5")))
        b.exit(vreg("_rs1"))
        allowed = allowed_registers(b.finish(), vax)
        names = allowed[vreg("_rs1")]
        assert names
        assert all(not vax.registers[n].macro_visible for n in names)


class TestIntervals:
    def test_interval_spans_def_to_last_use(self, hm1):
        program = sum_program(hm1, 2)
        intervals = live_intervals(program, hm1)
        acc = intervals["%acc"]
        v0 = intervals["%v0"]
        assert acc.end >= v0.end  # acc lives to the exit
        assert v0.start < v0.end

    def test_uses_counted(self, hm1):
        program = sum_program(hm1, 2)
        intervals = live_intervals(program, hm1)
        assert intervals["%acc"].uses >= 3


class TestInterferenceGraph:
    def test_simultaneously_live_interfere(self, hm1):
        program = sum_program(hm1, 3)
        graph = build_interference_graph(program, hm1)
        assert "%v1" in graph["%v0"]
        assert "%v0" in graph["%v2"]

    def test_coloring_respects_interference(self, hm1):
        program = sum_program(hm1, 4)
        graph = build_interference_graph(program, hm1)
        result = GraphColorAllocator().allocate(program, hm1)
        for node, neighbours in graph.items():
            for other in neighbours:
                assert (
                    result.mapping[node[1:]] != result.mapping[other[1:]]
                ), f"{node} and {other} share a register"

    def test_disjoint_lifetimes_do_not_interfere(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("e")
        b.emit(mop("movi", vreg("a"), Imm(1)))
        b.emit(mop("mov", preg("R1"), vreg("a")))
        b.emit(mop("movi", vreg("b"), Imm(2)))
        b.emit(mop("mov", preg("R2"), vreg("b")))
        b.exit()
        graph = build_interference_graph(b.finish(), hm1)
        assert "%b" not in graph.get("%a", set())


class TestAllocatorComparison:
    def test_both_allocators_agree_semantically(self, hm1):
        results = []
        for allocator in (LinearScanAllocator(), GraphColorAllocator()):
            program = sum_program(hm1, 10)
            allocator.allocate(program, hm1)
            results.append(run_mir(program, hm1)[0].exit_value)
        assert results[0] == results[1] == sum(range(1, 11))

    def test_round_robin_strategy_runs(self, hm1):
        program = sum_program(hm1, 4)
        LinearScanAllocator(strategy="round-robin").allocate(program, hm1)
        assert run_mir(program, hm1)[0].exit_value == 10


class TestCrossProcessDeterminism:
    """Allocation must not depend on hash-randomised set iteration —
    campaign reports are promised byte-identical across processes."""

    SOURCE = (
        "    put p,0\n"
        "loop:\n"
        "    jump out if n = 0\n"
        "    add p,p,a\n"
        "    sub n,n,1\n"
        "    jump loop\n"
        "out:\n"
        "    exit p\n"
    )

    def test_mapping_stable_across_hash_seeds(self):
        import json
        import os
        import subprocess
        import sys

        script = (
            "import json, sys\n"
            "from repro.lang.yalll import compile_yalll\n"
            "from repro.machine.machines import get_machine\n"
            "r = compile_yalll(sys.stdin.read(), get_machine('HM1'),"
            " name='m')\n"
            "print(json.dumps(sorted(r.allocation.mapping.items())))\n"
        )
        mappings = set()
        for seed in ("0", "1", "20155"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src"
            out = subprocess.run(
                [sys.executable, "-c", script], input=self.SOURCE,
                capture_output=True, text=True, env=env, check=True,
            )
            mappings.add(out.stdout.strip())
        assert len(mappings) == 1, mappings
