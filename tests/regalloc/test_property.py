"""Property-based allocation tests: both allocators preserve semantics."""

from hypothesis import given, settings, strategies as st

from repro.bench.workloads import random_program
from repro.machine.machines import build_hm1, build_vax
from repro.regalloc import GraphColorAllocator, LinearScanAllocator
from tests.conftest import run_mir

MACHINES = {"HM1": build_hm1(), "VAXm": build_vax()}


@settings(max_examples=25, deadline=None)
@given(
    machine_name=st.sampled_from(sorted(MACHINES)),
    seed=st.integers(min_value=0, max_value=5_000),
    n_variables=st.integers(min_value=2, max_value=16),
    ops_per_block=st.integers(min_value=2, max_value=10),
)
def test_allocators_agree(machine_name, seed, n_variables, ops_per_block):
    """Linear scan and graph colouring yield identical final results on
    random symbolic programs, spills included."""
    machine = MACHINES[machine_name]
    outcomes = []
    for allocator in (LinearScanAllocator(), GraphColorAllocator()):
        program = random_program(
            machine, n_blocks=2, ops_per_block=ops_per_block,
            seed=seed, n_variables=n_variables,
        )
        result = allocator.allocate(program, machine)
        assert not program.virtual_regs()
        run, _ = run_mir(program, machine)
        outcomes.append(run.exit_value)
    assert outcomes[0] == outcomes[1]


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=5_000),
    limit=st.integers(min_value=4, max_value=8),
)
def test_register_limit_never_changes_semantics(seed, limit):
    machine = MACHINES["HM1"]
    reference_program = random_program(
        machine, n_blocks=2, ops_per_block=8, seed=seed, n_variables=12
    )
    LinearScanAllocator().allocate(reference_program, machine)
    reference, _ = run_mir(reference_program, machine)

    limited_program = random_program(
        machine, n_blocks=2, ops_per_block=8, seed=seed, n_variables=12
    )
    LinearScanAllocator(register_limit=limit).allocate(
        limited_program, machine
    )
    limited, _ = run_mir(limited_program, machine)
    assert limited.exit_value == reference.exit_value
