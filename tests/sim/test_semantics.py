"""Datapath semantics: every op, flags, widths."""

import pytest

from repro.errors import SimulationError
from repro.sim.semantics import condition_holds, evaluate


class TestArithmetic:
    def test_add(self):
        result = evaluate("add", [3, 4], 16)
        assert result.value == 7
        assert result.flags == {"Z": 0, "N": 0, "C": 0}

    def test_add_carry_and_wrap(self):
        result = evaluate("add", [0xFFFF, 1], 16)
        assert result.value == 0
        assert result.flags["C"] == 1 and result.flags["Z"] == 1

    def test_add_negative_flag(self):
        assert evaluate("add", [0x7FFF, 1], 16).flags["N"] == 1

    def test_sub(self):
        result = evaluate("sub", [10, 3], 16)
        assert result.value == 7
        assert result.flags["C"] == 1  # no borrow

    def test_sub_borrow(self):
        result = evaluate("sub", [3, 10], 16)
        assert result.value == (3 - 10) & 0xFFFF
        assert result.flags["C"] == 0 and result.flags["N"] == 1

    def test_cmp_has_no_value(self):
        result = evaluate("cmp", [5, 5], 16)
        assert result.value is None
        assert result.flags["Z"] == 1

    def test_adc_uses_carry_in(self):
        assert evaluate("adc", [1, 2], 16, carry_in=1).value == 4
        assert evaluate("adc", [1, 2], 16, carry_in=0).value == 3

    def test_inc_dec(self):
        assert evaluate("inc", [0xFFFF], 16).value == 0
        assert evaluate("inc", [0xFFFF], 16).flags["C"] == 1
        assert evaluate("dec", [0], 16).value == 0xFFFF

    def test_neg_not(self):
        assert evaluate("neg", [1], 16).value == 0xFFFF
        assert evaluate("not", [0], 16).value == 0xFFFF
        assert evaluate("neg", [0], 16).value == 0

    def test_mul(self):
        assert evaluate("mul", [300, 300], 16).value == (300 * 300) & 0xFFFF


class TestLogic:
    @pytest.mark.parametrize("op,a,b,expected", [
        ("and", 0b1100, 0b1010, 0b1000),
        ("or", 0b1100, 0b1010, 0b1110),
        ("xor", 0b1100, 0b1010, 0b0110),
        ("nand", 0xFFFF, 0xFFFF, 0),
        ("nor", 0, 0, 0xFFFF),
    ])
    def test_table(self, op, a, b, expected):
        assert evaluate(op, [a, b], 16).value == expected


class TestShifts:
    def test_shl_underflow_is_top_bit(self):
        result = evaluate("shl", [0x8000, 1], 16)
        assert result.value == 0
        assert result.flags["UF"] == 1

    def test_shr_underflow_is_bottom_bit(self):
        result = evaluate("shr", [0b11, 1], 16)
        assert result.value == 1
        assert result.flags["UF"] == 1

    def test_sar_keeps_sign(self):
        assert evaluate("sar", [0x8000, 1], 16).value == 0xC000
        assert evaluate("sar", [0x4000, 1], 16).value == 0x2000

    def test_rol_ror_roundtrip(self):
        value = 0xB39D
        rotated = evaluate("rol", [value, 5], 16).value
        assert evaluate("ror", [rotated, 5], 16).value == value

    def test_shift_by_zero(self):
        result = evaluate("shl", [5, 0], 16)
        assert result.value == 5 and result.flags["UF"] == 0

    def test_shift_count_clamped_to_width(self):
        assert evaluate("shr", [0xFFFF, 40], 16).value == 0

    def test_negative_count_rejected(self):
        with pytest.raises(SimulationError):
            evaluate("shl", [1, -1], 16)


class TestBitfield:
    def test_ext(self):
        # Extract 4 bits at position 8 of 0xABCD -> 0xB.
        result = evaluate("ext", [0xABCD, 8, 4], 16)
        assert result.value == 0xB
        assert result.flags == {"Z": 0}

    def test_dep(self):
        # Deposit 0xF into bits 4..7 of 0x1234 -> 0x12F4.
        result = evaluate("dep", [0xF, 4, 4], 16, dest_old=0x1234)
        assert result.value == 0x12F4

    def test_dep_masks_source(self):
        assert evaluate("dep", [0xFF, 0, 4], 16, dest_old=0).value == 0xF


class TestConditions:
    def test_true(self):
        assert condition_holds("TRUE", {})

    @pytest.mark.parametrize("cond,flags,expected", [
        ("Z", {"Z": 1}, True), ("Z", {"Z": 0}, False),
        ("NZ", {"Z": 0}, True), ("N", {"N": 1}, True),
        ("NN", {"N": 1}, False), ("C", {"C": 1}, True),
        ("NC", {"C": 0}, True), ("UF", {"UF": 1}, True),
        ("NUF", {"UF": 1}, False),
    ])
    def test_flags(self, cond, flags, expected):
        assert condition_holds(cond, flags) is expected

    def test_unknown_condition(self):
        with pytest.raises(SimulationError):
            condition_holds("MAYBE", {})

    def test_unknown_op(self):
        with pytest.raises(SimulationError):
            evaluate("teleport", [1], 16)

    def test_stateful_op_rejected(self):
        with pytest.raises(SimulationError):
            evaluate("read", [0], 16)


class TestWidthIndependence:
    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_add_wraps_at_width(self, width):
        mask = (1 << width) - 1
        assert evaluate("add", [mask, 1], width).value == 0

    @pytest.mark.parametrize("width", [4, 8, 16])
    def test_neg_is_twos_complement(self, width):
        mask = (1 << width) - 1
        for value in (0, 1, mask, mask >> 1):
            negated = evaluate("neg", [value], width).value
            assert (value + negated) & mask == 0
