"""Microtraps and the §2.1.5 ``incread`` bug, end to end.

The survey's scenario: a microprogram increments a macro-visible
register and then uses it as a memory address; the fetch pagefaults,
the register keeps its value across the restart, and the re-executed
increment doubles it.  The restart-safe transform must fix exactly
this.
"""

import pytest

from repro.errors import SimulationError
from repro.lang.common.restart import (
    analyze_restart_hazards,
    make_restart_safe,
)
from repro.mir import Imm, ProgramBuilder, mop, preg
from repro.regalloc import LinearScanAllocator
from tests.conftest import run_mir


def incread_program(vax):
    """reg[n] := reg[n]+1 ; mbr := readmem(reg[n]) — on VAXm, whose
    R0..R3 are macro-visible."""
    b = ProgramBuilder("incread", vax)
    b.start_block("entry")
    b.emit(mop("add", preg("T0"), preg("R1"), preg("ONE")))
    b.emit(mop("mov", preg("R1"), preg("T0")))  # reg[n] := reg[n] + 1
    b.emit(mop("mov", preg("MAR"), preg("R1")))
    b.emit(mop("read", preg("MBR"), preg("MAR")))
    b.exit(preg("MBR"))
    return b.finish()


def paging_service(state, trap):
    """Map the faulted page (parse the address from the trap detail)."""
    address = int(trap.detail.split("address ")[1].rstrip(")"))
    state.memory.map_address(address)


def run_with_fault(program, vax, initial_r1):
    from repro.asm import ControlStore, assemble
    from repro.compose import SequentialComposer, compose_program
    from repro.sim import Simulator

    composed = compose_program(program, vax, SequentialComposer())
    loaded = assemble(composed, vax)
    store = ControlStore(vax)
    store.load(loaded)
    simulator = Simulator(vax, store, trap_service=paging_service)
    simulator.state.memory.paging_enabled = True
    simulator.state.memory.load_words(initial_r1 + 1, [0xCAFE])
    simulator.state.write_reg("R1", initial_r1)
    result = simulator.run("incread")
    return result, simulator


class TestIncreadBug:
    def test_no_fault_no_bug(self, vax):
        program = incread_program(vax)
        from repro.asm import ControlStore, assemble
        from repro.compose import SequentialComposer, compose_program
        from repro.sim import Simulator

        composed = compose_program(program, vax, SequentialComposer())
        loaded = assemble(composed, vax)
        store = ControlStore(vax)
        store.load(loaded)
        simulator = Simulator(vax, store)
        simulator.state.memory.load_words(101, [0xCAFE])
        simulator.state.write_reg("R1", 100)
        result = simulator.run("incread")
        assert simulator.state.read_reg("R1") == 101
        assert result.exit_value == 0xCAFE

    def test_fault_double_increments(self, vax):
        """The naive program exhibits the survey's double increment."""
        result, simulator = run_with_fault(incread_program(vax), vax, 100)
        assert result.traps == 1
        assert simulator.state.read_reg("R1") == 102  # BUG reproduced
        assert result.exit_value != 0xCAFE  # read the wrong address

    def test_restart_safe_transform_fixes_it(self, vax):
        program = incread_program(vax)
        remaining = make_restart_safe(program, vax)
        assert remaining == []
        LinearScanAllocator().allocate(program, vax)
        result, simulator = run_with_fault(program, vax, 100)
        assert result.traps == 1
        assert simulator.state.read_reg("R1") == 101  # exactly once
        assert result.exit_value == 0xCAFE

    def test_microregisters_revert_on_restart(self, vax):
        """Non-macro-visible registers return to entry values, so the
        recomputation after restart starts from clean state."""
        program = incread_program(vax)
        _, simulator = run_with_fault(program, vax, 100)
        # T0 was recomputed after the restart from the (incremented) R1.
        assert simulator.state.read_reg("T0") == 102


class TestHazardAnalysis:
    def test_naive_program_has_hazard(self, vax):
        hazards = analyze_restart_hazards(incread_program(vax), vax)
        assert any(h.register == "R1" and h.kind == "intra-block"
                   for h in hazards)

    def test_transformed_program_clean(self, vax):
        program = incread_program(vax)
        make_restart_safe(program, vax)
        assert analyze_restart_hazards(program, vax) == []

    def test_no_macro_visible_registers_no_hazards(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("entry")
        b.emit(mop("inc", preg("R1"), preg("R1")))
        b.emit(mop("mov", preg("MAR"), preg("R1")))
        b.emit(mop("read", preg("MBR"), preg("MAR")))
        b.exit()
        assert analyze_restart_hazards(b.finish(), hm1) == []

    def test_cross_block_hazard_reported(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("a")
        b.emit(mop("mov", preg("R1"), preg("T5")))  # macro-visible write
        b.start_block("b")
        b.emit(mop("mov", preg("MAR"), preg("R1")))
        b.emit(mop("read", preg("MBR"), preg("MAR")))
        b.exit()
        hazards = analyze_restart_hazards(b.finish(), vax)
        assert any(h.kind == "cross-block" for h in hazards)

    def test_write_after_last_trap_is_safe(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("a")
        b.emit(mop("mov", preg("MAR"), preg("T5")))
        b.emit(mop("read", preg("MBR"), preg("MAR")))
        b.emit(mop("mov", preg("R1"), preg("MBR")))  # after the trap point
        b.exit()
        assert analyze_restart_hazards(b.finish(), vax) == []


class TestTrapMachinery:
    def test_unserviced_trap_raises(self, vax):
        program = incread_program(vax)
        from repro.asm import ControlStore, assemble
        from repro.compose import SequentialComposer, compose_program
        from repro.sim import Simulator

        composed = compose_program(program, vax, SequentialComposer())
        store = ControlStore(vax)
        store.load(assemble(composed, vax))
        simulator = Simulator(vax, store)  # no trap_service
        simulator.state.memory.paging_enabled = True
        with pytest.raises(SimulationError):
            simulator.run("incread")

    def test_fault_loop_guard(self, vax):
        program = incread_program(vax)
        from repro.asm import ControlStore, assemble
        from repro.compose import SequentialComposer, compose_program
        from repro.sim import Simulator

        composed = compose_program(program, vax, SequentialComposer())
        store = ControlStore(vax)
        store.load(assemble(composed, vax))
        simulator = Simulator(
            vax, store,
            trap_service=lambda state, trap: None,  # never maps
            max_traps=5,
        )
        simulator.state.memory.paging_enabled = True
        with pytest.raises(SimulationError):
            simulator.run("incread")

    def test_trap_service_cycles_charged(self, vax):
        program = incread_program(vax)
        result, _ = run_with_fault(program, vax, 100)
        assert result.cycles > 50  # includes the service charge
