"""Simulator odds and ends: constants, tracing, snapshots."""

from repro.asm import ControlStore, assemble
from repro.compose import SequentialComposer, compose_program
from repro.mir import Imm, ProgramBuilder, mop, preg
from repro.sim import Simulator


def build_and_load(program, machine):
    composed = compose_program(program, machine, SequentialComposer())
    store = ControlStore(machine)
    store.load(assemble(composed, machine))
    return Simulator(machine, store)


class TestConstants:
    def test_constant_rom_poked_at_run(self, hm1):
        builder = ProgramBuilder("t", hm1)
        builder.start_block("e")
        mask = builder.constant(0x0F0F)
        builder.emit(mop("and", preg("R1"), preg("R2"), mask))
        builder.exit(preg("R1"))
        program = builder.finish()
        simulator = build_and_load(program, hm1)
        simulator.state.write_reg("R2", 0xFFFF)
        outcome = simulator.run("t")
        assert outcome.exit_value == 0x0F0F
        assert simulator.state.read_reg(mask.name) == 0x0F0F

    def test_two_programs_different_constants(self, hm1):
        """Each run pokes its own constant pool — coexisting programs
        do not trample each other as long as runs alternate."""
        def make(name, value):
            builder = ProgramBuilder(name, hm1)
            builder.start_block("e")
            constant = builder.constant(value)
            builder.emit(mop("mov", preg("R1"), constant))
            builder.exit(preg("R1"))
            return builder.finish()

        machine = hm1
        store = ControlStore(machine)
        for name, value in (("p1", 0x1111), ("p2", 0x2222)):
            composed = compose_program(
                make(name, value), machine, SequentialComposer()
            )
            store.load(assemble(composed, machine))
        simulator = Simulator(machine, store)
        assert simulator.run("p1").exit_value == 0x1111
        assert simulator.run("p2").exit_value == 0x2222
        assert simulator.run("p1").exit_value == 0x1111


class TestTracing:
    def test_trace_records_cycle_address_and_ops(self, hm1):
        builder = ProgramBuilder("t", hm1)
        builder.start_block("e")
        builder.emit(mop("movi", preg("R1"), Imm(5)))
        builder.exit(preg("R1"))
        simulator = build_and_load(builder.finish(), hm1)
        simulator.trace = []
        simulator.run("t")
        assert len(simulator.trace) == 1
        assert "movi R1" in simulator.trace[0]


class TestSnapshots:
    def test_snapshot_restore_roundtrip(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        state.write_reg("R1", 42)
        snapshot = state.snapshot_registers()
        state.write_reg("R1", 99)
        state.restore_registers(snapshot)
        assert state.read_reg("R1") == 42

    def test_reset_registers(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        state.write_reg("R1", 7)
        state.flags["Z"] = 1
        state.reset_registers()
        assert state.read_reg("R1") == 0
        assert state.read_reg("ONE") == 1
        assert state.flags["Z"] == 0
