"""The simulator: control flow, phases, interrupts, banked registers."""

import pytest

from repro.errors import SimulationError
from repro.mir import (
    Branch,
    Imm,
    Jump,
    MaskCase,
    Multiway,
    ProgramBuilder,
    mop,
    preg,
)
from tests.conftest import run_mir


class TestControlFlow:
    def test_branch_taken_and_not_taken(self, hm1):
        def program(x):
            b = ProgramBuilder("t", hm1)
            b.start_block("entry")
            b.emit(mop("movi", preg("R1"), Imm(x)))
            b.emit(mop("cmp", None, preg("R1"), preg("R0")))
            b.terminate(Branch("Z", "zero", "nonzero"))
            b.start_block("nonzero")
            b.emit(mop("movi", preg("R2"), Imm(2)))
            b.exit(preg("R2"))
            b.start_block("zero")
            b.emit(mop("movi", preg("R2"), Imm(1)))
            b.exit(preg("R2"))
            return b.finish()

        assert run_mir(program(0), hm1)[0].exit_value == 1
        assert run_mir(program(5), hm1)[0].exit_value == 2

    def test_multiway_dispatch(self, hm1):
        def program(x):
            b = ProgramBuilder("t", hm1)
            b.start_block("entry")
            b.emit(mop("movi", preg("R1"), Imm(x)))
            b.terminate(Multiway(
                preg("R1"),
                (MaskCase("0000", "a"), MaskCase("0001", "b"),
                 MaskCase("001x", "c")),
                "d",
            ))
            for label, value in (("a", 10), ("b", 11), ("c", 12), ("d", 13)):
                b.start_block(label)
                b.emit(mop("movi", preg("R2"), Imm(value)))
                b.exit(preg("R2"))
            return b.finish()

        assert run_mir(program(0), hm1)[0].exit_value == 10
        assert run_mir(program(1), hm1)[0].exit_value == 11
        assert run_mir(program(2), hm1)[0].exit_value == 12
        assert run_mir(program(3), hm1)[0].exit_value == 12
        assert run_mir(program(9), hm1)[0].exit_value == 13

    def test_nested_calls(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("main")
        b.declare_procedure("outer", "outer_e")
        b.declare_procedure("inner", "inner_e")
        b.call("outer")
        b.exit(preg("R1"))
        b.start_block("outer_e")
        b.emit(mop("inc", preg("R1"), preg("R1")))
        b.call("inner")
        b.ret()
        b.start_block("inner_e")
        b.emit(mop("inc", preg("R1"), preg("R1")))
        b.ret()
        result, _ = run_mir(b.finish(), hm1)
        assert result.exit_value == 2

    def test_stack_overflow_detected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("main")
        b.declare_procedure("p", "pe")
        b.call("p")
        b.exit()
        b.start_block("pe")
        b.call("p")  # infinite recursion
        b.ret()
        with pytest.raises(SimulationError):
            run_mir(b.finish(), hm1)

    def test_runaway_detected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("spin")
        b.terminate(Jump("spin"))
        with pytest.raises(SimulationError):
            run_mir(b.finish(), hm1, max_cycles=100)


class TestCycleAccounting:
    def test_memory_latency_charged(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("movi", preg("MAR"), Imm(10)))
        b.emit(mop("read", preg("MBR"), preg("MAR")))
        b.exit()
        from repro.compose import SequentialComposer

        result, _ = run_mir(b.finish(), hm1, composer=SequentialComposer())
        # movi word (1 cycle) + read word (2 cycles, exit rides on it).
        assert result.cycles == 3

    def test_instruction_count(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        for _ in range(3):
            b.emit(mop("inc", preg("R1"), preg("R1")))
        b.exit()
        result, _ = run_mir(b.finish(), hm1)
        assert result.instructions == 3  # serial incs; exit rides the last


class TestPhases:
    def test_same_phase_reads_precede_writes(self, hm1):
        """Two phase-1 moves swapping registers read old values."""
        from repro.compose import MicroInstruction, PlacedOp
        from repro.asm import assemble
        from repro.asm.loader import ControlStore
        from repro.compose.base import ComposedBlock, ComposedProgram
        from repro.mir.block import Exit
        from repro.sim import Simulator

        mov_a = next(v for v in hm1.op_variants("mov") if v.variant == "a")
        mov_b = next(v for v in hm1.op_variants("mov") if v.variant == "b")
        mi = MicroInstruction(placed=[
            PlacedOp(mop("mov", preg("R1"), preg("R2")), mov_a),
            PlacedOp(mop("mov", preg("R2"), preg("R1")), mov_b),
        ])
        tail = MicroInstruction(terminator=Exit())
        composed = ComposedProgram(
            name="swap", entry="e",
            blocks={"e": ComposedBlock("e", [mi, tail])},
        )
        loaded = assemble(composed, hm1)
        store = ControlStore(hm1)
        store.load(loaded)
        simulator = Simulator(hm1, store)
        simulator.state.write_reg("R1", 111)
        simulator.state.write_reg("R2", 222)
        simulator.run("swap")
        assert simulator.state.read_reg("R1") == 222
        assert simulator.state.read_reg("R2") == 111

    def test_phase_chaining_sees_earlier_writes(self, hm1):
        """mov (phase 1) feeding add (phase 2) in one word."""
        from repro.compose import MicroInstruction, PlacedOp
        from repro.asm import assemble
        from repro.asm.loader import ControlStore
        from repro.compose.base import ComposedBlock, ComposedProgram
        from repro.mir.block import Exit
        from repro.sim import Simulator

        mov_a = next(v for v in hm1.op_variants("mov") if v.variant == "a")
        add = hm1.op("add")
        mi = MicroInstruction(placed=[
            PlacedOp(mop("mov", preg("R1"), preg("R2")), mov_a),
            PlacedOp(mop("add", preg("R3"), preg("R1"), preg("ONE")), add),
        ])
        tail = MicroInstruction(terminator=Exit(preg("R3")))
        composed = ComposedProgram(
            name="chain", entry="e",
            blocks={"e": ComposedBlock("e", [mi, tail])},
        )
        loaded = assemble(composed, hm1)
        store = ControlStore(hm1)
        store.load(loaded)
        simulator = Simulator(hm1, store)
        simulator.state.write_reg("R1", 5)
        simulator.state.write_reg("R2", 40)
        result = simulator.run("chain")
        assert result.exit_value == 41  # add saw the fresh R1


class TestInterrupts:
    def make_poller(self, hm1, n_iterations, poll):
        b = ProgramBuilder("t", hm1)
        b.start_block("entry")
        b.emit(mop("movi", preg("R1"), Imm(n_iterations)))
        b.terminate(Jump("loop"))
        b.start_block("loop")
        if poll:
            b.emit(mop("poll"))
        b.emit(mop("dec", preg("R1"), preg("R1")))
        b.emit(mop("cmp", None, preg("R1"), preg("R0")))
        b.terminate(Branch("Z", "done", "loop"))
        b.start_block("done")
        b.exit()
        return b.finish()

    def test_polled_interrupts_serviced(self, hm1):
        fired = []
        program = self.make_poller(hm1, 30, poll=True)
        result, _ = run_mir(
            program, hm1,
            simulator_kwargs={
                "interrupt_every": 10,
                "interrupt_handler": lambda state: fired.append(state.cycles),
            },
        )
        assert result.interrupts_serviced >= 2
        assert fired
        assert result.interrupt_wait_cycles < result.cycles

    def test_no_poll_means_no_service(self, hm1):
        program = self.make_poller(hm1, 30, poll=False)
        result, simulator = run_mir(
            program, hm1,
            simulator_kwargs={
                "interrupt_every": 10,
                "interrupt_handler": lambda state: None,
            },
        )
        assert result.interrupts_serviced == 0
        assert simulator.state.interrupt_pending


class TestBankedRegisters:
    def test_setblk_switches_windows(self, id3200):
        b = ProgramBuilder("t", id3200)
        b.start_block("entry")
        b.emit(mop("setblk", None, Imm(0)))
        b.emit(mop("movi", preg("G0"), Imm(10)))
        b.emit(mop("setblk", None, Imm(1)))
        b.emit(mop("movi", preg("G0"), Imm(20)))
        b.emit(mop("setblk", None, Imm(0)))
        b.emit(mop("mov", preg("S0"), preg("G0")))
        b.exit(preg("S0"))
        result, simulator = run_mir(b.finish(), id3200)
        assert result.exit_value == 10
        assert simulator.state.read_reg("G1_0") == 20


class TestStateBasics:
    def test_readonly_write_rejected(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        with pytest.raises(SimulationError):
            state.write_reg("R0", 1)

    def test_poke_allows_const_rom(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        state.poke_reg("C0", 0x1234)
        assert state.read_reg("C0") == 0x1234

    def test_unknown_register(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        with pytest.raises(SimulationError):
            state.read_reg("QX")

    def test_register_width_masked(self, hm1):
        from repro.sim import MachineState

        state = MachineState(hm1)
        state.write_reg("R1", 0x12345)
        assert state.read_reg("R1") == 0x2345
