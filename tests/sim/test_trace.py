"""Trace-JIT behaviour: parity, guards, invalidation, disk tier.

The golden rule extends the decoded engine's: for any program the
toolkit can assemble, a traced run must be observably identical to
the decoded (and interpretive) run — final state, cycle counts, trap
counts, recorded profile, even the exact limit error when a run
overruns its cycle budget mid-loop.  On top of parity, these tests
pin the JIT's own machinery: heat detection and profile seeding,
guard side exits (branch, multiway), blacklist of over-long paths,
``PlanCache``-style invalidation on store swap, the content-addressed
disk tier with corruption eviction, and the per-MI fallbacks
(injector, trace sink, ``interrupt_every``) that must keep the JIT
disengaged.
"""

import pickle

import pytest

from repro.asm import ControlStore
from repro.errors import SimulationLimitError
from repro.faults.campaign import default_trap_service
from repro.faults.injectors import ControlStoreBitFlip
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.obs.timeline import TraceRecorder
from repro.sim import Simulator

#: Hot countdown loop: 40 trips clears the default threshold (8).
COUNTDOWN = """
    put total,0
    put n,40
loop:
    add total,total,n
    sub n,n,1
    jump loop if nonzero
    exit total
"""

#: Read-modify-write sweep (memory ops + write-allocate touches).
MEMSWEEP = """
    put addr,0x40
    put n,24
loop:
    jump out if n = 0
    load w,addr
    add w,w,n
    stor w,addr
    add addr,addr,1
    sub n,n,1
    jump loop
out:
    exit w
"""

#: Procedure called from inside the hot loop (call/ret in the trace).
CALLLOOP = """
    put acc,0
    put n,30
loop:
    call bump
    sub n,n,1
    jump loop if nonzero
    exit acc
proc bump:
    add acc,acc,2
    ret
"""

#: Multiway dispatch as the loop's exit test: x stays 0 until the
#: counter drains, then flips and the mjump leaves the loop — the
#: trace's multiway guard takes the side exit.
MJUMPLOOP = """
    put n,30
    put x,0
loop:
    mjump x (0000 -> body, default -> out)
body:
    sub n,n,1
    jump cont if nonzero
    put x,1
cont:
    jump loop
out:
    exit n
"""


def compiled(source, name="prog", machine_name="HM1"):
    machine = get_machine(machine_name)
    result = compile_yalll(source, machine, name=name)
    return machine, result.loaded


def run_engine(engine, machine, loaded, *, paging=False,
               max_cycles=200_000, with_recorder=False, **kwargs):
    store = ControlStore(machine)
    store.load(loaded)
    recorder = TraceRecorder() if with_recorder else None
    simulator = Simulator(
        machine, store, engine=engine, recorder=recorder,
        trap_service=default_trap_service if paging else None,
        **kwargs,
    )
    simulator.state.memory.paging_enabled = paging
    result = simulator.run(loaded.name, max_cycles=max_cycles)
    return result, simulator


def assert_parity(machine, loaded, **kwargs):
    """Run all three engines; assert every observable matches."""
    runs = {
        engine: run_engine(engine, machine, loaded, **kwargs)
        for engine in ("interpretive", "decoded", "traced")
    }
    res_t, sim_t = runs["traced"]
    for reference in ("interpretive", "decoded"):
        res_r, sim_r = runs[reference]
        assert res_t.instructions == res_r.instructions, reference
        assert res_t.cycles == res_r.cycles, reference
        assert res_t.traps == res_r.traps, reference
        assert res_t.interrupts_serviced == res_r.interrupts_serviced
        assert res_t.exit_value == res_r.exit_value, reference
        assert sim_t.state.registers == sim_r.state.registers, reference
        assert sim_t.state.flags == sim_r.state.flags, reference
        assert sim_t.state.memory._words == sim_r.state.memory._words
        assert sim_t.state.memory.reads == sim_r.state.memory.reads
        assert sim_t.state.memory.writes == sim_r.state.memory.writes
    return res_t, sim_t


class TestTracedParity:
    @pytest.mark.parametrize("machine_name", ("HM1", "CM1", "VAXm"))
    def test_countdown_loop(self, machine_name):
        machine, loaded = compiled(COUNTDOWN, machine_name=machine_name)
        res, sim = assert_parity(machine, loaded)
        assert res.exit_value == sum(range(41))
        # The parity must not be vacuous: a trace compiled and ran.
        assert res.trace_cache["misses"] >= 1
        assert res.trace_cache["hits"] >= 1

    def test_memory_sweep_with_paging_traps(self):
        machine, loaded = compiled(MEMSWEEP)
        res, _ = assert_parity(machine, loaded, paging=True)
        assert res.traps > 0, "pagefaults never exercised the trap guard"
        assert res.trace_cache["hits"] >= 1

    def test_call_ret_in_trace(self):
        machine, loaded = compiled(CALLLOOP)
        res, _ = assert_parity(machine, loaded)
        assert res.exit_value == 60
        assert res.trace_cache["hits"] >= 1

    def test_multiway_guard_side_exit(self):
        machine, loaded = compiled(MJUMPLOOP)
        res, _ = assert_parity(machine, loaded)
        assert res.exit_value == 0
        assert res.trace_cache["hits"] >= 1

    def test_recorded_profiles_byte_identical(self):
        """Replayed recorder streams must reproduce the decoded
        profile bit for bit — the property the difftest traced axis
        (and every profile consumer) stands on."""
        machine, loaded = compiled(MEMSWEEP)
        profiles = {}
        for engine in ("decoded", "traced"):
            _, simulator = run_engine(
                engine, machine, loaded, paging=True, with_recorder=True,
            )
            profiles[engine] = simulator.recorder.profile.to_json()
        assert profiles["traced"] == profiles["decoded"]

    def test_budget_limit_error_exact(self):
        """A cycle ceiling landing mid-loop must surface the identical
        limit error and architectural state: the budget guard refuses
        the iteration and the decoded loop replays the tail."""
        machine, loaded = compiled(COUNTDOWN)
        full_cycles = run_engine("decoded", machine, loaded)[0].cycles
        checked = 0
        for limit in range(2, full_cycles, 7):
            outcomes = {}
            for engine in ("decoded", "traced"):
                store = ControlStore(machine)
                store.load(loaded)
                simulator = Simulator(machine, store, engine=engine)
                try:
                    simulator.run(loaded.name, max_cycles=limit)
                    outcomes[engine] = ("done",)
                except SimulationLimitError as error:
                    checked += 1
                    outcomes[engine] = (
                        "limit", str(error),
                        simulator.state.cycles, simulator.state.upc,
                        dict(simulator.state.registers),
                        dict(simulator.state.flags),
                    )
            assert outcomes["traced"] == outcomes["decoded"], limit
        assert checked, "no ceiling ever landed mid-run"


class TestDetectionAndGuards:
    def test_cold_loop_never_compiles(self):
        machine, loaded = compiled(COUNTDOWN)
        _, simulator = run_engine(
            "traced", machine, loaded, trace_hot_threshold=10_000,
        )
        assert simulator._trace_jit.stats.compiles == 0

    def test_seed_from_profile_arms_recording(self):
        """Profile-guided path: a saved profile's loop heads compile
        on their first back edge even under a cold threshold."""
        machine, loaded = compiled(COUNTDOWN)
        _, decoded_sim = run_engine(
            "decoded", machine, loaded, with_recorder=True,
        )
        profile = decoded_sim.recorder.profile

        store = ControlStore(machine)
        store.load(loaded)
        simulator = Simulator(
            machine, store, engine="traced", trace_hot_threshold=10_000,
        )
        first = simulator.run(loaded.name)
        jit = simulator._trace_jit
        assert jit.stats.compiles == 0
        seeded = jit.seed_from_profile(profile)
        assert seeded, "hot-path analysis found no loop to seed"
        second = simulator.run(loaded.name)
        assert jit.stats.compiles >= 1
        assert second.exit_value == first.exit_value

    def test_overlong_path_blacklisted(self):
        body = "\n".join("    add acc,acc,1" for _ in range(70))
        source = (
            "    put acc,0\n    put n,30\nloop:\n"
            f"{body}\n"
            "    sub n,n,1\n    jump loop if nonzero\n    exit acc\n"
        )
        machine, loaded = compiled(source)
        res, simulator = run_engine("traced", machine, loaded)
        jit = simulator._trace_jit
        assert res.exit_value == 30 * 70
        assert jit.blacklist, "70-MI body was not blacklisted"
        assert not jit.traces
        assert jit.stats.aborts >= 1

    def test_store_swap_invalidates(self):
        machine, loaded = compiled(COUNTDOWN)
        store = ControlStore(machine)
        store.load(loaded)
        simulator = Simulator(machine, store, engine="traced")
        first = simulator.run(loaded.name)
        assert first.trace_cache["misses"] >= 1
        replacement = ControlStore(machine)
        replacement.load(loaded)
        simulator.store = replacement
        second = simulator.run(loaded.name)
        assert second.trace_cache["invalidations"] == 1
        assert second.exit_value == first.exit_value
        assert second.cycles == first.cycles


class TestFallbacks:
    """Per-MI hooks must keep the JIT disengaged, decoded semantics
    intact, and the run-level counters all zero."""

    ZEROS = {"hits": 0, "misses": 0, "invalidations": 0, "bailouts": 0}

    def test_injector_disengages_jit(self):
        machine, loaded = compiled(COUNTDOWN)
        store = ControlStore(machine)
        store.load(loaded)
        simulator = Simulator(machine, store, engine="traced")
        ControlStoreBitFlip(2, 0, from_cycle=10**9).attach(simulator)
        result = simulator.run(loaded.name)
        assert result.trace_cache == self.ZEROS
        assert result.exit_value == sum(range(41))

    def test_interrupt_every_disengages_jit(self):
        machine, loaded = compiled(COUNTDOWN)
        reference, _ = run_engine(
            "decoded", machine, loaded, interrupt_every=37,
        )
        result, _ = run_engine(
            "traced", machine, loaded, interrupt_every=37,
        )
        assert result.trace_cache == self.ZEROS
        assert result.cycles == reference.cycles
        assert result.interrupts_serviced == reference.interrupts_serviced

    def test_trace_sink_disengages_jit(self):
        machine, loaded = compiled(COUNTDOWN)
        store = ControlStore(machine)
        store.load(loaded)
        fetches: list[str] = []
        simulator = Simulator(
            machine, store, engine="traced", trace=fetches,
        )
        result = simulator.run(loaded.name)
        assert result.trace_cache == self.ZEROS
        assert len(fetches) == result.instructions


class TestDiskTier:
    def _run_with_dir(self, machine, loaded, trace_dir):
        store = ControlStore(machine)
        store.load(loaded)
        simulator = Simulator(
            machine, store, engine="traced", trace_dir=trace_dir,
        )
        result = simulator.run(loaded.name)
        return result, simulator._trace_jit

    def test_roundtrip_and_corruption(self, tmp_path):
        machine, loaded = compiled(COUNTDOWN)
        first, jit_a = self._run_with_dir(machine, loaded, tmp_path)
        entries = list(tmp_path.glob("*.trace.pkl"))
        assert len(entries) == 1
        assert jit_a.stats.disk_hits == 0

        # A later process skips codegen: same key, source off disk.
        second, jit_b = self._run_with_dir(machine, loaded, tmp_path)
        assert jit_b.stats.disk_hits == 1
        assert second.exit_value == first.exit_value
        assert second.cycles == first.cycles

        # Corrupt entries are a miss, evicted, and rewritten whole.
        entries[0].write_bytes(b"not a pickle")
        third, jit_c = self._run_with_dir(machine, loaded, tmp_path)
        assert jit_c.stats.corrupt == 1
        assert jit_c.stats.disk_hits == 0
        assert third.exit_value == first.exit_value
        fresh = list(tmp_path.glob("*.trace.pkl"))
        assert fresh == entries
        entry = pickle.loads(fresh[0].read_bytes())
        assert isinstance(entry["source"], str)

    def test_stale_format_evicted(self, tmp_path):
        machine, loaded = compiled(COUNTDOWN)
        self._run_with_dir(machine, loaded, tmp_path)
        path = list(tmp_path.glob("*.trace.pkl"))[0]
        entry = pickle.loads(path.read_bytes())
        entry["format"] = -1
        path.write_bytes(pickle.dumps(entry))
        _, jit = self._run_with_dir(machine, loaded, tmp_path)
        assert jit.stats.corrupt == 1
        restored = pickle.loads(path.read_bytes())
        assert restored["format"] != -1
