"""Lockstep batched execution: parity, peel-off and admission.

The golden rule mirrors the decoded engine's: for any homogeneous
sweep, ``run_cases`` must be observably identical to running each
case on a fresh scalar decoded simulator — result fields, plan-cache
counters, every register and flag, memory contents, and even the
error *text* a failing lane reports.  Divergence (a trap, a different
branch direction, a datapath fault, budget exhaustion) peels the lane
onto the scalar engine, so identity holds by construction; these
tests pin that down on HM1 and CM1 for both vector backends.
"""

import subprocess
import sys

import pytest

import repro.sim.batch as batch
from repro.asm import ControlStore
from repro.faults.campaign import default_trap_service
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.sim import BatchCase, Simulator, batch_refusal, run_cases
from repro.sim.batch import HAVE_NUMPY, resolve_backend

MUL_SRC = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

#: stor into unmapped pages pagefaults on every lane eventually.
MEM_SRC = """
    put base,0x40
loop:
    add addr,base,counter
    stor counter,addr
    load back,addr
    sub counter,counter,1
    jump loop if nonzero
    exit back
"""

MULTIWAY_SRC = """
    mjump x (0000 -> zero, 00x1 -> oddish, default -> other)
zero:  put r,1
       exit r
oddish: put r,2
       exit r
other: put r,3
       exit r
"""

WEDGE_SRC = """
    put a,1
loop:
    add a,a,1
    jump loop
"""

STRAIGHT_SRC = """
    put a,2
    add a,a,3
    exit a
"""

BACKENDS = (
    ("numpy", "python") if HAVE_NUMPY else ("python",)
)


def compiled(source, machine, name="prog"):
    return compile_yalll(source, machine, name=name)


def scalar_reference(machine, loaded, case, *, paging=False,
                     trap_service=None, max_cycles=200_000):
    """One case on a fresh scalar decoded simulator — the oracle."""
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store, engine="decoded",
                          trap_service=trap_service)
    simulator.state.memory.paging_enabled = paging
    for name, value in case.registers.items():
        simulator.state.write_reg(name, value)
    for address, value in case.memory.items():
        simulator.state.memory.load_words(address, [value])
    result = error = None
    try:
        result = simulator.run(loaded.name, max_cycles=max_cycles)
    except Exception as exc:
        error = exc
    return result, error, simulator


def assert_lane_matches(outcome, reference, *, mem_region=None):
    result, error, simulator = reference
    if error is not None:
        assert outcome.result is None
        assert outcome.error is not None
        assert type(outcome.error) is type(error)
        assert str(outcome.error) == str(error)
    else:
        assert outcome.error is None
        got = outcome.result
        assert got.cycles == result.cycles
        assert got.instructions == result.instructions
        assert got.traps == result.traps
        assert got.interrupts_serviced == result.interrupts_serviced
        assert got.interrupt_wait_cycles == result.interrupt_wait_cycles
        assert got.exit_value == result.exit_value
        assert got.plan_cache == result.plan_cache
    assert outcome.registers == dict(simulator.state.registers)
    assert outcome.flags == dict(simulator.state.flags)
    if mem_region is not None:
        base, count = mem_region
        assert (outcome.memory.dump_words(base, count)
                == simulator.state.memory.dump_words(base, count))


def sweep(machine, loaded, cases, *, batches=(1, 4, 64), paging=False,
          trap_service=None, max_cycles=200_000, backends=BACKENDS,
          mem_region=None):
    """Every batch size and backend against the scalar oracle."""
    references = [
        scalar_reference(machine, loaded, case, paging=paging,
                         trap_service=trap_service, max_cycles=max_cycles)
        for case in cases
    ]
    for backend in backends:
        for size in batches:
            outcomes = run_cases(
                machine, loaded, cases, batch=size, paging=paging,
                trap_service=trap_service, max_cycles=max_cycles,
                backend=backend,
            )
            assert len(outcomes) == len(cases)
            for outcome, reference in zip(outcomes, references):
                assert_lane_matches(outcome, reference,
                                    mem_region=mem_region)
    return references


class TestBackends:
    def test_resolve_backend_auto_prefers_numpy(self):
        expected = "numpy" if HAVE_NUMPY else "python"
        assert resolve_backend("auto") == expected
        assert resolve_backend("python") == "python"

    def test_unknown_backend_rejected(self):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            resolve_backend("cuda")

    def test_missing_numpy_selects_python(self, monkeypatch):
        monkeypatch.setattr(batch, "HAVE_NUMPY", False)
        assert batch.resolve_backend("auto") == "python"
        # Asking for numpy without it quietly falls back too: a
        # stdlib-only install must never crash over the fast path.
        assert batch.resolve_backend("numpy") == "python"

    def test_import_without_numpy_is_clean(self, tmp_path):
        """The module import survives an unimportable numpy."""
        (tmp_path / "numpy.py").write_text("raise ImportError('absent')\n")
        src = str(batch.__file__).rsplit("/repro/", 1)[0]
        probe = subprocess.run(
            [sys.executable, "-c",
             "import repro.sim.batch as b;"
             "print(b.HAVE_NUMPY, b.resolve_backend('auto'))"],
            capture_output=True, text=True,
            env={"PYTHONPATH": f"{tmp_path}:{src}"},
        )
        assert probe.returncode == 0, probe.stderr
        assert probe.stdout.split() == ["False", "python"]


class TestLockstepParity:
    @pytest.mark.parametrize("machine_name", ("HM1", "CM1"))
    def test_heterogeneous_branch_counts(self, machine_name):
        """Different loop trip counts force branch-direction peels."""
        machine = get_machine(machine_name)
        result = compiled(MUL_SRC, machine, name="mul")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["a"]: 3, mapping["n"]: n})
            for n in (0, 1, 5, 5, 12, 2, 7, 5)
        ]
        sweep(machine, result.loaded, cases)

    @pytest.mark.parametrize("machine_name", ("HM1", "CM1"))
    def test_identical_lanes_stay_batched(self, machine_name):
        machine = get_machine(machine_name)
        result = compiled(MUL_SRC, machine, name="mul")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["a"]: 5, mapping["n"]: 7})
            for _ in range(8)
        ]
        references = sweep(machine, result.loaded, cases)
        assert references[0][0].exit_value == 35
        # Nothing diverges, so the whole batch finishes in lockstep.
        outcomes = run_cases(machine, result.loaded, cases, batch=8)
        assert all(not o.peeled for o in outcomes)

    @pytest.mark.parametrize("machine_name", ("HM1", "CM1"))
    def test_trap_divergence_peels(self, machine_name):
        """Pagefaulting lanes peel to the scalar engine + trap service."""
        machine = get_machine(machine_name)
        result = compiled(MEM_SRC, machine, name="mem")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["counter"]: counter})
            for counter in (8, 3, 8, 1)
        ]
        references = sweep(
            machine, result.loaded, cases, paging=True,
            trap_service=default_trap_service,
            mem_region=(0x40, 16),
        )
        assert references[0][0].traps > 0
        outcomes = run_cases(
            machine, result.loaded, cases, batch=4, paging=True,
            trap_service=default_trap_service,
        )
        assert all(o.peeled for o in outcomes)

    @pytest.mark.parametrize("machine_name", ("HM1", "CM1"))
    def test_fault_divergence_unserviced_trap(self, machine_name):
        """No trap service: lanes peel and the scalar replay's error
        text is reported verbatim per lane."""
        machine = get_machine(machine_name)
        result = compiled(MEM_SRC, machine, name="mem")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["counter"]: counter})
            for counter in (4, 2)
        ]
        references = sweep(machine, result.loaded, cases, paging=True)
        assert all(error is not None for _, error, _ in references)

    def test_multiway_divergence_peels(self):
        machine = get_machine("HM1")
        result = compiled(MULTIWAY_SRC, machine, name="disp")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["x"]: x})
            for x in (0, 1, 2, 3, 8, 0)
        ]
        references = sweep(machine, result.loaded, cases)
        assert {r.exit_value for r, _, _ in references} == {1, 2, 3}

    @pytest.mark.parametrize("machine_name", ("HM1", "CM1"))
    def test_budget_exhaustion_matches_scalar_error(self, machine_name):
        machine = get_machine(machine_name)
        result = compiled(WEDGE_SRC, machine, name="wedge")
        cases = [BatchCase() for _ in range(3)]
        references = sweep(machine, result.loaded, cases,
                           max_cycles=500)
        from repro.errors import SimulationLimitError

        assert all(isinstance(error, SimulationLimitError)
                   for _, error, _ in references)

    def test_ragged_tail_chunking(self):
        """A case count that does not divide the batch size still
        merges back in case order."""
        machine = get_machine("HM1")
        result = compiled(MUL_SRC, machine, name="mul")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["a"]: 2, mapping["n"]: n})
            for n in range(7)
        ]
        outcomes = run_cases(machine, result.loaded, cases, batch=3)
        assert [o.result.exit_value for o in outcomes] == [
            2 * n for n in range(7)
        ]


class TestPlantHook:
    def test_lane_zero_corruption_is_visible_and_contained(self):
        """PLANT_LANE_XOR flips only the leader's committed values; a
        straight-line program keeps every lane live, so the follower
        lanes must still be byte-correct."""
        machine = get_machine("HM1")
        result = compiled(STRAIGHT_SRC, machine, name="straight")
        cases = [BatchCase() for _ in range(4)]
        batch.PLANT_LANE_XOR = 1
        try:
            outcomes = run_cases(machine, result.loaded, cases, batch=4)
        finally:
            batch.PLANT_LANE_XOR = 0
        assert outcomes[0].result.exit_value != 5
        assert [o.result.exit_value for o in outcomes[1:]] == [5, 5, 5]
        # Peeled lanes replay on the scalar engine, out of the plant's
        # reach — which is exactly why the difftest self-check must
        # catch the corruption while lanes are still batched.
        clean = run_cases(machine, result.loaded, cases, batch=4)
        assert [o.result.exit_value for o in clean] == [5, 5, 5, 5]


class TestAdmission:
    def test_refusal_reasons(self):
        machine = get_machine("HM1")
        refuse = lambda **kw: batch_refusal(machine, **kw)
        assert refuse(lanes=1) == "batch=1"
        assert refuse(lanes=4, engine="traced") == "engine=traced"
        assert refuse(lanes=4, injector=True) == "injector"
        assert refuse(lanes=4, recorder=True) == "recorder"
        assert refuse(lanes=4, trace=True) == "trace"
        assert refuse(lanes=4, interrupt_every=7) == "interrupt_every"
        assert refuse(lanes=4, deadline_s=1.0) == "deadline"
        assert refuse(lanes=4) is None

    def test_banked_windows_refused(self):
        machine = get_machine("ID3200m")
        assert batch_refusal(machine, lanes=4) == "banked-windows"

    def test_refused_admission_runs_scalar_unpeeled(self):
        """engine != decoded refuses lockstep; results still come from
        the requested engine and are not marked as peels."""
        machine = get_machine("HM1")
        result = compiled(MUL_SRC, machine, name="mul")
        mapping = result.allocation.mapping
        cases = [
            BatchCase(registers={mapping["a"]: 4, mapping["n"]: 3})
            for _ in range(3)
        ]
        outcomes = run_cases(machine, result.loaded, cases, batch=3,
                             engine="interpretive")
        assert all(not o.peeled for o in outcomes)
        assert [o.result.exit_value for o in outcomes] == [12, 12, 12]
        # The interpretive engine never synthesises plan counters.
        assert all(o.result.plan_cache is None for o in outcomes)
