"""Main memory (paging, faults) and scratchpad."""

import pytest

from repro.errors import MicroTrap, SimulationError
from repro.sim import MainMemory, Scratchpad


class TestMainMemory:
    def test_read_write(self):
        memory = MainMemory()
        memory.write(100, 0xBEEF)
        assert memory.read(100) == 0xBEEF
        assert memory.read(101) == 0

    def test_bounds(self):
        memory = MainMemory(size=256)
        with pytest.raises(SimulationError):
            memory.read(256)
        with pytest.raises(SimulationError):
            memory.write(-1, 0)

    def test_counters(self):
        memory = MainMemory()
        memory.write(1, 2)
        memory.read(1)
        memory.read(1)
        assert (memory.reads, memory.writes) == (2, 1)

    def test_paging_fault_on_unmapped(self):
        memory = MainMemory(paging_enabled=True, page_size=256)
        with pytest.raises(MicroTrap) as info:
            memory.read(300)
        assert info.value.kind == "pagefault"
        assert memory.faults == 1

    def test_mapped_page_does_not_fault(self):
        memory = MainMemory(paging_enabled=True, page_size=256)
        memory.map_page(1)
        memory.write(300, 7)
        assert memory.read(300) == 7

    def test_map_address_and_unmap(self):
        memory = MainMemory(paging_enabled=True)
        memory.map_address(1000)
        assert memory.is_mapped(1000)
        memory.unmap_page(1000 // memory.page_size)
        assert not memory.is_mapped(1000)

    def test_load_dump_bypass_paging(self):
        memory = MainMemory(paging_enabled=True)
        memory.load_words(512, [1, 2, 3])
        assert memory.dump_words(512, 3) == [1, 2, 3]
        assert memory.faults == 0

    def test_write_fault(self):
        memory = MainMemory(paging_enabled=True)
        with pytest.raises(MicroTrap):
            memory.write(5, 1)

    def test_paging_disabled_never_faults(self):
        memory = MainMemory(paging_enabled=False)
        assert memory.is_mapped(12345)
        memory.read(12345)


class TestScratchpad:
    def test_read_write(self):
        pad = Scratchpad(16)
        pad.write(3, 42)
        assert pad.read(3) == 42
        assert pad.read(4) == 0

    def test_bounds(self):
        pad = Scratchpad(16)
        with pytest.raises(SimulationError):
            pad.read(16)
        with pytest.raises(SimulationError):
            pad.write(99, 0)

    def test_counters(self):
        pad = Scratchpad(16)
        pad.write(0, 1)
        pad.read(0)
        assert (pad.reads, pad.writes) == (1, 1)
