"""Decoded-engine parity and plan-cache behaviour.

The golden rule: for any program the toolkit can assemble, a decoded
run must be observably identical to the interpretive run —
instruction for instruction (the fetch trace), cycle for cycle, and
in every piece of final state.  These tests sweep the cross-language
example programs over HM1, CM1 and VAXm and exercise every stateful
corner (traps, interrupts, scratchpad, multiway dispatch, banked
windows) on both engines.
"""

import pytest

from repro.asm import ControlStore
from repro.errors import SimulationError
from repro.lang.empl import compile_empl
from repro.lang.mpl import compile_mpl
from repro.lang.simpl import compile_simpl
from repro.lang.sstar import compile_sstar
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.obs.timeline import TraceRecorder
from repro.sim import Simulator
from repro.sim.decode import PlanCache, decode_word

# The same algorithm (multiply 5 x 7 by repeated addition) in every
# language, mirroring tests/integration/test_cross_language.py.
SIMPL_MUL = """
program mul;
begin
    R0 -> R3;
    while R2 # 0 do
    begin
        R3 + R1 -> R3;
        R2 - ONE -> R2;
    end;
end
"""

EMPL_MUL = """
DECLARE A FIXED;
DECLARE B FIXED;
DECLARE P FIXED;
A = 5;
B = 7;
P = 0;
WHILE B # 0 DO;
    P = P + A;
    B = B - 1;
END;
"""

SSTAR_MUL = """
program mul;
var a : seq [15..0] bit bind R1;
var n : seq [15..0] bit bind R2;
var p : seq [15..0] bit bind R3;
begin
  p := 0;
  while n <> 0 do
  begin
    p := p + a;
    n := n - 1
  end
end
"""

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

MACHINES = ("HM1", "CM1", "VAXm")

COMPILES = {
    "simpl": lambda machine: compile_simpl(SIMPL_MUL, machine),
    "empl": lambda machine: compile_empl(EMPL_MUL, machine, name="mul"),
    "sstar": lambda machine: compile_sstar(SSTAR_MUL, machine),
    "yalll": lambda machine: compile_yalll(YALLL_MUL, machine, name="mul"),
}

MUL_INPUTS = {"simpl": ("R1", "R2"), "sstar": ("R1", "R2")}


def run_engine(engine, machine, loaded, *, registers=None, memory=None,
               simulator_kwargs=None, paging=False, max_cycles=200_000):
    """Run ``loaded`` on one engine, with the fetch trace captured."""
    store = ControlStore(machine)
    store.load(loaded)
    trace: list[str] = []
    simulator = Simulator(
        machine, store, trace=trace, engine=engine,
        **(simulator_kwargs or {}),
    )
    simulator.state.memory.paging_enabled = paging
    for name, value in (registers or {}).items():
        simulator.state.write_reg(name, value)
    for address, value in (memory or {}).items():
        simulator.state.memory.load_words(address, [value])
    result = simulator.run(loaded.name, max_cycles=max_cycles)
    return result, simulator, trace


def assert_parity(machine, loaded, **kwargs):
    """Run both engines; assert every observable matches."""
    res_i, sim_i, trace_i = run_engine("interpretive", machine, loaded, **kwargs)
    res_d, sim_d, trace_d = run_engine("decoded", machine, loaded, **kwargs)
    assert trace_d == trace_i, "fetch traces diverge"
    assert res_d.instructions == res_i.instructions
    assert res_d.cycles == res_i.cycles
    assert res_d.traps == res_i.traps
    assert res_d.interrupts_serviced == res_i.interrupts_serviced
    assert res_d.interrupt_wait_cycles == res_i.interrupt_wait_cycles
    assert res_d.exit_value == res_i.exit_value
    assert sim_d.state.registers == sim_i.state.registers
    assert sim_d.state.flags == sim_i.state.flags
    assert sim_d.state.memory._words == sim_i.state.memory._words
    assert sim_d.state.memory.reads == sim_i.state.memory.reads
    assert sim_d.state.memory.writes == sim_i.state.memory.writes
    assert sim_d.state.scratchpad._words == sim_i.state.scratchpad._words
    return res_d, sim_d


class TestGoldenParity:
    """Every example program, every front end, three machines."""

    @pytest.mark.parametrize("machine_name", MACHINES)
    @pytest.mark.parametrize("lang", sorted(COMPILES))
    def test_example_suite(self, machine_name, lang):
        machine = get_machine(machine_name)
        result = COMPILES[lang](machine)
        registers = {}
        if lang in MUL_INPUTS:
            a, n = MUL_INPUTS[lang]
            registers = {a: 5, n: 7}
        elif lang == "yalll":
            mapping = result.allocation.mapping
            registers = {mapping["a"]: 5, mapping["n"]: 7}
        res, sim = assert_parity(machine, result.loaded, registers=registers)
        if lang == "yalll":
            assert res.exit_value == 35

    @pytest.mark.parametrize("machine_name", MACHINES)
    def test_mpl_virtual_registers(self, machine_name):
        machine = get_machine(machine_name)
        source = """
program t;
begin
    R1 -> R2;
    R2 + R1 -> R3;
end
"""
        result = compile_mpl(source, machine)
        assert_parity(machine, result.loaded, registers={"R1": 9})

    def test_multiway_dispatch(self):
        machine = get_machine("HM1")
        source = """
    mjump x (0000 -> zero, 00x1 -> oddish, default -> other)
zero:  put r,1
       exit r
oddish: put r,2
       exit r
other: put r,3
       exit r
"""
        result = compile_yalll(source, machine, name="disp")
        mapping = result.allocation.mapping
        for value in (0, 1, 2, 3, 8):
            res, _ = assert_parity(
                machine, result.loaded,
                registers={mapping["x"]: value},
            )
            assert res.exit_value in (1, 2, 3)

    def test_procedures_and_stack(self):
        machine = get_machine("HM1")
        source = """
    put a,5
    call double
    call double
    exit a
proc double:
    add a,a,a
    ret
"""
        result = compile_yalll(source, machine, name="procs")
        res, _ = assert_parity(machine, result.loaded)
        assert res.exit_value == 20


class TestStatefulParity:
    def test_memory_traffic_and_pagefault_traps(self):
        """stor into unmapped pages pagefaults; the trap service maps
        the page and the program restarts — both engines alike."""
        from repro.faults.campaign import default_trap_service

        machine = get_machine("HM1")
        source = """
    put counter,8
    put base,0x40
loop:
    add addr,base,counter
    stor counter,addr
    load back,addr
    sub counter,counter,1
    jump loop if nonzero
    exit back
"""
        result = compile_yalll(source, machine, name="mem")
        res, sim = assert_parity(
            machine, result.loaded, paging=True,
            simulator_kwargs={"trap_service": default_trap_service},
        )
        assert res.traps > 0
        assert sim.state.memory.writes > 0

    def test_interrupts_at_poll(self):
        machine = get_machine("HM1")
        source = """
    put counter,30
loop:
    poll
    sub counter,counter,1
    jump loop if nonzero
    exit counter
"""
        result = compile_yalll(source, machine, name="irq")
        serviced = []

        def handler(state):
            serviced.append(state.cycles)

        res, _ = assert_parity(
            machine, result.loaded,
            simulator_kwargs={
                "interrupt_handler": handler, "interrupt_every": 7,
            },
        )
        assert res.interrupts_serviced > 0

    def test_banked_windows_id3200(self):
        """Window reads/writes resolve against the live bank pointer —
        the decoded engine must not pre-resolve them."""
        from repro.mir.block import BasicBlock, Exit, Jump
        from repro.mir.operands import Imm, Reg
        from repro.mir.ops import MicroOp
        from repro.mir.program import MicroProgram
        from repro.compose import ListScheduler, compose_program
        from repro.asm import assemble

        machine = get_machine("ID3200m")
        files = machine.registers
        window = next(iter(files.windows))
        program = MicroProgram(name="banked", entry="b0")
        b0 = BasicBlock("b0")
        b0.ops.append(MicroOp("setblk", None, (Imm(0),)))
        b0.ops.append(MicroOp("movi", Reg(window), (Imm(11),)))
        b0.ops.append(MicroOp("setblk", None, (Imm(1),)))
        b0.ops.append(MicroOp("movi", Reg(window), (Imm(22),)))
        b0.terminator = Jump("b1")
        b1 = BasicBlock("b1")
        b1.ops.append(MicroOp("setblk", None, (Imm(0),)))
        b1.terminator = Exit(Reg(window))
        program.blocks = {"b0": b0, "b1": b1}
        composed = compose_program(program, machine, ListScheduler())
        loaded = assemble(composed, machine)
        res, sim = assert_parity(machine, loaded)
        assert res.exit_value == 11
        bank0, bank1 = files.windows[window][:2]
        assert sim.state.registers[bank0] == 11
        assert sim.state.registers[bank1] == 22


class TestPlanCache:
    def test_word_keyed_lookup_misses_on_mutated_word(self):
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(machine, store, engine="decoded")
        resident = store.find("mul")
        loaded = store.fetch(resident.entry)
        cache = PlanCache()
        plan = decode_word(simulator, loaded, resident, resident.entry)
        cache.insert(resident, resident.entry, loaded, plan, direct=True)
        assert cache.lookup(resident, resident.entry, loaded) is plan
        # A bit-flipped word must miss, whatever the flipped bit.
        mutated = type(loaded)(
            address=loaded.address, instruction=loaded.instruction,
            settings=loaded.settings, word=loaded.word ^ 1,
        )
        assert cache.lookup(resident, resident.entry, mutated) is None
        assert len(cache) == 1

    def test_direct_tier_only_when_requested(self):
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(machine, store, engine="decoded")
        resident = store.find("mul")
        loaded = store.fetch(resident.entry)
        cache = PlanCache()
        plan = decode_word(simulator, loaded, resident, resident.entry)
        cache.insert(resident, resident.entry, loaded, plan, direct=False)
        assert resident.entry not in cache.addr_plans(resident)
        cache.insert(resident, resident.entry, loaded, plan, direct=True)
        assert cache.addr_plans(resident)[resident.entry] is plan
        cache.invalidate()
        assert len(cache) == 0
        assert resident.entry not in cache.addr_plans(resident)

    def test_plans_cached_across_runs(self):
        """The second run of the same simulator re-uses every plan."""
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        store = ControlStore(machine)
        store.load(result.loaded)
        recorder = TraceRecorder()
        simulator = Simulator(
            machine, store, engine="decoded", recorder=recorder
        )
        mapping = result.allocation.mapping
        simulator.state.write_reg(mapping["a"], 3)
        simulator.state.write_reg(mapping["n"], 2)
        simulator.run("mul")
        decodes_first = recorder.profile.decodes
        assert decodes_first > 0
        simulator.state.write_reg(mapping["a"], 4)
        simulator.state.write_reg(mapping["n"], 5)
        outcome = simulator.run("mul")
        assert outcome.exit_value == 20
        assert recorder.profile.decodes == decodes_first

    def test_unknown_engine_rejected(self):
        machine = get_machine("HM1")
        store = ControlStore(machine)
        with pytest.raises(SimulationError):
            Simulator(machine, store, engine="jit")


class TestPlanCacheCounters:
    def _runner(self, *, recorder=None, engine="decoded"):
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(
            machine, store, engine=engine, recorder=recorder
        )
        mapping = result.allocation.mapping

        def run(a, n):
            simulator.state.write_reg(mapping["a"], a)
            simulator.state.write_reg(mapping["n"], n)
            return simulator.run("mul")

        return simulator, run

    def test_cold_run_misses_then_warm_run_all_hits(self):
        _, run = self._runner()
        cold = run(3, 10)
        assert cold.plan_cache is not None
        assert cold.plan_cache["misses"] > 0
        assert cold.plan_cache["hits"] == (
            cold.instructions - cold.plan_cache["misses"]
        )
        warm = run(4, 10)
        assert warm.plan_cache["misses"] == 0
        assert warm.plan_cache["hits"] == warm.instructions
        assert warm.plan_cache["invalidations"] == 0

    def test_interpretive_engine_has_no_plan_counters(self):
        _, run = self._runner(engine="interpretive")
        assert run(3, 5).plan_cache is None

    def test_stats_track_decodes_and_invalidations(self):
        cache = PlanCache()
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(machine, store, engine="decoded")
        resident = store.find("mul")
        loaded = store.fetch(resident.entry)
        plan = decode_word(simulator, loaded, resident, resident.entry)
        cache.insert(resident, resident.entry, loaded, plan, direct=True)
        assert cache.stats.decodes == 1
        cache.invalidate()
        assert cache.stats.invalidations == 1
        # Lifetime stats survive invalidation (they are campaign-level
        # tallies, not cache contents).
        assert cache.stats.decodes == 1

    def test_plan_cache_event_emitted_when_tracing(self):
        from repro.obs import Tracer

        tracer = Tracer()
        recorder = TraceRecorder(tracer)
        _, run = self._runner(recorder=recorder)
        outcome = run(3, 4)
        events = [e for e in tracer.events if e.name == "sim.plan_cache"]
        assert len(events) == 1
        assert events[0].args == outcome.plan_cache

    def test_no_event_with_null_tracer(self):
        recorder = TraceRecorder()
        _, run = self._runner(recorder=recorder)
        outcome = run(3, 4)
        assert outcome.plan_cache["misses"] == recorder.profile.decodes


class TestRecorderParity:
    def test_profile_counts_match_interpretive(self):
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_MUL, machine, name="mul")
        profiles = {}
        for engine in ("interpretive", "decoded"):
            store = ControlStore(machine)
            store.load(result.loaded)
            recorder = TraceRecorder()
            simulator = Simulator(
                machine, store, engine=engine, recorder=recorder
            )
            mapping = result.allocation.mapping
            simulator.state.write_reg(mapping["a"], 5)
            simulator.state.write_reg(mapping["n"], 7)
            simulator.run("mul")
            profiles[engine] = recorder.profile
        interp, dec = profiles["interpretive"], profiles["decoded"]
        assert dec.instructions == interp.instructions
        assert dec.busy_cycles == interp.busy_cycles
        assert dec.exec_counts.data == interp.exec_counts.data
        assert dec.cycle_counts.data == interp.cycle_counts.data
