"""Cross-language integration: the same algorithm in all four languages
produces identical results on the same simulated machine."""

import pytest

from repro.asm import ControlStore
from repro.lang.empl import compile_empl
from repro.lang.simpl import compile_simpl
from repro.lang.sstar import compile_sstar
from repro.lang.yalll import compile_yalll
from repro.sim import Simulator

# Multiply 5 x 7 by repeated addition, one source per language.

SIMPL_MUL = """
program mul;
begin
    R0 -> R3;
    while R2 # 0 do
    begin
        R3 + R1 -> R3;
        R2 - ONE -> R2;
    end;
end
"""

EMPL_MUL = """
DECLARE A FIXED;
DECLARE B FIXED;
DECLARE P FIXED;
A = 5;
B = 7;
P = 0;
WHILE B # 0 DO;
    P = P + A;
    B = B - 1;
END;
"""

SSTAR_MUL = """
program mul;
var a : seq [15..0] bit bind R1;
var n : seq [15..0] bit bind R2;
var p : seq [15..0] bit bind R3;
begin
  p := 0;
  while n <> 0 do
  begin
    p := p + a;
    n := n - 1
  end
end
"""

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""


def execute(loaded, machine, setup):
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store)
    setup(simulator)
    simulator.run(loaded.name)
    return simulator


class TestSameAlgorithmEverywhere:
    def test_simpl(self, hm1):
        result = compile_simpl(SIMPL_MUL, hm1)

        def setup(simulator):
            simulator.state.write_reg("R1", 5)
            simulator.state.write_reg("R2", 7)

        simulator = execute(result.loaded, hm1, setup)
        assert simulator.state.read_reg("R3") == 35

    def test_empl(self, hm1):
        result = compile_empl(EMPL_MUL, hm1, name="mul")
        simulator = execute(result.loaded, hm1, lambda s: None)
        register = result.allocation.mapping["g_P"]
        assert simulator.state.read_reg(register) == 35

    def test_sstar(self, hm1):
        result = compile_sstar(SSTAR_MUL, hm1)

        def setup(simulator):
            simulator.state.write_reg("R1", 5)
            simulator.state.write_reg("R2", 7)

        simulator = execute(result.loaded, hm1, setup)
        assert simulator.state.read_reg("R3") == 35

    def test_yalll(self, hm1):
        result = compile_yalll(YALLL_MUL, hm1, name="mul")

        def setup(simulator):
            mapping = result.allocation.mapping
            simulator.state.write_reg(mapping["a"], 5)
            simulator.state.write_reg(mapping["n"], 7)

        store = ControlStore(hm1)
        store.load(result.loaded)
        simulator = Simulator(hm1, store)
        setup(simulator)
        outcome = simulator.run("mul")
        assert outcome.exit_value == 35


class TestCoexistenceInControlStore:
    def test_four_programs_resident_simultaneously(self, hm1):
        """§2.1.5: user microprograms coexist with other microcode in
        one control store; each must run from its own base address."""
        store = ControlStore(hm1)
        store.load(compile_simpl(SIMPL_MUL, hm1).loaded)
        store.load(compile_empl(EMPL_MUL, hm1, name="emul").loaded)
        store.load(compile_sstar(SSTAR_MUL, hm1).loaded)
        yalll = compile_yalll(YALLL_MUL, hm1, name="ymul")
        store.load(yalll.loaded)
        assert len(store.residents) == 4

        simulator = Simulator(hm1, store)
        simulator.state.write_reg("R1", 5)
        simulator.state.write_reg("R2", 7)
        simulator.run("mul")
        assert simulator.state.read_reg("R3") == 35

        simulator.state.write_reg(yalll.allocation.mapping["a"], 3)
        simulator.state.write_reg(yalll.allocation.mapping["n"], 4)
        outcome = simulator.run("ymul")
        assert outcome.exit_value == 12


class TestCompilerPipelineGrid:
    """Every front end x every composer stays correct (where legal)."""

    @pytest.mark.parametrize("composer_name",
                             ["sequential", "linear", "list", "branch-bound"])
    def test_yalll_across_composers(self, hm1, composer_name):
        from repro.compose import (
            BranchBoundComposer,
            LinearComposer,
            ListScheduler,
            SequentialComposer,
        )

        composer = {
            "sequential": SequentialComposer(),
            "linear": LinearComposer(),
            "list": ListScheduler(),
            "branch-bound": BranchBoundComposer(node_budget=5_000),
        }[composer_name]
        result = compile_yalll(YALLL_MUL, hm1, name="mul", composer=composer)
        store = ControlStore(hm1)
        store.load(result.loaded)
        simulator = Simulator(hm1, store)
        mapping = result.allocation.mapping
        simulator.state.write_reg(mapping["a"], 6)
        simulator.state.write_reg(mapping["n"], 7)
        assert simulator.run("mul").exit_value == 42
