"""Cross-machine property: legalization preserves semantics.

A program using rich operations (rol, nand, nand, wide literals,
multi-bit shifts) runs natively on HM1 and — after legalization
expands everything the baroque VAXm lacks — must compute the same
values there.  This exercises expansion, constant-ROM management,
dest-class copies and the allocator in one property.
"""

from hypothesis import given, settings, strategies as st

from repro.machine.machines import build_hm1, build_vax
from repro.mir import Imm, ProgramBuilder, mop, vreg
from repro.regalloc import LinearScanAllocator
from tests.conftest import run_mir

HM1 = build_hm1()
VAX = build_vax()

#: (op name, n_reg_srcs, imm_count_range) — ops VAXm must synthesize.
RICH_OPS = [
    ("add", 2, None), ("sub", 2, None), ("xor", 2, None),
    ("and", 2, None), ("or", 2, None),
    ("inc", 1, None), ("dec", 1, None), ("neg", 1, None),
    ("not", 1, None), ("nand", 2, None), ("nor", 2, None),
    ("shl", 1, (1, 4)), ("shr", 1, (1, 4)), ("rol", 1, (1, 7)),
]


def build_program(machine, ops_plan, seeds):
    builder = ProgramBuilder("equiv", machine)
    builder.start_block("entry")
    names = [f"w{i}" for i in range(4)]
    for name, seed in zip(names, seeds):
        builder.emit(mop("movi", vreg(name), Imm(seed)))
    import random

    rng = random.Random(ops_plan)
    for _ in range(10):
        op, n_srcs, imm_range = RICH_OPS[rng.randrange(len(RICH_OPS))]
        srcs = [vreg(rng.choice(names)) for _ in range(n_srcs)]
        if imm_range is not None:
            srcs.append(Imm(rng.randint(*imm_range)))
        builder.emit(mop(op, vreg(rng.choice(names)), *srcs))
    accumulator = vreg("out")
    builder.emit(mop("movi", accumulator, Imm(0)))
    for name in names:
        builder.emit(mop("xor", accumulator, accumulator, vreg(name)))
    builder.exit(accumulator)
    return builder.finish()


def run_on(machine, ops_plan, seeds):
    from repro.lang.common.legalize import legalize

    program = build_program(machine, ops_plan, seeds)
    legalize(program, machine)
    LinearScanAllocator().allocate(program, machine)
    result, _ = run_mir(program, machine)
    return result.exit_value


@settings(max_examples=40, deadline=None)
@given(
    ops_plan=st.integers(min_value=0, max_value=100_000),
    seeds=st.tuples(*[st.integers(min_value=0, max_value=0xFFFF)] * 4),
)
def test_legalized_vax_matches_native_hm1(ops_plan, seeds):
    native = run_on(HM1, ops_plan, seeds)
    legalized = run_on(VAX, ops_plan, seeds)
    assert native == legalized, (ops_plan, seeds)


@settings(max_examples=20, deadline=None)
@given(
    ops_plan=st.integers(min_value=0, max_value=100_000),
    seeds=st.tuples(*[st.integers(min_value=0, max_value=0xFFFF)] * 4),
)
def test_legalized_vm1_matches_native_hm1(ops_plan, seeds):
    from repro.machine.machines import build_vm1

    native = run_on(HM1, ops_plan, seeds)
    vertical = run_on(build_vm1(), ops_plan, seeds)
    assert native == vertical, (ops_plan, seeds)
