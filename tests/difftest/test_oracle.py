"""Axis oracles: observations, diffing and the four axis pairs."""

import pytest

from repro.difftest import Observation, generate_case, run_axis
from repro.difftest.oracle import AXES, diff_observations, observe
from repro.registry import build_machine


class TestObservation:
    def test_observe_runs_a_case_to_completion(self):
        case = generate_case("yalll", build_machine("HM1"), 0)
        seen = observe(case)
        assert seen.error is None
        assert seen.words
        assert seen.cycles > 0
        assert dict(seen.registers).keys() == set(case.observe)

    def test_compile_errors_become_observations(self):
        case = generate_case("yalll", build_machine("HM1"), 0)
        broken = case.with_source("    this is not yalll\n")
        seen = observe(broken)
        assert seen.error is not None
        assert not seen.words

    def test_memory_cases_observe_their_region(self):
        for seed in range(40):
            case = generate_case("empl", build_machine("HM1"), seed)
            if case.mem_region is None:
                continue
            seen = observe(case)
            assert seen.error is None
            assert seen.memory is not None
            assert len(seen.memory) == case.mem_region[1]
            return
        pytest.skip("no memory-touching empl case in the first 40 seeds")


class TestDiffing:
    def test_identical_observations_are_clean(self):
        a = Observation(words=(1, 2), cycles=5)
        assert diff_observations(a, a, ("words", "cycles")) == []

    def test_field_mismatch_is_named(self):
        a = Observation(cycles=5)
        b = Observation(cycles=6)
        (mismatch,) = diff_observations(a, b, ("cycles",))
        assert mismatch.startswith("cycles:")

    def test_error_asymmetry_diverges(self):
        ok = Observation(cycles=5)
        bad = Observation(error="SimulationError: boom")
        (mismatch,) = diff_observations(ok, bad, ("cycles",))
        assert mismatch.startswith("error:")

    def test_matching_errors_do_not_diverge(self):
        a = Observation(error="SimulationError: boom")
        b = Observation(error="SimulationError: boom")
        assert diff_observations(a, b, ("cycles",)) == []


class TestAxes:
    def test_all_axes_registered(self):
        assert set(AXES) == {
            "engine", "traced", "batched", "cache", "restart", "shards",
        }

    @pytest.mark.parametrize("axis", ("engine", "restart"))
    @pytest.mark.parametrize("lang", ("yalll", "simpl", "empl"))
    def test_axis_is_clean_on_healthy_toolkit(self, axis, lang):
        case = generate_case(lang, build_machine("HM1"), 3)
        assert run_axis(axis, case) is None

    def test_cache_axis_round_trips_disk(self, tmp_path):
        case = generate_case("yalll", build_machine("HM1"), 1)
        assert run_axis("cache", case, workdir=tmp_path) is None
        assert list(tmp_path.glob("cache-*/*.pkl"))

    def test_shards_axis_compares_reports(self):
        case = generate_case("yalll", build_machine("HM1"), 2)
        assert run_axis("shards", case) is None

    def test_engine_axis_sees_planted_semantic_bug(self):
        import repro.sim.decode as decode

        case = generate_case("yalll", build_machine("HM1"), 4)
        pristine = decode._LOGIC["xor"]
        decode._LOGIC["xor"] = lambda a, b: (a ^ b) ^ 1
        try:
            divergence = run_axis("engine", case)
        finally:
            decode._LOGIC["xor"] = pristine
        assert divergence is not None
        assert divergence.axis == "engine"
        assert any("registers" in m or "exit_value" in m
                   for m in divergence.mismatches)

    def test_batched_axis_clean_and_lane_count_honoured(self):
        from repro.difftest.oracle import observe_batch

        case = generate_case("yalll", build_machine("HM1"), 3)
        assert run_axis("batched", case) is None
        lanes = observe_batch(case, lanes=4)
        assert len(lanes) == 4
        scalar = observe(case, engine="decoded")
        for seen in lanes:
            assert seen.error is None
            assert seen.exit_value == scalar.exit_value
            assert seen.cycles == scalar.cycles
            assert seen.registers == scalar.registers

    def test_batched_axis_sees_planted_lane_corruption(self):
        import repro.sim.batch as batch

        # Memory-free cases keep their lanes batched (a paging trap
        # would peel them out of the plant's reach), but a corrupted
        # leader can still derail its own control flow into a full
        # peel — so sweep seeds until one corruption stays data-only.
        divergence = caught = None
        batch.PLANT_LANE_XOR = 1
        try:
            for seed in range(40):
                case = generate_case("yalll", build_machine("HM1"), seed)
                if case.uses_memory:
                    continue
                divergence = run_axis("batched", case, batch=4)
                if divergence is not None:
                    caught = case
                    break
        finally:
            batch.PLANT_LANE_XOR = 0
        assert divergence is not None, "no seed exposed the plant"
        assert divergence.axis == "batched"
        assert any(m.startswith("lane ") for m in divergence.mismatches)
        # The pristine toolkit re-verifies clean on the same case.
        assert run_axis("batched", caught, batch=4) is None

    def test_planted_bug_does_not_fool_interpretive_pair(self):
        """The plant only reroutes the decoded engine: the restart
        axis (interpretive on both sides) must stay clean under it."""
        import repro.sim.decode as decode

        case = generate_case("yalll", build_machine("HM1"), 4)
        pristine = decode._LOGIC["xor"]
        decode._LOGIC["xor"] = lambda a, b: (a ^ b) ^ 1
        try:
            assert run_axis("restart", case) is None
        finally:
            decode._LOGIC["xor"] = pristine
