"""Difftest generators: registration, determinism, validity.

The generators are only useful if every case they emit actually
compiles and runs on its target machine — a generator that produces
invalid programs turns every campaign into noise.  These tests pin
that property over a seed sweep for all five languages on all three
reference machines, plus the structural invariants the oracle relies
on (observe lists, memory regions, deterministic output per seed).
"""

import pytest

from repro.difftest import GeneratedCase, generate_case
from repro.registry import (
    RegistryError,
    build_machine,
    generator_names,
    get_generator,
    get_language,
    language_names,
)

MACHINES = ("HM1", "CM1", "VM1")
LANGS = ("empl", "mpl", "simpl", "sstar", "yalll")


class TestRegistry:
    def test_every_language_has_a_generator(self):
        assert generator_names() == language_names()

    def test_lookup_by_name(self):
        assert callable(get_generator("yalll"))

    def test_unknown_generator_raises(self):
        with pytest.raises(RegistryError, match="no difftest generator"):
            get_generator("cobol")


class TestDeterminism:
    @pytest.mark.parametrize("lang", LANGS)
    def test_same_seed_same_case(self, lang):
        machine_a, machine_b = build_machine("HM1"), build_machine("HM1")
        a = generate_case(lang, machine_a, 42)
        b = generate_case(lang, machine_b, 42)
        assert a == b

    def test_different_seeds_differ(self):
        machine = build_machine("HM1")
        sources = {
            generate_case("yalll", build_machine("HM1"), seed).source
            for seed in range(8)
        }
        assert len(sources) > 1


class TestValidity:
    @pytest.mark.parametrize("lang", LANGS)
    @pytest.mark.parametrize("machine_name", MACHINES)
    def test_generated_cases_compile(self, lang, machine_name):
        spec = get_language(lang)
        for seed in range(5):
            machine = build_machine(machine_name)
            case = generate_case(lang, machine, seed)
            result = spec.compile(case.source, machine)
            assert result.loaded.words, f"{lang}/{machine_name}/{seed}"

    @pytest.mark.parametrize("lang", LANGS)
    def test_case_metadata_is_coherent(self, lang):
        for seed in range(5):
            case = generate_case(lang, build_machine("HM1"), seed)
            assert isinstance(case, GeneratedCase)
            assert case.seed == seed
            assert case.lang == lang
            assert case.machine == "HM1"
            assert case.observe
            if case.mem_region is not None:
                assert case.uses_memory
                assert case.memory
            if case.has_stores:
                assert case.uses_memory

    def test_size_controls_program_length(self):
        small = generate_case("yalll", build_machine("HM1"), 0, size=4)
        large = generate_case("yalll", build_machine("HM1"), 0, size=30)
        assert len(large.source.splitlines()) > len(small.source.splitlines())

    def test_with_source_preserves_identity(self):
        case = generate_case("yalll", build_machine("HM1"), 0)
        clone = case.with_source("    exit fold\n")
        assert clone.source == "    exit fold\n"
        assert (clone.lang, clone.machine, clone.seed) == (
            case.lang, case.machine, case.seed,
        )
