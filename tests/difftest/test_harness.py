"""The difftest campaign loop and its planted-bug self-check."""

import json

import pytest

from repro.difftest import run_difftest, self_check
from repro.obs.tracer import Tracer


class TestRunDifftest:
    def test_small_campaign_is_clean(self):
        report = run_difftest(seed=0, budget=6, size=6)
        assert report.clean
        assert report.cases_run == 6
        assert report.pairs_run["engine"] == 6
        # Thinned axes ran on their schedule, not on every case.
        assert report.pairs_run["batched"] == 3
        assert report.pairs_run["cache"] == 2
        assert report.pairs_run["shards"] == 1

    def test_report_round_trips_to_json(self):
        report = run_difftest(seed=0, budget=3, size=6,
                              axes=("engine",))
        payload = json.loads(json.dumps(report.to_json()))
        assert payload["cases_run"] == 3
        assert payload["divergences"] == []
        assert "engine" in payload["pairs_run"]

    def test_lang_and_machine_filters(self):
        report = run_difftest(
            seed=0, budget=4, size=6, langs=("yalll",),
            machines=("VM1",), axes=("engine",),
        )
        assert report.clean
        assert report.langs == ("yalll",)
        assert report.machines == ("VM1",)

    def test_metrics_tally_cases_and_pairs(self):
        report = run_difftest(seed=0, budget=6, size=6)
        tallies = report.metrics.difftest
        assert int(tallies.get("cases")) == report.cases_run
        for axis, pairs in report.pairs_run.items():
            assert int(tallies.get(f"pairs.{axis}")) == pairs
        assert not any(str(k).startswith("divergences.")
                       for k in tallies.data)
        payload = report.to_json()
        assert payload["metrics"]["difftest"]["cases"] == report.cases_run

    def test_case_events_are_traced(self):
        tracer = Tracer()
        run_difftest(seed=0, budget=2, size=6, axes=("engine",),
                     tracer=tracer)
        names = [e.name for e in tracer.events]
        assert names.count("difftest.case") == 2
        assert "difftest.divergence" not in names


class TestSelfCheck:
    def test_planted_bug_found_and_shrunk(self, tmp_path):
        report = self_check(seed=0, budget=3, size=8)
        assert report.divergences
        first = report.divergences[0]
        assert first.axis == "engine"
        assert first.reduced_source
        assert len(first.reduced_source) <= len(first.case.source)

    def test_divergences_reach_the_corpus_dir(self, tmp_path):
        """A divergent campaign writes self-contained reproducers."""
        import repro.sim.decode as decode

        pristine = decode._LOGIC["xor"]
        decode._LOGIC["xor"] = lambda a, b: (a ^ b) ^ 1
        try:
            report = run_difftest(
                seed=0, budget=2, size=6, axes=("engine",),
                corpus_dir=tmp_path, reduce=False,
            )
        finally:
            decode._LOGIC["xor"] = pristine
        assert not report.clean
        files = sorted(tmp_path.glob("div-*.json"))
        assert len(files) == len(report.divergences)
        payload = json.loads(files[0].read_text())
        assert payload["axis"] == "engine"
        assert payload["source"]
        assert "--seed" in payload["repro"]

    def test_divergence_events_are_traced(self):
        import repro.sim.decode as decode

        tracer = Tracer()
        pristine = decode._LOGIC["xor"]
        decode._LOGIC["xor"] = lambda a, b: (a ^ b) ^ 1
        try:
            run_difftest(seed=0, budget=1, size=6, axes=("engine",),
                         reduce=False, tracer=tracer)
        finally:
            decode._LOGIC["xor"] = pristine
        names = [e.name for e in tracer.events]
        assert "difftest.divergence" in names


class TestCLI:
    def test_difftest_verb_clean_run(self, capsys):
        from repro.cli import main

        code = main([
            "difftest", "--seed", "0", "--budget", "3", "--size", "6",
            "--axes", "engine",
        ])
        assert code == 0
        assert "no divergence" in capsys.readouterr().out

    def test_difftest_verb_json(self, capsys):
        from repro.cli import main

        code = main([
            "difftest", "--seed", "0", "--budget", "2", "--size", "6",
            "--axes", "engine", "--json",
        ])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["cases_run"] == 2

    def test_difftest_verb_self_check(self, capsys):
        from repro.cli import main

        code = main(["difftest", "--self-check", "--budget", "3"])
        assert code == 0
        assert "self-check passed" in capsys.readouterr().out
