"""Greedy line-chunk reduction."""

from repro.difftest import reduce_source


class TestReduceSource:
    def test_keeps_only_needed_lines(self):
        source = "\n".join(f"line{i}" for i in range(20)) + "\n"

        def still_diverges(text: str) -> bool:
            return "line7" in text and "line13" in text

        reduced = reduce_source(source, still_diverges)
        kept = reduced.splitlines()
        assert "line7" in kept
        assert "line13" in kept
        assert len(kept) == 2

    def test_result_always_satisfies_predicate(self):
        source = "\n".join(f"l{i}" for i in range(17)) + "\n"

        def still_diverges(text: str) -> bool:
            return "l3" in text

        assert still_diverges(reduce_source(source, still_diverges))

    def test_irreducible_input_survives_unchanged(self):
        source = "a\nb\n"

        def still_diverges(text: str) -> bool:
            return "a" in text and "b" in text

        assert reduce_source(source, still_diverges) == source

    def test_predicate_exceptions_never_escape_by_contract(self):
        """The reducer trusts the predicate to absorb errors; a
        predicate that rejects malformed candidates (the oracle's
        behaviour) leaves paired structure intact."""
        source = "begin\nx\nend\ny\n"

        def still_diverges(text: str) -> bool:
            lines = text.splitlines()
            balanced = ("begin" in lines) == ("end" in lines)
            if not balanced:
                return False  # would be a compile error in real life
            return "x" in lines

        reduced = reduce_source(source, still_diverges)
        lines = reduced.splitlines()
        assert "x" in lines
        assert ("begin" in lines) == ("end" in lines)
        assert "y" not in lines

    def test_max_rounds_bounds_work(self):
        calls = []

        def still_diverges(text: str) -> bool:
            calls.append(text)
            return True

        reduce_source("a\nb\nc\nd\n", still_diverges, max_rounds=1)
        assert calls  # ran, but stopped after one chunk pass
