"""CHAMIL's datapath abstraction (§2.2.5) on the CM1 machine."""

import pytest

from repro.errors import MachineError, MIRError
from repro.lang.common.legalize import legalize
from repro.machine.datapath import DatapathGraph
from repro.machine.machines import build_cm1
from repro.mir import ProgramBuilder, mop, preg
from tests.conftest import run_mir


@pytest.fixture(scope="module")
def cm1():
    return build_cm1()


class TestDatapathGraph:
    def make(self):
        graph = DatapathGraph(routing_registers=frozenset({"L"}))
        graph.connect_bidirectional("A", "B")
        graph.connect_bidirectional("B", "L")
        graph.connect_bidirectional("L", "C")
        return graph

    def test_direct(self):
        graph = self.make()
        assert graph.is_direct("A", "B")
        assert not graph.is_direct("A", "C")

    def test_route_direct_is_single_hop(self):
        assert self.make().route("A", "B") == [("A", "B")]

    def test_route_through_latch(self):
        assert self.make().route("B", "C") == [("B", "L"), ("L", "C")]

    def test_route_refuses_architectural_intermediates(self):
        # A -> C exists only via B (architectural) then L: B may not be
        # clobbered, so there is no legal route from A.
        assert self.make().route("A", "C") is None

    def test_max_hops(self):
        graph = DatapathGraph(routing_registers=frozenset({"L1", "L2", "L3"}))
        graph.connect("A", "L1")
        graph.connect("L1", "L2")
        graph.connect("L2", "L3")
        graph.connect("L3", "B")
        assert graph.route("A", "B", max_hops=4) is not None
        assert graph.route("A", "B", max_hops=2) is None

    def test_validate_unknown_register(self):
        graph = DatapathGraph()
        graph.connect("A", "GHOST")
        with pytest.raises(MachineError):
            graph.validate({"A"})


class TestCM1Routing:
    def test_direct_move_untouched(self, cm1):
        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("mov", preg("R1"), preg("R2")))
        builder.exit()
        program = builder.finish()
        stats = legalize(program, cm1)
        assert stats.expansions == {}
        assert program.n_ops() == 1

    def test_cross_bus_move_routed_through_latch(self, cm1):
        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("mov", preg("R1"), preg("R5")))
        builder.exit()
        program = builder.finish()
        stats = legalize(program, cm1)
        assert stats.expansions.get("datapath-route") == 1
        ops = program.blocks["entry"].ops
        assert [str(op) for op in ops] == ["mov L0, R5", "mov R1, L0"]

    def test_routed_move_executes_correctly(self, cm1):
        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("mov", preg("R1"), preg("R5")))
        builder.emit(mop("mov", preg("R6"), preg("R2")))
        builder.exit(preg("R1"))
        program = builder.finish()
        legalize(program, cm1)
        result, simulator = run_mir(program, cm1,
                                    registers={"R5": 77, "R2": 55})
        assert result.exit_value == 77
        assert simulator.state.read_reg("R6") == 55

    def test_route_fits_one_chained_microcycle(self, cm1):
        """CHAMIL's condition: the indirect path is traversable within
        one microcycle — on CM1, phase-1 move into L0 chains into the
        phase-3 write-back move."""
        from repro.compose import BranchBoundComposer, compose_program

        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("mov", preg("R1"), preg("R5")))
        builder.exit(preg("R1"))
        program = builder.finish()
        legalize(program, cm1)
        composed = compose_program(program, cm1, BranchBoundComposer())
        assert composed.n_instructions() == 1  # both hops in one word

    def test_secondary_bus_local_moves_direct(self, cm1):
        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("mov", preg("R6"), preg("R5")))
        builder.exit()
        program = builder.finish()
        stats = legalize(program, cm1)
        assert "datapath-route" not in stats.expansions

    def test_latch_not_allocatable(self, cm1):
        names = {r.name for r in cm1.registers.allocatable()}
        assert "L0" not in names

    def test_alu_operands_unaffected_by_datapath(self, cm1):
        """The datapath constrains moves; ALU source selection is a
        separate (select-field) matter, as on the real machines."""
        builder = ProgramBuilder("t", cm1)
        builder.start_block("entry")
        builder.emit(mop("add", preg("R1"), preg("R5"), preg("R2")))
        builder.exit(preg("R1"))
        program = builder.finish()
        legalize(program, cm1)
        result, _ = run_mir(program, cm1, registers={"R5": 30, "R2": 12})
        assert result.exit_value == 42
