"""Registers, register classes, windows and banks."""

import pytest

from repro.errors import MachineError
from repro.machine.registers import (
    CONST,
    GPR,
    MAR,
    Register,
    RegisterFile,
    const_register,
    gpr,
)


class TestRegister:
    def test_mask_matches_width(self):
        assert Register("X", 8).mask == 0xFF
        assert Register("Y", 16).mask == 0xFFFF
        assert Register("Z", 1).mask == 1

    def test_zero_width_rejected(self):
        with pytest.raises(MachineError):
            Register("X", 0)

    def test_reset_must_fit(self):
        with pytest.raises(MachineError):
            Register("X", 4, reset=16)

    def test_reset_in_range_ok(self):
        assert Register("X", 4, reset=15).reset == 15

    def test_class_membership(self):
        register = gpr("R1", 16, "acc")
        assert register.is_in(GPR)
        assert register.is_in("acc")
        assert not register.is_in(MAR)

    def test_const_register_is_readonly(self):
        register = const_register("C0", 16, 0xBEEF)
        assert register.readonly
        assert register.reset == 0xBEEF
        assert register.is_in(CONST)

    def test_const_register_masks_value(self):
        assert const_register("C0", 8, 0x1FF).reset == 0xFF


class TestRegisterFile:
    def make(self):
        rf = RegisterFile()
        rf.add(gpr("R1", 16))
        rf.add(gpr("R2", 16, "special"))
        rf.add(const_register("C0", 16, 7))
        rf.add(Register("MAR", 16, classes=frozenset({MAR})))
        return rf

    def test_lookup(self):
        rf = self.make()
        assert rf["R1"].name == "R1"
        assert "R2" in rf
        assert "missing" not in rf

    def test_unknown_raises(self):
        with pytest.raises(MachineError):
            self.make()["nope"]

    def test_duplicate_rejected(self):
        rf = self.make()
        with pytest.raises(MachineError):
            rf.add(gpr("R1", 16))

    def test_in_class(self):
        rf = self.make()
        assert {r.name for r in rf.in_class(GPR)} == {"R1", "R2"}
        assert [r.name for r in rf.in_class("special")] == ["R2"]

    def test_allocatable_excludes_const_and_mar(self):
        rf = self.make()
        names = {r.name for r in rf.allocatable()}
        assert names == {"R1", "R2"}

    def test_macro_visible(self):
        rf = self.make()
        assert rf.macro_visible() == []
        rf.add(gpr("R3", 16, macro_visible=True))
        assert [r.name for r in rf.macro_visible()] == ["R3"]

    def test_names_order(self):
        assert self.make().names() == ["R1", "R2", "C0", "MAR"]


class TestWindows:
    def make(self):
        rf = RegisterFile(n_banks=2)
        rf.add(gpr("G0_0", 16), bank=0)
        rf.add(gpr("G1_0", 16), bank=1)
        rf.add_window("G0", ("G0_0", "G1_0"))
        rf.bank_pointer = "BLK"
        return rf

    def test_window_resolution(self):
        rf = self.make()
        assert rf.resolve_window("G0", 0) == "G0_0"
        assert rf.resolve_window("G0", 1) == "G1_0"

    def test_window_contains_and_getitem(self):
        rf = self.make()
        assert "G0" in rf
        assert rf["G0"].width == 16

    def test_window_bad_bank(self):
        with pytest.raises(MachineError):
            self.make().resolve_window("G0", 5)

    def test_window_wrong_count(self):
        rf = self.make()
        with pytest.raises(MachineError):
            rf.add_window("G9", ("G0_0",))

    def test_window_unknown_physical(self):
        rf = self.make()
        with pytest.raises(MachineError):
            rf.add_window("G8", ("nope", "G1_0"))

    def test_duplicate_window_name(self):
        rf = self.make()
        with pytest.raises(MachineError):
            rf.add_window("G0", ("G0_0", "G1_0"))

    def test_bank_out_of_range_on_add(self):
        rf = RegisterFile(n_banks=2)
        with pytest.raises(MachineError):
            rf.add(gpr("X", 16), bank=5)

    def test_is_window(self):
        rf = self.make()
        assert rf.is_window("G0")
        assert not rf.is_window("G0_0")
