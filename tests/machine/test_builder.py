"""MachineBuilder error paths and conveniences."""

import pytest

from repro.errors import MachineError
from repro.machine.builder import MachineBuilder
from repro.machine.registers import gpr


def base_builder():
    b = MachineBuilder("T", word_size=8)
    b.regs(gpr("A", 8), gpr("B", 8))
    b.unit("alu", phase=1)
    return b


class TestBuilder:
    def test_duplicate_unit(self):
        b = base_builder()
        with pytest.raises(MachineError):
            b.unit("alu", phase=1)

    def test_duplicate_field(self):
        b = base_builder()
        b.order_field("f", ["X"])
        with pytest.raises(MachineError):
            b.order_field("f", ["Y"])

    def test_select_field_unknown_register(self):
        b = base_builder()
        with pytest.raises(MachineError):
            b.select_field("sel", ["A", "Z"])

    def test_select_field_encodings(self):
        b = base_builder()
        b.select_field("sel", ["A", "B"])
        machine_field = b._fields[-1]
        assert machine_field.encodings == {"NONE": 0, "A": 1, "B": 2}

    def test_order_field_width(self):
        b = base_builder()
        b.order_field("ops", [f"O{i}" for i in range(6)])  # 7 with NOP
        assert b._fields[-1].width == 3

    def test_build_validates(self):
        b = base_builder()
        b.order_field("alu_op", ["ADD"])
        b.select_field("alu_a", ["A"]).select_field("alu_d", ["A", "B"])
        b.op("add", "alu", srcs=2, dest=True, settings={
            "alu_op": "ADD", "alu_a": "$src0", "alu_d": "$dest",
        })
        machine = b.build()
        assert machine.has_op("add")

    def test_build_rejects_bad_phase(self):
        b = base_builder()
        b.unit("late", phase=9)
        with pytest.raises(MachineError):
            b.build(n_phases=2)
