"""The six shipped machine descriptions."""

import pytest

from repro.errors import EncodingError, MachineError
from repro.machine.machines import get_machine, machine_names
from repro.machine.opspec import OpSpec
from repro.machine.registers import MAR, MBR


class TestRegistry:
    def test_names(self):
        assert machine_names() == ["HM1", "CM1", "HP300m", "VAXm", "VM1", "ID3200m"]

    def test_unknown_machine(self):
        with pytest.raises(MachineError):
            get_machine("PDP-11")

    def test_fresh_instances(self):
        assert get_machine("HM1") is not get_machine("HM1")

    @pytest.mark.parametrize("name", ["HM1", "CM1", "HP300m", "VAXm", "VM1", "ID3200m"])
    def test_all_validate(self, name):
        machine = get_machine(name)
        machine.validate()
        assert machine.word_size == 16
        assert machine.summary()


class TestHM1:
    def test_three_phases_with_chaining(self, hm1):
        assert hm1.n_phases == 3
        assert hm1.allows_phase_chaining

    def test_r0_is_hardwired_zero(self, hm1):
        assert hm1.registers["R0"].readonly
        assert hm1.registers["R0"].reset == 0

    def test_mov_has_three_variants(self, hm1):
        phases = sorted(hm1.phase_of(v) for v in hm1.op_variants("mov"))
        assert phases == [1, 1, 3]

    def test_memory_latency(self, hm1):
        assert hm1.latency_of(hm1.op("read")) == 2
        assert hm1.latency_of(hm1.op("add")) == 1

    def test_read_constrains_operand_classes(self, hm1):
        spec = hm1.op("read")
        assert spec.src_classes == (MAR,)
        assert spec.dest_class == MBR

    def test_multiway_supported(self, hm1):
        assert hm1.has_multiway_branch
        assert "DISP" in hm1.control["br_mode"].encodings

    def test_bitfield_ops_present(self, hm1):
        assert hm1.has_op("ext") and hm1.has_op("dep")
        assert hm1.op("dep").reads_dest


class TestVAXm:
    def test_single_phase_no_chaining(self, vax):
        assert vax.n_phases == 1
        assert not vax.allows_phase_chaining

    def test_no_inc_dec(self, vax):
        assert not vax.has_op("inc")
        assert not vax.has_op("dec")

    def test_alu_dest_restricted(self, vax):
        assert vax.op("add").dest_class == "aluout"
        assert vax.registers["T0"].is_in("aluout")
        assert not vax.registers["T5"].is_in("aluout")

    def test_macro_visible_registers(self, vax):
        assert {r.name for r in vax.registers.macro_visible()} == {
            "R0", "R1", "R2", "R3"
        }

    def test_short_literal_field(self, vax):
        assert vax.control["lit_val"].width == 8

    def test_memory_jams_move_path(self, vax):
        read_fields = vax.op("read").fields_used()
        mov_fields = vax.op("mov").fields_used()
        assert {"m_src", "m_dst"} <= read_fields & mov_fields

    def test_no_multiway(self, vax):
        assert not vax.has_multiway_branch
        assert "DISP" not in vax.control["br_mode"].encodings


class TestVM1:
    def test_vertical_shares_one_op_field(self, vm1):
        assert vm1.vertical
        for name in ("add", "mov", "shl", "read"):
            assert ("v_op" in dict(vm1.op(name).settings))

    def test_single_phase(self, vm1):
        assert vm1.n_phases == 1


class TestID3200:
    def test_windows_and_bank_pointer(self, id3200):
        assert id3200.registers.bank_pointer == "BLK"
        assert id3200.registers.is_window("G3")
        assert id3200.registers.resolve_window("G3", 5) == "G5_3"

    def test_setblk_op(self, id3200):
        spec = id3200.op("setblk")
        assert spec.imm_srcs == frozenset({0})


class TestResolveSettings:
    def test_placeholders_resolved(self, hm1):
        spec = hm1.op("add")
        settings = hm1.resolve_settings(spec, "R3", ("R1", "R2"))
        assert settings == {
            "alu_op": "ADD", "alu_a": "R1", "alu_b": "R2", "alu_d": "R3",
        }

    def test_immediate_placeholder(self, hm1):
        spec = hm1.op("movi")
        settings = hm1.resolve_settings(spec, "R1", (42,))
        assert settings == {"lit_val": 42, "lit_dst": "R1"}

    def test_wrong_arity(self, hm1):
        with pytest.raises(EncodingError):
            hm1.resolve_settings(hm1.op("add"), "R3", ("R1",))

    def test_missing_dest(self, hm1):
        with pytest.raises(EncodingError):
            hm1.resolve_settings(hm1.op("add"), None, ("R1", "R2"))

    def test_register_where_imm_expected(self, hm1):
        with pytest.raises(EncodingError):
            hm1.resolve_settings(hm1.op("movi"), "R1", ("R2",))

    def test_imm_where_register_expected(self, hm1):
        with pytest.raises(EncodingError):
            hm1.resolve_settings(hm1.op("add"), "R3", (1, 2))


class TestValidation:
    def test_unknown_unit_rejected(self, hm1):
        bad = OpSpec("bogus", "warp-drive", 0, False, ())
        hm1.ops.add(bad)
        try:
            with pytest.raises(MachineError):
                hm1.validate()
        finally:
            hm1.ops._variants.pop("bogus")
            hm1.validate()

    def test_op_lookup_missing(self, hm1):
        with pytest.raises(MachineError):
            hm1.op("teleport")

    def test_unit_lookup_missing(self, hm1):
        with pytest.raises(MachineError):
            hm1.unit("warp")
