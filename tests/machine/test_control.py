"""Control-word fields, encodings and packing."""

import pytest

from repro.errors import EncodingError, MachineError
from repro.machine.control import ControlWordFormat, Field


def make_format():
    return ControlWordFormat([
        Field("op", 3, encodings={"NOP": 0, "ADD": 1, "SUB": 2}),
        Field("src", 2, encodings={"NONE": 0, "R1": 1, "R2": 2}),
        Field("lit", 8, is_immediate=True),
    ])


class TestField:
    def test_encode_order(self):
        field = Field("op", 3, encodings={"ADD": 1})
        assert field.encode("ADD") == 1

    def test_encode_unknown_order(self):
        with pytest.raises(EncodingError):
            Field("op", 3, encodings={"ADD": 1}).encode("MUL")

    def test_encode_immediate(self):
        field = Field("lit", 8, is_immediate=True)
        assert field.encode(0xAB) == 0xAB

    def test_immediate_masks(self):
        assert Field("lit", 4, is_immediate=True).encode(0x1F) == 0xF

    def test_immediate_rejects_string(self):
        with pytest.raises(EncodingError):
            Field("lit", 8, is_immediate=True).encode("R1")

    def test_raw_code_accepted(self):
        field = Field("op", 3, encodings={"ADD": 1})
        assert field.encode(2) == 2

    def test_raw_code_out_of_range(self):
        with pytest.raises(EncodingError):
            Field("op", 2, encodings={"ADD": 1}).encode(9)

    def test_encoding_must_fit_width(self):
        with pytest.raises(MachineError):
            Field("op", 2, encodings={"X": 4})

    def test_decode_roundtrip(self):
        field = Field("op", 3, encodings={"ADD": 1, "SUB": 2})
        assert field.decode(field.encode("SUB")) == "SUB"
        assert field.decode(7) == 7  # unknown code passes through

    def test_zero_width_rejected(self):
        with pytest.raises(MachineError):
            Field("op", 0)


class TestControlWordFormat:
    def test_total_width(self):
        assert make_format().width == 3 + 2 + 8

    def test_offsets_are_cumulative(self):
        fmt = make_format()
        assert fmt.offset("op") == 0
        assert fmt.offset("src") == 3
        assert fmt.offset("lit") == 5

    def test_duplicate_field_rejected(self):
        with pytest.raises(MachineError):
            ControlWordFormat([Field("a", 1), Field("a", 1)])

    def test_pack_unpack_roundtrip(self):
        fmt = make_format()
        word = fmt.pack({"op": "ADD", "src": "R2", "lit": 0x55})
        codes = fmt.unpack(word)
        assert codes == {"op": 1, "src": 2, "lit": 0x55}

    def test_pack_defaults_to_nop(self):
        fmt = make_format()
        assert fmt.unpack(fmt.pack({})) == {"op": 0, "src": 0, "lit": 0}

    def test_pack_unknown_field(self):
        with pytest.raises(EncodingError):
            make_format().pack({"bogus": 1})

    def test_unpack_out_of_range(self):
        fmt = make_format()
        with pytest.raises(EncodingError):
            fmt.unpack(1 << fmt.width)

    def test_unknown_field_lookup(self):
        with pytest.raises(MachineError):
            make_format()["nope"]

    def test_describe_lists_fields(self):
        text = make_format().describe()
        assert "op" in text and "lit" in text and "13 bits" in text

    def test_iteration_and_names(self):
        fmt = make_format()
        assert fmt.names() == ["op", "src", "lit"]
        assert len(fmt) == 3
        assert [f.name for f in fmt] == fmt.names()
