"""OpSpec and OperationTable behaviour."""

import pytest

from repro.errors import MachineError
from repro.machine.opspec import OperationTable, OpSpec


def spec(name="add", variant="", n_srcs=2, has_dest=True, **kwargs):
    return OpSpec(
        name=name, unit="alu", n_srcs=n_srcs, has_dest=has_dest,
        settings=(("alu_op", name.upper()),), variant=variant, **kwargs,
    )


class TestOpSpec:
    def test_key_includes_variant(self):
        assert spec().key == "add"
        assert spec(variant="b").key == "add/b"

    def test_fields_used(self):
        s = OpSpec("mov", "mova", 1, True,
                   settings=(("a_src", "$src0"), ("a_dst", "$dest")))
        assert s.fields_used() == {"a_src", "a_dst"}

    def test_src_classes_length_checked(self):
        with pytest.raises(MachineError):
            spec(src_classes=("gpr",))

    def test_src_class_default_none(self):
        assert spec().src_class(0) is None
        assert spec(src_classes=("gpr", None)).src_class(0) == "gpr"

    def test_imm_src_index_checked(self):
        with pytest.raises(MachineError):
            spec(imm_srcs=frozenset({5}))


class TestOperationTable:
    def test_variants_ordered(self):
        table = OperationTable()
        table.add(spec(variant="a", name="mov", n_srcs=1))
        table.add(spec(variant="b", name="mov", n_srcs=1))
        assert [v.variant for v in table.variants("mov")] == ["a", "b"]
        assert table.default("mov").variant == "a"

    def test_duplicate_variant_rejected(self):
        table = OperationTable()
        table.add(spec())
        with pytest.raises(MachineError):
            table.add(spec())

    def test_variants_must_agree_on_arity(self):
        table = OperationTable()
        table.add(spec(variant="a"))
        with pytest.raises(MachineError):
            table.add(spec(variant="b", n_srcs=1))

    def test_unknown_op(self):
        with pytest.raises(MachineError):
            OperationTable().variants("nope")

    def test_contains_and_names(self):
        table = OperationTable()
        table.add(spec())
        assert "add" in table
        assert table.names() == ["add"]
        assert len(list(table)) == 1
