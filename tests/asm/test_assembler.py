"""Assembler: layout, sequencing encodings, fixups, round trips."""

import pytest

from repro.asm import ControlStore, assemble
from repro.compose import ListScheduler, SequentialComposer, compose_program
from repro.errors import AssemblerError
from repro.mir import (
    Branch,
    Jump,
    MaskCase,
    Multiway,
    ProgramBuilder,
    mop,
    preg,
)


def build_branchy(hm1, then_adjacent=True):
    b = ProgramBuilder("t", hm1)
    b.start_block("entry")
    b.emit(mop("cmp", None, preg("R1"), preg("R2")))
    if then_adjacent:
        b.terminate(Branch("Z", "yes", "no"))
        b.start_block("no")
        b.exit()
        b.start_block("yes")
        b.exit()
    else:
        b.terminate(Branch("Z", "yes", "no"))
        b.start_block("mid")
        b.exit()
        b.start_block("yes")
        b.exit()
        b.start_block("no")
        b.exit()
    return b.finish()


def load(program, machine, composer=None):
    composed = compose_program(program, machine, composer or SequentialComposer())
    return assemble(composed, machine)


class TestLayout:
    def test_consecutive_addresses(self, hm1):
        loaded = load(build_branchy(hm1), hm1)
        addresses = [w.address for w in loaded.words]
        assert addresses == list(range(len(loaded.words)))

    def test_labels_resolve(self, hm1):
        loaded = load(build_branchy(hm1), hm1)
        assert loaded.labels["entry"] == 0
        assert loaded.entry == 0
        assert set(loaded.labels) == {"entry", "no", "yes"}

    def test_control_store_size_enforced(self, hm1):
        b = ProgramBuilder("big", hm1)
        b.start_block("a")
        for _ in range(hm1.control_store_size + 1):
            b.emit(mop("nop"))
        b.exit()
        with pytest.raises(AssemblerError):
            load(b.finish(), hm1)


class TestSequencing:
    def test_adjacent_branch_single_word(self, hm1):
        loaded = load(build_branchy(hm1, then_adjacent=True), hm1)
        entry_last = loaded.words[loaded.labels["entry"]]
        assert entry_last.settings["br_mode"] == "BR"
        assert entry_last.settings["br_cond"] == "Z"
        assert entry_last.settings["br_addr"] == loaded.labels["yes"]

    def test_inverted_branch_when_target_adjacent(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("entry")
        b.emit(mop("cmp", None, preg("R1"), preg("R2")))
        b.terminate(Branch("Z", "yes", "no"))
        b.start_block("yes")   # target adjacent -> invert to NZ no
        b.exit()
        b.start_block("no")
        b.exit()
        loaded = load(b.finish(), hm1)
        word = loaded.words[loaded.labels["entry"]]
        assert word.settings["br_cond"] == "NZ"
        assert word.settings["br_addr"] == loaded.labels["no"]

    def test_nonadjacent_branch_gets_fixup_word(self, hm1):
        program = build_branchy(hm1, then_adjacent=False)
        loaded = load(program, hm1)
        # entry block: one word (cmp + branch) followed by the fixup.
        fixup = loaded.words[1]
        assert fixup.settings["br_mode"] == "JUMP"
        assert fixup.settings["br_addr"] == loaded.labels["no"]

    def test_fallthrough_to_adjacent_is_next(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("nop"))
        b.start_block("b")
        b.exit()
        loaded = load(b.finish(), hm1)
        assert loaded.words[0].settings["br_mode"] == "NEXT"

    def test_exit_value_recorded(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.exit(preg("R3"))
        loaded = load(b.finish(), hm1)
        assert loaded.exit_values[0] == "R3"

    def test_multiway_requires_hardware(self, vax):
        b = ProgramBuilder("t", vax)
        b.start_block("a")
        b.terminate(Multiway(preg("T0"), (MaskCase("1", "b"),), "b"))
        b.start_block("b")
        b.exit()
        with pytest.raises(AssemblerError):
            load(b.finish(), vax)

    def test_multiway_dispatch_table_recorded(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.terminate(Multiway(preg("R1"), (MaskCase("1", "b"),), "c"))
        b.start_block("b")
        b.exit()
        b.start_block("c")
        b.exit()
        loaded = load(b.finish(), hm1)
        register, cases, default = loaded.dispatch_tables[0]
        assert register == "R1"
        assert default == loaded.labels["c"]

    def test_call_encodes_procedure_address(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("main")
        b.declare_procedure("p", "pentry")
        b.call("p")
        b.exit()
        b.start_block("pentry")
        b.ret()
        loaded = load(b.finish(), hm1)
        call_word = loaded.words[0]
        assert call_word.settings["br_mode"] == "CALL"
        assert call_word.settings["br_addr"] == loaded.procedures["p"]


class TestBits:
    def test_words_pack_and_unpack(self, hm1):
        loaded = load(build_branchy(hm1), hm1)
        for word in loaded.words:
            codes = hm1.control.unpack(word.word)
            for name, value in word.settings.items():
                expected = hm1.control[name].encode(value)
                assert codes[name] == expected

    def test_listing_contains_labels_and_hex(self, hm1):
        loaded = load(build_branchy(hm1), hm1)
        listing = loaded.listing(hm1)
        assert "entry:" in listing and "yes:" in listing
        assert "cmp R1, R2" in listing

    def test_word_at_bounds(self, hm1):
        loaded = load(build_branchy(hm1), hm1)
        with pytest.raises(AssemblerError):
            loaded.word_at(999)


class TestControlStore:
    def test_loads_at_consecutive_bases(self, hm1):
        store = ControlStore(hm1)
        first = store.load(load(build_branchy(hm1), hm1))
        second_program = load(build_branchy(hm1), hm1)
        second_program.name = "t2"
        second = store.load(second_program)
        assert second.base == first.base + len(first.program)

    def test_overlap_rejected(self, hm1):
        store = ControlStore(hm1)
        store.load(load(build_branchy(hm1), hm1), base=0)
        other = load(build_branchy(hm1), hm1)
        other.name = "t2"
        with pytest.raises(AssemblerError):
            store.load(other, base=1)

    def test_wrong_machine_rejected(self, hm1, vax):
        loaded = load(build_branchy(hm1), hm1)
        with pytest.raises(AssemblerError):
            ControlStore(vax).load(loaded)

    def test_fetch_and_find(self, hm1):
        store = ControlStore(hm1)
        resident = store.load(load(build_branchy(hm1), hm1), base=10)
        assert store.find("t") is resident
        assert store.fetch(10).address == 0
        with pytest.raises(AssemblerError):
            store.fetch(5)
        with pytest.raises(AssemblerError):
            store.find("ghost")
