"""Property: every assembled word unpacks back to its field settings.

The packed control words are the artifact 1980 hardware would actually
load; if packing were lossy or fields overlapped, decoded codes would
disagree with the structured settings.
"""

from hypothesis import given, settings, strategies as st

from repro.asm import assemble
from repro.bench.workloads import random_program
from repro.compose import ListScheduler, compose_program
from repro.machine.machines import build_hm1, build_hp300, build_vax, build_vm1
from repro.regalloc import LinearScanAllocator

MACHINES = {
    "HM1": build_hm1(),
    "HP300m": build_hp300(),
    "VAXm": build_vax(),
    "VM1": build_vm1(),
}


@settings(max_examples=25, deadline=None)
@given(
    machine_name=st.sampled_from(sorted(MACHINES)),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_pack_unpack_roundtrip(machine_name, seed):
    machine = MACHINES[machine_name]
    program = random_program(
        machine, n_blocks=2, ops_per_block=6, seed=seed, n_variables=5
    )
    LinearScanAllocator().allocate(program, machine)
    composed = compose_program(program, machine, ListScheduler())
    loaded = assemble(composed, machine)
    for word in loaded.words:
        codes = machine.control.unpack(word.word)
        for name, value in word.settings.items():
            assert codes[name] == machine.control[name].encode(value), (
                machine_name, word.address, name
            )
        # Unset fields must be at their NOP codes.
        for name, code in codes.items():
            if name not in word.settings:
                assert code == machine.control[name].nop_code


@settings(max_examples=25, deadline=None)
@given(
    machine_name=st.sampled_from(sorted(MACHINES)),
    seed=st.integers(min_value=0, max_value=5_000),
)
def test_words_fit_declared_width(machine_name, seed):
    machine = MACHINES[machine_name]
    program = random_program(
        machine, n_blocks=1, ops_per_block=8, seed=seed, n_variables=4
    )
    LinearScanAllocator().allocate(program, machine)
    composed = compose_program(program, machine, ListScheduler())
    loaded = assemble(composed, machine)
    limit = 1 << machine.control.width
    assert all(0 <= word.word < limit for word in loaded.words)
