"""MicroProgram and ProgramBuilder."""

import pytest

from repro.errors import MIRError
from repro.mir import (
    Branch,
    Exit,
    Imm,
    Jump,
    MicroProgram,
    Multiway,
    MaskCase,
    ProgramBuilder,
    mop,
    preg,
    vreg,
)


class TestBuilder:
    def test_fallthrough_inserted_between_blocks(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("nop"))
        b.start_block("b")
        b.exit()
        program = b.finish()
        assert program.block("a").successors() == ("b",)

    def test_entry_is_first_block(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("first")
        b.exit()
        assert b.finish().entry == "first"

    def test_unterminated_final_block_gets_exit(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("nop"))
        program = b.finish()
        assert isinstance(program.block("a").terminator, Exit)

    def test_fresh_labels_unique(self, hm1):
        b = ProgramBuilder("t", hm1)
        labels = {b.fresh_label() for _ in range(50)}
        assert len(labels) == 50

    def test_call_creates_continuation(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("main")
        b.declare_procedure("p", "pentry")
        cont = b.call("p")
        b.exit()
        b.start_block("pentry")
        b.ret()
        program = b.finish()
        assert program.block("main").terminator.proc == "p"
        assert program.block("main").terminator.next == cont

    def test_duplicate_procedure_rejected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.declare_procedure("p", "x")
        with pytest.raises(MIRError):
            b.declare_procedure("p", "y")


class TestConstants:
    def test_special_values_use_hardwired_registers(self, hm1):
        b = ProgramBuilder("t", hm1)
        assert b.constant(0) == preg("R0")
        assert b.constant(1) == preg("ONE")
        assert b.constant(0xFFFF) == preg("MINUS1")

    def test_rom_slot_assigned_and_reused(self, hm1):
        b = ProgramBuilder("t", hm1)
        first = b.constant(0x1234)
        again = b.constant(0x1234)
        assert first == again
        assert b.program.constants[first.name] == 0x1234

    def test_distinct_values_distinct_slots(self, hm1):
        b = ProgramBuilder("t", hm1)
        slots = {b.constant(v).name for v in (10, 20, 30)}
        assert len(slots) == 3

    def test_rom_exhaustion_falls_back_to_imm(self, hm1):
        b = ProgramBuilder("t", hm1)
        for value in range(100, 100 + 8):
            b.constant(value)
        fallback = b.constant(0x4242)
        assert fallback == Imm(0x4242)

    def test_without_machine_constants_are_immediates(self):
        assert ProgramBuilder("t").constant(5) == Imm(5)


class TestValidation:
    def test_unknown_target_rejected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.terminate(Jump("nowhere"))
        with pytest.raises(MIRError):
            b.finish()

    def test_unterminated_block_rejected(self):
        program = MicroProgram("t")
        from repro.mir import BasicBlock

        program.add_block(BasicBlock("a"))
        program.entry = "a"
        with pytest.raises(MIRError):
            program.validate()

    def test_call_unknown_procedure_rejected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("main")
        b.current.terminate(
            __import__("repro.mir", fromlist=["Call"]).Call("ghost", "main")
        )
        with pytest.raises(MIRError):
            b.finish()

    def test_duplicate_block_rejected(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.exit()
        with pytest.raises(MIRError):
            b.start_block("a")


class TestRenaming:
    def test_rename_covers_terminators(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("inc", vreg("x"), vreg("x")))
        b.exit(vreg("x"))
        program = b.finish()
        program.rename_regs({vreg("x"): preg("R1")})
        assert program.block("a").terminator.value == preg("R1")
        assert not program.virtual_regs()

    def test_rename_covers_multiway(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.terminate(Multiway(vreg("x"), (MaskCase("1", "a"),), "a"))
        program = b.program
        program.entry = "a"
        program.rename_regs({vreg("x"): preg("R1")})
        assert program.block("a").terminator.reg == preg("R1")

    def test_virtual_regs_sees_terminator_operands(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.exit(vreg("only_here"))
        assert vreg("only_here") in b.program.virtual_regs()

    def test_n_ops(self, hm1):
        b = ProgramBuilder("t", hm1)
        b.start_block("a")
        b.emit(mop("nop"))
        b.emit(mop("nop"))
        b.exit()
        assert b.finish().n_ops() == 2
