"""Operands and micro-operations."""

import pytest

from repro.errors import MIRError
from repro.mir import Imm, MicroOp, Reg, mop, preg, vreg


class TestOperands:
    def test_str_forms(self):
        assert str(preg("R1")) == "R1"
        assert str(vreg("x")) == "%x"
        assert str(Imm(7)) == "#7"

    def test_equality_distinguishes_virtual(self):
        assert preg("x") != vreg("x")
        assert vreg("x") == vreg("x")

    def test_hashable(self):
        assert len({preg("a"), preg("a"), vreg("a")}) == 2


class TestMicroOp:
    def test_src_regs_filters_immediates(self):
        op = mop("shl", preg("R1"), preg("R2"), Imm(3))
        assert op.src_regs() == (preg("R2"),)
        assert op.src_imms() == (Imm(3),)

    def test_regs_includes_dest(self):
        op = mop("add", preg("R1"), preg("R2"), preg("R3"))
        assert set(op.regs()) == {preg("R1"), preg("R2"), preg("R3")}

    def test_rename(self):
        op = mop("add", vreg("a"), vreg("a"), vreg("b"))
        renamed = op.rename({vreg("a"): preg("R1"), vreg("b"): preg("R2")})
        assert renamed.dest == preg("R1")
        assert renamed.srcs == (preg("R1"), preg("R2"))

    def test_rename_leaves_immediates(self):
        op = mop("shl", vreg("a"), vreg("a"), Imm(1))
        renamed = op.rename({vreg("a"): preg("R1")})
        assert renamed.srcs[1] == Imm(1)

    def test_bad_dest_rejected(self):
        with pytest.raises(MIRError):
            MicroOp("add", dest=Imm(1))  # type: ignore[arg-type]

    def test_bad_src_rejected(self):
        with pytest.raises(MIRError):
            MicroOp("add", dest=preg("R1"), srcs=("R2",))  # type: ignore[arg-type]

    def test_str(self):
        assert str(mop("add", preg("R1"), preg("R2"), Imm(3))) == "add R1, R2, #3"
        assert str(mop("write", None, preg("MAR"), preg("MBR"))) == "write MAR, MBR"
        assert str(mop("nop")) == "nop"

    def test_with_operands(self):
        op = mop("add", preg("R1"), preg("R2"), preg("R3"), comment="k")
        replaced = op.with_operands(preg("R4"), (preg("R5"), preg("R6")))
        assert replaced.dest == preg("R4")
        assert replaced.comment == "k"
