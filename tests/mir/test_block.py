"""Basic blocks and terminators."""

import pytest

from repro.errors import MIRError
from repro.mir import (
    BasicBlock,
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    MaskCase,
    Multiway,
    Ret,
    mop,
    preg,
)


class TestTerminators:
    def test_successors(self):
        assert Jump("a").successors() == ("a",)
        assert Fallthrough("b").successors() == ("b",)
        assert Branch("Z", "t", "f").successors() == ("t", "f")
        assert Ret().successors() == ()
        assert Exit().successors() == ()
        assert Call("p", "next").successors() == ("next",)

    def test_branch_condition_checked(self):
        with pytest.raises(MIRError):
            Branch("MAYBE", "t", "f")

    def test_tested_flag_strips_negation(self):
        assert Branch("NZ", "t", "f").tested_flag() == "Z"
        assert Branch("N", "t", "f").tested_flag() == "N"
        assert Branch("NUF", "t", "f").tested_flag() == "UF"
        assert Branch("C", "t", "f").tested_flag() == "C"


class TestMaskCase:
    def test_exact_match(self):
        assert MaskCase("1010", "t").matches(0b1010)
        assert not MaskCase("1010", "t").matches(0b1011)

    def test_dont_care_bits(self):
        case = MaskCase("1x0x", "t")
        for value in (0b1000, 0b1001, 0b1100, 0b1101):
            assert case.matches(value)
        assert not case.matches(0b0000)
        assert not case.matches(0b1010)

    def test_short_mask_ignores_high_bits(self):
        assert MaskCase("01", "t").matches(0b1101)  # only low 2 bits checked

    def test_bad_mask_rejected(self):
        with pytest.raises(MIRError):
            MaskCase("10z0", "t")
        with pytest.raises(MIRError):
            MaskCase("", "t")

    def test_multiway_successors_include_default(self):
        multiway = Multiway(
            preg("R1"), (MaskCase("0", "a"), MaskCase("1", "b")), "d"
        )
        assert multiway.successors() == ("a", "b", "d")


class TestBasicBlock:
    def test_append_then_terminate(self):
        block = BasicBlock("b")
        block.append(mop("nop"))
        block.terminate(Jump("b"))
        assert block.terminated
        assert block.successors() == ("b",)

    def test_append_after_terminate_rejected(self):
        block = BasicBlock("b")
        block.terminate(Ret())
        with pytest.raises(MIRError):
            block.append(mop("nop"))

    def test_double_terminate_rejected(self):
        block = BasicBlock("b")
        block.terminate(Ret())
        with pytest.raises(MIRError):
            block.terminate(Ret())

    def test_successors_requires_terminator(self):
        with pytest.raises(MIRError):
            BasicBlock("b").successors()

    def test_str_contains_ops(self):
        block = BasicBlock("b", ops=[mop("add", preg("R1"), preg("R2"), preg("R3"))])
        block.terminate(Exit(preg("R1")))
        text = str(block)
        assert "b:" in text and "add R1" in text and "exit R1" in text
