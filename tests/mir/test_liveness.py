"""Liveness analysis over straight-line code, loops and calls."""

from repro.mir import (
    Branch,
    Jump,
    ProgramBuilder,
    analyze_liveness,
    mop,
    preg,
    program_successors,
    vreg,
)


def test_straight_line_liveness(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("a")
    b.emit(mop("mov", vreg("x"), preg("R2")))
    b.start_block("b")
    b.emit(mop("inc", vreg("y"), vreg("x")))
    b.exit(vreg("y"))
    program = b.finish()
    live = analyze_liveness(program, hm1)
    assert "%x" in live.live_out["a"]
    assert live.live_in["b"] == {"%x"}
    # y is defined inside b and consumed by its terminator: not live-in,
    # and nothing flows out of the exiting block.
    assert "%y" not in live.live_in["b"]
    assert live.live_out["b"] == set()


def test_loop_keeps_carried_values_live(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("entry")
    b.emit(mop("movi", vreg("acc"), __import__("repro.mir", fromlist=["Imm"]).Imm(0)))
    b.terminate(Jump("loop"))
    b.start_block("loop")
    b.emit(mop("add", vreg("acc"), vreg("acc"), preg("R1")))
    b.emit(mop("cmp", None, vreg("acc"), preg("R0")))
    b.terminate(Branch("Z", "done", "loop"))
    b.start_block("done")
    b.exit(vreg("acc"))
    program = b.finish()
    live = analyze_liveness(program, hm1)
    assert "%acc" in live.live_in["loop"]
    assert "%acc" in live.live_out["loop"]


def test_dead_value_not_live(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("a")
    b.emit(mop("mov", vreg("dead"), preg("R2")))
    b.emit(mop("mov", vreg("live"), preg("R3")))
    b.start_block("b")
    b.exit(vreg("live"))
    program = b.finish()
    live = analyze_liveness(program, hm1)
    assert "%dead" not in live.live_out["a"]
    assert "%live" in live.live_out["a"]


def test_interprocedural_successors(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("main")
    b.declare_procedure("p", "pentry")
    cont = b.call("p")
    b.exit()
    b.start_block("pentry")
    b.ret()
    program = b.finish()
    successors = program_successors(program)
    assert "pentry" in successors["main"]
    assert cont in successors["pentry"]


def test_value_live_across_call(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("main")
    b.emit(mop("mov", vreg("x"), preg("R2")))
    b.declare_procedure("p", "pentry")
    b.call("p")
    b.exit(vreg("x"))
    b.start_block("pentry")
    b.emit(mop("inc", preg("R3"), preg("R3")))
    b.ret()
    program = b.finish()
    live = analyze_liveness(program, hm1)
    assert "%x" in live.live_out["main"]
    assert "%x" in live.live_in["pentry"]  # conservative through the call


def test_live_after_positions(hm1):
    b = ProgramBuilder("t", hm1)
    b.start_block("a")
    b.emit(mop("mov", vreg("x"), preg("R2")))
    b.emit(mop("inc", vreg("y"), vreg("x")))
    b.emit(mop("inc", vreg("z"), vreg("y")))
    b.exit(vreg("z"))
    program = b.finish()
    live = analyze_liveness(program, hm1)
    block = program.block("a")
    after_first = live.live_after(block, 0, hm1)
    assert "%x" in after_first
    after_second = live.live_after(block, 1, hm1)
    assert "%x" not in after_second
    assert "%y" in after_second
