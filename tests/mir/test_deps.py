"""Dependence analysis: flow/anti/output, flags, memory, windows."""

import pytest

from repro.mir import (
    ANTI,
    FLOW,
    OUTPUT,
    BasicBlock,
    Branch,
    Exit,
    Imm,
    Jump,
    build_dependence_graph,
    mop,
    op_reads,
    op_writes,
    preg,
)


def block_of(*ops, terminator=None, machine=None):
    block = BasicBlock("b", ops=list(ops))
    block.terminate(terminator or Jump("b"))
    return block


def edges_of(graph):
    return {(e.src, e.dst, e.kind) for e in graph.edges if e.dst < graph.n_ops}


class TestRegisterDependences:
    def test_flow(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("mov", preg("R1"), preg("R2")),
            mop("add", preg("R3"), preg("R1"), preg("R4")),
        ), hm1)
        assert (0, 1, FLOW) in edges_of(graph)

    def test_anti(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("add", preg("R3"), preg("R1"), preg("R4")),
            mop("mov", preg("R1"), preg("R2")),
        ), hm1)
        assert (0, 1, ANTI) in edges_of(graph)

    def test_output(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("mov", preg("R1"), preg("R2")),
            mop("mov", preg("R1"), preg("R3")),
        ), hm1)
        assert (0, 1, OUTPUT) in edges_of(graph)

    def test_independent_ops_have_no_edges(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("mov", preg("R1"), preg("R2")),
            mop("mov", preg("R3"), preg("R4")),
        ), hm1)
        assert not edges_of(graph)
        assert graph.independent(0, 1)

    def test_reads_dest_creates_flow(self, hm1):
        # dep reads its destination (read-modify-write).
        graph = build_dependence_graph(block_of(
            mop("mov", preg("R1"), preg("R2")),
            mop("dep", preg("R1"), preg("R3"), Imm(0), Imm(4)),
        ), hm1)
        kinds = {k for (s, d, k) in edges_of(graph) if (s, d) == (0, 1)}
        assert FLOW in kinds  # dest read makes it flow, not just output


class TestFlagDependences:
    def test_dead_flag_writes_pruned(self, hm1):
        # Two adds whose flags nobody reads must be independent.
        graph = build_dependence_graph(block_of(
            mop("add", preg("R1"), preg("R2"), preg("R3")),
            mop("add", preg("R4"), preg("R5"), preg("R6")),
        ), hm1)
        assert not edges_of(graph)

    def test_flag_read_by_terminator_kept(self, hm1):
        block = block_of(
            mop("cmp", None, preg("R1"), preg("R2")),
            terminator=Branch("Z", "b", "b"),
        )
        graph = build_dependence_graph(block, hm1)
        terminator_edges = [
            e for e in graph.edges if e.dst == graph.terminator_node
        ]
        assert any(e.resource == "flag:Z" for e in terminator_edges)

    def test_intervening_flag_writer_orders(self, hm1):
        # cmp then add then branch: add's Z is what the branch sees,
        # so cmp -> add must carry an output edge on the flag.
        block = block_of(
            mop("cmp", None, preg("R1"), preg("R2")),
            mop("add", preg("R3"), preg("R4"), preg("R5")),
            terminator=Branch("Z", "b", "b"),
        )
        graph = build_dependence_graph(block, hm1)
        assert (0, 1, OUTPUT) in edges_of(graph)

    def test_uf_flow_to_reader(self, hm1):
        # shl writes UF; a branch on UF reads it.
        block = block_of(
            mop("shl", preg("R1"), preg("R1"), Imm(1)),
            terminator=Branch("UF", "b", "b"),
        )
        graph = build_dependence_graph(block, hm1)
        terminator_edges = [e for e in graph.edges if e.dst == graph.terminator_node]
        assert any(e.resource == "flag:UF" for e in terminator_edges)


class TestMemoryDependences:
    def test_write_read_ordered(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("write", None, preg("MAR"), preg("MBR")),
            mop("read", preg("MBR"), preg("MAR")),
        ), hm1)
        kinds = {k for (s, d, k) in edges_of(graph) if (s, d) == (0, 1)}
        assert FLOW in kinds

    def test_reads_commute(self, hm1):
        # Two reads only conflict through MBR (output), not through mem.
        graph = build_dependence_graph(block_of(
            mop("read", preg("MBR"), preg("MAR")),
            mop("read", preg("MBR"), preg("MAR")),
        ), hm1)
        resources = {e.resource for e in graph.edges}
        assert "mem" not in resources
        assert "MBR" in resources

    def test_scratch_slots_disambiguate(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("stscr", None, preg("R1"), Imm(3)),
            mop("ldscr", preg("R2"), Imm(4)),
        ), hm1)
        assert not edges_of(graph)

    def test_same_scratch_slot_orders(self, hm1):
        graph = build_dependence_graph(block_of(
            mop("stscr", None, preg("R1"), Imm(3)),
            mop("ldscr", preg("R2"), Imm(3)),
        ), hm1)
        assert (0, 1, FLOW) in edges_of(graph)


class TestWindowDependences:
    def test_window_access_reads_bank_pointer(self, id3200):
        reads = op_reads(mop("mov", preg("S0"), preg("G1")), id3200)
        assert "BLK" in reads

    def test_setblk_writes_bank_pointer(self, id3200):
        writes = op_writes(mop("setblk", None, Imm(3)), id3200)
        assert "BLK" in writes

    def test_setblk_orders_against_window_use(self, id3200):
        graph = build_dependence_graph(block_of(
            mop("setblk", None, Imm(2)),
            mop("mov", preg("S0"), preg("G1")),
        ), id3200)
        assert (0, 1, FLOW) in edges_of(graph)


class TestSchedulingMetrics:
    def chain(self, hm1):
        return block_of(
            mop("mov", preg("R1"), preg("R2")),
            mop("inc", preg("R1"), preg("R1")),
            mop("inc", preg("R1"), preg("R1")),
            mop("mov", preg("R5"), preg("R6")),
        )

    def test_asap_levels(self, hm1):
        graph = build_dependence_graph(self.chain(hm1), hm1)
        assert graph.asap_levels() == [0, 1, 2, 0]

    def test_alap_levels(self, hm1):
        graph = build_dependence_graph(self.chain(hm1), hm1)
        assert graph.alap_levels() == [0, 1, 2, 2]

    def test_critical_path(self, hm1):
        graph = build_dependence_graph(self.chain(hm1), hm1)
        assert graph.critical_path_length() == 3

    def test_heights_weighted_by_latency(self, hm1):
        block = block_of(
            mop("mov", preg("MAR"), preg("R1")),
            mop("read", preg("MBR"), preg("MAR")),  # latency 2
            mop("mov", preg("R2"), preg("MBR")),
        )
        graph = build_dependence_graph(block, hm1)
        assert graph.heights() == [4, 3, 1]

    def test_has_path_transitive(self, hm1):
        graph = build_dependence_graph(self.chain(hm1), hm1)
        assert graph.has_path(0, 2)
        assert not graph.has_path(2, 0)
        assert graph.independent(0, 3)

    def test_empty_block(self, hm1):
        graph = build_dependence_graph(block_of(), hm1)
        assert graph.asap_levels() == []
        assert graph.critical_path_length() == 0

    def test_exit_value_pins_producer(self, hm1):
        block = block_of(
            mop("inc", preg("R1"), preg("R1")),
            terminator=Exit(preg("R1")),
        )
        graph = build_dependence_graph(block, hm1)
        assert any(e.dst == graph.terminator_node for e in graph.edges)
