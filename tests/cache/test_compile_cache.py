"""Content-addressed compile cache (repro.cache).

Covers the addressing scheme (machine fingerprints, option
partitioning), the two tiers (in-memory LRU + on-disk pickles), the
observability events, front-end integration across all five
languages, and the campaign acceptance criterion: a 100-scenario
single-program campaign compiles once and hits ≥90% of probes.
"""

import pickle

import pytest

from repro.cache import (
    CacheStats,
    CompileCache,
    compile_key,
    machine_fingerprint,
)
from repro.faults.campaign import run_campaign
from repro.lang.empl import compile_empl
from repro.lang.mpl import compile_mpl
from repro.lang.simpl import compile_simpl
from repro.lang.sstar import compile_sstar
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.obs.tracer import Tracer

YALLL_SRC = """
    put total,0
    put counter,5
loop:
    add total,total,counter
    sub counter,counter,1
    jump loop if nonzero
    exit total
"""

SIMPL_SRC = """
program t;
begin
    R1 + R2 -> R3;
end
"""


class TestAddressing:
    def test_fingerprint_is_descriptive_not_identity(self):
        a = get_machine("HM1")
        b = get_machine("HM1")
        assert a is not b
        assert machine_fingerprint(a) == machine_fingerprint(b)

    def test_fingerprint_differs_across_machines(self):
        prints = {
            name: machine_fingerprint(get_machine(name))
            for name in ("HM1", "CM1", "VAXm", "VM1")
        }
        assert len(set(prints.values())) == len(prints)

    def test_key_partitions_on_every_input(self):
        machine = get_machine("HM1")
        base = compile_key(YALLL_SRC, "yalll", machine, {"optimize": True})
        assert compile_key(
            YALLL_SRC, "yalll", machine, {"optimize": True}
        ) == base
        assert compile_key(
            YALLL_SRC + " ", "yalll", machine, {"optimize": True}
        ) != base
        assert compile_key(
            YALLL_SRC, "mpl", machine, {"optimize": True}
        ) != base
        assert compile_key(
            YALLL_SRC, "yalll", get_machine("CM1"), {"optimize": True}
        ) != base
        assert compile_key(
            YALLL_SRC, "yalll", machine, {"optimize": False}
        ) != base

    def test_option_order_is_canonical(self):
        machine = get_machine("HM1")
        assert compile_key(
            YALLL_SRC, "yalll", machine, {"a": 1, "b": 2}
        ) == compile_key(YALLL_SRC, "yalll", machine, {"b": 2, "a": 1})


class TestTiers:
    def test_memory_hit_returns_same_object(self):
        machine = get_machine("HM1")
        cache = CompileCache()
        first = compile_yalll(YALLL_SRC, machine, cache=cache)
        second = compile_yalll(YALLL_SRC, machine, cache=cache)
        assert second is first
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_different_options_miss(self):
        machine = get_machine("HM1")
        cache = CompileCache()
        compile_yalll(YALLL_SRC, machine, cache=cache)
        compile_yalll(YALLL_SRC, machine, cache=cache, optimize=False)
        assert cache.stats.misses == 2
        assert cache.stats.hits == 0

    def test_lru_eviction_is_bounded(self):
        machine = get_machine("HM1")
        cache = CompileCache(capacity=2)
        sources = [YALLL_SRC + f"\n; v{i}" for i in range(4)]
        for source in sources:
            compile_yalll(source, machine, cache=cache)
        assert len(cache) == 2
        assert cache.stats.evictions == 2
        # Oldest entries are gone: recompiling source 0 misses again.
        compile_yalll(sources[0], machine, cache=cache)
        assert cache.stats.misses == 5

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            CompileCache(capacity=0)

    def test_disk_tier_survives_a_new_cache(self, tmp_path):
        machine = get_machine("HM1")
        warm = CompileCache(disk_dir=tmp_path)
        built = compile_yalll(YALLL_SRC, machine, cache=warm)
        assert list(tmp_path.glob("*.pkl"))
        cold = CompileCache(disk_dir=tmp_path)
        restored = compile_yalll(YALLL_SRC, machine, cache=cold)
        assert cold.stats.disk_hits == 1
        assert cold.stats.hits == 1  # disk promotion counts as a hit
        assert restored.loaded.words == built.loaded.words

    def test_corrupt_disk_entry_is_a_miss(self, tmp_path):
        machine = get_machine("HM1")
        warm = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, machine, cache=warm)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"not a pickle")
        cold = CompileCache(disk_dir=tmp_path)
        result = compile_yalll(YALLL_SRC, machine, cache=cold)
        assert cold.stats.misses == 1
        assert result.loaded.words

    def test_results_pickle_roundtrip(self):
        machine = get_machine("HM1")
        result = compile_yalll(YALLL_SRC, machine)
        clone = pickle.loads(pickle.dumps(result))
        assert clone.loaded.words == result.loaded.words

    def test_clear_keeps_disk(self, tmp_path):
        machine = get_machine("HM1")
        cache = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, machine, cache=cache)
        cache.clear()
        assert len(cache) == 0
        compile_yalll(YALLL_SRC, machine, cache=cache)
        assert cache.stats.disk_hits == 1


class TestObservability:
    def test_hit_and_miss_events(self):
        machine = get_machine("HM1")
        tracer = Tracer()
        cache = CompileCache(tracer=tracer)
        compile_yalll(YALLL_SRC, machine, cache=cache, tracer=tracer)
        compile_yalll(YALLL_SRC, machine, cache=cache, tracer=tracer)
        names = [e.name for e in tracer.events if e.cat == "cache"]
        assert names.count("cache.miss") == 1
        assert names.count("cache.hit") == 1

    def test_stats_json(self):
        stats = CacheStats(hits=9, misses=1)
        payload = stats.to_json()
        assert payload["hit_rate"] == 0.9
        assert payload["hits"] == 9


class TestFrontEnds:
    """Every language front end honours ``cache=``."""

    def test_all_five_languages_hit(self):
        machine = get_machine("HM1")
        cache = CompileCache()
        calls = [
            lambda: compile_yalll(YALLL_SRC, machine, cache=cache),
            lambda: compile_simpl(SIMPL_SRC, machine, cache=cache),
            lambda: compile_mpl(SIMPL_SRC, machine, cache=cache),
            lambda: compile_sstar(
                "program t;\nvar a : seq [15..0] bit bind R1;\n"
                "begin\n  a := 1\nend",
                machine, cache=cache,
            ),
            lambda: compile_empl(
                "DECLARE A FIXED;\nA = 2;", machine, cache=cache
            ),
        ]
        for call in calls:
            first = call()
            assert call() is first
        assert cache.stats.misses == len(calls)
        assert cache.stats.hits == len(calls)


class TestCampaignHitRate:
    def test_100_scenario_campaign_hits_90_percent(self):
        """Acceptance: one real compile, every re-probe hits."""
        machine = get_machine("HM1")
        cache = CompileCache()
        result = run_campaign(
            YALLL_SRC, "yalll", machine, n=100, seed=11, jobs=1,
            cache=cache,
        )
        assert len(result.outcomes) == 100
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate() >= 0.90


class TestCorruptEviction:
    """A bad on-disk entry is evicted on first failed read (PR 5 fix)."""

    def _poison(self, tmp_path) -> list:
        machine = get_machine("HM1")
        warm = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, machine, cache=warm)
        paths = list(tmp_path.glob("*.pkl"))
        for path in paths:
            # Truncate mid-stream: pickle.load raises, not returns.
            path.write_bytes(path.read_bytes()[:20])
        return paths

    def test_truncated_pickle_is_unlinked_and_counted(self, tmp_path):
        paths = self._poison(tmp_path)
        cold = CompileCache(disk_dir=tmp_path)
        result = compile_yalll(YALLL_SRC, get_machine("HM1"), cache=cold)
        assert result.loaded.words
        assert cold.stats.corrupt == 1
        assert cold.stats.misses == 1
        assert cold.stats.to_json()["corrupt"] == 1
        # The poisoned file is gone and was rewritten by the recompile.
        for path in paths:
            assert path.read_bytes()[:2] != b"no"
        # A third cache re-reads the freshly written entry fine.
        third = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, get_machine("HM1"), cache=third)
        assert third.stats.disk_hits == 1
        assert third.stats.corrupt == 0

    def test_corrupt_probe_emits_event(self, tmp_path):
        self._poison(tmp_path)
        tracer = Tracer()
        cold = CompileCache(disk_dir=tmp_path)
        compile_yalll(
            YALLL_SRC, get_machine("HM1"), cache=cold, tracer=tracer
        )
        events = [e for e in tracer.events if e.name == "cache.corrupt"]
        assert len(events) == 1
        assert events[0].args["error"] == "UnpicklingError"

    def test_garbage_that_unpickles_but_is_stale(self, tmp_path):
        """Entirely foreign bytes: still evicted, not re-read forever."""
        machine = get_machine("HM1")
        warm = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, machine, cache=warm)
        for path in tmp_path.glob("*.pkl"):
            path.write_bytes(b"\x00\x01garbage")
        cold = CompileCache(disk_dir=tmp_path)
        compile_yalll(YALLL_SRC, machine, cache=cold)
        assert cold.stats.corrupt == 1
        assert not any(
            p.read_bytes() == b"\x00\x01garbage"
            for p in tmp_path.glob("*.pkl")
        )


class TestKeyCanonicalisation:
    """Nested option values key by value, not insertion order (PR 5 fix)."""

    def test_nested_dict_order_is_canonical(self):
        machine = get_machine("HM1")
        a = {"opts": {"x": 1, "y": [2, {"p": 3, "q": 4}]}, "flag": True}
        b = {"flag": True, "opts": {"y": [2, {"q": 4, "p": 3}], "x": 1}}
        assert compile_key(YALLL_SRC, "yalll", machine, a) == compile_key(
            YALLL_SRC, "yalll", machine, b
        )

    def test_key_stability_under_random_insertion_order(self):
        """Property: any insertion order of equal options, same key."""
        import random

        machine = get_machine("HM1")
        base = {
            "a": {"m": 1, "n": {"deep": [1, 2, 3]}},
            "b": ["x", {"k": 7, "j": 8}],
            "c": 3,
        }
        reference = compile_key(YALLL_SRC, "yalll", machine, base)
        rng = random.Random(0)
        for _ in range(20):
            keys = list(base)
            rng.shuffle(keys)
            shuffled = {}
            for key in keys:
                value = base[key]
                if isinstance(value, dict):
                    inner = list(value)
                    rng.shuffle(inner)
                    value = {k: value[k] for k in inner}
                shuffled[key] = value
            assert compile_key(
                YALLL_SRC, "yalll", machine, shuffled
            ) == reference

    def test_unequal_nested_values_differ(self):
        machine = get_machine("HM1")
        assert compile_key(
            YALLL_SRC, "yalll", machine, {"opts": {"x": 1}}
        ) != compile_key(YALLL_SRC, "yalll", machine, {"opts": {"x": 2}})

    def test_sequence_order_still_matters(self):
        """Lists are ordered data: [1, 2] must not key like [2, 1]."""
        machine = get_machine("HM1")
        assert compile_key(
            YALLL_SRC, "yalll", machine, {"steps": [1, 2]}
        ) != compile_key(YALLL_SRC, "yalll", machine, {"steps": [2, 1]})

    def test_macro_visible_variants_key_apart(self):
        """Machine variants built with different macro-visible sets
        must never share cache entries (their restart analyses differ)."""
        from repro.machine.machines import build_hm1

        plain = build_hm1()
        visible = build_hm1(macro_visible=("R1", "ACC"))
        other = build_hm1(macro_visible=("R2",))
        keys = {
            compile_key(YALLL_SRC, "yalll", m, {"restart_safe": True})
            for m in (plain, visible, other)
        }
        assert len(keys) == 3
