"""Crash-safe disk-tier writes: temp file + ``os.replace``.

The regression being pinned: a writer interrupted mid-write (the
serve pool's workers die by SIGKILL as a matter of course) must never
leave a truncated ``.pkl`` behind for ``cache.corrupt`` to trip on —
the target either exists complete or not at all, and stray temp files
are swept by the next writer of the same key.
"""

import os
import pickle

import pytest

from repro.cache import CompileCache


@pytest.fixture
def cache(tmp_path):
    return CompileCache(disk_dir=tmp_path / "disk")


KEY = "a" * 64


class TestAtomicWrite:
    def test_put_leaves_complete_entry_and_no_temp(self, cache):
        cache.put(KEY, {"payload": list(range(100))})
        path = cache._disk_path(KEY)
        with path.open("rb") as handle:
            assert pickle.load(handle) == {"payload": list(range(100))}
        assert not list(path.parent.glob("*.tmp"))

    def test_interrupted_write_leaves_no_partial_target(
        self, cache, monkeypatch
    ):
        # Simulate death between writing the temp file and the rename.
        real_replace = os.replace

        def die(src, dst):
            raise KeyboardInterrupt("killed mid-write")

        monkeypatch.setattr(os, "replace", die)
        with pytest.raises(KeyboardInterrupt):
            cache.put(KEY, {"x": 1})
        monkeypatch.setattr(os, "replace", real_replace)
        path = cache._disk_path(KEY)
        assert not path.exists()  # no truncated/partial target
        assert not list(path.parent.glob("*.tmp"))  # cleanup ran
        # A cold reader sees a clean miss, not a corrupt entry.
        fresh = CompileCache(disk_dir=cache.disk_dir)
        assert fresh.get(KEY) is None
        assert fresh.stats.corrupt == 0

    def test_serialization_failure_touches_no_file(self, cache):
        class Unpicklable:
            def __reduce__(self):
                raise TypeError("nope")

        with pytest.raises(Exception):
            cache.put(KEY, Unpicklable())
        path = cache._disk_path(KEY)
        assert not path.exists()
        assert not list(path.parent.glob("*.tmp"))

    def test_stray_temp_from_a_crash_is_swept(self, cache):
        path = cache._disk_path(KEY)
        stray = path.parent / f".{path.stem[:16]}deadbeef.tmp"
        stray.write_bytes(b"half a pickle")
        cache.put(KEY, {"fresh": True})
        assert not stray.exists()
        with path.open("rb") as handle:
            assert pickle.load(handle) == {"fresh": True}

    def test_rewrite_of_existing_key_is_atomic(self, cache):
        cache.put(KEY, {"generation": 1})
        cache.put(KEY, {"generation": 2})
        path = cache._disk_path(KEY)
        with path.open("rb") as handle:
            assert pickle.load(handle) == {"generation": 2}
        assert not list(path.parent.glob("*.tmp"))

    def test_cross_process_read_back(self, cache):
        cache.put(KEY, {"shared": 42})
        other = CompileCache(disk_dir=cache.disk_dir)
        assert other.get(KEY) == {"shared": 42}
        assert other.stats.disk_hits == 1
