"""Campaign harness: golden runs, classification, reproducibility."""

from repro.faults import (
    FaultPlan,
    campaign_json,
    render_campaign,
    render_matrix,
    run_campaign,
    run_matrix,
    spec,
)

YALLL_ROUND_TRIP = """
put addr,100
load v,addr
add v,v,1
stor v,addr
exit v
"""

SIMPL_ROUND_TRIP = """
program roundtrip;
const ADDR = 100;
begin
    read(ADDR) -> R1;
    R1 + ONE -> R2;
    write(ADDR, R2);
end
"""

MEMORY = {100: 41}


class TestGoldenRun:
    def test_golden_matches_plain_execution(self, hm1):
        campaign = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, n=0, memory=MEMORY
        )
        assert campaign.golden.exit_value == 42
        assert campaign.golden.traps == 0
        assert campaign.golden.reads >= 1
        assert campaign.golden.writes >= 1
        assert campaign.outcomes == []

    def test_scenarios_all_classified(self, hm1):
        campaign = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, n=20, seed=7, memory=MEMORY
        )
        counts = campaign.counts()
        assert sum(counts.values()) == 20
        assert all(count >= 0 for count in counts.values())

    def test_explicit_plan_overrides_generation(self, hm1):
        plan = FaultPlan(0, (spec("memfault", op="read", nth=1),))
        campaign = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, plan=plan, memory=MEMORY
        )
        [outcome] = campaign.outcomes
        assert outcome.spec == "memfault:op=read,nth=1"
        assert outcome.traps == 1
        assert outcome.classification == "recovered"


class TestReproducibility:
    def test_fixed_seed_campaign_is_byte_identical(self, hm1):
        runs = [
            run_campaign(
                YALLL_ROUND_TRIP, "yalll", hm1, n=25, seed=7, memory=MEMORY
            )
            for _ in range(2)
        ]
        assert campaign_json([runs[0]]) == campaign_json([runs[1]])
        assert render_campaign(runs[0]) == render_campaign(runs[1])

    def test_different_seeds_draw_different_scenarios(self, hm1):
        a = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, n=25, seed=7, memory=MEMORY
        )
        b = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, n=25, seed=8, memory=MEMORY
        )
        assert [o.spec for o in a.outcomes] != [o.spec for o in b.outcomes]

    def test_json_report_carries_no_wall_clock(self, hm1):
        campaign = run_campaign(
            YALLL_ROUND_TRIP, "yalll", hm1, n=5, seed=7, memory=MEMORY
        )
        text = campaign_json([campaign])
        assert "wall" not in text
        assert '"seed": 7' in text


class TestMatrix:
    def test_language_by_machine_matrix(self, hm1, hp300):
        results = run_matrix(
            {"yalll": YALLL_ROUND_TRIP}, [hm1, hp300],
            n=4, seed=7, memory=MEMORY,
        )
        assert {(r.lang, r.machine) for r in results} == {
            ("yalll", "HM1"), ("yalll", "HP300m"),
        }
        table = render_matrix(results)
        assert "yalll" in table and "HM1" in table

    def test_two_languages_one_machine(self, hm1):
        results = run_matrix(
            {"yalll": YALLL_ROUND_TRIP, "simpl": SIMPL_ROUND_TRIP},
            [hm1], n=4, seed=7, memory=MEMORY,
        )
        assert [(r.lang, r.machine) for r in results] == [
            ("simpl", "HM1"), ("yalll", "HM1"),
        ]

    def test_matrix_report_is_deterministic(self, hm1):
        args = ({"yalll": YALLL_ROUND_TRIP}, [hm1])
        kwargs = dict(n=6, seed=7, memory=MEMORY)
        first = campaign_json(run_matrix(*args, **kwargs))
        second = campaign_json(run_matrix(*args, **kwargs))
        assert first == second
