"""The four fault models, each against a live simulator."""

import pytest

from repro.asm import ControlStore, assemble
from repro.compose import SequentialComposer, compose_program
from repro.errors import FaultPlanError
from repro.faults import (
    CompositeInjector,
    ControlStoreBitFlip,
    InterruptStorm,
    StuckAtRegister,
    TransientMemoryFault,
    build_injector,
    compute_flip_effect,
)
from repro.faults.campaign import default_trap_service
from repro.lang.simpl import compile_simpl
from repro.mir import ProgramBuilder, mop, preg
from repro.sim import Simulator


def load(program, machine, **simulator_kwargs):
    composed = compose_program(program, machine, SequentialComposer())
    loaded = assemble(composed, machine)
    store = ControlStore(machine)
    store.load(loaded)
    return Simulator(machine, store, **simulator_kwargs), loaded


def add_one_program(machine):
    b = ProgramBuilder("addone", machine)
    b.start_block("entry")
    b.emit(mop("add", preg("R2"), preg("R1"), preg("ONE")))
    b.exit(preg("R2"))
    return b.finish()


def incread_program(machine):
    """§2.1.5: increment a register, then read memory through it."""
    b = ProgramBuilder("incread", machine)
    b.start_block("entry")
    b.emit(mop("add", preg("ACC"), preg("R1"), preg("ONE")))
    b.emit(mop("mov", preg("R1"), preg("ACC")))
    b.emit(mop("mov", preg("MAR"), preg("R1")))
    b.emit(mop("read", preg("MBR"), preg("MAR")))
    b.exit(preg("MBR"))
    return b.finish()


class TestStuckAtRegister:
    def test_stuck_value_wins(self, hm1):
        simulator, _ = load(add_one_program(hm1), hm1)
        simulator.state.write_reg("R1", 100)
        injector = StuckAtRegister("R1", 7).attach(simulator)
        result = simulator.run("addone")
        assert result.exit_value == 8  # stuck 7, not the initial 100
        assert injector.fired and injector.fired[0]["name"] == "fault.stuck"

    def test_from_cycle_defers_the_fault(self, hm1):
        simulator, _ = load(add_one_program(hm1), hm1)
        simulator.state.write_reg("R1", 100)
        StuckAtRegister("R1", 7, from_cycle=10_000).attach(simulator)
        assert simulator.run("addone").exit_value == 101


class TestTransientMemoryFault:
    def test_nth_read_faults_once_then_recovers(self, hm1):
        simulator, _ = load(
            incread_program(hm1), hm1, trap_service=default_trap_service
        )
        simulator.state.write_reg("R1", 100)
        simulator.state.memory.load_words(101, [0xCAFE])
        injector = TransientMemoryFault(op="read", nth=1).attach(simulator)
        result = simulator.run("incread")
        assert result.traps == 1
        assert result.exit_value == 0xCAFE  # retry after restart succeeds
        assert injector.fired[0]["name"] == "fault.memread"

    def test_later_nth_does_not_fire_early(self, hm1):
        simulator, _ = load(
            incread_program(hm1), hm1, trap_service=default_trap_service
        )
        simulator.state.write_reg("R1", 100)
        simulator.state.memory.load_words(101, [0xCAFE])
        TransientMemoryFault(op="read", nth=5).attach(simulator)
        result = simulator.run("incread")
        assert result.traps == 0

    def test_memory_proxy_stays_transparent(self, hm1):
        simulator, _ = load(incread_program(hm1), hm1)
        TransientMemoryFault(op="write", nth=1).attach(simulator)
        memory = simulator.state.memory
        memory.load_words(5, [42])          # delegated via __getattr__
        assert memory.read(5) == 42         # reads unaffected by write fault

    def test_bad_parameters_rejected(self):
        with pytest.raises(FaultPlanError):
            TransientMemoryFault(op="poke", nth=1)
        with pytest.raises(FaultPlanError):
            TransientMemoryFault(op="read", nth=0)


class TestInterruptStorm:
    def test_storm_reaches_a_polling_program(self, hm1):
        b = ProgramBuilder("poller", hm1)
        b.start_block("entry")
        for _ in range(6):
            b.emit(mop("poll"))
        b.emit(mop("add", preg("R2"), preg("R1"), preg("ONE")))
        b.exit(preg("R2"))
        serviced = []
        simulator, _ = load(
            b.finish(), hm1,
            interrupt_handler=lambda state: serviced.append(state.cycles),
        )
        injector = InterruptStorm(period=1).attach(simulator)
        result = simulator.run("poller")
        assert result.interrupts_serviced >= 1
        assert serviced
        assert injector.fired[0]["name"] == "fault.interrupt"

    def test_zero_period_rejected(self):
        with pytest.raises(FaultPlanError):
            InterruptStorm(period=0)


class TestControlStoreBitFlip:
    def simpl_word(self, hm1):
        result = compile_simpl(
            "program t; begin R1 + ONE -> R2; end", hm1
        )
        return result.loaded.words[0]

    def test_undriven_field_is_latent(self, hm1):
        word = self.simpl_word(hm1)
        bit = hm1.control.offset("sh_cnt")  # no shifter op in the word
        effect = compute_flip_effect(hm1, word, bit)
        assert effect.kind == "latent"

    def test_order_field_flip_changes_the_operation(self, hm1):
        word = self.simpl_word(hm1)
        bit = hm1.control.offset("alu_op")  # ADD(1) ^ 1 -> NOP(0)
        effect = compute_flip_effect(hm1, word, bit)
        assert effect.kind == "order"
        assert "nop" in effect.detail

    def test_order_flip_executes_with_wrong_semantics(self, hm1):
        simulator, _ = load(add_one_program(hm1), hm1)
        simulator.state.write_reg("R1", 100)
        bit = hm1.control.offset("alu_op")
        ControlStoreBitFlip(address=0, bit=bit).attach(simulator)
        result = simulator.run("addone")
        assert result.exit_value == 0  # the add was dropped; R2 never written

    def test_register_selector_flip_retargets_operand(self, hm1):
        word = self.simpl_word(hm1)
        offset = hm1.control.offset("alu_d")
        effect = compute_flip_effect(hm1, word, offset)
        assert effect.kind in ("operand", "illegal")
        if effect.kind == "operand":
            assert "R2 ->" in effect.detail  # dest retargeted elsewhere

    def test_bit_out_of_range_rejected(self, hm1):
        with pytest.raises(FaultPlanError):
            compute_flip_effect(hm1, self.simpl_word(hm1), 10_000)

    def test_flip_is_deterministic(self, hm1):
        word = self.simpl_word(hm1)
        bit = hm1.control.offset("alu_op")
        a = compute_flip_effect(hm1, word, bit)
        b = compute_flip_effect(hm1, word, bit)
        assert (a.kind, a.fieldname, a.old_code, a.new_code) == \
               (b.kind, b.fieldname, b.old_code, b.new_code)


class TestBuildInjector:
    @pytest.mark.parametrize("text,cls", [
        ("bitflip:addr=3,bit=17", ControlStoreBitFlip),
        ("memfault:op=read,nth=2", TransientMemoryFault),
        ("stuck:reg=R2,value=0", StuckAtRegister),
        ("storm:period=7", InterruptStorm),
    ])
    def test_factory_from_spec_string(self, text, cls):
        assert isinstance(build_injector(text), cls)

    def test_missing_required_parameter(self):
        with pytest.raises(FaultPlanError):
            build_injector("bitflip:addr=3")  # no bit

    def test_composite_fans_out_and_aggregates(self, hm1):
        simulator, _ = load(add_one_program(hm1), hm1)
        simulator.state.write_reg("R1", 100)
        stuck = StuckAtRegister("R1", 7)
        storm = InterruptStorm(period=1)
        composite = CompositeInjector([stuck, storm]).attach(simulator)
        assert simulator.injector is composite
        result = simulator.run("addone")
        assert result.exit_value == 8
        names = {record["name"] for record in composite.fired}
        assert "fault.stuck" in names
