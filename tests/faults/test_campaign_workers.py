"""Worker death in the ``--jobs`` campaign fan-out is typed, not a hang.

The ``kill`` fault kind SIGKILLs the simulating process at the Nth
microinstruction — the deterministic stand-in for a shard worker
dying of segfault/OOM.  The supervisor must observe the death via the
process sentinel, re-queue the shard, and surface persistent death as
:class:`~repro.errors.CampaignWorkerError` naming the shard and its
re-queue count.  (Recoverable crashes — death on attempt 0, success
on retry — are exercised at the serve pool level, where chaos is
attempt-scoped; the injector kills deterministically every run.)
"""

import pytest

from repro.errors import CampaignWorkerError, FaultPlanError
from repro.faults.campaign import fault_space_for, run_campaign_loaded
from repro.faults.injectors import ProcessKill, build_injector
from repro.faults.plan import FAULT_KINDS, FaultPlan, parse_fault_spec, spec
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine

LOOP_SRC = """
    put total,0
    put counter,6
loop:
    add total,total,counter
    sub counter,counter,1
    jump loop if nonzero
    exit total
"""


def compiled():
    machine = get_machine("HM1")
    result = compile_yalll(LOOP_SRC, machine, name="mul")
    return machine, result


class TestKillFaultKind:
    def test_kill_is_a_known_kind(self):
        assert "kill" in FAULT_KINDS

    def test_spec_round_trip(self):
        parsed = parse_fault_spec("kill:nth=3")
        assert parsed.kind == "kill"
        assert parsed.require("nth") == 3
        injector = build_injector(parsed)
        assert isinstance(injector, ProcessKill)
        assert injector.nth == 3

    def test_nth_must_be_positive(self):
        with pytest.raises(FaultPlanError):
            ProcessKill(nth=0)

    def test_seeded_generation_never_draws_kill(self):
        # Campaign plans must stay survivable: ``kill`` is an explicit
        # chaos opt-in, never a seeded draw.
        machine, result = compiled()
        golden = run_campaign_loaded(
            result.loaded, machine, n=0, lang="yalll",
            mapping=result.allocation.mapping,
        ).golden
        space = fault_space_for(machine, result.loaded, golden)
        assert "kill" not in space.kinds_available()
        for seed in range(20):
            plan = FaultPlan.generate(seed, space, 25)
            assert all(s.kind != "kill" for s in plan.specs)


class TestWorkerDeathSurfaces:
    def test_persistent_shard_death_raises_typed_error(self):
        machine, result = compiled()
        plan = FaultPlan(
            seed=0, specs=tuple(spec("kill", nth=1) for _ in range(4))
        )
        with pytest.raises(CampaignWorkerError) as info:
            run_campaign_loaded(
                result.loaded, machine,
                lang="yalll",
                plan=plan,
                mapping=result.allocation.mapping,
                jobs=2,
            )
        error = info.value
        assert error.shard_index in (0, 1)
        assert error.requeues == 2  # DEFAULT_SHARD_REQUEUES
        assert error.exitcode is not None and error.exitcode < 0
        assert "stayed dead" in str(error)

    def test_healthy_shards_unaffected_by_kill_kind_existing(self):
        # A plan without kill specs still round-trips byte-identically
        # through the rewritten supervised fan-out.
        from repro.faults.campaign import run_campaign
        from repro.faults.report import campaign_json

        machine = get_machine("HM1")
        serial = run_campaign(
            LOOP_SRC, "yalll", machine, n=16, seed=11, jobs=1
        )
        sharded = run_campaign(
            LOOP_SRC, "yalll", machine, n=16, seed=11, jobs=3
        )
        assert campaign_json([sharded]) == campaign_json([serial])
