"""``--batch N`` is a pure throughput knob for campaigns.

Scenario runs always carry injectors, so admission
(:func:`repro.sim.batch.batch_refusal`) routes every lane to the
scalar engine — which is exactly why the report (text, JSON and the
shard-mergeable metrics rollup) must be byte-identical to serial at
every batch size, alone and combined with ``--jobs``.
"""

import pytest

from repro.faults.campaign import run_campaign
from repro.faults.report import campaign_json, render_campaign
from repro.machine.machines import get_machine

LOOP_SRC = """
    put total,0
    put counter,6
loop:
    add total,total,counter
    sub counter,counter,1
    jump loop if nonzero
    exit total
"""


def campaign_bytes(*, batch, jobs=1, collect_metrics=False):
    machine = get_machine("HM1")
    result = run_campaign(
        LOOP_SRC, "yalll", machine, n=18, seed=1980,
        jobs=jobs, batch=batch, collect_metrics=collect_metrics,
    )
    return (
        render_campaign(result, scenarios=True),
        campaign_json([result]),
    )


class TestBatchByteIdentity:
    @pytest.mark.parametrize("batch", (4, 64))
    @pytest.mark.parametrize("jobs", (1, 2))
    def test_batched_report_identical_to_serial(self, batch, jobs):
        text_serial, json_serial = campaign_bytes(batch=1)
        text_batched, json_batched = campaign_bytes(batch=batch, jobs=jobs)
        assert text_batched == text_serial
        assert json_batched == json_serial

    def test_metrics_rollup_identical_too(self):
        _, json_serial = campaign_bytes(batch=1, collect_metrics=True)
        _, json_batched = campaign_bytes(batch=64, jobs=2,
                                         collect_metrics=True)
        assert json_batched == json_serial
        assert '"metrics"' in json_batched

    def test_cli_batch_flag_round_trips(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "loop.yalll"
        source.write_text(LOOP_SRC)
        outputs = {}
        for batch in ("1", "64"):
            code = main([
                "campaign", str(source), "--lang", "yalll",
                "--machine", "HM1", "-n", "8", "--seed", "3",
                "--batch", batch, "--json",
            ])
            assert code == 0
            outputs[batch] = capsys.readouterr().out
        assert outputs["64"] == outputs["1"]
