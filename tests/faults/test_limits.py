"""Graceful degradation: typed watchdog errors and composer budgets."""

import pytest

from repro.compose import compose_program
from repro.compose.branch_bound import BranchBoundComposer
from repro.compose.list_schedule import ListScheduler
from repro.errors import ReproError, SimulationError, SimulationLimitError
from repro.lang.yalll import compile_yalll
from repro.mir import ProgramBuilder, mop, preg
from repro.obs import Tracer
from repro.sim import Simulator
from repro.asm import ControlStore, assemble
from repro.compose import SequentialComposer

SPIN = """
loop:
    jump loop
"""


def simulator_for(program, machine, **kwargs):
    composed = compose_program(program, machine, SequentialComposer())
    loaded = assemble(composed, machine)
    store = ControlStore(machine)
    store.load(loaded)
    return Simulator(machine, store, **kwargs)


def faulting_program(machine):
    b = ProgramBuilder("fault", machine)
    b.start_block("entry")
    b.emit(mop("mov", preg("MAR"), preg("ONE")))
    b.emit(mop("read", preg("MBR"), preg("MAR")))
    b.exit(preg("MBR"))
    return b.finish()


class TestCycleWatchdog:
    def test_runaway_raises_typed_error(self, hm1):
        result = compile_yalll(SPIN, hm1)
        store = ControlStore(hm1)
        store.load(result.loaded)
        simulator = Simulator(hm1, store)
        with pytest.raises(SimulationLimitError) as excinfo:
            simulator.run(result.loaded.name, max_cycles=100)
        error = excinfo.value
        assert error.kind == "cycles"
        assert error.limit == 100
        assert "exceeded 100 cycles" in str(error)
        assert "address" in str(error)

    def test_limit_error_is_a_simulation_error(self):
        error = SimulationLimitError("boom", kind="cycles", limit=1)
        assert isinstance(error, SimulationError)
        assert isinstance(error, ReproError)


class TestTrapLoopWatchdog:
    def test_non_converging_trap_service_aborts(self, hm1):
        simulator = simulator_for(
            faulting_program(hm1), hm1,
            trap_service=lambda state, trap: None,  # never maps the page
            max_traps=5,
        )
        simulator.state.memory.paging_enabled = True
        with pytest.raises(SimulationLimitError) as excinfo:
            simulator.run("fault")
        error = excinfo.value
        assert error.kind == "traps"
        assert error.limit == 5
        assert "more than 5 traps" in str(error)
        assert "pagefault" in str(error)  # names the repeating trap


class TestWallClockDeadline:
    def test_expired_deadline_raises(self, hm1):
        result = compile_yalll(SPIN, hm1)
        store = ControlStore(hm1)
        store.load(result.loaded)
        simulator = Simulator(hm1, store, deadline_s=0.0)
        with pytest.raises(SimulationLimitError) as excinfo:
            simulator.run(result.loaded.name, max_cycles=10_000_000)
        assert excinfo.value.kind == "deadline"

    def test_generous_deadline_is_harmless(self, hm1):
        b = ProgramBuilder("quick", hm1)
        b.start_block("entry")
        b.emit(mop("add", preg("R2"), preg("R1"), preg("ONE")))
        b.exit(preg("R2"))
        simulator = simulator_for(b.finish(), hm1, deadline_s=3600.0)
        assert simulator.run("quick").exit_value == 1


def wide_block(machine, n_ops=8):
    """Independent adds: a branch-and-bound search with real breadth."""
    b = ProgramBuilder("wide", machine)
    b.start_block("entry")
    for index in range(1, n_ops):
        b.emit(mop("add", preg(f"R{(index % 6) + 1}"),
                   preg("ONE"), preg("ONE")))
    b.exit(preg("R1"))
    return b.finish()


class TestComposerBudgets:
    def test_node_budget_falls_back_to_list_schedule(self, hm1):
        tracer = Tracer()
        program = wide_block(hm1)
        composer = BranchBoundComposer(node_budget=1, tracer=tracer)
        composed = compose_program(program, hm1, composer)
        baseline = compose_program(program, hm1, ListScheduler())
        assert composed.n_instructions() <= baseline.n_instructions()
        [warning] = [w for w in tracer.warnings()
                     if w.name == "compose.budget_exhausted"]
        assert warning.args["reason"] == "nodes"
        assert warning.args["fallback"] == "list-schedule incumbent"

    def test_wall_clock_budget_falls_back(self, hm1):
        tracer = Tracer()
        program = wide_block(hm1)
        # node_budget is a multiple of 1024 so the deadline check (every
        # 1024 nodes) fires on the very first search node.
        composer = BranchBoundComposer(
            node_budget=1024, deadline_ms=0.0, tracer=tracer
        )
        composed = compose_program(program, hm1, composer)
        assert composed.n_instructions() >= 1
        warnings = [w for w in tracer.warnings()
                    if w.name == "compose.budget_exhausted"]
        assert warnings
        assert warnings[0].args["reason"] == "deadline"

    def test_no_warning_when_search_completes(self, hm1):
        tracer = Tracer()
        program = wide_block(hm1, n_ops=4)
        composer = BranchBoundComposer(tracer=tracer)
        compose_program(program, hm1, composer)
        assert [w for w in tracer.warnings()
                if w.name == "compose.budget_exhausted"] == []
