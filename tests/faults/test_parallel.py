"""Parallel campaign fan-out and decoded-engine fault interplay.

Two guarantees under test:

1. ``jobs > 1`` is a pure throughput knob — the campaign report
   (text and JSON) is byte-identical to the serial run, because
   scenario indices are fixed before sharding and outcomes are merged
   back into index order.
2. The decoded engine never executes a stale plan: a control-store
   bit flip activating mid-run (after the word's plan is already
   cached) is observed on the very next fetch, and every scenario
   classifies identically to the interpretive engine.
"""

import pytest

from repro.asm import ControlStore
from repro.faults.campaign import run_campaign, run_campaign_loaded
from repro.faults.injectors import ControlStoreBitFlip
from repro.faults.plan import FaultPlan
from repro.faults.report import campaign_json, render_campaign
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.sim import Simulator

LOOP_SRC = """
    put total,0
    put counter,6
loop:
    add total,total,counter
    sub counter,counter,1
    jump loop if nonzero
    exit total
"""


def campaign_bytes(jobs):
    machine = get_machine("HM1")
    result = run_campaign(
        LOOP_SRC, "yalll", machine, n=24, seed=1980, jobs=jobs
    )
    return (
        render_campaign(result, scenarios=True),
        campaign_json([result]),
    )


class TestParallelFanout:
    def test_jobs_byte_identical_to_serial(self):
        text_1, json_1 = campaign_bytes(jobs=1)
        text_4, json_4 = campaign_bytes(jobs=4)
        assert text_4 == text_1
        assert json_4 == json_1

    def test_jobs_clamped_to_scenario_count(self):
        machine = get_machine("HM1")
        serial = run_campaign(LOOP_SRC, "yalll", machine, n=2, seed=3, jobs=1)
        wide = run_campaign(LOOP_SRC, "yalll", machine, n=2, seed=3, jobs=16)
        assert campaign_json([wide]) == campaign_json([serial])

    def test_outcomes_in_index_order(self):
        machine = get_machine("HM1")
        result = run_campaign(
            LOOP_SRC, "yalll", machine, n=12, seed=5, jobs=3
        )
        assert [o.index for o in result.outcomes] == list(range(12))


class TestMidRunBitflip:
    """The fault-plan/decoded-engine invalidation satellite."""

    def _compiled(self):
        machine = get_machine("HM1")
        result = compile_yalll(LOOP_SRC, machine, name="mul")
        return machine, result.loaded

    def _golden_cycles(self, machine, loaded):
        store = ControlStore(machine)
        store.load(loaded)
        simulator = Simulator(machine, store, engine="interpretive")
        return simulator.run("mul").cycles

    def midrun_plan(self, machine, loaded):
        """Every (address, bit 0) flip, activating halfway through the
        golden run — after the decoded engine has cached each word's
        plan at least once."""
        cycles = self._golden_cycles(machine, loaded)
        midpoint = cycles // 2
        specs = [
            f"bitflip:addr={address},bit={bit},cycle={midpoint}"
            for address in range(len(loaded))
            for bit in (0, machine.control.width - 1)
        ]
        return FaultPlan.from_specs(1980, specs)

    def test_decoded_classifies_identically_to_interpretive(self):
        machine, loaded = self._compiled()
        plan = self.midrun_plan(machine, loaded)
        outcomes = {}
        for engine in ("interpretive", "decoded"):
            result = run_campaign_loaded(
                loaded, machine, plan=plan, engine=engine
            )
            outcomes[engine] = result.outcomes
        interp, dec = outcomes["interpretive"], outcomes["decoded"]
        assert len(dec) == len(interp)
        for a, b in zip(interp, dec):
            assert b.spec == a.spec
            assert b.classification == a.classification
            assert b.exit_value == a.exit_value
            assert b.cycles == a.cycles
            assert b.macro_registers == a.macro_registers
            assert b.fired == a.fired
        # The sweep must actually have perturbed behaviour somewhere,
        # or the parity assertion proves nothing.
        assert any(o.classification != "masked" for o in dec)

    def test_decoded_observes_flip_not_stale_plan(self):
        """Direct check: the plan cached before ``from_cycle`` must not
        be replayed once the injector starts mutating the word."""
        machine, loaded = self._compiled()
        cycles = self._golden_cycles(machine, loaded)
        baseline_exit = None
        flipped = []
        for address in range(len(loaded)):
            for bit in range(machine.control.width):
                store = ControlStore(machine)
                store.load(loaded)
                simulator = Simulator(machine, store, engine="decoded")
                injector = ControlStoreBitFlip(
                    address, bit, from_cycle=cycles // 2
                ).attach(simulator)
                try:
                    result = simulator.run("mul", max_cycles=cycles * 10)
                except Exception:
                    flipped.append((address, bit, "error"))
                    continue
                if baseline_exit is None:
                    baseline_exit = 21  # 6+5+4+3+2+1
                if injector.fired and result.exit_value != baseline_exit:
                    flipped.append((address, bit, result.exit_value))
        # A stale-plan engine would mask every flip (the pre-flip plan
        # keeps executing); observing changed behaviour proves the
        # word-keyed cache rejected the mutated words.
        assert flipped, "no mid-run flip changed behaviour"

    def test_immediate_flip_matches_interpretive_state(self):
        machine, loaded = self._compiled()
        for bit in range(0, machine.control.width, 3):
            finals = {}
            for engine in ("interpretive", "decoded"):
                store = ControlStore(machine)
                store.load(loaded)
                simulator = Simulator(machine, store, engine=engine)
                ControlStoreBitFlip(2, bit, from_cycle=0).attach(simulator)
                try:
                    result = simulator.run("mul", max_cycles=5_000)
                    finals[engine] = (
                        "ok", result.exit_value, result.cycles,
                        dict(simulator.state.registers),
                        dict(simulator.state.flags),
                    )
                except Exception as error:
                    finals[engine] = ("error", type(error).__name__)
            assert finals["decoded"] == finals["interpretive"], f"bit {bit}"
