"""Fault plans: spec strings round-trip, generation is seeded."""

import pytest

from repro.errors import FaultPlanError
from repro.faults import (
    FAULT_KINDS,
    FaultPlan,
    FaultSpace,
    parse_fault_spec,
    spec,
)

SPACE = FaultSpace(
    n_words=8, word_bits=120, registers=("R1", "R2", "ACC"),
    register_bits=16, reads=3, writes=2, cycles=40,
)


class TestSpecStrings:
    @pytest.mark.parametrize("text", [
        "bitflip:addr=3,bit=17",
        "memfault:op=read,nth=2",
        "memfault:op=write,nth=1",
        "stuck:reg=R2,value=0",
        "stuck:reg=ACC,value=65535",
        "storm:period=7",
    ])
    def test_round_trip(self, text):
        parsed = parse_fault_spec(text)
        assert parsed.render() == text
        assert parse_fault_spec(parsed.render()) == parsed

    def test_hex_values_accepted(self):
        parsed = parse_fault_spec("stuck:reg=R1,value=0xFFFF")
        assert parsed.get("value") == 0xFFFF

    def test_params_accessors(self):
        fault = spec("bitflip", addr=3, bit=17)
        assert fault.get("addr") == 3
        assert fault.get("missing") is None
        assert fault.require("bit") == 17
        with pytest.raises(FaultPlanError):
            fault.require("missing")

    @pytest.mark.parametrize("text", [
        "florble:addr=1",          # unknown kind
        "",                         # empty
        "bitflip:addr",             # no value
        "bitflip:addr=x",           # non-integer
        "bitflip:=3",               # no key
    ])
    def test_bad_specs_rejected(self, text):
        with pytest.raises(FaultPlanError):
            parse_fault_spec(text)


class TestGeneration:
    def test_same_seed_same_plan(self):
        a = FaultPlan.generate(7, SPACE, 50)
        b = FaultPlan.generate(7, SPACE, 50)
        assert a == b
        assert a.render() == b.render()

    def test_different_seed_different_plan(self):
        a = FaultPlan.generate(7, SPACE, 50)
        b = FaultPlan.generate(8, SPACE, 50)
        assert a.render() != b.render()

    def test_plan_rebuilds_from_rendered_specs(self):
        plan = FaultPlan.generate(3, SPACE, 20)
        again = FaultPlan.from_specs(3, plan.render())
        assert again == plan

    def test_draws_stay_inside_the_space(self):
        plan = FaultPlan.generate(11, SPACE, 200)
        for fault in plan.specs:
            assert fault.kind in FAULT_KINDS
            if fault.kind == "bitflip":
                assert 0 <= fault.get("addr") < SPACE.n_words
                assert 0 <= fault.get("bit") < SPACE.word_bits
            elif fault.kind == "memfault":
                total = {"read": SPACE.reads, "write": SPACE.writes}
                assert 1 <= fault.get("nth") <= total[fault.get("op")]
            elif fault.kind == "stuck":
                assert fault.get("reg") in SPACE.registers
            else:
                assert fault.get("period") >= 2

    def test_kinds_shrink_with_the_space(self):
        bare = FaultSpace(n_words=4, word_bits=64)
        assert bare.kinds_available() == ("bitflip",)
        plan = FaultPlan.generate(1, bare, 30)
        assert {f.kind for f in plan.specs} == {"bitflip"}

    def test_empty_program_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(7, FaultSpace(n_words=0, word_bits=64), 5)

    def test_negative_count_rejected(self):
        with pytest.raises(FaultPlanError):
            FaultPlan.generate(7, SPACE, -1)
