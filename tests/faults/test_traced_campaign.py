"""Fault campaigns under the traced engine (trace-JIT satellite).

The trace JIT must be invisible to fault tooling: a campaign run with
``engine="traced"`` produces the byte-identical report — text and
JSON — to ``engine="decoded"``, for control-store bit-flip sweeps and
interrupt storms alike.  Two mechanisms carry the guarantee:

* scenario runs attach injectors, so the JIT disengages and the
  traced engine *is* the decoded engine for them;
* the golden run does trace (no injector), so its cycles, exit value
  and macro registers — the classification baseline every scenario is
  scored against — must come out of compiled superinstructions
  exactly as the decoded loop produces them.

A golden-run parity check plus an any-engine sweep over seeded plans
(which mix bitflips, memfaults, stuck bits, storms and kills) pin
both halves.
"""

from repro.faults.campaign import run_campaign, run_campaign_loaded
from repro.faults.plan import FaultPlan
from repro.faults.report import campaign_json, render_campaign
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine

#: Hot enough that the default threshold (8 back edges) compiles the
#: loop during the golden run.
LOOP_SRC = """
    put total,0
    put counter,40
loop:
    add total,total,counter
    sub counter,counter,1
    jump loop if nonzero
    exit total
"""


def _compiled():
    machine = get_machine("HM1")
    result = compile_yalll(LOOP_SRC, machine, name="mul")
    return machine, result.loaded


def _campaign_bytes(engine, plan, *, jobs=1):
    machine, loaded = _compiled()
    result = run_campaign_loaded(
        loaded, machine, plan=plan, engine=engine, jobs=jobs,
    )
    return (
        render_campaign(result, scenarios=True),
        campaign_json([result]),
        result,
    )


def _bitflip_plan(machine, loaded):
    """Every (address, edge bits) flip, half activating mid-run."""
    specs = [
        f"bitflip:addr={address},bit={bit},cycle={cycle}"
        for address in range(len(loaded))
        for bit in (0, machine.control.width - 1)
        for cycle in (0, 150)
    ]
    return FaultPlan.from_specs(1980, specs)


def _storm_plan():
    """Interrupt storms across the period spectrum."""
    specs = [f"storm:period={period}" for period in (3, 7, 13, 31)]
    return FaultPlan.from_specs(1980, specs)


class TestTracedCampaignParity:
    def test_bitflip_reports_byte_identical_to_decoded(self):
        machine, loaded = _compiled()
        plan = _bitflip_plan(machine, loaded)
        text_dec, json_dec, dec = _campaign_bytes("decoded", plan)
        text_tr, json_tr, _ = _campaign_bytes("traced", plan)
        assert text_tr == text_dec
        assert json_tr == json_dec
        # The sweep must actually perturb behaviour somewhere, or the
        # parity assertion proves nothing.
        assert any(o.classification != "masked" for o in dec.outcomes)

    def test_storm_reports_byte_identical_to_decoded(self):
        plan = _storm_plan()
        text_dec, json_dec, dec = _campaign_bytes("decoded", plan)
        text_tr, json_tr, _ = _campaign_bytes("traced", plan)
        assert text_tr == text_dec
        assert json_tr == json_dec
        assert all(o.fired for o in dec.outcomes), "storms never fired"

    def test_seeded_campaign_matches_decoded(self):
        """The CLI path: seeded mixed-fault plans, compiled source."""
        machine = get_machine("HM1")
        reports = {}
        for engine in ("decoded", "traced"):
            result = run_campaign(
                LOOP_SRC, "yalll", machine, n=24, seed=1980, engine=engine,
            )
            reports[engine] = (
                render_campaign(result, scenarios=True),
                campaign_json([result]),
            )
        assert reports["traced"] == reports["decoded"]

    def test_traced_golden_run_actually_traced(self):
        """The parity above must not be vacuous: the golden run of a
        traced campaign compiles and dispatches at least one trace."""
        machine, loaded = _compiled()
        result = run_campaign_loaded(
            loaded, machine, plan=_storm_plan(), engine="traced",
            collect_metrics=True,
        )
        counters = dict(result.metrics.trace_cache.items())
        assert counters.get("misses", 0) >= 1   # stitched
        assert counters.get("hits", 0) >= 1     # dispatched

    def test_traced_jobs_byte_identical_to_serial(self):
        machine, loaded = _compiled()
        plan = _bitflip_plan(machine, loaded)
        serial = _campaign_bytes("traced", plan, jobs=1)[:2]
        sharded = _campaign_bytes("traced", plan, jobs=4)[:2]
        assert sharded == serial
