"""Mechanical check of the survey's §2.1.5 restartability invariant.

The campaign harness compares macro-visible registers after every
trapping run against the fault-free golden run.  The naive ``incread``
(increment a macro-visible register, then read memory through it) must
double-increment under an injected pagefault — silent data corruption
— and the compiler's ``restart_safe`` transform must fix it, on both
HM1 and the split-datapath CM1.
"""

import pytest

from repro.faults import FaultPlan, run_campaign, spec
from repro.machine.machines import build_cm1, build_hm1

#: The survey's incread, in SIMPL: R1 is the macro-visible reg[n].
INCREAD = """
program incread;
begin
    R1 + ONE -> R1;
    read(R1) -> MBR;
end
"""

#: One injected pagefault on the (only) memory read.
PAGEFAULT = FaultPlan(7, (spec("memfault", op="read", nth=1),))

SETUP = dict(registers={"R1": 100}, memory={101: 0xCAFE})


@pytest.fixture(scope="module", params=["HM1", "CM1"])
def machine(request):
    build = {"HM1": build_hm1, "CM1": build_cm1}[request.param]
    return build(macro_visible=("R1",))


class TestNaiveIncread:
    def test_double_increment_is_silent_data_corruption(self, machine):
        campaign = run_campaign(
            INCREAD, "simpl", machine, plan=PAGEFAULT, **SETUP
        )
        [outcome] = campaign.outcomes
        assert outcome.classification == "sdc"
        assert outcome.traps == 1
        assert campaign.golden.macro_registers == {"R1": 101}
        assert outcome.macro_registers == {"R1": 102}  # incremented twice

    def test_violation_is_reported_mechanically(self, machine):
        campaign = run_campaign(
            INCREAD, "simpl", machine, plan=PAGEFAULT, **SETUP
        )
        violations = campaign.restart_invariant_violations()
        assert [v.index for v in violations] == [0]

    def test_hazard_surfaces_on_the_compile_result(self, machine):
        campaign = run_campaign(
            INCREAD, "simpl", machine, plan=PAGEFAULT, **SETUP
        )
        assert campaign.restart_hazards
        assert "R1" in campaign.restart_hazards[0]


class TestRestartSafeIncread:
    def test_transform_restores_the_invariant(self, machine):
        campaign = run_campaign(
            INCREAD, "simpl", machine, plan=PAGEFAULT,
            restart_safe=True, **SETUP
        )
        [outcome] = campaign.outcomes
        assert outcome.classification == "recovered"
        assert outcome.macro_registers == campaign.golden.macro_registers
        assert campaign.restart_invariant_violations() == []
        assert campaign.restart_hazards == []

    def test_all_trap_scenarios_recover(self, machine):
        """100% of trapping scenarios must classify as recovered."""
        campaign = run_campaign(
            INCREAD, "simpl", machine, n=30, seed=7,
            restart_safe=True, **SETUP
        )
        trapped = campaign.trap_scenarios()
        assert trapped, "the seeded plan never exercised a trap"
        assert all(o.classification == "recovered" for o in trapped)
        assert campaign.restart_invariant_violations() == []


class TestWithoutMacroState:
    def test_stock_hm1_has_no_incread_bug(self):
        """On stock HM1 nothing survives the restart — no hazard,
        no corruption: the §2.1.5 bug needs macro-visible state."""
        campaign = run_campaign(
            INCREAD, "simpl", build_hm1(), plan=PAGEFAULT, **SETUP
        )
        [outcome] = campaign.outcomes
        assert outcome.classification == "recovered"
        assert campaign.restart_hazards == []
