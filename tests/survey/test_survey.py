"""The survey-as-data package: records, matrix, §3 counts."""

import pytest

from repro.survey import (
    LANGUAGES,
    ParallelismModel,
    VariableModel,
    by_name,
    render_conclusions,
    render_matrix,
    survey_counts,
)


class TestRecords:
    def test_ten_languages(self):
        assert len(LANGUAGES) == 10

    def test_survey_order(self):
        names = [r.name for r in LANGUAGES]
        assert names[:4] == ["SIMPL", "EMPL", "S*", "YALLL"]

    def test_by_name(self):
        assert by_name("simpl").year == 1974
        assert by_name("CHAMIL").parallelism is ParallelismModel.EXPLICIT
        with pytest.raises(KeyError):
            by_name("FORTRAN")

    def test_toolkit_implements_the_four(self):
        implemented = {r.name for r in LANGUAGES if r.in_toolkit}
        assert implemented == {"SIMPL", "EMPL", "S*", "YALLL", "MPL"}


class TestConclusionCounts:
    """The quantitative claims of §3, regenerated from the records."""

    def test_eight_sequential_two_explicit(self):
        counts = survey_counts()
        assert counts["sequential_specification"] == 8
        assert counts["explicit_composition"] == 2

    def test_explicit_pair_is_sstar_and_chamil(self):
        explicit = {
            r.name for r in LANGUAGES
            if r.parallelism is ParallelismModel.EXPLICIT
        }
        assert explicit == {"S*", "CHAMIL"}

    def test_symbolic_variable_languages(self):
        """'only two or three (EMPL, PL/MP and in a certain sense
        YALLL) allow the programmer to work with symbolic variables'."""
        symbolic = {
            r.name for r in LANGUAGES
            if r.variables in (VariableModel.SYMBOLIC,
                               VariableModel.MOSTLY_SYMBOLIC)
        }
        assert {"EMPL", "PL/MP", "YALLL"} <= symbolic
        assert 3 <= len(symbolic) <= 4

    def test_no_parameter_passing_anywhere(self):
        assert survey_counts()["parameter_passing"] == 0

    def test_interrupts_completely_neglected(self):
        assert survey_counts()["interrupt_handling"] == 0

    def test_verification_pair(self):
        verified = {r.name for r in LANGUAGES if r.verification}
        assert verified == {"S*", "Strum"}


class TestRendering:
    def test_matrix_has_all_languages(self):
        matrix = render_matrix()
        for record in LANGUAGES:
            assert record.name in matrix

    def test_matrix_has_issue_columns(self):
        matrix = render_matrix()
        for header in ("Primitives", "Variables", "Parallelism",
                       "Verification", "Implementation"):
            assert header in matrix

    def test_conclusions_render_counts(self):
        text = render_conclusions()
        assert "8 allow complete sequential" in text
        assert "0 allow passing parameters" in text
        assert "10 languages surveyed" in text
