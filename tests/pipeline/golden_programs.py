"""The golden-equivalence corpus: one program per language.

The same multiply-by-repeated-addition algorithm, expressed once per
front end, compilable on HM1, CM1 and VM1 alike.  Used both by the
capture script (``capture_golden.py``) and the equivalence tests
(``test_golden_equivalence.py``).
"""

GOLDEN_MACHINES = ("HM1", "CM1", "VM1")

SIMPL_MUL = """
program mul;
begin
    R0 -> R3;
    while R2 # 0 do
    begin
        R3 + R1 -> R3;
        R2 - ONE -> R2;
    end;
end
"""

EMPL_MUL = """
DECLARE A FIXED;
DECLARE B FIXED;
DECLARE P FIXED;
A = 5;
B = 7;
P = 0;
WHILE B # 0 DO;
    P = P + A;
    B = B - 1;
END;
"""

SSTAR_MUL = """
program mul;
var a : seq [15..0] bit bind R1;
var n : seq [15..0] bit bind R2;
var p : seq [15..0] bit bind R3;
begin
  p := 0;
  while n <> 0 do
  begin
    p := p + a;
    n := n - 1
  end
end
"""

YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

MPL_MUL = """
program mul;
begin
    R0 -> R3;
    while R2 # 0 do
    begin
        R3 + R1 -> R3;
        R2 - ONE -> R2;
    end;
end
"""

GOLDEN_SOURCES = {
    "simpl": SIMPL_MUL,
    "empl": EMPL_MUL,
    "sstar": SSTAR_MUL,
    "yalll": YALLL_MUL,
    "mpl": MPL_MUL,
}


def snapshot(result) -> dict:
    """The comparable projection of one compile result.

    Pins exactly what the acceptance criterion names: loaded control
    words (bit-for-bit), legalize stats, allocation, restart hazards.
    """
    return {
        "words": [word.word for word in result.loaded.words],
        "entry": result.loaded.entry,
        "labels": dict(sorted(result.loaded.labels.items())),
        "legalize": {
            "ops_before": result.legalize_stats.ops_before,
            "ops_after": result.legalize_stats.ops_after,
            "expansions": dict(sorted(result.legalize_stats.expansions.items())),
            "multiway_lowered": result.legalize_stats.multiway_lowered,
        },
        "allocation": {
            "allocator": result.allocation.allocator,
            "mapping": dict(sorted(result.allocation.mapping.items())),
            "spilled_slots": dict(sorted(result.allocation.spilled_slots.items())),
            "registers_used": result.allocation.registers_used,
        },
        "restart_hazards": [str(h) for h in result.restart_hazards],
    }
