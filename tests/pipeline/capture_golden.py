"""Regenerate ``golden_compile.json`` from the current front ends.

Run from the repository root::

    PYTHONPATH=src:tests python tests/pipeline/capture_golden.py

The checked-in JSON was captured from the pre-pipeline drivers (PR 3
state); ``test_golden_equivalence.py`` pins the unified pipeline to
it.  Only regenerate when output is *supposed* to change, and say why
in the commit message.
"""

import json
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from golden_programs import GOLDEN_MACHINES, GOLDEN_SOURCES, snapshot  # noqa: E402

from repro.lang import (  # noqa: E402
    compile_empl,
    compile_mpl,
    compile_simpl,
    compile_sstar,
    compile_yalll,
)
from repro.machine.machines import get_machine  # noqa: E402

COMPILERS = {
    "simpl": compile_simpl,
    "empl": compile_empl,
    "sstar": compile_sstar,
    "yalll": compile_yalll,
    "mpl": compile_mpl,
}


def main() -> None:
    golden: dict[str, dict] = {}
    for lang, source in sorted(GOLDEN_SOURCES.items()):
        for machine_name in GOLDEN_MACHINES:
            for restart_safe in (False, True):
                machine = get_machine(machine_name)
                result = COMPILERS[lang](
                    source, machine, restart_safe=restart_safe
                )
                key = f"{lang}/{machine_name}/restart={int(restart_safe)}"
                golden[key] = snapshot(result)
    out = Path(__file__).parent / "golden_compile.json"
    out.write_text(json.dumps(golden, indent=1, sort_keys=True) + "\n")
    print(f"captured {len(golden)} cells -> {out}")


if __name__ == "__main__":
    main()
