"""Golden equivalence: the unified pipeline vs the pre-refactor drivers.

``golden_compile.json`` was captured from the per-language drivers
*before* they were rebuilt on ``repro.pipeline`` (see
``capture_golden.py``).  Every cell — 5 languages x {HM1, CM1, VM1} x
restart_safe on/off — must still come out byte-identical: loaded
control words, legalize stats, allocation and restart hazards.
"""

import json
from pathlib import Path

import pytest

from repro.registry import get_language
from repro.machine.machines import get_machine

from .golden_programs import GOLDEN_MACHINES, GOLDEN_SOURCES, snapshot

GOLDEN = json.loads(
    (Path(__file__).parent / "golden_compile.json").read_text()
)

CELLS = [
    (lang, machine_name, restart_safe)
    for lang in sorted(GOLDEN_SOURCES)
    for machine_name in GOLDEN_MACHINES
    for restart_safe in (False, True)
]


def test_golden_corpus_is_complete():
    assert len(GOLDEN) == len(CELLS) == 30


@pytest.mark.parametrize(
    "lang,machine_name,restart_safe",
    CELLS,
    ids=[f"{l}-{m}-restart{int(r)}" for l, m, r in CELLS],
)
def test_pipeline_matches_golden(lang, machine_name, restart_safe):
    machine = get_machine(machine_name)
    result = get_language(lang).compile(
        GOLDEN_SOURCES[lang], machine, restart_safe=restart_safe
    )
    key = f"{lang}/{machine_name}/restart={int(restart_safe)}"
    assert snapshot(result) == GOLDEN[key]
