"""The language/machine registry — the single dispatch point."""

import pytest

from repro.errors import MachineError
from repro.registry import (
    LanguageSpec,
    RegistryError,
    build_machine,
    get_language,
    get_machine_spec,
    language_names,
    machine_names,
)


class TestLanguages:
    def test_all_five_registered(self):
        assert language_names() == ["empl", "mpl", "simpl", "sstar", "yalll"]

    def test_spec_shape(self):
        spec = get_language("yalll")
        assert isinstance(spec, LanguageSpec)
        assert spec.section == "2.2.4"
        assert spec.has("symbolic_variables")
        assert not spec.has("programmer_binding")
        assert "assemble" in spec.stage_names()

    def test_unknown_language(self):
        with pytest.raises(RegistryError, match="unknown language"):
            get_language("cobol")

    def test_capability_split(self):
        # The survey's binding axis: symbolic-variable languages
        # allocate, programmer-binding languages don't need to.
        symbolic = {n for n in language_names()
                    if get_language(n).has("symbolic_variables")}
        binding = {n for n in language_names()
                   if get_language(n).has("programmer_binding")}
        assert symbolic == {"empl", "yalll"}
        assert binding == {"simpl", "sstar", "mpl"}
        assert not symbolic & binding


class TestMachines:
    def test_all_registered(self):
        assert machine_names() == [
            "HM1", "CM1", "HP300m", "VAXm", "VM1", "ID3200m"
        ]

    def test_spec_and_build(self):
        spec = get_machine_spec("VM1")
        assert spec.organisation == "vertical"
        machine = build_machine("VM1")
        assert machine.vertical

    def test_unknown_machine_is_machine_error(self):
        # Back-compat: get_machine("PDP-11") raised MachineError before
        # the registry existed, and callers catch that type.
        with pytest.raises(MachineError, match="unknown machine"):
            get_machine_spec("PDP-11")
