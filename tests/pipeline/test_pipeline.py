"""Pipeline mechanics: options, dumps, diagnostics, cache interplay."""

import pytest

from repro.cache import CompileCache
from repro.machine.machines import get_machine
from repro.pipeline import CompileResult, Pipeline, PipelineError, Stage
from repro.registry import get_language

from .golden_programs import GOLDEN_SOURCES

YALLL_MUL = GOLDEN_SOURCES["yalll"]


@pytest.fixture
def hm1():
    return get_machine("HM1")


class TestOptions:
    def test_unknown_option_rejected(self, hm1):
        with pytest.raises(PipelineError, match="unknown compile option"):
            get_language("yalll").compile(YALLL_MUL, hm1, optimise=True)

    def test_error_names_accepted_options(self, hm1):
        with pytest.raises(PipelineError, match="optimize"):
            get_language("yalll").compile(YALLL_MUL, hm1, bogus=1)

    def test_explicit_none_means_default(self, hm1):
        spec = get_language("yalll")
        a = spec.compile(YALLL_MUL, hm1, composer=None)
        b = spec.compile(YALLL_MUL, hm1)
        assert [w.word for w in a.loaded.words] == \
            [w.word for w in b.loaded.words]


class TestDumpAfter:
    def test_single_stage(self, hm1):
        result = get_language("yalll").compile(
            YALLL_MUL, hm1, dump_after="codegen"
        )
        assert set(result.dumps) == {"codegen"}
        assert "program" in result.dumps["codegen"]

    def test_all_stages(self, hm1):
        spec = get_language("yalll")
        result = spec.compile(YALLL_MUL, hm1, dump_after="all")
        assert set(result.dumps) == set(spec.stage_names())

    def test_collection_of_stages(self, hm1):
        result = get_language("yalll").compile(
            YALLL_MUL, hm1, dump_after=("parse", "assemble")
        )
        assert set(result.dumps) == {"parse", "assemble"}

    def test_unknown_stage_rejected(self, hm1):
        with pytest.raises(PipelineError, match="no stage named"):
            get_language("yalll").compile(
                YALLL_MUL, hm1, dump_after="linking"
            )

    def test_final_dump_is_the_listing(self, hm1):
        result = get_language("yalll").compile(
            YALLL_MUL, hm1, dump_after="assemble"
        )
        assert "control words" in result.dumps["assemble"] \
            or "0000" in result.dumps["assemble"]


class TestDiagnostics:
    def test_one_info_diagnostic_per_stage(self, hm1):
        spec = get_language("yalll")
        result = spec.compile(YALLL_MUL, hm1)
        info_stages = [d.stage for d in result.diagnostics
                       if d.severity == "info"]
        assert info_stages == list(spec.stage_names())

    def test_stage_diagnostic_lookup(self, hm1):
        result = get_language("yalll").compile(YALLL_MUL, hm1)
        diag = result.stage_diagnostic("assemble")
        assert diag is not None and diag.data["words"] == len(result.loaded)
        assert result.stage_diagnostic("linking") is None

    def test_sstar_restart_warning(self):
        # S* has no allocator to place temporaries: asking for the
        # restart transform degrades to analysis, with a warning.
        # Only VAXm has macro-visible registers, so hazards need it.
        source = """
program t;
var addr : seq [15..0] bit bind R1;
var v : seq [15..0] bit bind R2;
begin
  v := 1;
  write(addr, v)
end
"""
        result = get_language("sstar").compile(
            source, get_machine("VAXm"), restart_safe=True
        )
        assert result.restart_hazards
        events = [w.data.get("event") for w in result.warnings()]
        assert "restart.transform_unavailable" in events


class TestCacheInterplay:
    def test_second_compile_hits(self, hm1):
        cache = CompileCache()
        spec = get_language("yalll")
        first = spec.compile(YALLL_MUL, hm1, cache=cache)
        second = spec.compile(YALLL_MUL, hm1, cache=cache)
        assert second is first
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_option_change_misses(self, hm1):
        cache = CompileCache()
        spec = get_language("yalll")
        spec.compile(YALLL_MUL, hm1, cache=cache, optimize=True)
        spec.compile(YALLL_MUL, hm1, cache=cache, optimize=False)
        assert cache.stats.misses == 2

    def test_dump_after_bypasses_cache(self, hm1):
        cache = CompileCache()
        spec = get_language("yalll")
        spec.compile(YALLL_MUL, hm1, cache=cache)
        result = spec.compile(
            YALLL_MUL, hm1, cache=cache, dump_after="assemble"
        )
        assert result.dumps  # fresh compile, not the dumpless cached one
        assert cache.stats.hits == 0

    def test_cross_language_no_collision(self, hm1):
        cache = CompileCache()
        get_language("simpl").compile(
            GOLDEN_SOURCES["simpl"], hm1, cache=cache
        )
        get_language("mpl").compile(
            GOLDEN_SOURCES["simpl"], hm1, cache=cache
        )
        assert cache.stats.misses == 2 and cache.stats.hits == 0


class TestCustomPipeline:
    """The pass manager itself, on a toy two-stage pipeline."""

    def build(self):
        def parse(ctx):
            ctx.ast = ctx.source.split()
            return {"tokens": len(ctx.ast)}

        def fail(ctx):
            raise ValueError("boom")

        good = Pipeline(
            lang="toy",
            stages=(Stage("parse", parse),),
            option_defaults={"flag": False},
            result_factory=lambda ctx: ctx.ast,
        )
        bad = Pipeline(
            lang="toy",
            stages=(Stage("parse", parse), Stage("explode", fail)),
            result_factory=lambda ctx: ctx.ast,
        )
        return good, bad

    def test_stage_info_recorded(self, hm1):
        good, _ = self.build()
        assert good.run("a b c", hm1) == ["a", "b", "c"]

    def test_stage_exception_propagates(self, hm1):
        _, bad = self.build()
        with pytest.raises(ValueError, match="boom"):
            bad.run("a b", hm1)

    def test_stage_names(self):
        good, _ = self.build()
        assert good.stage_names() == ("parse",)


def test_compile_result_helpers(hm1):
    result = get_language("yalll").compile(YALLL_MUL, hm1)
    assert isinstance(result, CompileResult)
    assert result.n_instructions == len(result.loaded)
    assert result.n_ops == result.composed.n_ops()
    assert result.restart_safe == (not result.restart_hazards)
