"""E4 — YALLL on two machines (survey §2.2.4).

The survey: YALLL was implemented on the HP300 and the VAX-11; example
programs were compared "with each other and with equivalent
hand-written code", and "the HP implementation performed a lot better
than the VAX implementation" (the VAX back end did no optimization).

This harness compiles the whole corpus for HP300m (optimized) and VAXm
(unoptimized, as historically) plus hand-written references, and
reports control-store words and executed cycles.  Expected shape:
HP < VAX on both axes, and compiled/hand ratios far better on HP.
"""

from __future__ import annotations

from repro.bench import (
    CORPUS,
    HAND_CORPUS,
    hand_compile,
    render_table,
    run_hand,
    run_program,
)

INPUTS = {
    "translit": ({"str": 100, "tbl": 200},
                 {**{100 + i: v for i, v in enumerate([1, 2, 3, 0])},
                  **{200 + v: v + 10 for v in range(16)}}),
    "memcpy": ({"src": 300, "dst": 400, "n": 8},
               {300 + i: i + 1 for i in range(8)}),
    "checksum": ({"base": 500, "n": 8},
                 {500 + i: 3 * i + 1 for i in range(8)}),
    "bitcount": ({"x": 0xA5C3}, {}),
    "strcmp": ({"a": 600, "b": 700},
               {600: 1, 601: 2, 602: 0, 700: 1, 701: 2, 702: 0}),
    "fib": ({"n": 12}, {}),
}


def measure(machine, optimize):
    rows = {}
    for name in CORPUS:
        inputs, memory = INPUTS[name]
        run = run_program(name, machine, dict(inputs), memory=dict(memory),
                          optimize=optimize)
        rows[name] = (len(run.compile_result.loaded), run.run_result.cycles)
    return rows


def measure_hand(machine):
    rows = {}
    for name, builder in HAND_CORPUS.items():
        inputs, memory = INPUTS[name]
        hand = hand_compile(builder(machine), machine)
        result, _ = run_hand(hand, machine, dict(inputs), memory=dict(memory))
        rows[name] = (hand.n_instructions(), result.cycles)
    return rows


def test_e4_hp_beats_vax(benchmark, report, hp300, vax):
    hp = measure(hp300, optimize=True)
    vx = benchmark(measure, vax, False)
    hp_hand = measure_hand(hp300)
    vax_hand = measure_hand(vax)

    rows = []
    for name in CORPUS:
        rows.append([
            name,
            hp[name][0], vx[name][0],
            hp[name][1], vx[name][1],
            f"{hp[name][0] / hp_hand[name][0]:.2f}",
            f"{vx[name][0] / vax_hand[name][0]:.2f}",
        ])
    report(render_table(
        ["program", "HP words", "VAX words", "HP cycles", "VAX cycles",
         "HP/hand", "VAX/hand"],
        rows,
        title="E4: YALLL on two machines (survey 2.2.4 — 'the HP "
              "implementation performed a lot better')",
    ))

    # The paper's shape: HP wins on every program, both axes.
    for name in CORPUS:
        assert hp[name][0] <= vx[name][0], name
        assert hp[name][1] < vx[name][1], name
    # Aggregate code-quality-vs-hand gap is much smaller on HP.
    hp_ratio = sum(hp[n][0] for n in CORPUS) / sum(hp_hand[n][0] for n in CORPUS)
    vax_ratio = sum(vx[n][0] for n in CORPUS) / sum(vax_hand[n][0] for n in CORPUS)
    assert hp_ratio < vax_ratio
