"""E9 — microtraps and restart safety (survey §2.1.5).

The survey's ``incread`` scenario: increment a macro-visible register,
then use it as a memory address; a pagefault restarts the microprogram
and the increment replays.  The harness measures the naive program
(bug reproduced), the restart-safe compilation (bug fixed, small code
cost), and the interrupt-polling latency trade-off the same section
raises.
"""

from __future__ import annotations

from repro.asm import ControlStore, assemble
from repro.bench import render_table
from repro.compose import SequentialComposer, compose_program
from repro.lang.common.restart import make_restart_safe
from repro.mir import Branch, Imm, Jump, ProgramBuilder, mop, preg
from repro.regalloc import LinearScanAllocator
from repro.sim import Simulator


def incread(vax):
    builder = ProgramBuilder("incread", vax)
    builder.start_block("entry")
    builder.emit(mop("add", preg("T0"), preg("R1"), preg("ONE")))
    builder.emit(mop("mov", preg("R1"), preg("T0")))
    builder.emit(mop("mov", preg("MAR"), preg("R1")))
    builder.emit(mop("read", preg("MBR"), preg("MAR")))
    builder.exit(preg("MBR"))
    return builder.finish()


def paging_service(state, trap):
    address = int(trap.detail.split("address ")[1].rstrip(")"))
    state.memory.map_address(address)


def run_faulting(program, vax):
    composed = compose_program(program, vax, SequentialComposer())
    store = ControlStore(vax)
    store.load(assemble(composed, vax))
    simulator = Simulator(vax, store, trap_service=paging_service)
    simulator.state.memory.paging_enabled = True
    simulator.state.memory.load_words(101, [0xCAFE])
    simulator.state.write_reg("R1", 100)
    result = simulator.run("incread")
    return result, simulator.state.read_reg("R1"), composed.n_instructions()


def test_e9_incread_bug_and_fix(benchmark, report, vax):
    naive_result, naive_r1, naive_words = benchmark(run_faulting, incread(vax), vax)

    safe = incread(vax)
    remaining = make_restart_safe(safe, vax)
    assert remaining == []
    LinearScanAllocator().allocate(safe, vax)
    safe_result, safe_r1, safe_words = run_faulting(safe, vax)

    report(render_table(
        ["compilation", "words", "traps", "final reg[n]", "fetched value"],
        [
            ["naive", naive_words, naive_result.traps, naive_r1,
             f"{naive_result.exit_value:#x}"],
            ["restart-safe", safe_words, safe_result.traps, safe_r1,
             f"{safe_result.exit_value:#x}"],
        ],
        title="E9: the survey's 2.1.5 incread pagefault scenario on "
              "VAXm (reg[n]=100; correct outcome: reg[n]=101, "
              "value 0xcafe)",
    ))
    assert naive_r1 == 102          # the double increment, reproduced
    assert naive_result.exit_value != 0xCAFE
    assert safe_r1 == 101           # the idempotence transform fixes it
    assert safe_result.exit_value == 0xCAFE
    assert safe_words <= naive_words + 2  # fix costs at most a commit move


def poller(hm1, every):
    builder = ProgramBuilder("poll", hm1)
    builder.start_block("entry")
    builder.emit(mop("movi", preg("R1"), Imm(120)))
    builder.terminate(Jump("loop"))
    builder.start_block("loop")
    builder.emit(mop("poll"))
    builder.terminate(Jump("body"))
    builder.start_block("body")
    for _ in range(every - 1):
        builder.emit(mop("dec", preg("R1"), preg("R1")))
    builder.emit(mop("dec", preg("R1"), preg("R1")))
    builder.emit(mop("cmp", None, preg("R1"), preg("R0")))
    builder.terminate(Branch("Z", "done", "loop"))
    builder.start_block("done")
    builder.exit()
    return builder.finish()


def test_e9_poll_frequency_tradeoff(benchmark, report, hm1):
    """§2.1.5: a long-running microprogram 'must periodically check
    whether any interrupts are pending'.  Poll density trades
    throughput against interrupt latency."""

    def run(every):
        program = poller(hm1, every)
        composed = compose_program(program, hm1, SequentialComposer())
        store = ControlStore(hm1)
        store.load(assemble(composed, hm1))
        simulator = Simulator(
            hm1, store,
            interrupt_every=15,
            interrupt_handler=lambda state: None,
        )
        result = simulator.run("poll")
        waits = (
            result.interrupt_wait_cycles / result.interrupts_serviced
            if result.interrupts_serviced else float("inf")
        )
        return result.cycles, result.interrupts_serviced, waits

    rows = []
    for every in (1, 4, 12, 40):
        cycles, serviced, wait = run(every)
        rows.append([f"poll every {every} ops", cycles, serviced,
                     f"{wait:.1f}"])
    benchmark(run, 4)
    report(render_table(
        ["polling density", "total cycles", "interrupts serviced",
         "mean wait (cycles)"],
        rows,
        title="E9b: interrupt poll density vs latency (survey 2.1.5)",
    ))
    waits = [float(row[3]) for row in rows]
    assert waits[0] <= waits[-1]  # denser polling -> lower latency