"""E12 — the survey's comparison matrix and §3 conclusion counts.

The survey's own evaluation artifact: ten languages against the §2.1
design issues, plus the quantitative claims of the conclusions
("eight allow complete sequential specification while only two leave
composition … to the programmer", "only two or three allow … symbolic
variables", "no language allows the passing of parameters", interrupt
handling "completely neglected").  All regenerated from data.
"""

from __future__ import annotations

from repro.bench import render_table
from repro.survey import (
    LANGUAGES,
    render_conclusions,
    render_matrix,
    survey_counts,
)


def test_e12_language_matrix(benchmark, report):
    matrix = benchmark(render_matrix)
    report("E12: the survey's language x design-issue matrix\n" + matrix)
    report("E12b: conclusions (survey section 3), regenerated:\n"
           + render_conclusions())

    counts = survey_counts()
    assert counts["languages"] == 10
    assert counts["sequential_specification"] == 8
    assert counts["explicit_composition"] == 2
    assert 3 <= counts["symbolic_variables"] <= 4
    assert counts["parameter_passing"] == 0
    assert counts["interrupt_handling"] == 0
    assert counts["implemented_in_toolkit"] == 5
    for record in LANGUAGES:
        assert record.name in matrix
