"""E1 — the SIMPL floating-point multiply example (survey §2.2.1).

The survey's §2.2.1 example (64-bit FP multiply, here at the toolkit's
16-bit scale: 1 sign / 5 exponent / 10 mantissa bits) compiles through
the SIMPL pipeline and runs; the table reports code size and cycles
per composition strategy, plus the single-identity parallelism the
language's analysis detects.
"""

from __future__ import annotations

from repro.asm import ControlStore
from repro.bench import render_table
from repro.compose import (
    BranchBoundComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
)
from repro.lang.simpl import compile_simpl, parallel_pairs, parse_simpl
from repro.sim import Simulator

FPMUL = """
program fpmul;
const M3 = 0x7C00;
const M4 = 0x03FF;
begin
    comment extract and determine exponent for product;
    R1 & M3 -> ACC;
    R2 & M3 -> R4;
    R4 + ACC -> ACC;
    R3 | ACC -> R3;
    comment extract mantissas and clear ACC;
    R1 & M4 -> R1;
    R2 & M4 -> R2;
    R0 -> ACC;
    comment multiplication proper by shift and add;
    while R2 # 0 do
    begin
        ACC ^ -1 -> ACC;
        R2 ^ -1 -> R2;
        if UF = 1 then R1 + ACC -> ACC;
    end;
    comment pack exponent and mantissa;
    R3 | ACC -> R3;
end
"""

COMPOSERS = [
    SequentialComposer(), LinearComposer(), ListScheduler(),
    BranchBoundComposer(node_budget=20_000),
]


def compile_and_run(machine, composer):
    result = compile_simpl(FPMUL, machine, composer=composer)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg("R1", (2 << 10) | 3)
    simulator.state.write_reg("R2", (3 << 10) | 5)
    outcome = simulator.run("fpmul")
    r3 = simulator.state.read_reg("R3")
    assert (r3 >> 10) & 0x1F == 5  # exponents added correctly
    return len(result.loaded), outcome.cycles


def test_e1_simpl_fpmul(benchmark, report, hm1):
    rows = []
    for composer in COMPOSERS:
        words, cycles = compile_and_run(hm1, composer)
        rows.append([composer.name, words, cycles])
    benchmark(compile_and_run, hm1, LinearComposer())

    ast = parse_simpl(FPMUL)
    pairs = parallel_pairs(ast.body.body[:7])
    report(render_table(
        ["composer", "control words", "cycles"],
        rows,
        title="E1: SIMPL 2.2.1 floating-point multiply on HM1 "
              f"(single-identity analysis finds {len(pairs)} parallel "
              f"pairs in the straight-line prologue)",
    ))
    sequential = rows[0][1]
    assert all(row[1] <= sequential for row in rows[1:])
    assert pairs  # the language's headline feature detects parallelism
