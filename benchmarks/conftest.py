"""Shared benchmark fixtures.

Every benchmark prints the table the corresponding survey claim needs
(through ``report``, which bypasses pytest's capture so the rows land
in ``bench_output.txt``) and times a representative unit of work with
pytest-benchmark.

Run with ``--obs-trace-dir DIR`` to let benchmarks dump observability
traces: any benchmark that takes the ``obs_tracer`` fixture gets a
recording tracer whose events land in ``DIR/<test>.json`` as a Chrome
trace; without the option the fixture is the zero-overhead
:data:`repro.obs.NULL_TRACER`.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro.machine.machines import (
    build_hm1,
    build_hp300,
    build_id3200,
    build_vax,
    build_vm1,
)
from repro.obs import NULL_TRACER, Tracer, dump_chrome_trace


def pytest_addoption(parser):
    parser.addoption(
        "--obs-trace-dir",
        default=None,
        help="directory to write per-benchmark Chrome traces into",
    )


@pytest.fixture
def obs_tracer(request):
    """A recording tracer when --obs-trace-dir is set, else the null one."""
    trace_dir = request.config.getoption("--obs-trace-dir")
    if not trace_dir:
        yield NULL_TRACER
        return
    tracer = Tracer()
    yield tracer
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    stem = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.nodeid)
    dump_chrome_trace(tracer.events, directory / f"{stem}.json")


@pytest.fixture
def report(capsys):
    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _report


@pytest.fixture(scope="session")
def hm1():
    return build_hm1()


@pytest.fixture(scope="session")
def hp300():
    return build_hp300()


@pytest.fixture(scope="session")
def vax():
    return build_vax()


@pytest.fixture(scope="session")
def vm1():
    return build_vm1()


@pytest.fixture(scope="session")
def id3200():
    return build_id3200()
