"""Shared benchmark fixtures.

Every benchmark prints the table the corresponding survey claim needs
(through ``report``, which bypasses pytest's capture so the rows land
in ``bench_output.txt``) and times a representative unit of work with
pytest-benchmark.
"""

from __future__ import annotations

import pytest

from repro.machine.machines import (
    build_hm1,
    build_hp300,
    build_id3200,
    build_vax,
    build_vm1,
)


@pytest.fixture
def report(capsys):
    def _report(text: str) -> None:
        with capsys.disabled():
            print("\n" + text)

    return _report


@pytest.fixture(scope="session")
def hm1():
    return build_hm1()


@pytest.fixture(scope="session")
def hp300():
    return build_hp300()


@pytest.fixture(scope="session")
def vax():
    return build_vax()


@pytest.fixture(scope="session")
def vm1():
    return build_vm1()


@pytest.fixture(scope="session")
def id3200():
    return build_id3200()
