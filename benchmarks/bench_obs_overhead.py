"""Observability overhead — the tracer's disabled path is ~free.

The `repro.obs` layer promises zero-overhead-when-disabled: with no
recorder attached the simulator's hot loop pays one ``is not None``
test per microinstruction, and the compile pipeline pays a handful of
``NULL_TRACER`` no-op calls per stage.  This benchmark checks the
promise empirically on a ``bench_simpl``-style workload by timing the
shipped (instrumented, disabled) simulator loop against a verbatim
copy of the *uninstrumented* loop — once per engine: the seed's
interpretive loop and the pre-decoded plan loop — interleaved to
cancel drift: the disabled path must stay within ~5% of the untraced
baseline (plus the measured run-to-run noise of the baseline itself)
on *both* engines.

It also reports the honest cost of *enabled* tracing — profile-only
and full event recording, on each engine — which is allowed to be
expensive.
"""

from __future__ import annotations

import time

from repro.asm import ControlStore
from repro.bench import render_table
from repro.errors import MicroTrap, SimulationError
from repro.lang.yalll import compile_yalll
from repro.obs import NULL_TRACER, TraceRecorder, Tracer
from repro.sim import RunResult, Simulator
from repro.sim.decode import PlanCache, decode_word

#: Multiply-by-repeated-addition: 3 MIs per loop iteration.
YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

N_ITERATIONS = 1500
ROUNDS = 9


def _uninstrumented_run(
    simulator: Simulator, program_name: str, max_cycles: int = 1_000_000
) -> RunResult:
    """A verbatim copy of the seed's run loop, with no recorder hooks.

    This is the untraced baseline the disabled path is compared
    against; it matches ``Simulator.run`` except for the observability
    guards.
    """
    resident = simulator.store.find(program_name)
    simulator.load_constants(resident)
    state = simulator.state
    state.upc = resident.entry
    state.halted = False
    state.exit_value = None
    state.micro_stack.clear()

    entry_snapshot = state.snapshot_registers()
    instructions = 0
    traps = 0
    interrupts = 0
    wait_cycles = 0
    pending_since: int | None = None
    start_cycles = state.cycles

    while not state.halted:
        if state.cycles - start_cycles > max_cycles:
            raise SimulationError(
                f"{program_name}: exceeded {max_cycles} cycles"
            )
        if (
            simulator.interrupt_every
            and not state.interrupt_pending
            and state.cycles > 0
            and (state.cycles // simulator.interrupt_every)
            > ((state.cycles - 1) // simulator.interrupt_every)
        ):
            state.interrupt_pending = True
        if state.interrupt_pending and pending_since is None:
            pending_since = state.cycles

        loaded = simulator.store.fetch(state.upc)
        instruction = loaded.instruction
        try:
            serviced = simulator._execute_instruction(instruction)
        except MicroTrap as trap:
            traps += 1
            if traps > simulator.max_traps:
                raise SimulationError(
                    f"{program_name}: more than {simulator.max_traps} traps"
                ) from trap
            simulator._service_trap(trap, entry_snapshot)
            state.upc = resident.entry
            state.micro_stack.clear()
            state.cycles += simulator.trap_service_cycles
            continue
        if serviced:
            interrupts += 1
            if pending_since is not None:
                wait_cycles += state.cycles - pending_since
                pending_since = None
            state.cycles += simulator.interrupt_service_cycles
        state.cycles += instruction.cycles(simulator.machine)
        instructions += 1
        simulator._sequence(instruction, state.upc, resident)

    return RunResult(
        cycles=state.cycles - start_cycles,
        instructions=instructions,
        traps=traps,
        interrupts_serviced=interrupts,
        interrupt_wait_cycles=wait_cycles,
        exit_value=state.exit_value,
    )


def _uninstrumented_decoded_run(
    simulator: Simulator, program_name: str, max_cycles: int = 1_000_000
) -> RunResult:
    """The decoded engine's plan loop with no observability guards.

    A verbatim copy of ``Simulator.run``'s decoded fast path (address-
    keyed plans, no control-store fetch) minus the recorder, injector
    and trace hooks — the untraced baseline the decoded disabled path
    is compared against.
    """
    resident = simulator.store.find(program_name)
    simulator.load_constants(resident)
    state = simulator.state
    state.upc = resident.entry
    state.halted = False
    state.exit_value = None
    state.micro_stack.clear()

    entry_snapshot = state.snapshot_registers()
    instructions = 0
    traps = 0
    interrupts = 0
    wait_cycles = 0
    pending_since: int | None = None
    start_cycles = state.cycles
    if simulator._plan_cache is None:
        simulator._plan_cache = PlanCache()
    plans = simulator._plan_cache
    fast_plans = plans.addr_plans(resident)

    while not state.halted:
        if state.cycles - start_cycles > max_cycles:
            raise SimulationError(
                f"{program_name}: exceeded {max_cycles} cycles"
            )
        if (
            simulator.interrupt_every
            and not state.interrupt_pending
            and state.cycles > 0
            and (state.cycles // simulator.interrupt_every)
            > ((state.cycles - 1) // simulator.interrupt_every)
        ):
            state.interrupt_pending = True
        if state.interrupt_pending and pending_since is None:
            pending_since = state.cycles

        plan = fast_plans.get(state.upc)
        if plan is None:
            loaded = simulator.store.fetch(state.upc)
            plan = plans.lookup(resident, state.upc, loaded)
            if plan is None:
                plan = decode_word(simulator, loaded, resident, state.upc)
                plans.insert(resident, state.upc, loaded, plan, direct=True)
        try:
            serviced = plan.execute(state)
        except MicroTrap as trap:
            traps += 1
            if traps > simulator.max_traps:
                raise SimulationError(
                    f"{program_name}: more than {simulator.max_traps} traps"
                ) from trap
            simulator._service_trap(trap, entry_snapshot)
            state.upc = resident.entry
            state.micro_stack.clear()
            state.cycles += simulator.trap_service_cycles
            continue
        if serviced:
            interrupts += 1
            if pending_since is not None:
                wait_cycles += state.cycles - pending_since
                pending_since = None
            state.cycles += simulator.interrupt_service_cycles
        state.cycles += plan.cycles
        instructions += 1
        plan.sequence(state)

    return RunResult(
        cycles=state.cycles - start_cycles,
        instructions=instructions,
        traps=traps,
        interrupts_serviced=interrupts,
        interrupt_wait_cycles=wait_cycles,
        exit_value=state.exit_value,
    )


def _make_runner(machine, recorder=None, engine="interpretive"):
    result = compile_yalll(YALLL_MUL, machine, name="mul")
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store, recorder=recorder, engine=engine)
    mapping = result.allocation.mapping

    def prepare():
        simulator.state.write_reg(mapping.get("a", "a"), 3)
        simulator.state.write_reg(mapping.get("n", "n"), N_ITERATIONS)
        simulator.state.write_reg(mapping.get("p", "p"), 0)

    return simulator, prepare


def _best_of(fn, rounds: int) -> tuple[float, list[float]]:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times), times


class TestDisabledPathOverhead:
    def _assert_disabled_budget(self, hm1, report, *, engine, baseline_fn,
                                baseline_label):
        sim_base, prep_base = _make_runner(hm1, engine=engine)
        sim_inst, prep_inst = _make_runner(hm1, engine=engine)

        def run_baseline():
            prep_base()
            return baseline_fn(sim_base, "mul")

        def run_disabled():
            prep_inst()
            return sim_inst.run("mul")

        # Simulated behaviour must be bit-identical with tracing off
        # (also warms both plan caches before timing starts).
        assert run_baseline().cycles == run_disabled().cycles

        # Interleave rounds so thermal/scheduler drift hits both sides.
        base_times: list[float] = []
        inst_times: list[float] = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            run_baseline()
            base_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_disabled()
            inst_times.append(time.perf_counter() - t0)

        t_base = min(base_times)
        t_inst = min(inst_times)
        ratio = t_inst / t_base
        # Allow the baseline's own observed jitter on top of the 5%.
        noise = (sorted(base_times)[len(base_times) // 2] - t_base) / t_base
        budget = 1.05 + max(0.02, noise)
        report(render_table(
            ["variant", "best (ms)", "vs baseline"],
            [
                [baseline_label, f"{t_base * 1e3:.2f}", "1.000"],
                [f"shipped {engine} loop, recorder off",
                 f"{t_inst * 1e3:.2f}", f"{ratio:.3f}"],
            ],
            title=f"observability disabled-path overhead, {engine} engine "
            f"(min of {ROUNDS} interleaved rounds, "
            f"{N_ITERATIONS} loop iterations)",
        ))
        assert ratio <= budget, (
            f"{engine} disabled-path overhead {100 * (ratio - 1):.1f}% "
            f"exceeds budget {100 * (budget - 1):.1f}%"
        )

    def test_disabled_overhead_under_five_percent(self, hm1, report):
        self._assert_disabled_budget(
            hm1, report, engine="interpretive",
            baseline_fn=_uninstrumented_run,
            baseline_label="uninstrumented seed loop",
        )

    def test_decoded_disabled_overhead_under_five_percent(self, hm1, report):
        self._assert_disabled_budget(
            hm1, report, engine="decoded",
            baseline_fn=_uninstrumented_decoded_run,
            baseline_label="uninstrumented plan loop",
        )

    def test_enabled_cost_reported(self, hm1, report, obs_tracer):
        """Profile-only and full-event recording cost (informational)."""
        rows = []
        profiles = []
        for engine in ("interpretive", "decoded"):
            sim_off, prep_off = _make_runner(hm1, engine=engine)
            sim_prof, prep_prof = _make_runner(
                hm1, recorder=TraceRecorder(), engine=engine
            )
            tracer = Tracer() if obs_tracer is NULL_TRACER else obs_tracer
            sim_full, prep_full = _make_runner(
                hm1, recorder=TraceRecorder(tracer), engine=engine
            )

            def timed(sim, prep):
                def go():
                    prep()
                    sim.run("mul")
                return _best_of(go, 3)[0]

            t_off = timed(sim_off, prep_off)
            t_prof = timed(sim_prof, prep_prof)
            t_full = timed(sim_full, prep_full)
            rows.extend([
                [engine, "recorder off", f"{t_off * 1e3:.2f}", "1.00"],
                [engine, "profile counters", f"{t_prof * 1e3:.2f}",
                 f"{t_prof / t_off:.2f}"],
                [engine, "profile + events", f"{t_full * 1e3:.2f}",
                 f"{t_full / t_off:.2f}"],
            ])
            profiles.append(sim_prof.recorder.profile)
        report(render_table(
            ["engine", "variant", "best (ms)", "vs disabled"],
            rows,
            title="observability enabled cost (best of 3)",
        ))
        for profile in profiles:
            assert profile.instructions > 3 * N_ITERATIONS
