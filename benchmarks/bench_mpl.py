"""E15 (supplementary) — MPL's virtual registers (survey §2.2.5).

MPL's distinctive feature: "virtual registers consisting of the
concatenation of physical ones".  This harness measures what 32-bit
arithmetic on a 16-bit machine costs through the carry-chained
lowering, on the vertical machine MPL historically targeted and on
the horizontal HM1 where composition absorbs part of the overhead.
"""

from __future__ import annotations

from repro.asm import ControlStore
from repro.bench import render_table
from repro.compose import ListScheduler
from repro.lang.mpl import compile_mpl
from repro.machine.machines import build_hm1, build_vm1
from repro.sim import Simulator

SCALAR_LOOP = """
program s16;
begin
    0 -> R5;
    while R5 # R6 do
    begin
        R1 + R2 -> R1;
        R5 + ONE -> R5;
    end;
end
"""

VIRTUAL_LOOP = """
program s32;
virtual D = R1 : R2;
virtual E = R3 : R4;
begin
    0 -> R5;
    while R5 # R6 do
    begin
        D + E -> D;
        R5 + ONE -> R5;
    end;
end
"""


def run(source, machine, composer=None):
    result = compile_mpl(source, machine, composer=composer)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg("R2", 0xC000)  # low half forces carries
    simulator.state.write_reg("R4", 0xC000)
    simulator.state.write_reg("R6", 10)     # iterations
    outcome = simulator.run(result.loaded.name)
    return len(result.loaded), outcome.cycles, simulator


def test_e15_virtual_register_cost(benchmark, report, hm1, vm1):
    rows = []
    for machine, composer, label in (
        (vm1, None, "VM1 (vertical, as MPL targeted)"),
        (hm1, ListScheduler(), "HM1 (horizontal, composed)"),
    ):
        s_words, s_cycles, _ = run(SCALAR_LOOP, machine, composer)
        v_words, v_cycles, simulator = run(VIRTUAL_LOOP, machine, composer)
        # D starts at 0xC000 and accumulates E (= 0xC000) ten times.
        expected = (0xC000 * 11) & 0xFFFFFFFF
        got = ((simulator.state.read_reg("R1") << 16)
               | simulator.state.read_reg("R2"))
        assert got == expected, hex(got)
        rows.append([label, s_words, v_words, s_cycles, v_cycles,
                     f"{v_cycles / s_cycles:.2f}"])
    benchmark(run, VIRTUAL_LOOP, vm1)
    report(render_table(
        ["machine", "16-bit words", "32-bit words", "16-bit cycles",
         "32-bit cycles", "overhead"],
        rows,
        title="E15: MPL concatenated virtual registers — the cost of "
              "32-bit arithmetic on 16-bit machines (survey 2.2.5)",
    ))
    for row in rows:
        assert row[2] > row[1]          # the pair costs extra words
        assert 1.0 < float(row[5]) < 3  # ...but only ~1 extra op/add
    # Composition absorbs part of the overhead on the horizontal machine.
    assert float(rows[1][5]) <= float(rows[0][5]) + 0.2
