"""Ablations over the machine-description design choices (DESIGN.md §5).

HM1's headline features — the 3-phase microcycle with chaining and the
dual move paths — are exactly what makes S*'s ``cocycle`` expressible
and what the composition algorithms exploit.  These ablations disable
each feature on a fresh HM1 description and measure the compaction
loss on the benchmark corpus, plus memory latency's effect on runtime.
"""

from __future__ import annotations

import dataclasses

from repro.bench import CORPUS, compile_program, render_table, run_program
from repro.compose import ListScheduler, compose_program
from repro.machine.machines import build_hm1


def no_chaining_hm1():
    machine = build_hm1()
    machine.allows_phase_chaining = False
    machine.name = "HM1-nochain"
    return machine


def single_move_path_hm1():
    machine = build_hm1()
    # Retarget the B move path onto the A fields: every mov now fights
    # for one selector pair, as on a single-bus machine.
    from repro.machine.opspec import OpSpec

    variants = machine.ops._variants["mov"]
    replacement = []
    for spec in variants:
        if spec.variant == "b":
            replacement.append(dataclasses.replace(
                spec, unit="mova",
                settings=(("a_src", "$src0"), ("a_dst", "$dest")),
            ))
        else:
            replacement.append(spec)
    machine.ops._variants["mov"] = replacement
    machine.name = "HM1-onebus"
    return machine


def corpus_words(machine):
    total = 0
    for name in CORPUS:
        result = compile_program(name, machine)
        composed = compose_program(result.mir, machine, ListScheduler())
        total += composed.n_instructions()
    return total


def test_ablation_chaining_and_buses(benchmark, report):
    baseline = benchmark(corpus_words, build_hm1())
    nochain = corpus_words(no_chaining_hm1())
    onebus = corpus_words(single_move_path_hm1())
    report(render_table(
        ["machine variant", "corpus control words", "vs baseline"],
        [
            ["HM1 (3 phases, chaining, 2 move paths)", baseline, "1.00"],
            ["HM1 without phase chaining", nochain,
             f"{nochain / baseline:.2f}"],
            ["HM1 with a single move path", onebus,
             f"{onebus / baseline:.2f}"],
        ],
        title="Ablation: what HM1's datapath features buy the composers",
    ))
    assert nochain >= baseline
    assert onebus >= baseline
    assert nochain > baseline  # chaining is what makes HM1 horizontal


def test_ablation_memory_latency(benchmark, report):
    """Memory latency dominates loop runtimes: the survey's machines
    kept heavily used values in registers for exactly this reason."""
    inputs = {"base": 500, "n": 8}
    memory = {500 + i: i * 3 for i in range(8)}

    def cycles_at(latency):
        machine = build_hm1()
        machine.units["mem"] = dataclasses.replace(
            machine.units["mem"], latency=latency
        )
        machine.name = f"HM1-mem{latency}"
        run = run_program("checksum", machine, dict(inputs),
                          memory=dict(memory))
        assert run.run_result.exit_value is not None
        return run.run_result.cycles

    rows = [[latency, cycles_at(latency)] for latency in (1, 2, 4, 8)]
    benchmark(cycles_at, 2)
    report(render_table(
        ["memory latency (cycles)", "checksum runtime (cycles)"],
        rows,
        title="Ablation: main-memory latency vs loop runtime (HM1)",
    ))
    runtimes = [row[1] for row in rows]
    assert runtimes == sorted(runtimes)
    assert runtimes[-1] > runtimes[0]
