"""E14 — allocation and composition are interdependent (survey §2.1.4).

"Register allocation and microinstruction composition are
interdependent.  In order not to block possibilities to execute
operations in parallel, a register allocation phase should introduce
as little resource dependencies as possible between statements which
are not data dependent."

Two measurements on HM1:

* a workload of short-lived temporaries where aggressive register
  reuse creates anti/output dependences (a phase-1 literal load into a
  register that a phase-2 ALU/shift op still reads cannot share the
  word; two results forced into one register cannot be computed in
  parallel at all), while round-robin spreading keeps the rounds
  independent;
* a register-limit sweep showing that starving the allocator (forced
  reuse plus spill traffic) directly costs microinstructions.
"""

from __future__ import annotations

from repro.bench import random_program, render_table
from repro.compose import ListScheduler, compose_program
from repro.mir import Imm, ProgramBuilder, mop, preg, vreg
from repro.regalloc import LinearScanAllocator

N_ROUNDS = 4


def temp_heavy_workload(machine):
    """Independent rounds over short-lived temporaries.

    Each round computes ``u_r = x & t_{r-1}`` (ALU), ``v_r = t_{r-1}
    << 1`` (shifter) and loads the next round's constant (literal
    unit).  All three can share one word — unless the allocator's
    register choices say otherwise.
    """
    builder = ProgramBuilder("interact", machine)
    builder.start_block("entry")
    builder.emit(mop("movi", vreg("t0"), Imm(7)))
    for r in range(1, N_ROUNDS + 1):
        previous = vreg(f"t{r - 1}")
        builder.emit(mop("and", vreg(f"u{r}"), preg("R7"), previous))
        builder.emit(mop("shl", vreg(f"v{r}"), previous, Imm(1)))
        builder.emit(mop("movi", vreg(f"t{r}"), Imm(r)))
    builder.exit(vreg(f"t{N_ROUNDS}"))
    return builder.finish()


def measure_strategy(machine, strategy):
    program = temp_heavy_workload(machine)
    result = LinearScanAllocator(strategy=strategy).allocate(program, machine)
    composed = compose_program(program, machine, ListScheduler())
    return composed.n_instructions(), result.registers_used


def test_e14_reuse_blocks_parallelism(benchmark, report, hm1):
    reuse_mis, reuse_regs = benchmark(measure_strategy, hm1, "reuse")
    spread_mis, spread_regs = measure_strategy(hm1, "round-robin")
    report(render_table(
        ["allocation strategy", "microinstructions", "registers used"],
        [
            ["aggressive reuse", reuse_mis, reuse_regs],
            ["round-robin spreading", spread_mis, spread_regs],
        ],
        title=f"E14: allocation/composition interdependence "
              f"({N_ROUNDS}-round temp-heavy workload on HM1, "
              f"survey 2.1.4)",
    ))
    # The survey's claim, made quantitative: the register-frugal
    # allocation costs strictly more microinstructions.
    assert spread_mis < reuse_mis
    assert spread_regs >= reuse_regs


def test_e14_register_starvation_costs_words(benchmark, report, hm1):
    def sweep():
        rows = []
        for limit in (3, 4, 6, 8):
            total = 0
            for seed in range(5):
                program = random_program(
                    hm1, n_blocks=2, ops_per_block=8, seed=seed,
                    n_variables=6, reuse=0.2,
                )
                LinearScanAllocator(register_limit=limit).allocate(
                    program, hm1
                )
                composed = compose_program(program, hm1, ListScheduler())
                total += composed.n_instructions()
            rows.append([limit, total])
        return rows

    rows = benchmark(sweep)
    report(render_table(
        ["register limit", "total microinstructions (5 workloads)"],
        rows,
        title="E14b: allocation starvation vs composition quality",
    ))
    counts = [row[1] for row in rows]
    assert counts[0] >= counts[-1]
