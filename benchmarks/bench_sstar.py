"""E3 — S* explicit composition and verification (survey §2.2.3).

The survey's MPY example (multiplication by repeated addition with
programmer-composed cocycles) instantiated as S(HM1): the harness
verifies each cocycle becomes exactly one microinstruction, compares
against the same algorithm compiled from sequential YALLL, and runs
the verification subsystem over annotated S* programs.
"""

from __future__ import annotations

from repro.asm import ControlStore
from repro.bench import render_table
from repro.lang.sstar import compile_sstar, parse_sstar, verify_sstar
from repro.lang.yalll import compile_yalll
from repro.sim import Simulator

MPY = """
program MPY;
var left_alu_in  : seq [15..0] bit bind R1;
var right_alu_in : seq [15..0] bit bind R2;
var aluout       : seq [15..0] bit bind ACC;
var mpr_reg      : seq [15..0] bit bind R4;
var mpnd_reg     : seq [15..0] bit bind R5;
var product_reg  : seq [15..0] bit bind R6;
const minus1 = dec (16) -1;
syn mpr = mpr_reg, mpnd = mpnd_reg, product = product_reg;

begin
  repeat
    cocycle
      cobegin left_alu_in := product; right_alu_in := mpnd coend;
      aluout := left_alu_in + right_alu_in;
      product := aluout
    coend;
    cocycle
      cobegin left_alu_in := mpr; right_alu_in := minus1 coend;
      aluout := left_alu_in + right_alu_in;
      mpr := aluout
    coend
  until aluout = 0
end
"""

YALLL_MUL = """
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

SWAP = """
program swap;
pre  "x = a and y = b";
post "x = b and y = a";
var x : seq [15..0] bit bind R1;
var y : seq [15..0] bit bind R2;
begin cobegin x := y; y := x coend end
"""


def run_mpy(machine):
    result = compile_sstar(MPY, machine)
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    simulator.state.write_reg("R4", 9)
    simulator.state.write_reg("R5", 13)
    outcome = simulator.run("MPY")
    assert simulator.state.read_reg("R6") == 117
    return result, outcome


def test_e3_mpy_explicit_composition(benchmark, report, hm1):
    result, outcome = benchmark(run_mpy, hm1)
    yalll = compile_yalll(YALLL_MUL, hm1, name="ymul")
    store = ControlStore(hm1)
    store.load(yalll.loaded)
    simulator = Simulator(hm1, store)
    mapping = yalll.allocation.mapping
    simulator.state.write_reg(mapping["a"], 9)
    simulator.state.write_reg(mapping["n"], 13)
    yalll_outcome = simulator.run("ymul")
    assert yalll_outcome.exit_value == 117

    body = result.composed.blocks["rp1"].instructions
    report(render_table(
        ["implementation", "words", "cycles", "ops/word (loop body)"],
        [
            ["S* MPY (programmer-composed cocycles)", len(result.loaded),
             outcome.cycles,
             f"{sum(len(mi.placed) for mi in body) / len(body):.1f}"],
            ["YALLL equivalent (compiler-composed)", len(yalll.loaded),
             yalll_outcome.cycles, "-"],
        ],
        title="E3: S* MPY on HM1 (survey 2.2.3) — each cocycle is one "
              "4-op microinstruction",
    ))
    assert len(body) == 2
    assert all(len(mi.placed) == 4 for mi in body)
    # Explicit composition beats the compiled sequential formulation.
    assert outcome.cycles <= yalll_outcome.cycles


def test_e3_verification(benchmark, report, hm1):
    program = parse_sstar(SWAP)
    swap_report = benchmark(verify_sstar, program, hm1)
    bad = parse_sstar(SWAP.replace(
        "begin cobegin x := y; y := x coend end",
        "begin x := y; y := x end",
    ))
    bad_report = verify_sstar(bad, hm1)
    rows = [
        ["cobegin swap (parallel assignment)",
         len(swap_report.results), "PASS" if swap_report.passed else "FAIL"],
        ["sequential 'swap'", len(bad_report.results),
         "PASS" if bad_report.passed else
         f"FAIL {bad_report.failures[0].counterexample}"],
    ]
    report(render_table(
        ["program", "proof obligations", "verdict"],
        rows,
        title="E3b: S* verification (survey 2.2.3 — 'an automatic "
              "verifier would fit very well in an S(M) implementation')",
    ))
    assert swap_report.passed and not bad_report.passed
