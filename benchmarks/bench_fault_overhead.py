"""Fault-injection overhead — the no-injector path is ~free.

``repro.faults`` hooks into the simulator the same way the
observability recorder does: with no injector attached the hot loop
pays one ``is not None`` test per microinstruction (plus one for the
optional wall-clock deadline).  This benchmark checks the promise on
the ``bench_obs_overhead`` workload: the shipped loop with
``injector=None`` must stay within ~5% of a verbatim uninstrumented
copy of the seed loop (plus the baseline's own measured jitter),
interleaving rounds to cancel thermal/scheduler drift.

It also reports the honest cost of *attached* injectors — a stuck-at
register (fires every microinstruction, the worst case) and an armed
but never-firing memory fault — which is allowed to be expensive.
"""

from __future__ import annotations

import time

from repro.asm import ControlStore
from repro.bench import render_table
from repro.errors import MicroTrap, SimulationError
from repro.faults import StuckAtRegister, TransientMemoryFault
from repro.lang.yalll import compile_yalll
from repro.sim import RunResult, Simulator

#: Multiply-by-repeated-addition: 3 MIs per loop iteration.
YALLL_MUL = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

N_ITERATIONS = 1500
ROUNDS = 9


def _uninstrumented_run(
    simulator: Simulator, program_name: str, max_cycles: int = 1_000_000
) -> RunResult:
    """A verbatim copy of the seed's run loop: no recorder hooks, no
    injector hooks, no deadline check — the bare-metal baseline."""
    resident = simulator.store.find(program_name)
    simulator.load_constants(resident)
    state = simulator.state
    state.upc = resident.entry
    state.halted = False
    state.exit_value = None
    state.micro_stack.clear()

    entry_snapshot = state.snapshot_registers()
    instructions = 0
    traps = 0
    interrupts = 0
    wait_cycles = 0
    pending_since: int | None = None
    start_cycles = state.cycles

    while not state.halted:
        if state.cycles - start_cycles > max_cycles:
            raise SimulationError(
                f"{program_name}: exceeded {max_cycles} cycles"
            )
        if (
            simulator.interrupt_every
            and not state.interrupt_pending
            and state.cycles > 0
            and (state.cycles // simulator.interrupt_every)
            > ((state.cycles - 1) // simulator.interrupt_every)
        ):
            state.interrupt_pending = True
        if state.interrupt_pending and pending_since is None:
            pending_since = state.cycles

        loaded = simulator.store.fetch(state.upc)
        instruction = loaded.instruction
        try:
            serviced = simulator._execute_instruction(instruction)
        except MicroTrap as trap:
            traps += 1
            if traps > simulator.max_traps:
                raise SimulationError(
                    f"{program_name}: more than {simulator.max_traps} traps"
                ) from trap
            simulator._service_trap(trap, entry_snapshot)
            state.upc = resident.entry
            state.micro_stack.clear()
            state.cycles += simulator.trap_service_cycles
            continue
        if serviced:
            interrupts += 1
            if pending_since is not None:
                wait_cycles += state.cycles - pending_since
                pending_since = None
            state.cycles += simulator.interrupt_service_cycles
        state.cycles += instruction.cycles(simulator.machine)
        instructions += 1
        simulator._sequence(instruction, state.upc, resident)

    return RunResult(
        cycles=state.cycles - start_cycles,
        instructions=instructions,
        traps=traps,
        interrupts_serviced=interrupts,
        interrupt_wait_cycles=wait_cycles,
        exit_value=state.exit_value,
    )


def _make_runner(machine, injector=None):
    result = compile_yalll(YALLL_MUL, machine, name="mul")
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    if injector is not None:
        injector.attach(simulator)
    mapping = result.allocation.mapping

    def prepare():
        simulator.state.write_reg(mapping.get("a", "a"), 3)
        simulator.state.write_reg(mapping.get("n", "n"), N_ITERATIONS)
        simulator.state.write_reg(mapping.get("p", "p"), 0)

    return simulator, prepare


def _best_of(fn, rounds: int) -> float:
    times = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        times.append(time.perf_counter() - t0)
    return min(times)


class TestNoInjectorOverhead:
    def test_detached_overhead_under_five_percent(self, hm1, report):
        sim_base, prep_base = _make_runner(hm1)
        sim_hook, prep_hook = _make_runner(hm1)

        def run_baseline():
            prep_base()
            return _uninstrumented_run(sim_base, "mul")

        def run_detached():
            prep_hook()
            return sim_hook.run("mul")

        # Simulated behaviour must be bit-identical with no injector.
        assert run_baseline().cycles == run_detached().cycles

        # Interleave rounds so thermal/scheduler drift hits both sides.
        base_times: list[float] = []
        hook_times: list[float] = []
        for _ in range(ROUNDS):
            t0 = time.perf_counter()
            run_baseline()
            base_times.append(time.perf_counter() - t0)
            t0 = time.perf_counter()
            run_detached()
            hook_times.append(time.perf_counter() - t0)

        t_base = min(base_times)
        t_hook = min(hook_times)
        ratio = t_hook / t_base
        # Allow the baseline's own observed jitter on top of the 5%.
        noise = (sorted(base_times)[len(base_times) // 2] - t_base) / t_base
        budget = 1.05 + max(0.02, noise)
        report(render_table(
            ["variant", "best (ms)", "vs baseline"],
            [
                ["uninstrumented seed loop", f"{t_base * 1e3:.2f}", "1.000"],
                ["shipped loop, no injector", f"{t_hook * 1e3:.2f}",
                 f"{ratio:.3f}"],
            ],
            title="fault-injection no-injector overhead (min of "
            f"{ROUNDS} interleaved rounds, {N_ITERATIONS} loop iterations)",
        ))
        assert ratio <= budget, (
            f"no-injector overhead {100 * (ratio - 1):.1f}% exceeds "
            f"budget {100 * (budget - 1):.1f}%"
        )

    def test_attached_cost_reported(self, hm1, report):
        """Cost with injectors attached (informational, may be high)."""
        sim_off, prep_off = _make_runner(hm1)
        sim_stuck, prep_stuck = _make_runner(
            hm1, injector=StuckAtRegister("R7", 0)
        )
        sim_armed, prep_armed = _make_runner(
            hm1, injector=TransientMemoryFault(op="write", nth=10**9)
        )

        def timed(sim, prep):
            def go():
                prep()
                sim.run("mul")
            return _best_of(go, 3)

        t_off = timed(sim_off, prep_off)
        t_stuck = timed(sim_stuck, prep_stuck)
        t_armed = timed(sim_armed, prep_armed)
        report(render_table(
            ["variant", "best (ms)", "vs detached"],
            [
                ["no injector", f"{t_off * 1e3:.2f}", "1.00"],
                ["stuck-at register", f"{t_stuck * 1e3:.2f}",
                 f"{t_stuck / t_off:.2f}"],
                ["armed memory fault", f"{t_armed * 1e3:.2f}",
                 f"{t_armed / t_off:.2f}"],
            ],
            title="fault-injection attached cost (best of 3)",
        ))
        assert t_stuck > 0 and t_armed > 0
