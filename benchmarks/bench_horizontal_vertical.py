"""E11 — horizontal vs vertical encoding (survey §1, ref [5]).

"Most of the parallelism is hidden from the microprogrammer when a
vertical encoding scheme is employed, but this usually implies a loss
of flexibility and speed."

The same corpus compiled for HM1 (horizontal, 137-bit words, 3 phases)
and VM1 (vertical, 60-bit words, one op per word).  Expected shape:
the vertical machine executes more, narrower words — slower per
program but cheaper per control-store bit, the classic trade.
"""

from __future__ import annotations

from repro.bench import CORPUS, render_table, run_program

INPUTS = {
    "translit": ({"str": 100, "tbl": 200},
                 {**{100 + i: v for i, v in enumerate([1, 2, 3, 0])},
                  **{200 + v: v + 10 for v in range(16)}}),
    "memcpy": ({"src": 300, "dst": 400, "n": 8},
               {300 + i: i for i in range(8)}),
    "checksum": ({"base": 500, "n": 8}, {500 + i: i * 5 for i in range(8)}),
    "bitcount": ({"x": 0x7E3C}, {}),
    "strcmp": ({"a": 600, "b": 700}, {600: 1, 601: 0, 700: 1, 701: 0}),
    "fib": ({"n": 10}, {}),
}


def sweep(horizontal, vertical):
    rows = []
    totals = [0, 0, 0, 0]
    for name in CORPUS:
        inputs, memory = INPUTS[name]
        h = run_program(name, horizontal, dict(inputs), memory=dict(memory))
        v = run_program(name, vertical, dict(inputs), memory=dict(memory))
        h_cycles, v_cycles = h.run_result.cycles, v.run_result.cycles
        h_words, v_words = len(h.compile_result.loaded), len(v.compile_result.loaded)
        rows.append([name, h_words, v_words, h_cycles, v_cycles,
                     f"{v_cycles / h_cycles:.2f}"])
        totals[0] += h_words
        totals[1] += v_words
        totals[2] += h_cycles
        totals[3] += v_cycles
    return rows, totals


def test_e11_vertical_is_slower(benchmark, report, hm1, vm1):
    rows, totals = benchmark(sweep, hm1, vm1)
    h_bits = totals[0] * hm1.control.width
    v_bits = totals[1] * vm1.control.width
    rows.append(["TOTAL", totals[0], totals[1], totals[2], totals[3],
                 f"{totals[3] / totals[2]:.2f}"])
    report(render_table(
        ["program", "HM1 words", "VM1 words", "HM1 cycles", "VM1 cycles",
         "slowdown"],
        rows,
        title=f"E11: horizontal vs vertical encoding (survey 1, [5]).  "
              f"Control store: HM1 {h_bits} bits vs VM1 {v_bits} bits",
    ))
    # Shape: vertical costs cycles on every program...
    for row in rows[:-1]:
        assert row[4] >= row[3], row[0]
    assert totals[3] > totals[2]
    # ...but the narrow words keep its control store smaller.
    assert v_bits < h_bits
