"""Service backpressure under flood: throughput, latency, shed rate.

Floods a live ``repro.serve`` instance with 4x its admission capacity
and measures what the robustness issue demands of admission control:

* every request gets a terminal structured answer (200/4xx/5xx —
  never a hang, never a dropped connection);
* shed requests learn their fate *immediately* (typed 429, measured
  p99 in milliseconds, not queue-timeout seconds);
* the p99 latency of *accepted* requests stays bounded, because the
  per-class admission caps keep the queue short.

A second scenario floods the service with *homogeneous* ``/run``
traffic (one program, per-request register pokes) twice — batching
disabled, then enabled — and records the cross-request micro-batching
win: lockstep lane occupancy, throughput speedup, and that both modes
answer with byte-identical result blocks.

Writes the machine-readable trajectory file ``BENCH_serve.json``.

Run standalone (the CI serve-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py \
        --json BENCH_serve.json

or under pytest with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import ServeConfig, ServiceRunner

ADD_SRC = """
    put a,2
    add a,a,3
    exit a
"""

#: The homogeneous workload: one program, per-request ``set`` pokes —
#: exactly the shape cross-request micro-batching gathers into
#: lockstep lanes (every lane branches identically because ``n`` is
#: uniform; only the summand ``a`` differs).
LOOP_SRC = """
    put p,0
loop:
    jump out if n = 0
    add p,p,a
    sub n,n,1
    jump loop
out:
    exit p
"""

#: Small admission caps so a modest thread count is a genuine 4x flood.
CLASS_LIMITS = {"compile": 4, "run": 4, "campaign": 2}

FLOOD_FACTOR = 4
WAVES = 3

#: Homogeneous-flood scenario: enough per-run work that simulation
#: (not HTTP plumbing) dominates, and enough lanes that the lockstep
#: driver's fixed per-step cost amortises.
HOMOGENEOUS_REQUESTS = 64
HOMOGENEOUS_TRIPS = 5000
HOMOGENEOUS_LANES = 32
HOMOGENEOUS_WINDOW_MS = 80.0


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _request_mix() -> list[tuple[str, dict]]:
    """One flood wave: 4x capacity, spread across request classes."""
    capacity = sum(CLASS_LIMITS.values())
    flood = capacity * FLOOD_FACTOR
    mix = []
    for index in range(flood):
        if index % 5 == 0:
            mix.append(("/campaign", {
                "source": ADD_SRC, "lang": "yalll",
                "n": 4, "seed": index, "deadline_s": 60,
            }))
        elif index % 2 == 0:
            mix.append(("/run", {
                "source": ADD_SRC, "lang": "yalll", "deadline_s": 60,
            }))
        else:
            mix.append(("/compile", {
                "source": ADD_SRC, "lang": "yalll", "deadline_s": 60,
            }))
    return mix


def run_suite(waves: int = WAVES) -> dict:
    """Flood a fresh service ``waves`` times; aggregate the answers."""
    with tempfile.TemporaryDirectory() as scratch:
        config = ServeConfig(
            workers=2,
            class_limits=dict(CLASS_LIMITS),
            cache_dir=scratch,
            seed=1980,
        )
        samples: list[tuple[int, float]] = []
        with ServiceRunner(config) as runner:
            def one(item):
                path, payload = item
                start = time.perf_counter()
                status, _body = runner.request(
                    "POST", path, payload, timeout=120
                )
                return status, time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(waves):
                mix = _request_mix()
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=len(mix)
                ) as threads:
                    samples.extend(threads.map(one, mix))
            wall = time.perf_counter() - start
            health = runner.request("GET", "/healthz")[1]

    accepted = [lat for status, lat in samples if status != 429]
    shed = [lat for status, lat in samples if status == 429]
    return {
        "benchmark": "serve_load",
        "workers": 2,
        "class_limits": dict(CLASS_LIMITS),
        "capacity": sum(CLASS_LIMITS.values()),
        "flood_factor": FLOOD_FACTOR,
        "waves": waves,
        "requests": len(samples),
        "wall_s": round(wall, 3),
        "requests_per_s": round(len(samples) / wall, 1),
        "accepted": {
            "count": len(accepted),
            "p50_s": round(_percentile(accepted, 0.50), 4),
            "p99_s": round(_percentile(accepted, 0.99), 4),
        },
        "shed": {
            "count": len(shed),
            "rate": round(len(shed) / len(samples), 3),
            "p50_s": round(_percentile(shed, 0.50), 4),
            "p99_s": round(_percentile(shed, 0.99), 4),
        },
        "pool": {
            key: health["pool"][key]
            for key in ("submitted", "completed", "crashes", "restarts")
        },
    }


def _homogeneous_payload(index: int) -> dict:
    return {
        "source": LOOP_SRC, "lang": "yalll",
        "set": {"a": index, "n": HOMOGENEOUS_TRIPS}, "show": ["p"],
    }


def _run_homogeneous_mode(
    batch_max_lanes: int, requests: int
) -> tuple[dict, list]:
    """One homogeneous flood against a fresh service; returns
    ``(measurements, per-request result blocks)``."""
    with tempfile.TemporaryDirectory() as scratch:
        config = ServeConfig(
            workers=2,
            class_limits={"compile": 4, "run": requests + 8,
                          "campaign": 2},
            cache_dir=scratch,
            seed=1980,
            batch_max_lanes=batch_max_lanes,
            batch_window_ms=(
                HOMOGENEOUS_WINDOW_MS if batch_max_lanes > 1 else 0.0
            ),
        )
        with ServiceRunner(config) as runner:
            # Warm the compile cache so the measured wave is pure run
            # traffic in both modes.
            runner.request(
                "POST", "/run",
                {"source": LOOP_SRC, "lang": "yalll",
                 "set": {"n": 1}, "show": ["p"]},
                timeout=120,
            )

            def one(index):
                return runner.request(
                    "POST", "/run", _homogeneous_payload(index),
                    timeout=300,
                )

            start = time.perf_counter()
            with concurrent.futures.ThreadPoolExecutor(
                max_workers=requests
            ) as threads:
                responses = list(threads.map(one, range(requests)))
            wall = time.perf_counter() - start
            health = runner.request("GET", "/healthz")[1]
    statuses = [status for status, _ in responses]
    assert statuses == [200] * requests, statuses
    pool = health["pool"]
    flushes = pool["batch_flushes"]
    return {
        "batch_max_lanes": batch_max_lanes,
        "wall_s": round(wall, 3),
        "runs_per_s": round(requests / wall, 1),
        "batch_flushes": flushes,
        "batch_lanes": pool["batch_lanes"],
        "lane_occupancy": (
            round(pool["batch_lanes"] / flushes, 1) if flushes else 0.0
        ),
    }, [body["result"] for _, body in responses]


def run_homogeneous_suite(
    requests: int = HOMOGENEOUS_REQUESTS,
) -> dict:
    """Same homogeneous flood, scalar vs batched; byte-identity checked."""
    scalar, scalar_results = _run_homogeneous_mode(1, requests)
    batched, batched_results = _run_homogeneous_mode(
        HOMOGENEOUS_LANES, requests
    )
    if batched_results != scalar_results:
        raise AssertionError(
            "batched flood produced different result bytes than scalar"
        )
    return {
        "benchmark": "serve_homogeneous_flood",
        "requests": requests,
        "loop_trips": HOMOGENEOUS_TRIPS,
        "batch_window_ms": HOMOGENEOUS_WINDOW_MS,
        "scalar": scalar,
        "batched": batched,
        "speedup": round(
            batched["runs_per_s"] / scalar["runs_per_s"], 2
        ),
        "results_identical": True,
    }


def render(payload: dict) -> str:
    from repro.bench import render_table

    accepted, shed = payload["accepted"], payload["shed"]
    return render_table(
        ["class", "count", "p50 (s)", "p99 (s)"],
        [
            ["accepted", accepted["count"],
             f"{accepted['p50_s']:.4f}", f"{accepted['p99_s']:.4f}"],
            ["shed (429)", shed["count"],
             f"{shed['p50_s']:.4f}", f"{shed['p99_s']:.4f}"],
        ],
        title=(
            f"Serve flood at {payload['flood_factor']}x capacity "
            f"({payload['requests']} requests, "
            f"{payload['requests_per_s']}/s, "
            f"shed rate {shed['rate']:.0%})"
        ),
    )


def render_homogeneous(payload: dict) -> str:
    from repro.bench import render_table

    scalar, batched = payload["scalar"], payload["batched"]
    return render_table(
        ["mode", "runs/s", "wall (s)", "flushes", "occupancy"],
        [
            ["scalar", scalar["runs_per_s"], scalar["wall_s"],
             scalar["batch_flushes"], scalar["lane_occupancy"]],
            [f"batched ({batched['batch_max_lanes']} lanes)",
             batched["runs_per_s"], batched["wall_s"],
             batched["batch_flushes"], batched["lane_occupancy"]],
        ],
        title=(
            f"Homogeneous /run flood ({payload['requests']} requests, "
            f"{payload['loop_trips']} loop trips each): "
            f"{payload['speedup']}x throughput, identical bytes"
        ),
    )


# ----------------------------------------------------------------------
# pytest entry point (collected with the rest of the bench suite)
# ----------------------------------------------------------------------
def test_backpressure_bounds_p99(report, benchmark):
    payload = run_suite(waves=2)
    report(render(payload))
    # Admission control must actually shed at 4x capacity...
    assert payload["shed"]["count"] > 0
    # ...and a shed request learns its fate immediately, not after a
    # queue timeout (generous bound for noisy CI hosts).
    assert payload["shed"]["p99_s"] < 2.0
    # Accepted work is bounded by the short admission queue, not by
    # the full flood backlog.
    assert payload["accepted"]["p99_s"] < 60.0
    # Every request got a terminal answer.
    assert payload["requests"] == (
        payload["accepted"]["count"] + payload["shed"]["count"]
    )
    benchmark(lambda: _percentile(list(range(1000)), 0.99))


def test_homogeneous_flood_batches_with_identical_bytes(
    report, benchmark
):
    payload = run_homogeneous_suite(requests=32)
    report(render_homogeneous(payload))
    # The flood must actually have batched (lanes carried in lockstep
    # dispatches of >= 2)...
    assert payload["batched"]["batch_lanes"] >= 2
    assert payload["batched"]["batch_flushes"] >= 1
    # ...with responses byte-identical to scalar mode (checked inside
    # the suite; re-asserted here so a refactor cannot drop it)...
    assert payload["results_identical"]
    # ...and a real throughput win.  The committed BENCH_serve.json
    # records >= 2x on a quiet host; under pytest alongside the rest
    # of the suite we only insist batching never loses.
    assert payload["speedup"] >= 1.2
    benchmark(lambda: _homogeneous_payload(7))


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Flood the serve subsystem and measure backpressure"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable results to PATH",
    )
    parser.add_argument(
        "--waves", type=int, default=WAVES,
        help=f"flood waves to run (default {WAVES})",
    )
    parser.add_argument(
        "--max-shed-p99", type=float, default=None, metavar="SECONDS",
        help="exit 1 when the shed-request p99 exceeds this bound",
    )
    args = parser.parse_args(argv)
    payload = run_suite(waves=args.waves)
    print(render(payload))
    payload["homogeneous"] = run_homogeneous_suite()
    print(render_homogeneous(payload["homogeneous"]))
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if (
        args.max_shed_p99 is not None
        and payload["shed"]["p99_s"] > args.max_shed_p99
    ):
        print(
            f"FAIL: shed p99 {payload['shed']['p99_s']}s "
            f"> bound {args.max_shed_p99}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
