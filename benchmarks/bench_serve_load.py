"""Service backpressure under flood: throughput, latency, shed rate.

Floods a live ``repro.serve`` instance with 4x its admission capacity
and measures what the robustness issue demands of admission control:

* every request gets a terminal structured answer (200/4xx/5xx —
  never a hang, never a dropped connection);
* shed requests learn their fate *immediately* (typed 429, measured
  p99 in milliseconds, not queue-timeout seconds);
* the p99 latency of *accepted* requests stays bounded, because the
  per-class admission caps keep the queue short.

Writes the machine-readable trajectory file ``BENCH_serve.json``.

Run standalone (the CI serve-smoke job does)::

    PYTHONPATH=src python benchmarks/bench_serve_load.py \
        --json BENCH_serve.json

or under pytest with the rest of the bench suite.
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import sys
import tempfile
import time
from pathlib import Path

from repro.serve import ServeConfig, ServiceRunner

ADD_SRC = """
    put a,2
    add a,a,3
    exit a
"""

#: Small admission caps so a modest thread count is a genuine 4x flood.
CLASS_LIMITS = {"compile": 4, "run": 4, "campaign": 2}

FLOOD_FACTOR = 4
WAVES = 3


def _percentile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    ordered = sorted(samples)
    index = min(len(ordered) - 1, round(q * (len(ordered) - 1)))
    return ordered[index]


def _request_mix() -> list[tuple[str, dict]]:
    """One flood wave: 4x capacity, spread across request classes."""
    capacity = sum(CLASS_LIMITS.values())
    flood = capacity * FLOOD_FACTOR
    mix = []
    for index in range(flood):
        if index % 5 == 0:
            mix.append(("/campaign", {
                "source": ADD_SRC, "lang": "yalll",
                "n": 4, "seed": index, "deadline_s": 60,
            }))
        elif index % 2 == 0:
            mix.append(("/run", {
                "source": ADD_SRC, "lang": "yalll", "deadline_s": 60,
            }))
        else:
            mix.append(("/compile", {
                "source": ADD_SRC, "lang": "yalll", "deadline_s": 60,
            }))
    return mix


def run_suite(waves: int = WAVES) -> dict:
    """Flood a fresh service ``waves`` times; aggregate the answers."""
    with tempfile.TemporaryDirectory() as scratch:
        config = ServeConfig(
            workers=2,
            class_limits=dict(CLASS_LIMITS),
            cache_dir=scratch,
            seed=1980,
        )
        samples: list[tuple[int, float]] = []
        with ServiceRunner(config) as runner:
            def one(item):
                path, payload = item
                start = time.perf_counter()
                status, _body = runner.request(
                    "POST", path, payload, timeout=120
                )
                return status, time.perf_counter() - start

            start = time.perf_counter()
            for _ in range(waves):
                mix = _request_mix()
                with concurrent.futures.ThreadPoolExecutor(
                    max_workers=len(mix)
                ) as threads:
                    samples.extend(threads.map(one, mix))
            wall = time.perf_counter() - start
            health = runner.request("GET", "/healthz")[1]

    accepted = [lat for status, lat in samples if status != 429]
    shed = [lat for status, lat in samples if status == 429]
    return {
        "benchmark": "serve_load",
        "workers": 2,
        "class_limits": dict(CLASS_LIMITS),
        "capacity": sum(CLASS_LIMITS.values()),
        "flood_factor": FLOOD_FACTOR,
        "waves": waves,
        "requests": len(samples),
        "wall_s": round(wall, 3),
        "requests_per_s": round(len(samples) / wall, 1),
        "accepted": {
            "count": len(accepted),
            "p50_s": round(_percentile(accepted, 0.50), 4),
            "p99_s": round(_percentile(accepted, 0.99), 4),
        },
        "shed": {
            "count": len(shed),
            "rate": round(len(shed) / len(samples), 3),
            "p50_s": round(_percentile(shed, 0.50), 4),
            "p99_s": round(_percentile(shed, 0.99), 4),
        },
        "pool": {
            key: health["pool"][key]
            for key in ("submitted", "completed", "crashes", "restarts")
        },
    }


def render(payload: dict) -> str:
    from repro.bench import render_table

    accepted, shed = payload["accepted"], payload["shed"]
    return render_table(
        ["class", "count", "p50 (s)", "p99 (s)"],
        [
            ["accepted", accepted["count"],
             f"{accepted['p50_s']:.4f}", f"{accepted['p99_s']:.4f}"],
            ["shed (429)", shed["count"],
             f"{shed['p50_s']:.4f}", f"{shed['p99_s']:.4f}"],
        ],
        title=(
            f"Serve flood at {payload['flood_factor']}x capacity "
            f"({payload['requests']} requests, "
            f"{payload['requests_per_s']}/s, "
            f"shed rate {shed['rate']:.0%})"
        ),
    )


# ----------------------------------------------------------------------
# pytest entry point (collected with the rest of the bench suite)
# ----------------------------------------------------------------------
def test_backpressure_bounds_p99(report, benchmark):
    payload = run_suite(waves=2)
    report(render(payload))
    # Admission control must actually shed at 4x capacity...
    assert payload["shed"]["count"] > 0
    # ...and a shed request learns its fate immediately, not after a
    # queue timeout (generous bound for noisy CI hosts).
    assert payload["shed"]["p99_s"] < 2.0
    # Accepted work is bounded by the short admission queue, not by
    # the full flood backlog.
    assert payload["accepted"]["p99_s"] < 60.0
    # Every request got a terminal answer.
    assert payload["requests"] == (
        payload["accepted"]["count"] + payload["shed"]["count"]
    )
    benchmark(lambda: _percentile(list(range(1000)), 0.99))


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Flood the serve subsystem and measure backpressure"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable results to PATH",
    )
    parser.add_argument(
        "--waves", type=int, default=WAVES,
        help=f"flood waves to run (default {WAVES})",
    )
    parser.add_argument(
        "--max-shed-p99", type=float, default=None, metavar="SECONDS",
        help="exit 1 when the shed-request p99 exceeds this bound",
    )
    args = parser.parse_args(argv)
    payload = run_suite(waves=args.waves)
    print(render(payload))
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    if (
        args.max_shed_p99 is not None
        and payload["shed"]["p99_s"] > args.max_shed_p99
    ):
        print(
            f"FAIL: shed p99 {payload['shed']['p99_s']}s "
            f"> bound {args.max_shed_p99}s",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
