"""E6 — compiled vs hand-written code size (survey §2.2.5, MPGL).

"For the examples presented in [1], code size did not increase by more
than 15% in comparison with equivalent hand written microprograms."

This harness compares our compilers' control-store word counts against
the hand-written references on the regular machines, per program and
in aggregate.  Expected shape: with a good composer the aggregate
growth stays in MPGL's ballpark (tens of percent at worst); the
unoptimized path is far above it.
"""

from __future__ import annotations

from repro.bench import CORPUS, HAND_CORPUS, compile_program, hand_compile, render_table


def measure(machine, optimize=True):
    rows = []
    for name in CORPUS:
        compiled = compile_program(name, machine, optimize=optimize)
        hand = hand_compile(HAND_CORPUS[name](machine), machine)
        rows.append((name, len(compiled.loaded), hand.n_instructions()))
    return rows


def test_e6_code_size_vs_handwritten(benchmark, report, hm1, hp300):
    hm1_rows = benchmark(measure, hm1)
    hp_rows = measure(hp300)
    unopt_rows = measure(hm1, optimize=False)

    table = []
    for (name, compiled, hand), (_, hp_compiled, hp_hand), (_, unopt, _) in zip(
        hm1_rows, hp_rows, unopt_rows
    ):
        table.append([
            name, hand, compiled, f"{compiled / hand:.2f}",
            f"{hp_compiled / hp_hand:.2f}", f"{unopt / hand:.2f}",
        ])
    total_hand = sum(r[2] for r in hm1_rows)
    total_compiled = sum(r[1] for r in hm1_rows)
    total_hp = sum(r[1] for r in hp_rows) / sum(r[2] for r in hp_rows)
    table.append([
        "TOTAL", total_hand, total_compiled,
        f"{total_compiled / total_hand:.2f}", f"{total_hp:.2f}", "-",
    ])
    report(render_table(
        ["program", "hand words", "compiled", "ratio HM1", "ratio HP300m",
         "unopt ratio"],
        table,
        title="E6: compiled/hand code-size ratio (survey 2.2.5 — MPGL "
              "stayed within 1.15)",
    ))

    # Shape: optimizing compiler lands near MPGL's 15% figure in
    # aggregate; never more than ~50% over hand on any single program.
    aggregate = total_compiled / total_hand
    assert aggregate <= 1.40, aggregate
    for name, compiled, hand in hm1_rows:
        assert compiled / hand <= 1.8, name
