"""E2 — EMPL extension types and operator inlining (survey §2.2.2).

Two of the survey's claims about DeWitt's design:

* the MICROOP escape lets one source use a hardware micro-operation
  where it exists and fall back to the operator body elsewhere;
* textual inlining of non-hardware operators "will lead to an increase
  in the size of the produced code".

The harness compiles a stack-workout program (the survey's own TYPE
STACK) plus a multiply-operator program against all machines and
reports words/cycles/inline counts; a second sweep shows code size
growing linearly with the number of inlined invocations.
"""

from __future__ import annotations

from repro.asm import ControlStore
from repro.bench import render_table
from repro.lang.empl import compile_empl
from repro.machine.machines import get_machine
from repro.sim import Simulator

STACK_PROGRAM = """
TYPE STACK
     DECLARE STK(16) FIXED;
     DECLARE STKPTR FIXED;
     DECLARE VALUE FIXED;
     INITIALLY DO; STKPTR = 0; END;
     PUSH: OPERATION ACCEPTS (VALUE)
           MICROOP: PUSH 3 0;
           IF STKPTR = 16 THEN ERROR;
           ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END
           END.
     POP:  OPERATION RETURNS (VALUE)
           MICROOP: POP 3 0;
           IF STKPTR = 0 THEN ERROR;
           ELSE DO; VALUE = STK(STKPTR); STKPTR = STKPTR - 1; END
           END.
ENDTYPE;
DECLARE S STACK;
DECLARE X FIXED;
DECLARE T FIXED;
X = 1;
PUSH(S, X);
X = 2;
PUSH(S, X);
X = 3;
PUSH(S, X);
T = POP(S);
X = POP(S);
T = T + X;
X = POP(S);
T = T + X;
"""

MUL_PROGRAM = """
MULT: OPERATION ACCEPTS (A, B) RETURNS (C)
    MICROOP: MUL 2 1;
    DECLARE N FIXED;
    C = 0;
    N = B;
L:  IF N = 0 THEN GOTO DONE;
    C = C + A;
    N = N - 1;
    GOTO L;
DONE: RETURN;
END.
DECLARE X FIXED;
DECLARE R FIXED;
X = 9;
R = MULT(X, 11);
"""


def run_on(source, machine_name, expect, variable):
    machine = get_machine(machine_name)
    result = compile_empl(source, machine, name="bench")
    store = ControlStore(machine)
    store.load(result.loaded)
    simulator = Simulator(machine, store)
    outcome = simulator.run("bench")
    mapping = result.allocation.mapping
    key = f"g_{variable}"
    if key in mapping:
        value = simulator.state.read_reg(mapping[key])
    else:
        value = simulator.state.scratchpad.read(
            result.allocation.spilled_slots[key]
        )
    assert value == expect, (machine_name, value)
    return result, outcome


def test_e2_empl_portability_and_microop(benchmark, report):
    rows = []
    for machine_name in ("HM1", "HP300m", "VAXm", "VM1"):
        stack_result, stack_run = run_on(STACK_PROGRAM, machine_name, 6, "T")
        mul_result, mul_run = run_on(MUL_PROGRAM, machine_name, 99, "R")
        rows.append([
            machine_name,
            len(stack_result.loaded), stack_run.cycles,
            len(mul_result.loaded), mul_run.cycles,
            "hw mul" if mul_result.hardware_ops else "inlined",
        ])
    benchmark(run_on, STACK_PROGRAM, "HM1", 6, "T")
    report(render_table(
        ["machine", "stack words", "stack cycles", "mul words",
         "mul cycles", "MULT realized as"],
        rows,
        title="E2: one EMPL source on four machines (survey 2.2.2 — "
              "MICROOP escape on HP300m, inlining elsewhere)",
    ))
    by_machine = {row[0]: row for row in rows}
    assert by_machine["HP300m"][5] == "hw mul"
    assert by_machine["HM1"][5] == "inlined"
    # The hardware multiply is both smaller and faster.
    assert by_machine["HP300m"][3] < by_machine["HM1"][3]
    assert by_machine["HP300m"][4] < by_machine["HM1"][4]


def test_e2_inlining_grows_code(benchmark, report, hm1):
    def source(n_calls):
        body = "\n".join("R = TRIPLE(R);" for _ in range(n_calls))
        return f"""
            TRIPLE: OPERATION ACCEPTS (A) RETURNS (B)
                DECLARE T2 FIXED;
                T2 = A + A;
                B = T2 + A;
            END.
            DECLARE R FIXED;
            R = 1;
            {body}
        """

    def sweep():
        return [
            (n, compile_empl(source(n), hm1, name="grow").n_ops)
            for n in (1, 2, 4, 8)
        ]

    points = benchmark(sweep)
    report(render_table(
        ["invocations", "micro-operations"],
        [list(p) for p in points],
        title="E2b: textual inlining code growth (survey 2.2.2 — 'this "
              "will lead to an increase in the size of the produced code')",
    ))
    ops = dict(points)
    assert ops[8] > ops[4] > ops[2] > ops[1]
    # Growth is linear in invocations (each call replicates the body).
    assert ops[8] - ops[4] >= 3 * 4 - 2
