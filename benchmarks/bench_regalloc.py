"""E8 — register allocation across register-file sizes (survey §2.1.3).

"The number of registers exclusively accessible to the microprogram is
limited.  It may vary from 16 (e.g. on the DEC VAX-11) to 256 (e.g. on
the Control Data 480).  Temporarily storing variables in a reserved
area of main memory will sometimes be unavoidable, but should be done
in such a way that the number of fetches and stores is minimized."

This harness sweeps the pool size available to the allocators on a
high-pressure symbolic workload and reports spills and inserted
fetch/store traffic.  Expected shape: traffic falls monotonically as
registers grow and reaches zero once the file covers the pressure;
graph colouring never needs more traffic than linear scan's coarse
intervals.
"""

from __future__ import annotations

from repro.bench import random_program, render_table
from repro.regalloc import GraphColorAllocator, LinearScanAllocator

LIMITS = [3, 4, 5, 6, 8]
N_VARIABLES = 8


def sweep(machine):
    rows = []
    for limit in LIMITS:
        cells = [limit]
        for maker in (
            lambda l: LinearScanAllocator(register_limit=l),
            lambda l: GraphColorAllocator(register_limit=l),
        ):
            program = random_program(
                machine, n_blocks=3, ops_per_block=8, seed=7,
                n_variables=N_VARIABLES,
            )
            result = maker(limit).allocate(program, machine)
            cells.extend([
                result.n_spilled,
                result.loads_inserted + result.stores_inserted,
            ])
        rows.append(cells)
    return rows


def test_e8_register_pressure_sweep(benchmark, report, hm1):
    rows = benchmark(sweep, hm1)
    report(render_table(
        ["registers", "LS spilled", "LS ld+st", "GC spilled", "GC ld+st"],
        rows,
        title=f"E8: spill traffic vs register-file size "
              f"({N_VARIABLES} live variables; survey 2.1.3 — 16 on the "
              f"VAX-11 … 256 on the CDC 480)",
    ))
    # Monotone: more registers never means more traffic.
    for column in (2, 4):
        traffic = [row[column] for row in rows]
        assert all(a >= b for a, b in zip(traffic, traffic[1:])), traffic
    # Enough registers -> no spills at all.
    assert rows[-1][1] == 0 and rows[-1][3] == 0
    # Pressure above the pool forces spills.
    assert rows[0][1] > 0 and rows[0][3] > 0


def test_e8_precise_liveness_spills_less(benchmark, report, hm1):
    """Graph colouring's precise interference needs no more spills
    than linear scan's coarse single-range intervals."""

    def compare():
        results = []
        for seed in range(6):
            scan_program = random_program(
                hm1, n_blocks=3, ops_per_block=8, seed=seed, n_variables=8
            )
            scan = LinearScanAllocator(register_limit=4).allocate(
                scan_program, hm1
            )
            colour_program = random_program(
                hm1, n_blocks=3, ops_per_block=8, seed=seed, n_variables=8
            )
            colour = GraphColorAllocator(register_limit=4).allocate(
                colour_program, hm1
            )
            results.append((seed, scan.n_spilled, colour.n_spilled))
        return results

    results = benchmark(compare)
    report(render_table(
        ["seed", "linear-scan spills", "graph-colour spills"],
        [list(r) for r in results],
        title="E8b: allocator quality at 4 registers (Kim & Tan's [12] "
              "register assignment problem)",
    ))
    assert sum(r[2] for r in results) <= sum(r[1] for r in results)
