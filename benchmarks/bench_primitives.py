"""E13 — language primitives vs hardware features (survey §2.1.2).

The survey's Interdata 3200 example: register-bank switching ("a block
can be made to contain the current activation record") overlaps with a
hardware push-stack primitive, and a compiler that only knows "push"
will miss the cheaper "new-block" realization.

The harness runs the same nested-activation workload on ID3200m two
ways: saving/restoring the four live locals through a memory stack
(the ``push`` reading) versus switching register banks with ``setblk``
(the ``new-block`` reading).  Expected shape: bank switching wins by a
wide margin — the survey's argument for why fixed primitive sets
sacrifice machine features.
"""

from __future__ import annotations

from repro.asm import ControlStore, assemble
from repro.bench import render_table
from repro.compose import ListScheduler, compose_program
from repro.mir import Imm, Jump, ProgramBuilder, mop, preg
from repro.sim import Simulator

DEPTH = 6
LOCALS = [f"G{i}" for i in range(4)]
STACK_BASE = 0x500


def _body(builder, level):
    """The per-activation work: fill locals, fold them into S0."""
    for index, local in enumerate(LOCALS):
        builder.emit(mop("movi", preg(local), Imm(level * 10 + index)))
    for local in LOCALS:
        builder.emit(mop("add", preg("S0"), preg("S0"), preg(local)))


def memory_stack_program(machine):
    """Locals saved/restored through a main-memory stack (push view)."""
    builder = ProgramBuilder("stackver", machine)
    builder.start_block("entry")
    builder.emit(mop("movi", preg("S0"), Imm(0)))
    builder.emit(mop("movi", preg("S1"), Imm(STACK_BASE)))  # stack pointer
    for level in range(DEPTH):
        # Prologue: push the caller's locals.
        for local in LOCALS:
            builder.emit(mop("mov", preg("MAR"), preg("S1")))
            builder.emit(mop("mov", preg("MBR"), preg(local)))
            builder.emit(mop("write", None, preg("MAR"), preg("MBR")))
            builder.emit(mop("inc", preg("S1"), preg("S1")))
        _body(builder, level)
    for _level in range(DEPTH):
        # Epilogue: pop the locals back.
        for local in reversed(LOCALS):
            builder.emit(mop("dec", preg("S1"), preg("S1")))
            builder.emit(mop("mov", preg("MAR"), preg("S1")))
            builder.emit(mop("read", preg("MBR"), preg("MAR")))
            builder.emit(mop("mov", preg(local), preg("MBR")))
    builder.exit(preg("S0"))
    return builder.finish()


def bank_switch_program(machine):
    """Each activation gets a fresh register bank (new-block view)."""
    builder = ProgramBuilder("bankver", machine)
    builder.start_block("entry")
    builder.emit(mop("movi", preg("S0"), Imm(0)))
    for level in range(DEPTH):
        builder.emit(mop("setblk", None, Imm(level + 1)))
        _body(builder, level)
    for level in reversed(range(DEPTH)):
        builder.emit(mop("setblk", None, Imm(level + 1)))
    builder.emit(mop("setblk", None, Imm(0)))
    builder.exit(preg("S0"))
    return builder.finish()


def run(program, machine):
    composed = compose_program(program, machine, ListScheduler())
    loaded = assemble(composed, machine)
    store = ControlStore(machine)
    store.load(loaded)
    simulator = Simulator(machine, store)
    result = simulator.run(program.name)
    return len(loaded), result.cycles, result.exit_value


def test_e13_new_block_vs_push(benchmark, report, id3200):
    stack_words, stack_cycles, stack_value = benchmark(
        run, memory_stack_program(id3200), id3200
    )
    bank_words, bank_cycles, bank_value = run(
        bank_switch_program(id3200), id3200
    )
    assert stack_value == bank_value  # identical computation

    report(render_table(
        ["realization", "words", "cycles", "speedup"],
        [
            ["memory stack ('push' primitive)", stack_words, stack_cycles,
             "1.0"],
            ["register banks ('new-block')", bank_words, bank_cycles,
             f"{stack_cycles / bank_cycles:.1f}"],
        ],
        title=f"E13: activation records on ID3200m, {DEPTH} levels deep "
              "(survey 2.1.2 — the Interdata new-block example)",
    ))
    assert bank_cycles < stack_cycles
    assert bank_words < stack_words
    assert stack_cycles / bank_cycles >= 1.5
