"""E7 — microinstruction composition algorithms (survey §2.1.4).

"Several algorithms have been developed to compose a minimal or, using
heuristic methods, a near minimal sequence of microinstructions from a
sequence of microoperations" [18, 22, 3, 21].  This harness sweeps
random straight-line blocks at several dependence densities plus the
real corpus, and reports microinstruction counts per algorithm along
with the resource-blind maximal parallelism of Dasgupta–Tartar.

Expected shape: sequential >= linear >= list >= branch-and-bound, and
the gap between data parallelism and achieved parallelism shows the
resource constraints at work.
"""

from __future__ import annotations

from repro.bench import CORPUS, compile_program, random_block, render_table
from repro.compose import (
    BranchBoundComposer,
    LevelComposer,
    LinearComposer,
    ListScheduler,
    SequentialComposer,
    data_parallelism,
)

COMPOSERS = [
    SequentialComposer(),
    LinearComposer(),
    LevelComposer(),
    ListScheduler(),
    BranchBoundComposer(node_budget=50_000),
]


def sweep_random(machine, n_blocks=8, n_ops=12):
    rows = []
    for reuse in (0.1, 0.5, 0.9):
        totals = {c.name: 0 for c in COMPOSERS}
        parallelism = 0.0
        for seed in range(n_blocks):
            block = random_block(machine, n_ops, seed=seed, reuse=reuse)
            parallelism += data_parallelism(block, machine)
            for composer in COMPOSERS:
                totals[composer.name] += len(
                    composer.compose_block(block, machine)
                )
        row = [f"random reuse={reuse}", n_blocks * n_ops]
        row.extend(totals[c.name] for c in COMPOSERS)
        row.append(f"{parallelism / n_blocks:.2f}")
        rows.append(row)
    return rows


def sweep_corpus(machine):
    rows = []
    for name in CORPUS:
        counts = []
        n_ops = None
        for composer in COMPOSERS:
            result = compile_program(name, machine, optimize=True)
            # Recompose the already-allocated MIR with this algorithm.
            from repro.compose import compose_program

            composed = compose_program(result.mir, machine, composer)
            counts.append(composed.n_instructions())
            n_ops = composed.n_ops()
        rows.append([name, n_ops, *counts, "-"])
    return rows


def test_e7_composition_comparison(benchmark, report, hm1):
    random_rows = benchmark(sweep_random, hm1)
    corpus_rows = sweep_corpus(hm1)
    headers = ["workload", "ops", *(c.name for c in COMPOSERS),
               "data-parallelism"]
    report(render_table(
        headers, random_rows + corpus_rows,
        title="E7: microinstruction counts per composition algorithm "
              "(HM1; survey 2.1.4, refs [18,22,3,21])",
    ))
    for row in random_rows + corpus_rows:
        sequential, linear, level, list_sched, bb = row[2:7]
        assert bb <= list_sched <= sequential
        assert linear <= sequential
        assert bb <= linear


def test_e7_optimality_gap_small_blocks(benchmark, report, hm1):
    """On small blocks branch-and-bound is provably minimal; the table
    reports how close the heuristics get."""

    def sweep():
        gaps = {c.name: 0 for c in COMPOSERS[1:-1]}
        optimal_total = 0
        for seed in range(20):
            block = random_block(hm1, 8, seed=seed, reuse=0.4)
            optimal = len(BranchBoundComposer().compose_block(block, hm1))
            optimal_total += optimal
            for composer in COMPOSERS[1:-1]:
                gaps[composer.name] += len(
                    composer.compose_block(block, hm1)
                ) - optimal
        return gaps, optimal_total

    gaps, optimal_total = benchmark(sweep)
    rows = [
        [name, extra, f"{extra / optimal_total:.1%}"]
        for name, extra in gaps.items()
    ]
    report(render_table(
        ["heuristic", "extra MIs vs optimal", "relative gap"],
        rows,
        title="E7b: heuristic optimality gap over 20 random 8-op blocks",
    ))
    assert gaps["list"] <= gaps["linear"] + 5  # list scheduling competitive
