"""E10 — microcode speedups over interpreted macrocode (survey §3).

"A user may find it more attractive to speed up a heavily used
procedure by a factor of five with comparatively little effort …
than to gain a factor of ten only after mastering a complicated
microassembly language."

The transliteration loop (the survey's own §2.2.4 example), three ways
on HM1:

  1. an M1 macro program run by the microcoded interpreter — M1 has no
     indexed addressing, so the macro code uses the classic
     self-modifying-code idiom (patching LDA/STA operand fields),
     paying full interpreter overhead on every step;
  2. the YALLL program compiled to microcode;
  3. the hand-written microprogram (table lookup fused into MAR),
     optimally packed.

Expected shape: hand >= compiled, both several-fold over macro, with
compiled capturing most of the expert's gain — the survey's
5x-with-little-effort vs 10x-with-expertise trade.
"""

from __future__ import annotations

from repro.bench import (
    HAND_CORPUS,
    build_macro_system,
    hand_compile,
    render_table,
    run_hand,
    run_program,
)

STRING_BASE = 0x300
TABLE_BASE = 0x380
N_CHARS = 8

#: Self-modifying M1 transliteration (operand patching via ADD/STA).
MACRO_TRANSLIT = f"""
loop:   LDA ptr
        ADD op_lda        ; build 'LDA [ptr]'
        STA fetch1
fetch1: .word 0           ; acc := string char
        JZ  done
        ADD op_lda_tbl    ; build 'LDA [table + char]'
        STA fetch2
fetch2: .word 0           ; acc := table entry
        STA newch
        LDA ptr
        ADD op_sta        ; build 'STA [ptr]'
        STA store1
        LDA newch
store1: .word 0           ; string char := acc
        LDA ptr
        ADD one
        STA ptr
        JMP loop
done:   HALT
one:        .word 1
ptr:        .word {STRING_BASE}
newch:      .word 0
op_lda:     .word 0x1000
op_lda_tbl: .word {0x1000 + TABLE_BASE}
op_sta:     .word 0x2000
"""


def _memory():
    memory = {STRING_BASE + i: i + 1 for i in range(N_CHARS)}
    memory[STRING_BASE + N_CHARS] = 0
    memory.update({TABLE_BASE + v: v + 32 for v in range(N_CHARS + 1)})
    return memory


def run_macro(machine):
    system = build_macro_system(machine)
    for address, value in _memory().items():
        system.simulator.state.memory.load_words(address, [value])
    symbols = system.load_macro(MACRO_TRANSLIT, base=0x100)
    result = system.run_macro(symbols["loop"])
    data = system.simulator.state.memory.dump_words(STRING_BASE, N_CHARS)
    assert data == [i + 33 for i in range(N_CHARS)], data
    return result.cycles


def run_compiled(machine):
    run = run_program("translit", machine,
                      {"str": STRING_BASE, "tbl": TABLE_BASE},
                      memory=_memory())
    data = run.simulator.state.memory.dump_words(STRING_BASE, N_CHARS)
    assert data == [i + 33 for i in range(N_CHARS)], data
    return run.run_result.cycles


def run_handwritten(machine):
    hand = hand_compile(HAND_CORPUS["translit"](machine), machine)
    result, simulator = run_hand(
        hand, machine, {"str": STRING_BASE, "tbl": TABLE_BASE},
        memory=_memory(),
    )
    data = simulator.state.memory.dump_words(STRING_BASE, N_CHARS)
    assert data == [i + 33 for i in range(N_CHARS)], data
    return result.cycles


def test_e10_speedup_ladder(benchmark, report, hm1):
    macro_cycles = benchmark(run_macro, hm1)
    compiled_cycles = run_compiled(hm1)
    hand_cycles = run_handwritten(hm1)

    compiled_speedup = macro_cycles / compiled_cycles
    hand_speedup = macro_cycles / hand_cycles
    report(render_table(
        ["implementation", "cycles", "per char", "speedup over macro"],
        [
            ["interpreted macrocode (self-modifying)", macro_cycles,
             f"{macro_cycles / N_CHARS:.1f}", "1.0"],
            ["compiled microcode (YALLL)", compiled_cycles,
             f"{compiled_cycles / N_CHARS:.1f}", f"{compiled_speedup:.1f}"],
            ["hand-written microcode", hand_cycles,
             f"{hand_cycles / N_CHARS:.1f}", f"{hand_speedup:.1f}"],
        ],
        title="E10: the survey's 5x-vs-10x argument "
              f"(transliteration of {N_CHARS} chars on HM1)",
    ))

    # Shape: both microcode versions are several-fold faster; hand is
    # strictly the fastest; compiled achieves a large fraction of the
    # expert speedup "with comparatively little effort".
    assert compiled_speedup >= 4.0
    assert hand_speedup >= compiled_speedup
    assert compiled_speedup >= 0.5 * hand_speedup
