"""Simulator throughput: interpretive vs decoded vs traced execution.

The decoded engine lowers each control-store word once into a flat
execution plan (pre-resolved register slots, pre-bound semantics,
pre-computed branch targets) and replays plans from an address-keyed
map.  The traced engine layers the profile-guided trace JIT
(``repro.sim.trace``) on top: hot loops are stitched into compiled
superinstructions that run whole iterations per dispatch.  This
benchmark measures all three engines in microinstructions per second
(MI/s) on a long arithmetic loop and on a memory-traffic loop, and
writes the machine-readable trajectory file ``BENCH_sim.json``.

The batched rows run the same workloads through the lockstep driver
(``repro.sim.batch``) with 64 homogeneous lanes per dispatch and score
aggregate lane-MI/s, so the cell is directly comparable to the scalar
decoded engine it reuses plans from.  The recorded backend matters:
the >=3x batched/decoded margin is a numpy-backend number; the pure
Python fallback is gated only against the CI floor.

Run standalone (the CI perf smoke job does)::

    PYTHONPATH=src python benchmarks/bench_sim_throughput.py \
        --json BENCH_sim.json --min-ratio 1.0 --batched-floor 1.0

or under pytest with the rest of the benchmark suite.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.asm import ControlStore
from repro.bench import compare_throughput, render_regression, render_table
from repro.lang.yalll import compile_yalll
from repro.machine.machines import get_machine
from repro.sim import Simulator
from repro.sim.batch import BatchCase, resolve_backend, run_cases

#: 3 microinstructions per iteration, pure register arithmetic.
ARITH = """
    put total,0
loop:
    jump out if n = 0
    add total,total,n
    sub n,n,1
    jump loop
out:
    exit total
"""

#: Read-modify-write sweep: exercises load/stor plans and paging checks.
MEMLOOP = """
    put addr,64
loop:
    jump out if n = 0
    load w,addr
    add w,w,n
    stor w,addr
    add addr,addr,1
    sub n,n,1
    jump loop
out:
    exit w
"""

WORKLOADS = {
    "arith": (ARITH, 4000),
    "memloop": (MEMLOOP, 2000),
}

ENGINES = ("interpretive", "decoded", "traced")

#: Lanes per lockstep dispatch for the batched rows.
BATCH_LANES = 64


def measure(engine: str, workload: str, *, repeats: int = 3) -> dict:
    """Best-of-``repeats`` MI/s for one engine on one workload."""
    source, n = WORKLOADS[workload]
    machine = get_machine("HM1")
    result = compile_yalll(source, machine, name=workload)
    mapping = result.allocation.mapping
    best = None
    for _ in range(repeats):
        store = ControlStore(machine)
        store.load(result.loaded)
        simulator = Simulator(machine, store, engine=engine)
        simulator.state.write_reg(mapping["n"], n)
        start = time.perf_counter()
        run = simulator.run(workload, max_cycles=50_000_000)
        elapsed = time.perf_counter() - start
        rate = run.instructions / elapsed
        if best is None or rate > best["mi_per_s"]:
            best = {
                "engine": engine,
                "workload": workload,
                "instructions": run.instructions,
                "cycles": run.cycles,
                "seconds": round(elapsed, 6),
                "mi_per_s": round(rate, 1),
            }
    return best


def measure_batched(workload: str, *, repeats: int = 3,
                    lanes: int = BATCH_LANES) -> dict:
    """Best-of-``repeats`` aggregate lane-MI/s for the lockstep driver."""
    source, n = WORKLOADS[workload]
    machine = get_machine("HM1")
    result = compile_yalll(source, machine, name=workload)
    mapping = result.allocation.mapping
    cases = [BatchCase(registers={mapping["n"]: n}) for _ in range(lanes)]
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        outcomes = run_cases(
            machine, result.loaded, cases,
            batch=lanes, max_cycles=50_000_000,
        )
        elapsed = time.perf_counter() - start
        instructions = sum(o.result.instructions for o in outcomes)
        rate = instructions / elapsed
        if best is None or rate > best["mi_per_s"]:
            best = {
                "engine": "batched",
                "workload": workload,
                "instructions": instructions,
                "cycles": outcomes[0].result.cycles,
                "seconds": round(elapsed, 6),
                "mi_per_s": round(rate, 1),
            }
    return best


def run_suite(repeats: int = 3) -> dict:
    """Measure every (engine, workload) pair; summarise the ratios."""
    rows = [
        measure(engine, workload, repeats=repeats)
        for workload in WORKLOADS
        for engine in ENGINES
    ]
    rows += [
        measure_batched(workload, repeats=repeats)
        for workload in WORKLOADS
    ]
    scored = tuple(engine for engine in ENGINES if engine != "interpretive")
    ratios = {engine: {} for engine in scored + ("batched",)}
    batched_over_decoded = {}
    for workload in WORKLOADS:
        by_engine = {
            r["engine"]: r["mi_per_s"]
            for r in rows if r["workload"] == workload
        }
        for engine in ratios:
            ratios[engine][workload] = round(
                by_engine[engine] / by_engine["interpretive"], 3
            )
        batched_over_decoded[workload] = round(
            by_engine["batched"] / by_engine["decoded"], 3
        )
    return {
        "benchmark": "sim_throughput",
        "machine": "HM1",
        "unit": "MI/s",
        "batch_lanes": BATCH_LANES,
        "batch_backend": resolve_backend("auto"),
        "results": rows,
        #: engine -> workload -> MI/s over the interpretive engine.
        "speedup": ratios,
        "min_speedup": {
            engine: min(per_workload.values())
            for engine, per_workload in ratios.items()
        },
        #: the acceptance metric: lockstep lanes vs the scalar engine
        #: whose plans they replay.
        "batched_over_decoded": batched_over_decoded,
        "min_batched_over_decoded": min(batched_over_decoded.values()),
    }


def render(payload: dict) -> str:
    return render_table(
        ["workload", "engine", "MIs", "seconds", "MI/s"],
        [
            [r["workload"], r["engine"], r["instructions"],
             f"{r['seconds']:.4f}", f"{r['mi_per_s']:,.0f}"]
            for r in payload["results"]
        ],
        title="Simulator throughput, interpretive vs decoded vs traced "
              f"vs batched x{payload['batch_lanes']} "
              f"({payload['batch_backend']} backend, HM1); speedups over "
              f"interpretive {payload['speedup']}",
    )


# ----------------------------------------------------------------------
# pytest entry points (collected with the rest of the bench suite)
# ----------------------------------------------------------------------
def test_decoded_vs_interpretive(report, benchmark):
    payload = run_suite(repeats=2)
    report(render(payload))
    # Shape: decoding must pay for itself on every workload; the
    # arithmetic loop (no memory stalls diluting the win) must show a
    # decisive advantage.
    assert payload["min_speedup"]["decoded"] >= 1.0
    assert payload["speedup"]["decoded"]["arith"] >= 1.5
    # The trace JIT must beat plain decoding on every workload, and
    # decisively beat the interpreter even on shared CI hardware (the
    # committed BENCH_sim.json records the full >=10x memloop margin).
    assert payload["min_speedup"]["traced"] >= 2.0
    for workload in WORKLOADS:
        by_engine = {
            r["engine"]: r["mi_per_s"]
            for r in payload["results"] if r["workload"] == workload
        }
        assert by_engine["traced"] > by_engine["decoded"], workload
    # Lockstep batching must never lose to the scalar engine it
    # borrows plans from; the decisive >=3x margin is a numpy-backend
    # property (the committed BENCH_sim.json records it), so only the
    # conservative floor gates the pure-Python fallback.
    floor = 3.0 if payload["batch_backend"] == "numpy" else 1.0
    assert payload["min_batched_over_decoded"] >= floor
    benchmark(lambda: measure("traced", "arith", repeats=1))


# ----------------------------------------------------------------------
def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Measure interpretive vs decoded simulator MI/s"
    )
    parser.add_argument(
        "--json", metavar="PATH", default=None,
        help="write the machine-readable results to PATH",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=None, metavar="R",
        help="exit 1 unless decoded/interpretive >= R on every workload",
    )
    parser.add_argument(
        "--traced-floor", type=float, default=None, metavar="R",
        help="exit 1 unless traced/interpretive >= R on every workload",
    )
    parser.add_argument(
        "--batched-floor", type=float, default=None, metavar="R",
        help="exit 1 unless batched/decoded >= R on every workload",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="timing repetitions per cell (best is kept)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="committed BENCH_sim.json to gate fresh MI/s against",
    )
    parser.add_argument(
        "--regress-floor", type=float, default=0.7, metavar="R",
        help="fail when any cell's fresh/baseline MI/s ratio drops "
             "below R (default 0.7)",
    )
    parser.add_argument(
        "--report-only", action="store_true",
        help="print the regression verdict but never fail on it "
             "(for CI hosts with unstable wall-clock rates)",
    )
    args = parser.parse_args(argv)
    payload = run_suite(repeats=args.repeats)
    print(render(payload))
    if args.json:
        Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}")
    status = 0
    floors = (
        ("decoded", args.min_ratio),
        ("traced", args.traced_floor),
    )
    for engine, floor in floors:
        if floor is None:
            continue
        worst = payload["min_speedup"][engine]
        if worst < floor:
            print(
                f"FAIL: min {engine}/interpretive speedup {worst} "
                f"< floor {floor}",
                file=sys.stderr,
            )
            status = 1
    if args.batched_floor is not None:
        worst = payload["min_batched_over_decoded"]
        if worst < args.batched_floor:
            print(
                f"FAIL: min batched/decoded speedup {worst} "
                f"< floor {args.batched_floor}",
                file=sys.stderr,
            )
            status = 1
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        check = compare_throughput(
            payload, baseline, floor=args.regress_floor
        )
        print()
        print(render_regression(check))
        if not check["passed"] and not args.report_only:
            status = 1
    return status


if __name__ == "__main__":
    raise SystemExit(main())
