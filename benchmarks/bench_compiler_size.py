"""E5 — compiler size (survey §2.2.4).

"Another interesting observation is that both compilers consisted of
about 5000 lines of high level language code.  This suggests that a
full optimizing compiler for a high level microprogramming language of
the complexity of EMPL for example, will be huge."

This harness counts the source lines of each front end and of the
shared infrastructure it depends on.  Expected shape: YALLL (the
low-level language) has the smallest dedicated front end, EMPL and S*
are substantially larger, and the shared optimizing machinery dwarfs
any single front end — the survey's point exactly.
"""

from __future__ import annotations

from pathlib import Path

import repro
from repro.bench import render_table

ROOT = Path(repro.__file__).parent


def count_sloc(path: Path) -> int:
    """Non-blank, non-comment-only source lines under a directory."""
    total = 0
    for file in sorted(path.rglob("*.py")):
        in_docstring = False
        for line in file.read_text().splitlines():
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith('"""') or stripped.startswith("'''"):
                if not (len(stripped) > 3 and stripped.endswith(('"""', "'''"))):
                    in_docstring = not in_docstring
                continue
            if in_docstring or stripped.startswith("#"):
                continue
            total += 1
    return total


def measure():
    front_ends = {
        name: count_sloc(ROOT / "lang" / name)
        for name in ("simpl", "empl", "sstar", "yalll")
    }
    shared = {
        "lang/common (lexing, legalize, restart)": count_sloc(ROOT / "lang" / "common"),
        "machine descriptions": count_sloc(ROOT / "machine"),
        "micro-IR + analyses": count_sloc(ROOT / "mir"),
        "composition algorithms": count_sloc(ROOT / "compose"),
        "register allocation": count_sloc(ROOT / "regalloc"),
        "assembler/loader": count_sloc(ROOT / "asm"),
        "verification": count_sloc(ROOT / "verify"),
    }
    return front_ends, shared


def test_e5_compiler_size(benchmark, report):
    front_ends, shared = benchmark(measure)
    shared_total = sum(shared.values())
    rows = [[f"{name} front end", sloc, f"{sloc + shared_total}"]
            for name, sloc in sorted(front_ends.items(), key=lambda kv: kv[1])]
    rows += [[name, sloc, "-"] for name, sloc in shared.items()]
    rows.append(["shared infrastructure total", shared_total, "-"])
    report(render_table(
        ["component", "SLoC", "SLoC incl. shared"],
        rows,
        title="E5: compiler sizes (survey 2.2.4 — the YALLL compilers "
              "were ~5000 lines each; 'a full optimizing compiler … "
              "will be huge')",
    ))
    # Shape: YALLL is the smallest front end; each front end plus the
    # shared optimizing machinery lands in the multi-thousand-line
    # range the survey reports.
    assert front_ends["yalll"] <= min(front_ends["empl"], front_ends["sstar"])
    for name, sloc in front_ends.items():
        assert 1_000 <= sloc + shared_total <= 20_000, name
