"""Live intervals over a linearized program.

Coarse (single-range) intervals for linear-scan allocation: blocks are
laid out in insertion order, every op gets a global position, and each
register's interval spans from its first to its last point of
liveness.  Coarsening can only *add* interference, so allocation
remains sound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.machine import MicroArchitecture
from repro.mir.deps import op_reads, op_writes, terminator_reads
from repro.mir.liveness import Liveness, analyze_liveness
from repro.mir.program import MicroProgram


@dataclass
class Interval:
    """A register's live range in global positions (inclusive)."""

    name: str
    start: int
    end: int
    uses: int = 0

    def overlaps(self, other: "Interval") -> bool:
        return self.start <= other.end and other.start <= self.end


def _registers_only(resources: set[str]) -> set[str]:
    return {
        r for r in resources
        if not r.startswith("flag:") and r not in ("mem", "interrupt")
        and not r.startswith("scr:")
    }


def live_intervals(
    program: MicroProgram,
    machine: MicroArchitecture,
    liveness: Liveness | None = None,
    virtual_only: bool = True,
) -> dict[str, Interval]:
    """Compute (coarse) live intervals for registers in a program.

    Returns intervals keyed by the register's resource name (``%v`` for
    virtuals).  ``uses`` counts textual occurrences — the "access
    frequency" insight §2.1.3 asks allocators to have.
    """
    liveness = liveness or analyze_liveness(program, machine)
    base: dict[str, int] = {}
    position = 0
    for label, block in program.blocks.items():
        base[label] = position
        position += len(block.ops) + 1  # +1: terminator slot

    intervals: dict[str, Interval] = {}

    def touch(name: str, point: int, used: bool = False) -> None:
        if virtual_only and not name.startswith("%"):
            return
        interval = intervals.get(name)
        if interval is None:
            intervals[name] = Interval(name, point, point, int(used))
        else:
            interval.start = min(interval.start, point)
            interval.end = max(interval.end, point)
            interval.uses += int(used)

    for label, block in program.blocks.items():
        block_base = base[label]
        for name in _registers_only(liveness.live_in[label]):
            touch(name, block_base)
        for name in _registers_only(liveness.live_out[label]):
            touch(name, block_base + len(block.ops))
        for index, op in enumerate(block.ops):
            point = block_base + index
            for name in _registers_only(op_reads(op, machine)):
                touch(name, point, used=True)
            for name in _registers_only(op_writes(op, machine)):
                touch(name, point, used=True)
        for name in _registers_only(terminator_reads(block, machine)):
            touch(name, block_base + len(block.ops), used=True)
    return intervals
