"""Linear-scan register allocation with class constraints and spilling.

The allocator the EMPL and YALLL front ends use by default.  Two
register-selection strategies exist because allocation and composition
interact (survey §2.1.4, experiment E14):

* ``"reuse"`` — always pick the first free candidate, aggressively
  recycling registers.  Minimizes register pressure but maximizes the
  anti/output dependences that block parallel packing.
* ``"round-robin"`` — rotate through the candidates, spreading values
  across the file.  Uses more registers but introduces fewer false
  dependences, so composition packs tighter.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.mir.operands import Reg, preg, vreg
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.constraints import allowed_registers, used_physical_registers
from repro.regalloc.intervals import Interval, live_intervals
from repro.regalloc.spill import assign_slots, insert_spill_code

#: Number of physical registers reserved as spill staging temporaries.
N_SPILL_TEMPS = 3


@dataclass
class AllocationResult:
    """Outcome of register allocation over one program."""

    allocator: str
    mapping: dict[str, str] = field(default_factory=dict)
    spilled_slots: dict[str, int] = field(default_factory=dict)
    loads_inserted: int = 0
    stores_inserted: int = 0
    registers_used: int = 0

    @property
    def n_spilled(self) -> int:
        return len(self.spilled_slots)


@dataclass
class LinearScanAllocator:
    """Classic linear scan over coarse intervals.

    Attributes:
        strategy: ``"reuse"`` or ``"round-robin"`` (see module docs).
        register_limit: Optional cap on the physical pool size, used by
            experiment E8 to sweep register-file sizes (16 … 256).
    """

    strategy: str = "reuse"
    register_limit: int | None = None
    name: str = "linear-scan"
    tracer: object = NULL_TRACER

    def allocate(
        self, program: MicroProgram, machine: MicroArchitecture
    ) -> AllocationResult:
        """Allocate all virtual registers of ``program`` in place."""
        result = AllocationResult(allocator=self.name)
        rotation = 0
        temps: list[str] = []
        for _round in range(64):
            virtuals = program.virtual_regs()
            if not virtuals:
                break
            allowed = allowed_registers(program, machine)
            for virtual in virtuals:
                allowed.setdefault(
                    virtual,
                    [
                        r.name
                        for r in machine.registers.allocatable(GPR)
                        if r.name not in used_physical_registers(program)
                    ],
                )
            if self.register_limit is not None or temps:
                allowed = {
                    v: self._restrict(candidates, temps)
                    for v, candidates in allowed.items()
                }
                for v, candidates in allowed.items():
                    if not candidates:
                        raise AllocationError(
                            f"register pool exhausted for {v} "
                            f"(limit {self.register_limit})"
                        )
            intervals = live_intervals(program, machine)
            mapping, to_spill = self._scan(intervals, allowed, rotation)
            if self.tracer.enabled:
                self.tracer.instant(
                    "regalloc.round", cat="regalloc", allocator=self.name,
                    round=_round, virtuals=len(virtuals),
                    assigned=len(mapping), spilling=sorted(to_spill),
                )
            if not to_spill:
                reg_mapping = {
                    vreg(name[1:]): preg(target) for name, target in mapping.items()
                }
                program.rename_regs(reg_mapping)
                result.mapping.update(
                    {name[1:]: target for name, target in mapping.items()}
                )
                result.registers_used = len(set(result.mapping.values())) + len(
                    set(temps)
                )
                return result
            # Reserve temporaries once spilling starts, then rewrite.
            if not temps:
                reserved = used_physical_registers(program)
                pool = [
                    r.name for r in machine.registers.allocatable(GPR)
                    if r.name not in reserved
                ]
                pool = self._restrict(pool, [])
                temps = pool[-N_SPILL_TEMPS:]
                if len(temps) < 2:
                    raise AllocationError(
                        "register pool too small even for spill temporaries"
                    )
            slots = assign_slots(
                [name[1:] for name in to_spill],
                result.spilled_slots,
                machine.scratchpad_size,
            )
            spill = insert_spill_code(program, slots, temps)
            result.spilled_slots.update(slots)
            result.loads_inserted += spill.loads_inserted
            result.stores_inserted += spill.stores_inserted
            if self.tracer.enabled:
                self.tracer.instant(
                    "regalloc.spill", cat="regalloc", allocator=self.name,
                    slots=slots, loads=spill.loads_inserted,
                    stores=spill.stores_inserted,
                )
        else:  # pragma: no cover - defensive
            raise AllocationError("allocation did not converge")
        result.registers_used = len(set(result.mapping.values())) + len(set(temps))
        return result

    # ------------------------------------------------------------------
    def _restrict(self, candidates: list[str], temps: list[str]) -> list[str]:
        limited = candidates
        if self.register_limit is not None:
            limited = limited[: self.register_limit]
        return [r for r in limited if r not in temps]

    def _scan(
        self,
        intervals: dict[str, Interval],
        allowed: dict,
        rotation: int,
    ) -> tuple[dict[str, str], list[str]]:
        """One linear-scan pass: returns (mapping, names to spill)."""
        # The name tie-break makes the scan order a total order: interval
        # insertion order leaks hash-randomised liveness-set iteration,
        # so without it same-range virtuals allocate differently across
        # processes — breaking campaign byte-reproducibility.
        order = sorted(
            intervals.values(), key=lambda i: (i.start, i.end, i.name)
        )
        active: list[tuple[Interval, str]] = []
        mapping: dict[str, str] = {}
        to_spill: list[str] = []
        counter = rotation
        for interval in order:
            active = [(a, r) for a, r in active if a.end >= interval.start]
            in_use = {r for _a, r in active}
            virtual = vreg(interval.name[1:])
            if virtual not in allowed:
                # Live-at-exit ghost that no op ever touches (e.g. an
                # unused EMPL global): nothing to allocate.
                continue
            candidates = [c for c in allowed[virtual] if c not in in_use]
            if candidates:
                if self.strategy == "round-robin":
                    choice = candidates[counter % len(candidates)]
                    counter += 1
                else:
                    choice = candidates[0]
                mapping[interval.name] = choice
                active.append((interval, choice))
                continue
            # Spill heuristic: evict the conflicting interval with the
            # furthest end (Poletto/Sarkar), unless the current one
            # ends even later.
            conflicting = [
                (a, r) for a, r in active if r in set(allowed[virtual])
            ]
            victim = max(conflicting, key=lambda pair: pair[0].end, default=None)
            if victim is not None and victim[0].end > interval.end:
                to_spill.append(victim[0].name)
                mapping[interval.name] = victim[1]
                mapping.pop(victim[0].name, None)
                active.remove(victim)
                active.append((interval, victim[1]))
            else:
                to_spill.append(interval.name)
        return mapping, to_spill
