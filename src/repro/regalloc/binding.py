"""Programmer-specified register binding (SIMPL / S* / CHAMIL style).

"In many microprogramming languages the allocation problem is
completely avoided by requiring the programmer to bind all variables
used to the physical registers of the target machine" (§2.1.3).  This
module validates such a binding against the machine description and
applies it — the allocator used by the SIMPL, S* and YALLL front ends
when programs declare bindings.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AllocationError
from repro.machine.machine import MicroArchitecture
from repro.mir.operands import preg, vreg
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.constraints import collect_class_constraints
from repro.regalloc.linear_scan import AllocationResult


@dataclass
class BindingAllocator:
    """Applies an explicit variable → physical register binding.

    Attributes:
        binding: Variable name → physical register name.
        allow_aliases: Whether two variables may share one register
            (SIMPL's equivalence statement deliberately allows this).
    """

    binding: dict[str, str]
    allow_aliases: bool = False
    name: str = "binding"
    tracer: object = NULL_TRACER

    def allocate(
        self, program: MicroProgram, machine: MicroArchitecture
    ) -> AllocationResult:
        virtuals = program.virtual_regs()
        missing = sorted(v.name for v in virtuals if v.name not in self.binding)
        if missing:
            raise AllocationError(
                f"variables without register binding: {', '.join(missing)}"
            )
        if not self.allow_aliases:
            seen: dict[str, str] = {}
            for variable, register in sorted(self.binding.items()):
                if register in seen:
                    raise AllocationError(
                        f"variables {seen[register]!r} and {variable!r} both "
                        f"bound to {register!r}"
                    )
                seen[register] = variable
        constraints = collect_class_constraints(program, machine)
        for virtual in virtuals:
            register_name = self.binding[virtual.name]
            if register_name not in machine.registers:
                raise AllocationError(
                    f"variable {virtual.name!r} bound to unknown register "
                    f"{register_name!r}"
                )
            register = machine.registers[register_name]
            for cls in constraints.get(virtual, set()):
                if not register.is_in(cls):
                    raise AllocationError(
                        f"variable {virtual.name!r} bound to {register_name!r} "
                        f"which lacks required class {cls!r}"
                    )
        mapping = {
            vreg(v.name): preg(self.binding[v.name]) for v in virtuals
        }
        program.rename_regs(mapping)
        if self.tracer.enabled:
            self.tracer.instant(
                "regalloc.bind", cat="regalloc", allocator=self.name,
                bound={v.name: self.binding[v.name] for v in virtuals},
            )
        return AllocationResult(
            allocator=self.name,
            mapping={v.name: self.binding[v.name] for v in virtuals},
            registers_used=len(set(self.binding.values())),
        )
