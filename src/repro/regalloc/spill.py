"""Spill-code insertion: virtual registers → scratchpad slots.

"Temporarily storing variables in a reserved area of main memory will
sometimes be unavoidable, but should be done in such a way that the
number of fetches and stores is minimized" (§2.1.3).  Spilled
variables live in scratchpad slots; every use loads into a reserved
temporary register just before the op and every definition stores right
after it.  The inserted ``ldscr``/``stscr`` counts are the metric
experiment E8 reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.mir.operands import Imm, Reg, preg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram


@dataclass
class SpillResult:
    """Bookkeeping from one spill-rewrite pass."""

    slots: dict[str, int] = field(default_factory=dict)
    loads_inserted: int = 0
    stores_inserted: int = 0


def insert_spill_code(
    program: MicroProgram,
    spilled: dict[str, int],
    temp_registers: list[str],
) -> SpillResult:
    """Rewrite a program in place, spilling the given virtuals.

    ``spilled`` maps virtual register *names* to scratchpad slots;
    ``temp_registers`` are physical registers reserved for staging.
    """
    result = SpillResult(slots=dict(spilled))
    for block in program.blocks.values():
        new_ops: list[MicroOp] = []
        for op in block.ops:
            assigned: dict[str, str] = {}
            # A temp must not collide with physical registers already in
            # the op (e.g. temps substituted by an earlier spill round).
            occupied = {r.name for r in op.regs() if not r.virtual}
            free = [t for t in temp_registers if t not in occupied]

            def temp_for(name: str) -> str:
                if name in assigned:
                    return assigned[name]
                if not free:
                    raise AllocationError(
                        f"not enough spill temporaries for {op}"
                    )
                assigned[name] = free.pop(0)
                return assigned[name]

            # Loads for spilled sources.
            new_srcs = []
            for src in op.srcs:
                if isinstance(src, Reg) and src.virtual and src.name in spilled:
                    already = src.name in assigned
                    register = temp_for(src.name)
                    if not already:
                        new_ops.append(
                            mop("ldscr", preg(register), Imm(spilled[src.name]))
                        )
                        result.loads_inserted += 1
                    new_srcs.append(preg(register))
                else:
                    new_srcs.append(src)
            # Destination.
            new_dest = op.dest
            store_after: tuple[str, int] | None = None
            if (
                op.dest is not None
                and op.dest.virtual
                and op.dest.name in spilled
            ):
                register = temp_for(op.dest.name)
                new_dest = preg(register)
                store_after = (register, spilled[op.dest.name])
            new_ops.append(op.with_operands(new_dest, tuple(new_srcs)))
            if store_after is not None:
                new_ops.append(
                    mop("stscr", None, preg(store_after[0]), Imm(store_after[1]))
                )
                result.stores_inserted += 1
        block.ops = new_ops
        _spill_terminator(block, spilled, temp_registers, result)
    return result


def _spill_terminator(
    block,
    spilled: dict[str, int],
    temp_registers: list[str],
    result: SpillResult,
) -> None:
    """Reload a spilled register that the block terminator reads."""
    from dataclasses import replace
    from repro.mir.block import Exit, Multiway

    terminator = block.terminator
    reg = None
    if isinstance(terminator, Exit):
        reg = terminator.value
    elif isinstance(terminator, Multiway):
        reg = terminator.reg
    if reg is None or not reg.virtual or reg.name not in spilled:
        return
    temp = preg(temp_registers[0])
    block.ops.append(mop("ldscr", temp, Imm(spilled[reg.name])))
    result.loads_inserted += 1
    if isinstance(terminator, Exit):
        block.terminator = replace(terminator, value=temp)
    else:
        block.terminator = replace(terminator, reg=temp)


def assign_slots(
    names: list[str], taken: dict[str, int], scratchpad_size: int
) -> dict[str, int]:
    """Assign fresh scratchpad slots to newly spilled names."""
    used = set(taken.values())
    slots: dict[str, int] = {}
    cursor = 0
    for name in names:
        while cursor in used:
            cursor += 1
        if cursor >= scratchpad_size:
            raise AllocationError("scratchpad exhausted by spills")
        slots[name] = cursor
        used.add(cursor)
        cursor += 1
    return slots
