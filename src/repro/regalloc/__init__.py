"""Register allocation (survey substrate S5).

Three allocators behind one interface (``allocate(program, machine) ->
AllocationResult``):

* :class:`BindingAllocator` — programmer binding (SIMPL/S*/CHAMIL)
* :class:`LinearScanAllocator` — linear scan with spilling, with
  ``reuse`` vs ``round-robin`` strategies for the allocation ↔
  composition interaction study (E14)
* :class:`GraphColorAllocator` — Chaitin-style colouring (E8)
"""

from repro.regalloc.binding import BindingAllocator
from repro.regalloc.constraints import (
    allowed_registers,
    collect_class_constraints,
)
from repro.regalloc.graph_color import GraphColorAllocator, build_interference_graph
from repro.regalloc.intervals import Interval, live_intervals
from repro.regalloc.linear_scan import (
    N_SPILL_TEMPS,
    AllocationResult,
    LinearScanAllocator,
)
from repro.regalloc.spill import SpillResult, assign_slots, insert_spill_code

__all__ = [
    "AllocationResult",
    "BindingAllocator",
    "GraphColorAllocator",
    "Interval",
    "LinearScanAllocator",
    "N_SPILL_TEMPS",
    "SpillResult",
    "allowed_registers",
    "assign_slots",
    "build_interference_graph",
    "collect_class_constraints",
    "insert_spill_code",
    "live_intervals",
]
