"""Chaitin-style graph-colouring allocation.

Builds a precise interference graph (a definition interferes with
everything live just after it) and colours it by the classic
simplify/select discipline, with class-constrained palettes per node
and spill-and-retry when simplification blocks.  This is the
"Kim & Tan [12] problem" allocator of experiment E8.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import AllocationError
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.mir.deps import op_reads, op_writes
from repro.mir.liveness import analyze_liveness
from repro.mir.operands import preg, vreg
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.constraints import allowed_registers, used_physical_registers
from repro.regalloc.intervals import live_intervals
from repro.regalloc.linear_scan import N_SPILL_TEMPS, AllocationResult
from repro.regalloc.spill import assign_slots, insert_spill_code


def build_interference_graph(
    program: MicroProgram, machine: MicroArchitecture
) -> dict[str, set[str]]:
    """Interference edges between virtual registers."""
    liveness = analyze_liveness(program, machine)
    graph: dict[str, set[str]] = {}

    def node(name: str) -> set[str]:
        return graph.setdefault(name, set())

    def virtuals(resources: set[str]) -> set[str]:
        return {r for r in resources if r.startswith("%")}

    for block in program.blocks.values():
        live = set(liveness.live_out[block.label])
        for op in reversed(block.ops):
            defs = virtuals(op_writes(op, machine))
            uses = virtuals(op_reads(op, machine))
            for defined in defs:
                node(defined)
                for other in virtuals(live) - {defined}:
                    node(defined).add(other)
                    node(other).add(defined)
            live -= defs
            live |= uses
            for name in uses:
                node(name)
    return graph


@dataclass
class GraphColorAllocator:
    """Simplify/select colouring with constrained palettes.

    ``extra_interference`` adds artificial edges between virtual
    registers (resource names, ``%v`` form).  The YALLL ``par``
    extension uses this to keep the temporaries of declared-parallel
    statements in distinct registers, so allocation cannot reintroduce
    the resource dependences the programmer ruled out (survey §2.1.4).
    """

    register_limit: int | None = None
    extra_interference: tuple[tuple[str, str], ...] = ()
    name: str = "graph-color"
    tracer: object = NULL_TRACER

    def allocate(
        self, program: MicroProgram, machine: MicroArchitecture
    ) -> AllocationResult:
        result = AllocationResult(allocator=self.name)
        temps: list[str] = []
        for _round in range(64):
            if not program.virtual_regs():
                break
            allowed = allowed_registers(program, machine)
            for virtual in program.virtual_regs():
                allowed.setdefault(
                    virtual,
                    [
                        r.name
                        for r in machine.registers.allocatable(GPR)
                        if r.name not in used_physical_registers(program)
                    ],
                )
            palettes = {
                f"%{v.name}": self._restrict(candidates, temps)
                for v, candidates in allowed.items()
            }
            for name, palette in palettes.items():
                if not palette:
                    raise AllocationError(f"empty palette for {name}")
            graph = build_interference_graph(program, machine)
            for name in palettes:
                graph.setdefault(name, set())
            for a, b in self.extra_interference:
                if a in graph and b in graph and a != b:
                    graph[a].add(b)
                    graph[b].add(a)
            # Drop live-at-exit ghosts no op touches (nothing to colour).
            for name in [n for n in graph if n not in palettes]:
                for neighbour in graph.pop(name):
                    graph[neighbour].discard(name)
            colouring, spill_names = self._colour(graph, palettes, program, machine)
            if self.tracer.enabled:
                self.tracer.instant(
                    "regalloc.round", cat="regalloc", allocator=self.name,
                    round=_round, nodes=len(graph),
                    edges=sum(len(n) for n in graph.values()) // 2,
                    coloured=len(colouring), spilling=sorted(spill_names),
                )
            if not spill_names:
                mapping = {
                    vreg(name[1:]): preg(colour)
                    for name, colour in colouring.items()
                }
                program.rename_regs(mapping)
                result.mapping.update(
                    {name[1:]: colour for name, colour in colouring.items()}
                )
                result.registers_used = len(set(result.mapping.values())) + len(
                    set(temps)
                )
                return result
            if not temps:
                reserved = used_physical_registers(program)
                pool = self._restrict(
                    [
                        r.name
                        for r in machine.registers.allocatable(GPR)
                        if r.name not in reserved
                    ],
                    [],
                )
                temps = pool[-N_SPILL_TEMPS:]
                if len(temps) < 2:
                    raise AllocationError(
                        "register pool too small even for spill temporaries"
                    )
            slots = assign_slots(
                [name[1:] for name in spill_names],
                result.spilled_slots,
                machine.scratchpad_size,
            )
            spill = insert_spill_code(program, slots, temps)
            result.spilled_slots.update(slots)
            result.loads_inserted += spill.loads_inserted
            result.stores_inserted += spill.stores_inserted
            if self.tracer.enabled:
                self.tracer.instant(
                    "regalloc.spill", cat="regalloc", allocator=self.name,
                    slots=slots, loads=spill.loads_inserted,
                    stores=spill.stores_inserted,
                )
        else:  # pragma: no cover - defensive
            raise AllocationError("allocation did not converge")
        result.registers_used = len(set(result.mapping.values())) + len(set(temps))
        return result

    def _restrict(self, candidates: list[str], temps: list[str]) -> list[str]:
        limited = candidates
        if self.register_limit is not None:
            limited = limited[: self.register_limit]
        return [r for r in limited if r not in temps]

    def _colour(
        self,
        graph: dict[str, set[str]],
        palettes: dict[str, list[str]],
        program: MicroProgram,
        machine: MicroArchitecture,
    ) -> tuple[dict[str, str], list[str]]:
        """Simplify/select; returns (colouring, spill candidates)."""
        degrees = {name: len(neigh) for name, neigh in graph.items()}
        removed: set[str] = set()
        stack: list[str] = []
        spilled: list[str] = []
        uses = {
            name: interval.uses
            for name, interval in live_intervals(program, machine).items()
        }
        work = set(graph)
        while work:
            candidate = next(
                (
                    name
                    for name in sorted(work)
                    if degrees[name] < len(palettes[name])
                ),
                None,
            )
            if candidate is None:
                # Potential spill: lowest use count per degree.
                candidate = min(
                    sorted(work),
                    key=lambda n: (uses.get(n, 0) / (degrees[n] + 1), n),
                )
                spilled.append(candidate)
                work.discard(candidate)
                removed.add(candidate)
                for neighbour in graph[candidate]:
                    if neighbour not in removed:
                        degrees[neighbour] -= 1
                continue
            stack.append(candidate)
            work.discard(candidate)
            removed.add(candidate)
            for neighbour in graph[candidate]:
                if neighbour not in removed:
                    degrees[neighbour] -= 1
        if spilled:
            return {}, spilled
        colouring: dict[str, str] = {}
        for name in reversed(stack):
            taken = {
                colouring[neighbour]
                for neighbour in graph[name]
                if neighbour in colouring
            }
            choice = next(
                (c for c in palettes[name] if c not in taken), None
            )
            if choice is None:
                return {}, [name]
            colouring[name] = choice
        return colouring, []
