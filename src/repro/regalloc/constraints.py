"""Register-class constraints on virtual registers (survey §2.1.3).

"The microregister set is generally not homogeneous.  Allocating a
variable to a certain register … determines which subset of
microoperations can be applied to that variable."  This module collects,
for every virtual register, the set of physical registers that satisfy
*all* the class constraints imposed by the operations touching it.
"""

from __future__ import annotations

from repro.errors import AllocationError
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import GPR
from repro.mir.operands import Reg
from repro.mir.program import MicroProgram


def collect_class_constraints(
    program: MicroProgram, machine: MicroArchitecture
) -> dict[Reg, set[str]]:
    """Class tags each virtual register must satisfy (may be empty)."""
    constraints: dict[Reg, set[str]] = {}
    for block in program.blocks.values():
        for op in block.ops:
            # Use the intersection over variants: a constraint matters
            # only if *every* variant imposes it, otherwise the
            # composer can pick an unconstrained variant.
            variants = machine.op_variants(op.op)
            if op.dest is not None and op.dest.virtual:
                classes = {v.dest_class for v in variants}
                constraints.setdefault(op.dest, set())
                if None not in classes:
                    constraints[op.dest].update(c for c in classes if c)
            register_index = 0
            for src in op.srcs:
                if not isinstance(src, Reg):
                    continue
                if src.virtual:
                    classes = {v.src_class(register_index) for v in variants}
                    constraints.setdefault(src, set())
                    if None not in classes:
                        constraints[src].update(c for c in classes if c)
                register_index += 1
    return constraints


def used_physical_registers(program: MicroProgram) -> set[str]:
    """Physical registers the program references directly.

    Programs mixing symbolic variables with explicit physical registers
    (hand-written kernels, legalization temps inside bound programs)
    must not have those registers handed out to virtuals — the
    allocators exclude them wholesale, which is coarse but sound.
    """
    used: set[str] = set()
    for block in program.blocks.values():
        for op in block.ops:
            used.update(r.name for r in op.regs() if not r.virtual)
    return used


def allowed_registers(
    program: MicroProgram, machine: MicroArchitecture
) -> dict[Reg, list[str]]:
    """Physical candidates per virtual register, constraint-filtered.

    Raises :class:`AllocationError` if some virtual register has no
    satisfying physical register at all.
    """
    constraints = collect_class_constraints(program, machine)
    reserved = used_physical_registers(program)
    pool = [
        r for r in machine.registers.allocatable(GPR)
        if r.name not in reserved
    ]
    result: dict[Reg, list[str]] = {}
    for virtual, classes in constraints.items():
        candidates = [
            r.name for r in pool
            if all(r.is_in(cls) for cls in classes)
        ]
        # Restart-safety temporaries (see repro.lang.common.restart)
        # must live in microregisters: a macro-visible register would
        # survive the trap and defeat the idempotence transform.
        if virtual.name.startswith("_rs"):
            candidates = [
                name for name in candidates
                if not machine.registers[name].macro_visible
            ]
        if not candidates:
            raise AllocationError(
                f"no physical register satisfies classes {sorted(classes)} "
                f"for variable {virtual}"
            )
        result[virtual] = candidates
    return result
