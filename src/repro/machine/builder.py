"""Fluent builder for machine descriptions.

Concrete machines (``repro.machine.machines``) are *data*; this builder
removes the boilerplate of wiring registers, control fields and op
specs together, and auto-assigns register-select encodings.
"""

from __future__ import annotations

import math

from repro.errors import MachineError
from repro.machine.control import ControlWordFormat, Field
from repro.machine.machine import MicroArchitecture
from repro.machine.opspec import OpSpec, OperationTable
from repro.machine.registers import Register, RegisterFile
from repro.machine.units import FunctionalUnit


class MachineBuilder:
    """Accumulates registers, units, fields and ops, then builds."""

    def __init__(self, name: str, word_size: int):
        self.name = name
        self.word_size = word_size
        self.registers = RegisterFile()
        self._units: dict[str, FunctionalUnit] = {}
        self._fields: list[Field] = []
        self._field_names: set[str] = set()
        self.ops = OperationTable()
        self.options: dict = {}

    # -- registers ------------------------------------------------------
    def reg(self, register: Register, bank: int | None = None) -> "MachineBuilder":
        self.registers.add(register, bank=bank)
        return self

    def regs(self, *registers: Register) -> "MachineBuilder":
        for register in registers:
            self.registers.add(register)
        return self

    # -- units ----------------------------------------------------------
    def unit(
        self, name: str, phase: int, count: int = 1, latency: int = 1
    ) -> "MachineBuilder":
        if name in self._units:
            raise MachineError(f"{self.name}: duplicate unit {name!r}")
        self._units[name] = FunctionalUnit(name, phase=phase, count=count, latency=latency)
        return self

    # -- fields ---------------------------------------------------------
    def field(self, field: Field) -> "MachineBuilder":
        if field.name in self._field_names:
            raise MachineError(f"{self.name}: duplicate field {field.name!r}")
        self._field_names.add(field.name)
        self._fields.append(field)
        return self

    def order_field(self, name: str, orders: list[str]) -> "MachineBuilder":
        """A field whose micro-orders are ``NOP`` plus the given list."""
        encodings = {"NOP": 0}
        encodings.update({order: index + 1 for index, order in enumerate(orders)})
        width = max(1, math.ceil(math.log2(len(encodings))))
        return self.field(Field(name, width=width, encodings=encodings))

    def select_field(self, name: str, reg_names: list[str]) -> "MachineBuilder":
        """A register-select field: ``NONE`` plus one code per register."""
        encodings = {"NONE": 0}
        for index, reg_name in enumerate(reg_names):
            if reg_name not in self.registers:
                raise MachineError(
                    f"{self.name}: select field {name!r} references unknown "
                    f"register {reg_name!r}"
                )
            encodings[reg_name] = index + 1
        width = max(1, math.ceil(math.log2(len(encodings))))
        return self.field(Field(name, width=width, encodings=encodings))

    def imm_field(self, name: str, width: int) -> "MachineBuilder":
        return self.field(Field(name, width=width, is_immediate=True))

    # -- ops --------------------------------------------------------------
    def op(
        self,
        name: str,
        unit: str,
        srcs: int,
        dest: bool,
        settings: dict[str, str],
        **kwargs,
    ) -> "MachineBuilder":
        self.ops.add(
            OpSpec(
                name=name,
                unit=unit,
                n_srcs=srcs,
                has_dest=dest,
                settings=tuple(settings.items()),
                **kwargs,
            )
        )
        return self

    def alu_ops(
        self,
        unit: str,
        op_field: str,
        a_field: str,
        b_field: str,
        d_field: str,
        names: list[str],
        **kwargs,
    ) -> "MachineBuilder":
        """Bulk-declare two-source ALU ops sharing a field layout.

        Only the arithmetic ops produce a carry; logical ops set Z/N
        (matching the datapath semantics in ``repro.sim.semantics``,
        which MPL's multi-precision carry chains rely on).
        """
        for name in names:
            carry = name in {"add", "sub", "adc"}
            self.op(
                name,
                unit,
                srcs=2,
                dest=True,
                settings={
                    op_field: name.upper(),
                    a_field: "$src0",
                    b_field: "$src1",
                    d_field: "$dest",
                },
                writes_flags=("Z", "N", "C") if carry else ("Z", "N"),
                reads_flags=("C",) if name == "adc" else (),
                commutative=name in {"add", "and", "or", "xor", "nand", "nor"},
                **kwargs,
            )
        return self

    def unary_ops(
        self,
        unit: str,
        op_field: str,
        a_field: str,
        d_field: str,
        names: list[str],
        **kwargs,
    ) -> "MachineBuilder":
        """Bulk-declare one-source ops sharing a field layout.

        inc/dec carry out; not/neg only set Z/N (see alu_ops)."""
        for name in names:
            carry = name in {"inc", "dec"}
            self.op(
                name,
                unit,
                srcs=1,
                dest=True,
                settings={op_field: name.upper(), a_field: "$src0", d_field: "$dest"},
                writes_flags=("Z", "N", "C") if carry else ("Z", "N"),
                **kwargs,
            )
        return self

    # -- finish -----------------------------------------------------------
    def build(self, **options) -> MicroArchitecture:
        merged = dict(self.options)
        merged.update(options)
        machine = MicroArchitecture(
            name=self.name,
            word_size=self.word_size,
            registers=self.registers,
            units=dict(self._units),
            control=ControlWordFormat(list(self._fields)),
            ops=self.ops,
            **merged,
        )
        machine.validate()
        return machine
