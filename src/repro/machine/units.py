"""Functional units of a microarchitecture.

A functional unit executes micro-operations during one *phase* of the
microcycle.  The phase structure is what makes S*'s ``cocycle``
construct (survey §2.2.3) meaningful: on machines whose microcycle is
split into phases, flow-dependent micro-operations may share one
microinstruction provided the consumer executes in a strictly later
phase ("phase chaining").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import MachineError


@dataclass(frozen=True)
class FunctionalUnit:
    """A hardware resource that executes micro-operations.

    Attributes:
        name: Unique unit name, e.g. ``"alu"``, ``"shifter"``, ``"mem"``.
        phase: Phase of the microcycle (1-based) in which the unit runs.
        count: Number of identical instances available per cycle.
        latency: Cycles the unit needs to complete (memory units are
            typically slower; extra cycles stall the next
            microinstruction in the simulator).
    """

    name: str
    phase: int
    count: int = 1
    latency: int = 1

    def __post_init__(self) -> None:
        if self.phase < 1:
            raise MachineError(f"unit {self.name!r}: phase must be >= 1")
        if self.count < 1:
            raise MachineError(f"unit {self.name!r}: count must be >= 1")
        if self.latency < 1:
            raise MachineError(f"unit {self.name!r}: latency must be >= 1")
