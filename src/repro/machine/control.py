"""Control-word format: fields, micro-order encodings, packing.

A horizontal microinstruction is the simultaneous setting of many
control-word *fields*, each of which steers one hardware resource (a
bus selector, an ALU function code, a memory strobe, the sequencing
logic).  Two micro-operations conflict when they need the same field at
different values — this is DeWitt's control-word conflict model [7],
which the whole composition subsystem (``repro.compose``) builds on.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import EncodingError, MachineError


@dataclass(frozen=True)
class Field:
    """One field of the control word.

    Attributes:
        name: Unique field name, e.g. ``"alu_op"`` or ``"abus"``.
        width: Field width in bits.
        encodings: Mapping of micro-order / register names to codes.
            Ignored for immediate fields.
        is_immediate: If true, the field carries a raw integer (a
            constant or a control-store address) rather than an
            encoded micro-order.
        nop_code: The code emitted when no operation uses the field.
    """

    name: str
    width: int
    encodings: dict[str, int] = dataclass_field(default_factory=dict)
    is_immediate: bool = False
    nop_code: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise MachineError(f"field {self.name!r} must have positive width")
        limit = 1 << self.width
        for key, code in self.encodings.items():
            if not 0 <= code < limit:
                raise MachineError(
                    f"field {self.name!r}: encoding {key!r}={code} "
                    f"does not fit in {self.width} bits"
                )
        if not 0 <= self.nop_code < limit:
            raise MachineError(f"field {self.name!r}: nop code out of range")

    @property
    def mask(self) -> int:
        return (1 << self.width) - 1

    def encode(self, value: str | int) -> int:
        """Encode a micro-order name (or raw int for immediates)."""
        if self.is_immediate:
            if not isinstance(value, int):
                raise EncodingError(
                    f"field {self.name!r} is immediate; got {value!r}"
                )
            return value & self.mask
        if isinstance(value, int):
            # Raw codes are accepted for round-tripping decoded words.
            if not 0 <= value <= self.mask:
                raise EncodingError(
                    f"field {self.name!r}: raw code {value} out of range"
                )
            return value
        try:
            return self.encodings[value]
        except KeyError:
            raise EncodingError(
                f"field {self.name!r} has no encoding for {value!r}"
            ) from None

    def decode(self, code: int) -> str | int:
        """Best-effort inverse of :meth:`encode` (for listings)."""
        if self.is_immediate:
            return code
        for key, value in self.encodings.items():
            if value == code:
                return key
        return code


class ControlWordFormat:
    """The ordered collection of fields making up one control word."""

    def __init__(self, fields: list[Field]):
        self._fields: dict[str, Field] = {}
        self._offsets: dict[str, int] = {}
        offset = 0
        for fld in fields:
            if fld.name in self._fields:
                raise MachineError(f"duplicate control field {fld.name!r}")
            self._fields[fld.name] = fld
            self._offsets[fld.name] = offset
            offset += fld.width
        self.width = offset

    def __contains__(self, name: str) -> bool:
        return name in self._fields

    def __getitem__(self, name: str) -> Field:
        try:
            return self._fields[name]
        except KeyError:
            raise MachineError(f"unknown control field {name!r}") from None

    def __iter__(self):
        return iter(self._fields.values())

    def __len__(self) -> int:
        return len(self._fields)

    def names(self) -> list[str]:
        return list(self._fields)

    def offset(self, name: str) -> int:
        """Bit offset of a field within the packed control word."""
        return self._offsets[self[name].name]

    def pack(self, settings: dict[str, str | int]) -> int:
        """Pack field settings into a single control-word integer.

        Unset fields get their nop code.  Unknown field names raise.
        """
        word = 0
        for name, fld in self._fields.items():
            if name in settings:
                code = fld.encode(settings[name])
            else:
                code = fld.nop_code
            word |= code << self._offsets[name]
        for name in settings:
            if name not in self._fields:
                raise EncodingError(f"unknown control field {name!r}")
        return word

    def unpack(self, word: int) -> dict[str, int]:
        """Split a packed control word back into raw field codes."""
        if word < 0 or word >= (1 << self.width):
            raise EncodingError(f"control word {word:#x} out of range")
        return {
            name: (word >> self._offsets[name]) & fld.mask
            for name, fld in self._fields.items()
        }

    def describe(self) -> str:
        """Human-readable field layout (for documentation/listings)."""
        lines = [f"control word: {self.width} bits, {len(self)} fields"]
        for name, fld in self._fields.items():
            kind = "imm" if fld.is_immediate else f"{len(fld.encodings)} orders"
            lines.append(
                f"  [{self._offsets[name]:3d}+{fld.width:2d}] {name:<12} {kind}"
            )
        return "\n".join(lines)
