"""The :class:`MicroArchitecture`: a complete machine description.

This formalism plays the role MPGL's machine-specification language
plays in the survey (§2.2.5): every tool in the pipeline — code
generators, composers, register allocators, the assembler and the
simulator — is driven by one of these descriptions, so adding a machine
means writing *data*, not code.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import EncodingError, MachineError
from repro.machine.control import ControlWordFormat
from repro.machine.opspec import OpSpec, OperationTable
from repro.machine.registers import Register, RegisterFile
from repro.machine.units import FunctionalUnit


@dataclass
class MicroArchitecture:
    """A user-microprogrammable machine, described as data.

    Attributes:
        name: Machine name, e.g. ``"HM1"``.
        word_size: Datapath width in bits.
        registers: The register file.
        units: Functional units by name.
        control: Control-word format (fields + encodings).
        ops: Micro-operation table.
        n_phases: Phases per microcycle (1 for simple machines).
        allows_phase_chaining: Whether a consumer in a later phase may
            read a value produced earlier in the *same* microinstruction
            (the hardware behaviour behind S*'s ``cocycle``).
        memory_latency: Cycles per main-memory access.
        control_store_size: Number of microinstruction slots.
        micro_stack_depth: Hardware microsubroutine stack depth.
        scratchpad_size: Words of scratchpad local store reachable by
            ``ldscr``/``stscr`` (used by allocators for spilling).
        flags: Hardware condition flags (``Z``, ``N``, ``C``, ``UF`` …).
        has_multiway_branch: Whether the sequencer supports mask-table
            dispatch (YALLL's multiway branch, §2.2.4).
        notes: Free-form description used in reports.
    """

    name: str
    word_size: int
    registers: RegisterFile
    units: dict[str, FunctionalUnit]
    control: ControlWordFormat
    ops: OperationTable
    n_phases: int = 1
    allows_phase_chaining: bool = False
    memory_latency: int = 1
    control_store_size: int = 4096
    micro_stack_depth: int = 16
    scratchpad_size: int = 256
    flags: tuple[str, ...] = ("Z", "N", "C", "UF")
    has_multiway_branch: bool = False
    vertical: bool = False
    #: Optional register-connectivity graph (CHAMIL's datapath
    #: abstraction, survey §2.2.5).  None = fully connected.
    datapath: "object | None" = None
    notes: str = ""
    _validated: bool = dataclass_field(default=False, repr=False)

    # ------------------------------------------------------------------
    # Lookup helpers
    # ------------------------------------------------------------------
    def unit(self, name: str) -> FunctionalUnit:
        try:
            return self.units[name]
        except KeyError:
            raise MachineError(f"{self.name}: unknown unit {name!r}") from None

    def reg(self, name: str) -> Register:
        return self.registers[name]

    def has_op(self, name: str) -> bool:
        return name in self.ops

    def op_variants(self, name: str) -> list[OpSpec]:
        return self.ops.variants(name)

    def op(self, name: str) -> OpSpec:
        return self.ops.default(name)

    def phase_of(self, spec: OpSpec) -> int:
        """Microcycle phase in which the given op variant executes."""
        return self.unit(spec.unit).phase

    def latency_of(self, spec: OpSpec) -> int:
        """Cycles the op variant needs (spec override, else unit)."""
        return spec.latency if spec.latency > 0 else self.unit(spec.unit).latency

    def mask(self) -> int:
        """All-ones mask at datapath width."""
        return (1 << self.word_size) - 1

    # ------------------------------------------------------------------
    # Encoding
    # ------------------------------------------------------------------
    def resolve_settings(
        self,
        spec: OpSpec,
        dest: str | None,
        srcs: tuple[str | int, ...],
    ) -> dict[str, str | int]:
        """Resolve a spec's field settings against concrete operands.

        ``dest`` is a register name (or None); each source is a register
        name or an immediate integer.  Returns field→value settings
        suitable for :meth:`ControlWordFormat.pack` and for the conflict
        model in ``repro.compose``.
        """
        if len(srcs) != spec.n_srcs:
            raise EncodingError(
                f"{self.name}: op {spec.key} expects {spec.n_srcs} sources, "
                f"got {len(srcs)}"
            )
        if spec.has_dest and dest is None:
            raise EncodingError(f"{self.name}: op {spec.key} requires a destination")
        resolved: dict[str, str | int] = {}
        for field_name, value in spec.settings:
            if value == "$dest":
                resolved[field_name] = self._require_reg(spec, dest)
            elif value.startswith("$src"):
                index = int(value[4:])
                operand = srcs[index]
                if isinstance(operand, int):
                    raise EncodingError(
                        f"{self.name}: op {spec.key} source {index} must be "
                        f"a register, got immediate {operand}"
                    )
                resolved[field_name] = operand
            elif value.startswith("$imm"):
                index = int(value[4:])
                operand = srcs[index]
                if not isinstance(operand, int):
                    raise EncodingError(
                        f"{self.name}: op {spec.key} source {index} must be "
                        f"an immediate, got register {operand!r}"
                    )
                resolved[field_name] = operand
            else:
                resolved[field_name] = value
        return resolved

    def _require_reg(self, spec: OpSpec, name: str | None) -> str:
        if name is None:
            raise EncodingError(f"{self.name}: op {spec.key} requires a destination")
        return name

    # ------------------------------------------------------------------
    # Validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Check internal consistency of the description.

        Raises :class:`MachineError` on the first inconsistency found:
        ops referencing unknown units or fields, literal micro-orders
        without encodings, units running in nonexistent phases, operand
        class constraints naming classes no register carries.
        """
        for unit in self.units.values():
            if unit.phase > self.n_phases:
                raise MachineError(
                    f"{self.name}: unit {unit.name!r} runs in phase {unit.phase} "
                    f"but machine has {self.n_phases} phases"
                )
        all_classes = set()
        for register in self.registers:
            all_classes.update(register.classes)
        for spec in self.ops:
            if spec.unit not in self.units:
                raise MachineError(
                    f"{self.name}: op {spec.key} uses unknown unit {spec.unit!r}"
                )
            for field_name, value in spec.settings:
                if field_name not in self.control:
                    raise MachineError(
                        f"{self.name}: op {spec.key} sets unknown field "
                        f"{field_name!r}"
                    )
                fld = self.control[field_name]
                if not value.startswith("$") and not fld.is_immediate:
                    if value not in fld.encodings:
                        raise MachineError(
                            f"{self.name}: op {spec.key}: field {field_name!r} "
                            f"has no encoding for literal {value!r}"
                        )
            for flag in (*spec.reads_flags, *spec.writes_flags):
                if flag not in self.flags:
                    raise MachineError(
                        f"{self.name}: op {spec.key} uses unknown flag {flag!r}"
                    )
            constrained = [spec.dest_class, *spec.src_classes]
            for cls in constrained:
                if cls is not None and cls not in all_classes:
                    raise MachineError(
                        f"{self.name}: op {spec.key} requires register class "
                        f"{cls!r} which no register carries"
                    )
        if self.datapath is not None:
            self.datapath.validate(set(self.registers.names()))
        self._validated = True

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def summary(self) -> str:
        """One-paragraph description for reports and listings."""
        kind = "vertical" if self.vertical else "horizontal"
        return (
            f"{self.name}: {kind} machine, {self.word_size}-bit datapath, "
            f"{len(self.registers)} registers, {len(self.units)} units, "
            f"{self.control.width}-bit control word ({len(self.control)} fields), "
            f"{self.n_phases} phase(s)/cycle"
            + (", phase chaining" if self.allows_phase_chaining else "")
            + (f". {self.notes}" if self.notes else "")
        )
