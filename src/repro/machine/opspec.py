"""Micro-operation specifications.

An :class:`OpSpec` describes one way a machine can realize a semantic
micro-operation: which functional unit runs it, in which phase, and —
crucially for conflict detection — which control-word fields it
occupies and with what values.  A machine may provide several *variants*
of one operation (e.g. three register-move paths in different phases);
the composer picks whichever variant fits the microinstruction being
built, which is exactly the "instruction formats" consideration of
Tokoro et al. [21].

Field-setting values are either literal micro-order names or
*placeholders* resolved against the concrete operands of a micro-op:

========= =====================================================
``$dest``   the destination register name
``$srcN``   the N-th source register name (0-based)
``$immN``   the N-th source, which must be an immediate value
========= =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field as dataclass_field

from repro.errors import MachineError

#: Operand placeholder prefixes recognized in field settings.
DEST = "$dest"
SRC = "$src"
IMM = "$imm"


@dataclass(frozen=True)
class OpSpec:
    """One realizable variant of a semantic micro-operation.

    Attributes:
        name: Semantic operation name (``"add"``, ``"mov"``, ``"read"``…).
        unit: Functional unit that executes it.
        n_srcs: Number of source operands.
        has_dest: Whether the op writes a destination register.
        settings: Field settings as ``(field, value-or-placeholder)``
            pairs; this is the op's control-word footprint.
        variant: Disambiguates multiple variants of the same name.
        latency: Overrides the unit latency when > 0.
        commutative: Sources may be swapped (lets composers retry with
            operands exchanged when bus assignments conflict).
        reads_flags: Condition flags the op reads (e.g. shifter ``UF``).
        writes_flags: Condition flags the op writes.
        dest_class: Required register class of the destination.
        src_classes: Required register class per source (None = any).
        imm_srcs: Indices of sources that must be immediates.
        reads_dest: The op also *reads* its destination (read-modify-
            write, e.g. bit-field deposit); dependence analysis must
            treat the destination as a source too.
    """

    name: str
    unit: str
    n_srcs: int
    has_dest: bool
    settings: tuple[tuple[str, str], ...]
    variant: str = ""
    latency: int = 0
    commutative: bool = False
    reads_flags: tuple[str, ...] = ()
    writes_flags: tuple[str, ...] = ()
    dest_class: str | None = None
    src_classes: tuple[str | None, ...] = ()
    imm_srcs: frozenset[int] = frozenset()
    reads_dest: bool = False

    def __post_init__(self) -> None:
        if self.src_classes and len(self.src_classes) != self.n_srcs:
            raise MachineError(
                f"op {self.key}: src_classes length {len(self.src_classes)} "
                f"!= n_srcs {self.n_srcs}"
            )
        for index in self.imm_srcs:
            if not 0 <= index < self.n_srcs:
                raise MachineError(f"op {self.key}: imm source index {index} out of range")

    @property
    def key(self) -> str:
        """Unique ``name[/variant]`` identifier of this spec."""
        return f"{self.name}/{self.variant}" if self.variant else self.name

    def src_class(self, index: int) -> str | None:
        """Required register class for the index-th source, if any."""
        if not self.src_classes:
            return None
        return self.src_classes[index]

    def fields_used(self) -> frozenset[str]:
        """Names of all control-word fields this spec occupies."""
        return frozenset(name for name, _ in self.settings)


@dataclass
class OperationTable:
    """All micro-operations a machine provides, grouped by name."""

    _variants: dict[str, list[OpSpec]] = dataclass_field(default_factory=dict)

    def add(self, spec: OpSpec) -> OpSpec:
        variants = self._variants.setdefault(spec.name, [])
        if any(v.variant == spec.variant for v in variants):
            raise MachineError(f"duplicate op spec {spec.key!r}")
        if variants and (
            variants[0].n_srcs != spec.n_srcs or variants[0].has_dest != spec.has_dest
        ):
            raise MachineError(
                f"op {spec.name!r}: variants disagree on arity/destination"
            )
        variants.append(spec)
        return spec

    def __contains__(self, name: str) -> bool:
        return name in self._variants

    def __iter__(self):
        for variants in self._variants.values():
            yield from variants

    def names(self) -> list[str]:
        return list(self._variants)

    def variants(self, name: str) -> list[OpSpec]:
        """All variants of an operation, in declaration order."""
        try:
            return list(self._variants[name])
        except KeyError:
            raise MachineError(f"machine has no micro-operation {name!r}") from None

    def default(self, name: str) -> OpSpec:
        """The first-declared (canonical) variant of an operation."""
        return self.variants(name)[0]
