"""Machine description formalism (survey substrate S1/S2).

Public API:

* :class:`Register`, :class:`RegisterFile` — heterogeneous register sets
* :class:`FunctionalUnit` — phased hardware resources
* :class:`Field`, :class:`ControlWordFormat` — horizontal control words
* :class:`OpSpec`, :class:`OperationTable` — micro-operation variants
* :class:`MicroArchitecture` — the complete machine description
* :class:`MachineBuilder` — fluent construction helper
* ``machines`` — concrete machines (HM1, CM1, HP300m, VAXm, VM1, ID3200m)
"""

from repro.machine.builder import MachineBuilder
from repro.machine.control import ControlWordFormat, Field
from repro.machine.machine import MicroArchitecture
from repro.machine.opspec import OpSpec, OperationTable
from repro.machine.registers import (
    CONST,
    GPR,
    MAR,
    MBR,
    Register,
    RegisterFile,
    const_register,
    gpr,
)
from repro.machine.units import FunctionalUnit

__all__ = [
    "CONST",
    "GPR",
    "MAR",
    "MBR",
    "ControlWordFormat",
    "Field",
    "FunctionalUnit",
    "MachineBuilder",
    "MicroArchitecture",
    "OpSpec",
    "OperationTable",
    "Register",
    "RegisterFile",
    "const_register",
    "gpr",
]
