"""Registers, register classes and register files.

A microarchitecture exposes a *heterogeneous* register set (survey
§2.1.3): registers differ in width, in which micro-operations can touch
them, and in whether they are part of the macroarchitecture (and hence
saved/restored around microtraps — the root of the ``incread`` bug of
§2.1.5).  Register *classes* are plain string tags; an operation spec
may require an operand to belong to a given class.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import MachineError

#: Class tag carried by every general purpose register.
GPR = "gpr"
#: Class tag for the memory address register.
MAR = "mar"
#: Class tag for the memory buffer (data) register.
MBR = "mbr"
#: Class tag for registers holding constants / masks (read-only store).
CONST = "const"


@dataclass(frozen=True)
class Register:
    """A single machine register.

    Attributes:
        name: Unique register name, e.g. ``"R3"`` or ``"mar"``.
        width: Width in bits.
        classes: Register-class tags; operation specs constrain operands
            by class (survey §2.1.3, "the microregister set is generally
            not homogeneous").
        auto_increment: Whether the hardware can post-increment this
            register without using the ALU (§2.1.2's macroprogram
            counter example).
        macro_visible: Whether the register is part of the
            macroarchitecture and therefore saved/restored around
            microtraps (§2.1.5).
        readonly: Whether the register is a hardwired constant/mask.
        reset: Power-on value.
    """

    name: str
    width: int
    classes: frozenset[str] = frozenset({GPR})
    auto_increment: bool = False
    macro_visible: bool = False
    readonly: bool = False
    reset: int = 0

    def __post_init__(self) -> None:
        if self.width <= 0:
            raise MachineError(f"register {self.name!r} must have positive width")
        if self.reset < 0 or self.reset >= (1 << self.width):
            raise MachineError(
                f"register {self.name!r}: reset value {self.reset} "
                f"does not fit in {self.width} bits"
            )

    @property
    def mask(self) -> int:
        """All-ones mask for this register's width."""
        return (1 << self.width) - 1

    def is_in(self, register_class: str) -> bool:
        """Whether this register carries the given class tag."""
        return register_class in self.classes


def gpr(name: str, width: int, *extra_classes: str, **kwargs) -> Register:
    """Convenience constructor for a general purpose register."""
    return Register(name, width, classes=frozenset({GPR, *extra_classes}), **kwargs)


def const_register(name: str, width: int, value: int) -> Register:
    """Convenience constructor for a hardwired constant/mask register."""
    return Register(
        name,
        width,
        classes=frozenset({CONST}),
        readonly=True,
        reset=value & ((1 << width) - 1),
    )


@dataclass
class RegisterFile:
    """The complete register set of a machine.

    Supports *register banks* (Interdata 3200 style, survey §2.1.2): a
    bank is a group of registers selected by a bank pointer; the
    ``bank_of`` mapping records which bank each banked register belongs
    to so code generators can reason about the ``new-block`` primitive.
    """

    registers: dict[str, Register] = field(default_factory=dict)
    bank_of: dict[str, int] = field(default_factory=dict)
    n_banks: int = 1
    #: Window name -> physical register name per bank.  A *window* is a
    #: programmer-visible register name (e.g. ``G3``) that resolves to a
    #: different physical register depending on the current bank pointer
    #: (Interdata 3200 style, survey §2.1.2).
    windows: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Name of the register holding the current bank number, if banked.
    bank_pointer: str | None = None

    def add(self, register: Register, bank: int | None = None) -> Register:
        """Register a new register; returns it for chaining."""
        if register.name in self.registers:
            raise MachineError(f"duplicate register {register.name!r}")
        self.registers[register.name] = register
        if bank is not None:
            if not 0 <= bank < self.n_banks:
                raise MachineError(
                    f"register {register.name!r}: bank {bank} out of range "
                    f"(machine has {self.n_banks} banks)"
                )
            self.bank_of[register.name] = bank
        return register

    def add_window(self, name: str, physical: tuple[str, ...]) -> None:
        """Declare a banked window resolving to one physical reg per bank."""
        if len(physical) != self.n_banks:
            raise MachineError(
                f"window {name!r}: expected {self.n_banks} physical registers, "
                f"got {len(physical)}"
            )
        for phys in physical:
            if phys not in self.registers:
                raise MachineError(f"window {name!r} references unknown register {phys!r}")
        if name in self.registers or name in self.windows:
            raise MachineError(f"duplicate register/window name {name!r}")
        self.windows[name] = physical

    def is_window(self, name: str) -> bool:
        return name in self.windows

    def resolve_window(self, name: str, bank: int) -> str:
        """Physical register a window refers to under the given bank."""
        try:
            physical = self.windows[name]
        except KeyError:
            raise MachineError(f"unknown window {name!r}") from None
        if not 0 <= bank < len(physical):
            raise MachineError(f"bank {bank} out of range for window {name!r}")
        return physical[bank]

    def __contains__(self, name: str) -> bool:
        return name in self.registers or name in self.windows

    def __getitem__(self, name: str) -> Register:
        if name in self.windows:
            # A window inherits the description of its bank-0 register.
            return self.registers[self.windows[name][0]]
        try:
            return self.registers[name]
        except KeyError:
            raise MachineError(f"unknown register {name!r}") from None

    def __iter__(self):
        return iter(self.registers.values())

    def __len__(self) -> int:
        return len(self.registers)

    def names(self) -> list[str]:
        """All register names, in declaration order."""
        return list(self.registers)

    def in_class(self, register_class: str) -> list[Register]:
        """All registers carrying the given class tag."""
        return [r for r in self if r.is_in(register_class)]

    def allocatable(self, register_class: str = GPR) -> list[Register]:
        """Registers an allocator may hand out for the given class.

        Read-only registers, registers with reserved roles (mar/mbr)
        and the physical registers behind banked windows (reachable
        only through a window under the right bank pointer) are never
        allocatable as scratch.
        """
        windowed = {
            physical
            for physicals in self.windows.values()
            for physical in physicals
        }
        return [
            r
            for r in self.in_class(register_class)
            if not r.readonly
            and MAR not in r.classes
            and MBR not in r.classes
            and r.name not in windowed
        ]

    def macro_visible(self) -> list[Register]:
        """Registers saved/restored around microtraps (§2.1.5)."""
        return [r for r in self if r.macro_visible]
