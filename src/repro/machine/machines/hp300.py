"""HP300m — a regular, well-documented horizontal machine.

Modelled on the survey's account of YALLL's Hewlett-Packard HP300
target (§2.2.4): the machine is horizontal but *regular* — every YALLL
primitive maps to exactly one micro-operation, literals are full width,
memory is fast, and the sequencer supports the mask-table multiway
branch.  This regularity is why "the HP implementation performed a lot
better than the VAX implementation"; experiment E4 reproduces that
comparison against :mod:`repro.machine.machines.vax`.

The register names (``db``, ``sb``, ``p`` …) follow the survey's
transliteration example, which binds YALLL's ``str``/``tbl``/``char``
to ``db``/``sb``/``mbr``.
"""

from __future__ import annotations

from repro.machine.builder import MachineBuilder
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.hm1 import add_sequencer
from repro.machine.registers import MAR, MBR, Register, const_register, gpr


def build_hp300() -> MicroArchitecture:
    """Build and validate the HP300m machine description."""
    b = MachineBuilder("HP300m", word_size=16)

    b.reg(gpr("db", 16))
    b.reg(gpr("sb", 16))
    b.reg(gpr("x", 16))
    b.reg(gpr("y", 16))
    b.reg(gpr("p", 16, auto_increment=True))
    for index in range(8):
        b.reg(gpr(f"s{index}", 16))
    b.reg(Register("MAR", 16, classes=frozenset({MAR})))
    b.reg(Register("MBR", 16, classes=frozenset({"gpr", MBR})))
    b.reg(const_register("ZERO", 16, 0))
    b.reg(const_register("ONE", 16, 1))
    b.reg(const_register("MINUS1", 16, 0xFFFF))
    for index in range(4):
        b.reg(const_register(f"C{index}", 16, 0))

    readable = [
        "db", "sb", "x", "y", "p", *(f"s{i}" for i in range(8)),
        "MAR", "MBR", "ZERO", "ONE", "MINUS1", *(f"C{i}" for i in range(4)),
    ]
    writable = ["db", "sb", "x", "y", "p", *(f"s{i}" for i in range(8)),
                "MAR", "MBR"]

    b.unit("null", phase=1, count=16)
    b.unit("mova", phase=1)
    b.unit("movb", phase=1)
    b.unit("lit", phase=1)
    b.unit("poll", phase=1)
    b.unit("alu", phase=2)
    b.unit("shifter", phase=2)
    b.unit("mul", phase=2, latency=4)
    b.unit("mem", phase=2, latency=1)
    b.unit("scr", phase=2)

    b.select_field("a_src", readable).select_field("a_dst", writable)
    b.select_field("b_src", readable).select_field("b_dst", writable)
    b.imm_field("lit_val", 16).select_field("lit_dst", writable)
    b.order_field("poll_op", ["POLL"])
    b.order_field(
        "alu_op",
        ["ADD", "SUB", "ADC", "AND", "OR", "XOR", "NAND", "NOR",
         "INC", "DEC", "NOT", "NEG", "CMP"],
    )
    b.select_field("alu_a", readable)
    b.select_field("alu_b", readable)
    b.select_field("alu_d", writable)
    b.order_field("sh_op", ["SHL", "SHR", "SAR", "ROL", "ROR"])
    b.select_field("sh_src", readable).select_field("sh_dst", writable)
    b.imm_field("sh_cnt", 4)
    b.order_field("mul_op", ["MUL"])
    b.select_field("mul_a", readable).select_field("mul_b", readable)
    b.select_field("mul_d", writable)
    b.order_field("mem_op", ["READ", "WRITE"])
    b.order_field("scr_op", ["LD", "ST"])
    b.imm_field("scr_addr", 8)
    b.select_field("scr_reg", writable)
    add_sequencer(b, multiway=True)

    b.op("nop", "null", srcs=0, dest=False, settings={})
    b.op("poll", "poll", srcs=0, dest=False, settings={"poll_op": "POLL"})
    b.op("mov", "mova", srcs=1, dest=True,
         settings={"a_src": "$src0", "a_dst": "$dest"}, variant="a")
    b.op("mov", "movb", srcs=1, dest=True,
         settings={"b_src": "$src0", "b_dst": "$dest"}, variant="b")
    b.op("movi", "lit", srcs=1, dest=True,
         settings={"lit_val": "$imm0", "lit_dst": "$dest"},
         imm_srcs=frozenset({0}))
    b.alu_ops("alu", "alu_op", "alu_a", "alu_b", "alu_d",
              ["add", "sub", "adc", "and", "or", "xor", "nand", "nor"])
    b.unary_ops("alu", "alu_op", "alu_a", "alu_d", ["inc", "dec", "not", "neg"])
    b.op("cmp", "alu", srcs=2, dest=False,
         settings={"alu_op": "CMP", "alu_a": "$src0", "alu_b": "$src1"},
         writes_flags=("Z", "N", "C"))
    for shift in ["shl", "shr", "sar", "rol", "ror"]:
        b.op(shift, "shifter", srcs=2, dest=True,
             settings={"sh_op": shift.upper(), "sh_src": "$src0",
                       "sh_cnt": "$imm1", "sh_dst": "$dest"},
             imm_srcs=frozenset({1}), writes_flags=("Z", "N", "UF"))
    b.op("mul", "mul", srcs=2, dest=True,
         settings={"mul_op": "MUL", "mul_a": "$src0", "mul_b": "$src1",
                   "mul_d": "$dest"},
         writes_flags=("Z", "N"))
    b.op("read", "mem", srcs=1, dest=True,
         settings={"mem_op": "READ"}, src_classes=(MAR,), dest_class=MBR)
    b.op("write", "mem", srcs=2, dest=False,
         settings={"mem_op": "WRITE"}, src_classes=(MAR, MBR))
    b.op("ldscr", "scr", srcs=1, dest=True,
         settings={"scr_op": "LD", "scr_addr": "$imm0", "scr_reg": "$dest"},
         imm_srcs=frozenset({0}))
    b.op("stscr", "scr", srcs=2, dest=False,
         settings={"scr_op": "ST", "scr_reg": "$src0", "scr_addr": "$imm1"},
         imm_srcs=frozenset({1}))

    return b.build(
        n_phases=2,
        allows_phase_chaining=True,
        memory_latency=1,
        has_multiway_branch=True,
        scratchpad_size=256,
        notes=(
            "Regular horizontal machine in the spirit of YALLL's HP300 "
            "target: every YALLL primitive maps to one micro-operation; "
            "full-width literals, 1-cycle memory, hardware multiply, "
            "multiway branch."
        ),
    )
