"""CM1 — an HM1 variant with a restricted, CHAMIL-style datapath.

The survey's CHAMIL (§2.2.5) lets the programmer "abstract from
physical datapaths: the statement ``reg_a := reg_b`` is legal as long
as there exists a (possibly indirect) path … that can be traversed
within one microcycle."  CM1 makes that concrete: only R1–R4 and the
accumulator sit on the main bus; R5–R7 hang off a secondary bus whose
only connection to the rest of the machine is the L0 bus latch.

A move between, say, R5 and R1 therefore has no direct path; the
legalization pass routes it ``R5 -> L0 -> R1``, and because HM1's
microcycle chains phase 1 (move A) into phase 3 (write-back move), the
composers can put the whole route back into one microinstruction —
CHAMIL's "one microcycle" condition, checked mechanically.
"""

from __future__ import annotations

from repro.machine.datapath import DatapathGraph
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.hm1 import build_hm1

#: Registers on the main bus (fully interconnected).
MAIN_BUS = ["R0", "R1", "R2", "R3", "R4", "ACC", "MAR", "MBR",
            "ONE", "MINUS1", "C0", "C1", "C2", "C3", "C4", "C5", "C6", "C7"]
#: Registers on the secondary bus (reachable only through L0).
SECONDARY_BUS = ["R5", "R6", "R7"]


def build_cm1(
    *, macro_visible: tuple[str, ...] = ()
) -> MicroArchitecture:
    """Build and validate the CM1 machine description.

    ``macro_visible`` is forwarded to :func:`build_hm1` — it marks
    general registers as surviving microtrap restarts (§2.1.5).
    """
    graph = DatapathGraph(routing_registers=frozenset({"L0"}))
    for source in MAIN_BUS:
        graph.connect(source, *(r for r in MAIN_BUS if r != source), "L0")
    for source in SECONDARY_BUS:
        graph.connect(
            source, *(r for r in SECONDARY_BUS if r != source), "L0"
        )
    graph.connect("L0", *MAIN_BUS, *SECONDARY_BUS)
    return build_hm1(
        name="CM1",
        latches=1,
        datapath=graph,
        macro_visible=macro_visible,
        notes=(
            "HM1 variant with a CHAMIL-style split datapath: R5-R7 sit "
            "on a secondary bus reachable only through the L0 latch; "
            "indirect moves are routed automatically and still fit one "
            "chained microcycle."
        ),
    )
