"""VM1 — a vertical microarchitecture.

On a vertically encoded machine every microinstruction holds exactly
one micro-operation: all operations share the single ``v_op`` field, so
any two of them conflict and composition degenerates to one op per
word.  The survey's introduction notes that vertical encoding hides
parallelism from the microprogrammer "but this usually implies a loss
of flexibility and speed" [5]; experiment E11 quantifies that loss by
running the same programs on VM1 and HM1.
"""

from __future__ import annotations

from repro.machine.builder import MachineBuilder
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.hm1 import add_sequencer
from repro.machine.registers import MAR, MBR, Register, const_register, gpr


def build_vm1() -> MicroArchitecture:
    """Build and validate the VM1 machine description."""
    b = MachineBuilder("VM1", word_size=16)

    b.reg(const_register("R0", 16, 0))
    for index in range(1, 16):
        b.reg(gpr(f"R{index}", 16))
    b.reg(Register("MAR", 16, classes=frozenset({MAR})))
    b.reg(Register("MBR", 16, classes=frozenset({"gpr", MBR})))
    b.reg(const_register("ONE", 16, 1))
    b.reg(const_register("MINUS1", 16, 0xFFFF))
    for index in range(8):
        b.reg(const_register(f"C{index}", 16, 0))

    readable = [f"R{i}" for i in range(16)] + [
        "MAR", "MBR", "ONE", "MINUS1", *(f"C{i}" for i in range(8))]
    writable = [f"R{i}" for i in range(1, 16)] + ["MAR", "MBR"]

    b.unit("exec", phase=1, count=1, latency=1)
    b.unit("mem", phase=1, latency=2)

    operations = [
        "NOP", "POLL", "MOV", "MOVI", "ADD", "SUB", "ADC", "AND", "OR",
        "XOR", "NAND", "NOR", "INC", "DEC", "NOT", "NEG", "CMP", "SHL",
        "SHR", "SAR", "ROL", "ROR", "EXT", "DEP", "READ", "WRITE",
        "LDSCR", "STSCR",
    ]
    b.order_field("v_op", operations)
    b.select_field("v_a", readable)
    b.select_field("v_b", readable)
    b.select_field("v_d", writable)
    b.imm_field("v_imm", 16)
    b.imm_field("v_imm2", 5)
    add_sequencer(b, multiway=False)

    def vop(name: str, srcs: int, dest: bool, **kwargs) -> None:
        settings = {"v_op": name.upper()}
        placeholders = ["$src0", "$src1", "$src2"]
        fields = ["v_a", "v_b"]
        imm_srcs = kwargs.pop("imm_srcs", frozenset())
        field_index = 0
        imm_used = 0
        for index in range(srcs):
            if index in imm_srcs:
                settings["v_imm" if imm_used == 0 else "v_imm2"] = f"$imm{index}"
                imm_used += 1
            else:
                settings[fields[field_index]] = placeholders[index]
                field_index += 1
        if dest:
            settings["v_d"] = "$dest"
        b.op(name, kwargs.pop("unit", "exec"), srcs=srcs, dest=dest,
             settings=settings, imm_srcs=frozenset(imm_srcs), **kwargs)

    flags3 = ("Z", "N", "C")
    vop("nop", 0, False)
    vop("poll", 0, False)
    vop("mov", 1, True)
    vop("movi", 1, True, imm_srcs={0})
    for name in ["add", "sub", "adc", "and", "or", "xor", "nand", "nor"]:
        carry = name in ("add", "sub", "adc")
        vop(name, 2, True,
            writes_flags=flags3 if carry else ("Z", "N"),
            reads_flags=("C",) if name == "adc" else (),
            commutative=name != "sub" and name != "adc")
    for name in ["inc", "dec", "not", "neg"]:
        vop(name, 1, True,
            writes_flags=flags3 if name in ("inc", "dec") else ("Z", "N"))
    vop("cmp", 2, False, writes_flags=flags3)
    for name in ["shl", "shr", "sar", "rol", "ror"]:
        vop(name, 2, True, imm_srcs={1}, writes_flags=("Z", "N", "UF"))
    vop("ext", 3, True, imm_srcs={1, 2}, writes_flags=("Z",))
    vop("dep", 3, True, imm_srcs={1, 2}, reads_dest=True)
    b.op("read", "mem", srcs=1, dest=True,
         settings={"v_op": "READ"}, src_classes=(MAR,), dest_class=MBR)
    b.op("write", "mem", srcs=2, dest=False,
         settings={"v_op": "WRITE"}, src_classes=(MAR, MBR))
    vop("ldscr", 1, True, imm_srcs={0})
    vop("stscr", 2, False, imm_srcs={1})

    return b.build(
        n_phases=1,
        allows_phase_chaining=False,
        memory_latency=2,
        has_multiway_branch=False,
        vertical=True,
        scratchpad_size=256,
        notes=(
            "Vertical machine: a single op field means one micro-operation "
            "per microinstruction; rich register set but no parallelism."
        ),
    )
