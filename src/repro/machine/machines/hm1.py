"""HM1 — the reference horizontal microarchitecture.

A clean, Tucker–Flynn-flavoured horizontal machine: three phases per
microcycle with phase chaining (move → compute → writeback, which is
what makes S*'s ``cocycle`` construct expressible), two independent
move paths, an ALU, a barrel shifter, a bit-field unit (extract /
deposit, used by S* tuple field selection), main memory with a 2-cycle
access, a scratchpad local store for spilled variables, and a
mask-table multiway branch in the sequencer.

HM1 is the default compilation target of the SIMPL, EMPL and S* front
ends and the machine on which the microtrap experiments (E9) run.
"""

from __future__ import annotations

from repro.machine.builder import MachineBuilder
from repro.machine.machine import MicroArchitecture
from repro.machine.registers import (
    MAR,
    MBR,
    Register,
    const_register,
    gpr,
)

#: Flag conditions every sequencer understands (TRUE + flag/negation).
BRANCH_CONDITIONS = ["TRUE", "Z", "NZ", "N", "NN", "C", "NC", "UF", "NUF"]

#: Sequencer modes shared by all machines in this package.
BRANCH_MODES = ["NEXT", "JUMP", "BR", "CALL", "RET", "EXIT", "DISP"]


def add_sequencer(builder: MachineBuilder, multiway: bool) -> None:
    """Attach the standard sequencing fields to a machine."""
    modes = BRANCH_MODES if multiway else [m for m in BRANCH_MODES if m != "DISP"]
    builder.order_field("br_mode", modes)
    builder.order_field("br_cond", BRANCH_CONDITIONS)
    builder.imm_field("br_addr", 12)


def build_hm1(
    *,
    name: str = "HM1",
    latches: int = 0,
    datapath=None,
    macro_visible: tuple[str, ...] = (),
    notes: str | None = None,
) -> MicroArchitecture:
    """Build and validate the HM1 machine description.

    ``latches`` adds bus-latch registers ``L0``… (non-allocatable,
    reachable by all move paths) and ``datapath`` attaches a
    connectivity graph — the knobs the CHAMIL-flavoured CM1 variant
    uses (see :mod:`repro.machine.machines.cm1`).

    ``macro_visible`` names general registers that survive a microtrap
    restart (§2.1.5), as on a machine whose microcode implements a
    macro ISA.  HM1 defaults to none — pass e.g. ``("R1", "R2")`` to
    run the restartability experiments on it.
    """
    b = MachineBuilder(name, word_size=16)

    # Registers.  R0 is a hardwired zero (as in the survey's SIMPL
    # example, where ``R0 -> ACC`` clears the accumulator).
    b.reg(const_register("R0", 16, 0))
    for index in range(1, 8):
        reg_name = f"R{index}"
        b.reg(gpr(reg_name, 16, macro_visible=reg_name in macro_visible))
    b.reg(gpr("ACC", 16, "acc", macro_visible="ACC" in macro_visible))
    b.reg(Register("MAR", 16, classes=frozenset({MAR})))
    b.reg(Register("MBR", 16, classes=frozenset({"gpr", MBR})))
    b.reg(const_register("ONE", 16, 1))
    b.reg(const_register("MINUS1", 16, 0xFFFF))
    # Loadable constant ROM: the loader pokes program constants here.
    for index in range(8):
        b.reg(const_register(f"C{index}", 16, 0))
    # Optional bus latches (routing-only registers, never allocated).
    latch_names = [f"L{i}" for i in range(latches)]
    for latch in latch_names:
        b.reg(Register(latch, 16, classes=frozenset({"latch"})))

    readable = [
        "R0", *(f"R{i}" for i in range(1, 8)), "ACC", "MAR", "MBR",
        "ONE", "MINUS1", *(f"C{i}" for i in range(8)), *latch_names,
    ]
    writable = [*(f"R{i}" for i in range(1, 8)), "ACC", "MAR", "MBR",
                *latch_names]

    # Functional units across the three phases.
    b.unit("null", phase=1, count=16)
    b.unit("mova", phase=1)
    b.unit("movb", phase=1)
    b.unit("lit", phase=1)
    b.unit("poll", phase=1)
    b.unit("alu", phase=2)
    b.unit("shifter", phase=2)
    b.unit("bitf", phase=2)
    b.unit("mem", phase=2, latency=2)
    b.unit("scr", phase=2)
    b.unit("movw", phase=3)

    # Control-word fields.
    b.select_field("a_src", readable).select_field("a_dst", writable)
    b.select_field("b_src", readable).select_field("b_dst", writable)
    b.imm_field("lit_val", 16).select_field("lit_dst", writable)
    b.order_field("poll_op", ["POLL"])
    b.order_field(
        "alu_op",
        ["ADD", "SUB", "ADC", "AND", "OR", "XOR", "NAND", "NOR",
         "INC", "DEC", "NOT", "NEG", "CMP"],
    )
    b.select_field("alu_a", readable)
    b.select_field("alu_b", readable)
    b.select_field("alu_d", writable)
    b.order_field("sh_op", ["SHL", "SHR", "SAR", "ROL", "ROR"])
    b.select_field("sh_src", readable).select_field("sh_dst", writable)
    b.imm_field("sh_cnt", 4)
    b.order_field("bf_op", ["EXT", "DEP"])
    b.select_field("bf_src", readable).select_field("bf_dst", writable)
    b.imm_field("bf_pos", 4).imm_field("bf_w", 5)
    b.order_field("mem_op", ["READ", "WRITE"])
    b.order_field("scr_op", ["LD", "ST"])
    b.imm_field("scr_addr", 8)
    b.select_field("scr_reg", [*writable])
    b.select_field("w_src", readable).select_field("w_dst", writable)
    add_sequencer(b, multiway=True)

    # Micro-operations.
    b.op("nop", "null", srcs=0, dest=False, settings={})
    b.op("poll", "poll", srcs=0, dest=False, settings={"poll_op": "POLL"})
    b.op("mov", "mova", srcs=1, dest=True,
         settings={"a_src": "$src0", "a_dst": "$dest"}, variant="a")
    b.op("mov", "movb", srcs=1, dest=True,
         settings={"b_src": "$src0", "b_dst": "$dest"}, variant="b")
    b.op("mov", "movw", srcs=1, dest=True,
         settings={"w_src": "$src0", "w_dst": "$dest"}, variant="w")
    b.op("movi", "lit", srcs=1, dest=True,
         settings={"lit_val": "$imm0", "lit_dst": "$dest"},
         imm_srcs=frozenset({0}))
    b.alu_ops("alu", "alu_op", "alu_a", "alu_b", "alu_d",
              ["add", "sub", "adc", "and", "or", "xor", "nand", "nor"])
    b.unary_ops("alu", "alu_op", "alu_a", "alu_d", ["inc", "dec", "not", "neg"])
    b.op("cmp", "alu", srcs=2, dest=False,
         settings={"alu_op": "CMP", "alu_a": "$src0", "alu_b": "$src1"},
         writes_flags=("Z", "N", "C"))
    for shift in ["shl", "shr", "sar", "rol", "ror"]:
        b.op(shift, "shifter", srcs=2, dest=True,
             settings={"sh_op": shift.upper(), "sh_src": "$src0",
                       "sh_cnt": "$imm1", "sh_dst": "$dest"},
             imm_srcs=frozenset({1}), writes_flags=("Z", "N", "UF"))
    b.op("ext", "bitf", srcs=3, dest=True,
         settings={"bf_op": "EXT", "bf_src": "$src0", "bf_pos": "$imm1",
                   "bf_w": "$imm2", "bf_dst": "$dest"},
         imm_srcs=frozenset({1, 2}), writes_flags=("Z",))
    b.op("dep", "bitf", srcs=3, dest=True,
         settings={"bf_op": "DEP", "bf_src": "$src0", "bf_pos": "$imm1",
                   "bf_w": "$imm2", "bf_dst": "$dest"},
         imm_srcs=frozenset({1, 2}), reads_dest=True)
    b.op("read", "mem", srcs=1, dest=True,
         settings={"mem_op": "READ"},
         src_classes=(MAR,), dest_class=MBR)
    b.op("write", "mem", srcs=2, dest=False,
         settings={"mem_op": "WRITE"},
         src_classes=(MAR, MBR))
    b.op("ldscr", "scr", srcs=1, dest=True,
         settings={"scr_op": "LD", "scr_addr": "$imm0", "scr_reg": "$dest"},
         imm_srcs=frozenset({0}))
    b.op("stscr", "scr", srcs=2, dest=False,
         settings={"scr_op": "ST", "scr_reg": "$src0", "scr_addr": "$imm1"},
         imm_srcs=frozenset({1}))

    return b.build(
        n_phases=3,
        allows_phase_chaining=True,
        memory_latency=2,
        has_multiway_branch=True,
        scratchpad_size=256,
        datapath=datapath,
        notes=notes if notes is not None else (
            "Reference horizontal machine: 3-phase microcycle with "
            "chaining, two move paths, ALU + shifter + bit-field unit, "
            "2-cycle memory, mask-table multiway branch."
        ),
    )
