"""VAXm — a baroque, irregular horizontal machine.

Modelled on the survey's account of YALLL's DEC VAX-11 target
(§2.2.4): "the baroque structure of the VAX micro architecture …
discouraged the implementers from attempting any code optimization".
The irregularities built in here are exactly the kinds the survey
enumerates in §2.1.2–2.1.3:

* only 16 microregisters, four of which are *macro-visible* (saved and
  restored around microtraps — the precondition of the ``incread`` bug);
* ALU results can only land in the ``aluout`` class (``T0``–``T3``),
  so most computations need an extra move;
* no increment/decrement — the ALU must add the hardwired ``ONE``;
* literals are only 8 bits wide, so a full-width constant costs a
  movi/shift/or sequence;
* shifts move by a single bit per microinstruction;
* using the memory unit blocks the move path in the same cycle (a
  "this register being occupied disables part of the instruction set"
  constraint, realized through shared control fields);
* one phase, no chaining, no multiway branch, 3-cycle memory.
"""

from __future__ import annotations

from repro.machine.builder import MachineBuilder
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.hm1 import add_sequencer
from repro.machine.registers import MAR, MBR, Register, const_register, gpr

#: Register class for the only registers the ALU may write.
ALUOUT = "aluout"


def build_vax() -> MicroArchitecture:
    """Build and validate the VAXm machine description."""
    b = MachineBuilder("VAXm", word_size=16)

    for index in range(4):
        b.reg(gpr(f"T{index}", 16, ALUOUT))
    for index in range(4, 10):
        b.reg(gpr(f"T{index}", 16))
    for index in range(4):
        b.reg(gpr(f"R{index}", 16, macro_visible=True))
    b.reg(Register("MAR", 16, classes=frozenset({MAR})))
    b.reg(Register("MBR", 16, classes=frozenset({"gpr", MBR})))
    b.reg(const_register("ZERO", 16, 0))
    b.reg(const_register("ONE", 16, 1))
    for index in range(2):
        b.reg(const_register(f"C{index}", 16, 0))

    readable = [
        *(f"T{i}" for i in range(10)), *(f"R{i}" for i in range(4)),
        "MAR", "MBR", "ZERO", "ONE", "C0", "C1",
    ]
    writable = [*(f"T{i}" for i in range(10)), *(f"R{i}" for i in range(4)),
                "MAR", "MBR"]

    b.unit("null", phase=1, count=16)
    b.unit("mov", phase=1)
    b.unit("lit", phase=1)
    b.unit("poll", phase=1)
    b.unit("alu", phase=1)
    b.unit("shifter", phase=1)
    b.unit("mem", phase=1, latency=3)
    b.unit("scr", phase=1)

    # The move path and the memory unit share the m_src/m_dst fields:
    # a memory strobe forces both selectors to NONE, so a mov in the
    # same microinstruction is a field conflict.  This is the VAXm's
    # signature irregularity.
    b.select_field("m_src", readable).select_field("m_dst", writable)
    b.imm_field("lit_val", 8).select_field("lit_dst", writable)
    b.order_field("poll_op", ["POLL"])
    b.order_field("alu_op", ["ADD", "SUB", "AND", "OR", "XOR", "NOT", "CMP"])
    b.select_field("alu_a", readable)
    b.select_field("alu_b", readable)
    b.select_field("alu_d", writable)
    b.order_field("sh_op", ["SHL", "SHR", "SAR"])
    b.select_field("sh_src", readable).select_field("sh_dst", writable)
    b.order_field("mem_op", ["READ", "WRITE"])
    b.order_field("scr_op", ["LD", "ST"])
    b.imm_field("scr_addr", 8)
    b.select_field("scr_reg", writable)
    add_sequencer(b, multiway=False)

    b.op("nop", "null", srcs=0, dest=False, settings={})
    b.op("poll", "poll", srcs=0, dest=False, settings={"poll_op": "POLL"})
    b.op("mov", "mov", srcs=1, dest=True,
         settings={"m_src": "$src0", "m_dst": "$dest"})
    b.op("movi", "lit", srcs=1, dest=True,
         settings={"lit_val": "$imm0", "lit_dst": "$dest"},
         imm_srcs=frozenset({0}))
    b.alu_ops("alu", "alu_op", "alu_a", "alu_b", "alu_d",
              ["add", "sub", "and", "or", "xor"], dest_class=ALUOUT)
    b.unary_ops("alu", "alu_op", "alu_a", "alu_d", ["not"], dest_class=ALUOUT)
    b.op("cmp", "alu", srcs=2, dest=False,
         settings={"alu_op": "CMP", "alu_a": "$src0", "alu_b": "$src1"},
         writes_flags=("Z", "N", "C"))
    # Shifts move a single bit position per microinstruction; the
    # count operand exists for interface uniformity but must be 1.
    for shift in ["shl", "shr", "sar"]:
        b.op(shift, "shifter", srcs=2, dest=True,
             settings={"sh_op": shift.upper(), "sh_src": "$src0",
                       "sh_dst": "$dest"},
             imm_srcs=frozenset({1}), writes_flags=("Z", "N", "UF"))
    # Memory strobes jam the move path (shared selector fields).
    b.op("read", "mem", srcs=1, dest=True,
         settings={"mem_op": "READ", "m_src": "NONE", "m_dst": "NONE"},
         src_classes=(MAR,), dest_class=MBR)
    b.op("write", "mem", srcs=2, dest=False,
         settings={"mem_op": "WRITE", "m_src": "NONE", "m_dst": "NONE"},
         src_classes=(MAR, MBR))
    b.op("ldscr", "scr", srcs=1, dest=True,
         settings={"scr_op": "LD", "scr_addr": "$imm0", "scr_reg": "$dest"},
         imm_srcs=frozenset({0}))
    b.op("stscr", "scr", srcs=2, dest=False,
         settings={"scr_op": "ST", "scr_reg": "$src0", "scr_addr": "$imm1"},
         imm_srcs=frozenset({1}))

    return b.build(
        n_phases=1,
        allows_phase_chaining=False,
        memory_latency=3,
        has_multiway_branch=False,
        scratchpad_size=64,
        notes=(
            "Baroque horizontal machine in the spirit of YALLL's VAX-11 "
            "target: ALU writes restricted to T0-T3, no inc/dec, 8-bit "
            "literals, 1-bit shifts, memory blocks the move path, "
            "3-cycle memory, 4 macro-visible registers."
        ),
    )
