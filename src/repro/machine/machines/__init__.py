"""Concrete machine descriptions shipped with the toolkit.

Each builder returns a fresh, validated :class:`MicroArchitecture`.
``get_machine`` provides name-based lookup for CLIs and benchmarks.
"""

from __future__ import annotations

from repro.errors import MachineError
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.cm1 import build_cm1
from repro.machine.machines.hm1 import build_hm1
from repro.machine.machines.hp300 import build_hp300
from repro.machine.machines.id3200 import build_id3200
from repro.machine.machines.vax import build_vax
from repro.machine.machines.vm1 import build_vm1

_BUILDERS = {
    "HM1": build_hm1,
    "CM1": build_cm1,
    "HP300m": build_hp300,
    "VAXm": build_vax,
    "VM1": build_vm1,
    "ID3200m": build_id3200,
}


def machine_names() -> list[str]:
    """Names of all machines shipped with the toolkit."""
    return list(_BUILDERS)


def get_machine(name: str) -> MicroArchitecture:
    """Build a fresh machine description by name."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise MachineError(
            f"unknown machine {name!r}; available: {', '.join(_BUILDERS)}"
        ) from None
    return builder()


__all__ = [
    "build_cm1",
    "build_hm1",
    "build_hp300",
    "build_id3200",
    "build_vax",
    "build_vm1",
    "get_machine",
    "machine_names",
]
