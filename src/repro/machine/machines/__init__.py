"""Concrete machine descriptions shipped with the toolkit.

Each builder returns a fresh, validated :class:`MicroArchitecture`.
Every machine registers a :class:`repro.registry.MachineSpec` here —
the single table the CLI, fault campaigns and benchmarks resolve
against; ``get_machine``/``machine_names`` remain as thin wrappers
over the registry for existing callers.
"""

from __future__ import annotations

from repro.machine.machine import MicroArchitecture
from repro.machine.machines.cm1 import build_cm1
from repro.machine.machines.hm1 import build_hm1
from repro.machine.machines.hp300 import build_hp300
from repro.machine.machines.id3200 import build_id3200
from repro.machine.machines.vax import build_vax
from repro.machine.machines.vm1 import build_vm1
from repro.registry import MachineSpec, build_machine
from repro.registry import machine_names as _registry_machine_names
from repro.registry import register_machine

register_machine(MachineSpec(
    name="HM1", builder=build_hm1, organisation="horizontal",
    description="clean horizontal machine (Tucker-Flynn flavoured)",
    capabilities=("multiway_branch", "phase_chaining"),
))
register_machine(MachineSpec(
    name="CM1", builder=build_cm1, organisation="horizontal",
    description="HM1 with a CHAMIL-style restricted datapath "
                "routed through a bus latch",
    capabilities=("multiway_branch", "restricted_datapath"),
))
register_machine(MachineSpec(
    name="HP300m", builder=build_hp300, organisation="horizontal",
    description="regular, well-documented horizontal machine "
                "(YALLL's good target)",
    capabilities=("multiway_branch",),
))
register_machine(MachineSpec(
    name="VAXm", builder=build_vax, organisation="horizontal",
    description="baroque, irregular micro-architecture "
                "(YALLL's bad target)",
    capabilities=(),
))
register_machine(MachineSpec(
    name="VM1", builder=build_vm1, organisation="vertical",
    description="vertical machine: one micro-operation per word",
    capabilities=(),
))
register_machine(MachineSpec(
    name="ID3200m", builder=build_id3200, organisation="horizontal",
    description="Interdata-like register-block machine "
                "(the 2.1.2 new-block-vs-push discussion)",
    capabilities=("register_blocks",),
))


def machine_names() -> list[str]:
    """Names of all machines shipped with the toolkit."""
    return _registry_machine_names()


def get_machine(name: str) -> MicroArchitecture:
    """Build a fresh machine description by name."""
    return build_machine(name)


__all__ = [
    "build_cm1",
    "build_hm1",
    "build_hp300",
    "build_id3200",
    "build_vax",
    "build_vm1",
    "get_machine",
    "machine_names",
]
