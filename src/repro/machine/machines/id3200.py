"""ID3200m — an Interdata-3200-flavoured machine with register banks.

The survey's §2.1.2 example: "On the Interdata 3200 the programmer can
switch to a different block of 32 registers, by setting 3 bits in the
program status word (there are eight such blocks)."  ID3200m scales
this down to eight banks of eight windowed registers (``G0``–``G7``),
selected by the ``BLK`` bank pointer and switched with the ``setblk``
micro-operation.

Experiment E13 uses this machine to reproduce the survey's point that
a ``push``-style language primitive overlaps with the ``new-block``
facility: an activation-record workload is compiled once against a
memory stack and once against bank switching, and the cycle counts are
compared.
"""

from __future__ import annotations

from repro.machine.builder import MachineBuilder
from repro.machine.machine import MicroArchitecture
from repro.machine.machines.hm1 import add_sequencer
from repro.machine.registers import MAR, MBR, Register, const_register, gpr

#: Number of register banks and windowed registers per bank.
N_BANKS = 8
WINDOW_SIZE = 8


def build_id3200() -> MicroArchitecture:
    """Build and validate the ID3200m machine description."""
    b = MachineBuilder("ID3200m", word_size=16)
    b.registers.n_banks = N_BANKS

    # Physical banked registers plus their windows.
    for bank in range(N_BANKS):
        for index in range(WINDOW_SIZE):
            b.reg(gpr(f"G{bank}_{index}", 16, "banked"), bank=bank)
    # Non-banked scratch registers and the bank pointer.
    for index in range(4):
        b.reg(gpr(f"S{index}", 16))
    b.reg(Register("BLK", 3, classes=frozenset({"blk"})))
    b.reg(Register("MAR", 16, classes=frozenset({MAR})))
    b.reg(Register("MBR", 16, classes=frozenset({"gpr", MBR})))
    b.reg(const_register("ZERO", 16, 0))
    b.reg(const_register("ONE", 16, 1))
    for index in range(4):
        b.reg(const_register(f"C{index}", 16, 0))
    for index in range(WINDOW_SIZE):
        b.registers.add_window(
            f"G{index}",
            tuple(f"G{bank}_{index}" for bank in range(N_BANKS)),
        )
    b.registers.bank_pointer = "BLK"

    windows = [f"G{i}" for i in range(WINDOW_SIZE)]
    readable = [*windows, *(f"S{i}" for i in range(4)), "MAR", "MBR",
                "ZERO", "ONE", *(f"C{i}" for i in range(4))]
    writable = [*windows, *(f"S{i}" for i in range(4)), "MAR", "MBR"]

    b.unit("null", phase=1, count=16)
    b.unit("mova", phase=1)
    b.unit("lit", phase=1)
    b.unit("poll", phase=1)
    b.unit("blk", phase=1)
    b.unit("alu", phase=2)
    b.unit("shifter", phase=2)
    b.unit("mem", phase=2, latency=2)
    b.unit("scr", phase=2)

    b.select_field("a_src", readable).select_field("a_dst", writable)
    b.imm_field("lit_val", 16).select_field("lit_dst", writable)
    b.order_field("poll_op", ["POLL"])
    b.order_field("blk_op", ["SET"])
    b.imm_field("blk_val", 3)
    b.order_field(
        "alu_op",
        ["ADD", "SUB", "ADC", "AND", "OR", "XOR", "INC", "DEC", "NOT",
         "NEG", "CMP"],
    )
    b.select_field("alu_a", readable)
    b.select_field("alu_b", readable)
    b.select_field("alu_d", writable)
    b.order_field("sh_op", ["SHL", "SHR", "SAR"])
    b.select_field("sh_src", readable).select_field("sh_dst", writable)
    b.imm_field("sh_cnt", 4)
    b.order_field("mem_op", ["READ", "WRITE"])
    b.order_field("scr_op", ["LD", "ST"])
    b.imm_field("scr_addr", 8)
    b.select_field("scr_reg", writable)
    add_sequencer(b, multiway=False)

    b.op("nop", "null", srcs=0, dest=False, settings={})
    b.op("poll", "poll", srcs=0, dest=False, settings={"poll_op": "POLL"})
    b.op("mov", "mova", srcs=1, dest=True,
         settings={"a_src": "$src0", "a_dst": "$dest"})
    b.op("movi", "lit", srcs=1, dest=True,
         settings={"lit_val": "$imm0", "lit_dst": "$dest"},
         imm_srcs=frozenset({0}))
    b.op("setblk", "blk", srcs=1, dest=False,
         settings={"blk_op": "SET", "blk_val": "$imm0"},
         imm_srcs=frozenset({0}))
    b.alu_ops("alu", "alu_op", "alu_a", "alu_b", "alu_d",
              ["add", "sub", "adc", "and", "or", "xor"])
    b.unary_ops("alu", "alu_op", "alu_a", "alu_d", ["inc", "dec", "not", "neg"])
    b.op("cmp", "alu", srcs=2, dest=False,
         settings={"alu_op": "CMP", "alu_a": "$src0", "alu_b": "$src1"},
         writes_flags=("Z", "N", "C"))
    for shift in ["shl", "shr", "sar"]:
        b.op(shift, "shifter", srcs=2, dest=True,
             settings={"sh_op": shift.upper(), "sh_src": "$src0",
                       "sh_cnt": "$imm1", "sh_dst": "$dest"},
             imm_srcs=frozenset({1}), writes_flags=("Z", "N", "UF"))
    b.op("read", "mem", srcs=1, dest=True,
         settings={"mem_op": "READ"}, src_classes=(MAR,), dest_class=MBR)
    b.op("write", "mem", srcs=2, dest=False,
         settings={"mem_op": "WRITE"}, src_classes=(MAR, MBR))
    b.op("ldscr", "scr", srcs=1, dest=True,
         settings={"scr_op": "LD", "scr_addr": "$imm0", "scr_reg": "$dest"},
         imm_srcs=frozenset({0}))
    b.op("stscr", "scr", srcs=2, dest=False,
         settings={"scr_op": "ST", "scr_reg": "$src0", "scr_addr": "$imm1"},
         imm_srcs=frozenset({1}))

    return b.build(
        n_phases=2,
        allows_phase_chaining=True,
        memory_latency=2,
        has_multiway_branch=False,
        scratchpad_size=128,
        notes=(
            "Interdata-3200-flavoured machine: eight banks of eight "
            "windowed registers selected by BLK via setblk — hardware "
            "support for activation records (survey §2.1.2)."
        ),
    )
