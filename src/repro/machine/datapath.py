"""Datapath connectivity — CHAMIL's abstraction (survey §2.2.5).

"The programmer is allowed to abstract from physical datapaths: the
statement ``reg_a := reg_b`` is legal as long as there exists a
(possibly indirect) path from reg_a to reg_b that can be traversed
within one microcycle."

A :class:`DatapathGraph` records which register-to-register transfers
the buses support directly.  ``route`` finds the shortest indirect
path; the legalization pass expands a move along it, hop by hop, and
on chaining machines the composers can then pack the whole route back
into a single microinstruction — which is exactly CHAMIL's "within one
microcycle" condition becoming checkable.

Machines without a datapath graph (``machine.datapath is None``) have
fully connected register files, the default everywhere else in the
toolkit.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

from repro.errors import MachineError


@dataclass
class DatapathGraph:
    """Directed register-to-register connectivity.

    Attributes:
        direct: Adjacency sets: ``direct[a]`` holds every register a
            single move can reach from ``a``.
        routing_registers: Registers (typically bus latches) that a
            router may clobber freely when building indirect paths.
            They must never be allocatable or hold program values.
    """

    direct: dict[str, set[str]] = field(default_factory=dict)
    routing_registers: frozenset[str] = frozenset()

    def connect(self, source: str, *destinations: str) -> "DatapathGraph":
        self.direct.setdefault(source, set()).update(destinations)
        return self

    def connect_bidirectional(self, a: str, b: str) -> "DatapathGraph":
        self.connect(a, b)
        self.connect(b, a)
        return self

    def is_direct(self, source: str, destination: str) -> bool:
        return destination in self.direct.get(source, set())

    def route(
        self, source: str, destination: str, max_hops: int = 4
    ) -> list[tuple[str, str]] | None:
        """Shortest move sequence realizing source -> destination.

        Intermediate nodes are restricted to the routing registers (a
        path through an architectural register would clobber program
        state).  Returns ``[(src, hop1), (hop1, hop2), …]`` or None if
        no path of at most ``max_hops`` moves exists.
        """
        if self.is_direct(source, destination):
            return [(source, destination)]
        queue: deque[tuple[str, list[str]]] = deque([(source, [source])])
        seen = {source}
        while queue:
            node, path = queue.popleft()
            if len(path) > max_hops:
                continue
            for neighbour in sorted(self.direct.get(node, set())):
                if neighbour == destination:
                    full = path + [destination]
                    return list(zip(full, full[1:]))
                if neighbour in seen or neighbour not in self.routing_registers:
                    continue
                seen.add(neighbour)
                queue.append((neighbour, path + [neighbour]))
        return None

    def validate(self, register_names: set[str]) -> None:
        """All nodes must be registers of the machine."""
        nodes = set(self.direct)
        for destinations in self.direct.values():
            nodes |= destinations
        nodes |= self.routing_registers
        unknown = nodes - register_names
        if unknown:
            raise MachineError(
                f"datapath references unknown registers: {sorted(unknown)}"
            )


def fully_connected() -> None:
    """The default: no datapath graph means every move is direct."""
    return None
