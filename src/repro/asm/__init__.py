"""Microassembler and control-store loader (survey substrate S6)."""

from repro.asm.assembler import LoadedProgram, LoadedWord, assemble
from repro.asm.loader import ControlStore, ResidentProgram

__all__ = [
    "ControlStore",
    "LoadedProgram",
    "LoadedWord",
    "ResidentProgram",
    "assemble",
]
