"""Microassembler: composed programs → control-store images.

Lays out each block's microinstructions at consecutive control-store
addresses, encodes sequencing into the standard ``br_mode`` /
``br_cond`` / ``br_addr`` fields, and packs every microinstruction into
its binary control word.  Where the sequencer cannot express a
terminator in one word (e.g. a conditional branch whose both targets
are non-adjacent) a fixup jump word is appended.

The output :class:`LoadedProgram` keeps both the packed words (for
listings, size accounting and round-trip tests) and the structured
microinstructions (which the simulator executes directly).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.compose.base import ComposedProgram, MicroInstruction
from repro.errors import AssemblerError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import (
    Branch,
    Call,
    Exit,
    Fallthrough,
    Jump,
    Multiway,
    Ret,
)

#: Inverse of each flag condition, used to flip branch polarity.
_INVERSE = {
    "Z": "NZ", "NZ": "Z", "N": "NN", "NN": "N",
    "C": "NC", "NC": "C", "UF": "NUF", "NUF": "UF",
}


@dataclass
class LoadedWord:
    """One control-store word: structured + packed representations."""

    address: int
    instruction: MicroInstruction
    settings: dict[str, str | int]
    word: int


@dataclass
class LoadedProgram:
    """An assembled microprogram ready for the control store."""

    name: str
    machine_name: str
    words: list[LoadedWord] = field(default_factory=list)
    labels: dict[str, int] = field(default_factory=dict)
    entry: int = 0
    procedures: dict[str, int] = field(default_factory=dict)
    constants: dict[str, int] = field(default_factory=dict)
    #: address -> (register name, cases, default address) for DISP words.
    dispatch_tables: dict[int, tuple[str, tuple, int]] = field(default_factory=dict)
    #: address -> register name whose value EXIT yields.
    exit_values: dict[int, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.words)

    def word_at(self, address: int) -> LoadedWord:
        if not 0 <= address < len(self.words):
            raise AssemblerError(
                f"{self.name}: control-store address {address} out of range"
            )
        return self.words[address]

    def listing(self, machine: MicroArchitecture) -> str:
        """Human-readable listing with addresses, words and symbols."""
        by_address = {addr: label for label, addr in self.labels.items()}
        digits = max(1, (machine.control.width + 3) // 4)
        lines = [
            f"; {self.name} on {self.machine_name}: {len(self.words)} words "
            f"x {machine.control.width} bits"
        ]
        for loaded in self.words:
            if loaded.address in by_address:
                lines.append(f"{by_address[loaded.address]}:")
            lines.append(
                f"  {loaded.address:04d}  {loaded.word:0{digits}x}  "
                f"{loaded.instruction}"
            )
        return "\n".join(lines)


def _needs_fixup(
    terminator, next_label: str | None
) -> bool:
    """Whether the terminator requires an extra jump word."""
    if isinstance(terminator, Branch):
        return terminator.otherwise != next_label and terminator.target != next_label
    if isinstance(terminator, Call):
        return terminator.next != next_label
    return False


def assemble(
    composed: ComposedProgram, machine: MicroArchitecture
) -> LoadedProgram:
    """Assemble a composed program for the given machine."""
    labels_in_order = list(composed.blocks)
    next_of: dict[str, str | None] = {
        label: labels_in_order[index + 1] if index + 1 < len(labels_in_order) else None
        for index, label in enumerate(labels_in_order)
    }

    # Pass 1: layout.
    addresses: dict[str, int] = {}
    fixup_after: dict[str, bool] = {}
    cursor = 0
    for label in labels_in_order:
        block = composed.blocks[label]
        addresses[label] = cursor
        cursor += len(block.instructions)
        fixup = _needs_fixup(block.instructions[-1].terminator, next_of[label])
        fixup_after[label] = fixup
        if fixup:
            cursor += 1
    if cursor > machine.control_store_size:
        raise AssemblerError(
            f"{composed.name}: {cursor} words exceed {machine.name}'s "
            f"control store ({machine.control_store_size} words)"
        )

    program = LoadedProgram(
        name=composed.name,
        machine_name=machine.name,
        labels=dict(addresses),
        entry=addresses[composed.entry],
        procedures={
            name: addresses[proc.entry]
            for name, proc in composed.procedures.items()
        },
        constants=dict(composed.constants),
    )

    # Pass 2: encode.
    for label in labels_in_order:
        block = composed.blocks[label]
        base = addresses[label]
        for offset, instruction in enumerate(block.instructions):
            address = base + offset
            is_last = offset == len(block.instructions) - 1
            seq = _encode_terminator(
                program, machine, instruction, address, addresses,
                next_of[label], is_last, fixup_after[label],
            )
            settings = instruction.settings(machine)
            settings.update(seq)
            word = machine.control.pack(settings)
            program.words.append(LoadedWord(address, instruction, settings, word))
        if fixup_after[label]:
            terminator = block.instructions[-1].terminator
            if isinstance(terminator, Branch):
                target = addresses[terminator.otherwise]
            else:
                assert isinstance(terminator, Call)
                target = addresses[terminator.next]
            fix = MicroInstruction(terminator=Jump("<fixup>"))
            settings = {"br_mode": "JUMP", "br_addr": target}
            word = machine.control.pack(settings)
            program.words.append(
                LoadedWord(base + len(block.instructions), fix, settings, word)
            )
    return program


def _encode_terminator(
    program: LoadedProgram,
    machine: MicroArchitecture,
    instruction: MicroInstruction,
    address: int,
    addresses: dict[str, int],
    next_label: str | None,
    is_last: bool,
    has_fixup: bool,
) -> dict[str, str | int]:
    """Sequencing field settings for one microinstruction."""
    if not is_last or instruction.terminator is None:
        return {"br_mode": "NEXT"}
    terminator = instruction.terminator

    if isinstance(terminator, Fallthrough):
        if terminator.target == next_label:
            return {"br_mode": "NEXT"}
        return {"br_mode": "JUMP", "br_addr": addresses[terminator.target]}

    if isinstance(terminator, Jump):
        return {"br_mode": "JUMP", "br_addr": addresses[terminator.target]}

    if isinstance(terminator, Branch):
        if terminator.otherwise == next_label:
            return {
                "br_mode": "BR",
                "br_cond": terminator.cond,
                "br_addr": addresses[terminator.target],
            }
        if terminator.target == next_label:
            return {
                "br_mode": "BR",
                "br_cond": _INVERSE[terminator.cond],
                "br_addr": addresses[terminator.otherwise],
            }
        # Fixup word right after this one jumps to ``otherwise``.
        return {
            "br_mode": "BR",
            "br_cond": terminator.cond,
            "br_addr": addresses[terminator.target],
        }

    if isinstance(terminator, Multiway):
        if not machine.has_multiway_branch:
            raise AssemblerError(
                f"{machine.name} has no multiway branch; the back end must "
                f"lower multiway terminators before assembly"
            )
        program.dispatch_tables[address] = (
            terminator.reg.name,
            terminator.cases,
            addresses[terminator.default],
        )
        # The dispatch table itself lives beside the control store; the
        # word only carries the mode (mask tables were typically held
        # in separate mapping ROMs).
        return {"br_mode": "DISP"}

    if isinstance(terminator, Call):
        # Hardware pushes address+1; the continuation block either
        # starts there or a fixup jump at address+1 reaches it.
        return {
            "br_mode": "CALL",
            "br_addr": _procedure_address(program, terminator.proc),
        }

    if isinstance(terminator, Ret):
        return {"br_mode": "RET"}

    if isinstance(terminator, Exit):
        if terminator.value is not None:
            program.exit_values[address] = terminator.value.name
        return {"br_mode": "EXIT"}

    raise AssemblerError(f"unknown terminator {terminator!r}")


def _procedure_address(program: LoadedProgram, name: str) -> int:
    try:
        return program.procedures[name]
    except KeyError:
        raise AssemblerError(f"call to unknown procedure {name!r}") from None
