"""Control store and program loading.

A :class:`ControlStore` holds one or more assembled microprograms at
disjoint address ranges — the situation the survey describes where user
microprograms "coexist with a set of unalterable, manufacturer supplied
microprograms" (§2.1.5).  Loading relocates a program to its base
address and records its constant-ROM pokes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.assembler import LoadedProgram, LoadedWord
from repro.errors import AssemblerError
from repro.machine.machine import MicroArchitecture


@dataclass
class ResidentProgram:
    """A program resident in the control store at some base address."""

    program: LoadedProgram
    base: int

    @property
    def entry(self) -> int:
        return self.base + self.program.entry

    def contains(self, address: int) -> bool:
        return self.base <= address < self.base + len(self.program)


@dataclass
class ControlStore:
    """The machine's writable control store."""

    machine: MicroArchitecture
    residents: list[ResidentProgram] = field(default_factory=list)
    _cursor: int = 0

    def load(self, program: LoadedProgram, base: int | None = None) -> ResidentProgram:
        """Load a program at ``base`` (default: first free address)."""
        if program.machine_name != self.machine.name:
            raise AssemblerError(
                f"program {program.name!r} was assembled for "
                f"{program.machine_name}, not {self.machine.name}"
            )
        if base is None:
            base = self._cursor
        end = base + len(program)
        if end > self.machine.control_store_size:
            raise AssemblerError(
                f"program {program.name!r} does not fit: needs up to "
                f"address {end}, store has {self.machine.control_store_size}"
            )
        for resident in self.residents:
            if base < resident.base + len(resident.program) and resident.base < end:
                raise AssemblerError(
                    f"program {program.name!r} overlaps {resident.program.name!r}"
                )
        resident = ResidentProgram(program, base)
        self.residents.append(resident)
        self._cursor = max(self._cursor, end)
        return resident

    def resident_at(self, address: int) -> ResidentProgram:
        for resident in self.residents:
            if resident.contains(address):
                return resident
        raise AssemblerError(f"no program resident at address {address}")

    def fetch(self, address: int) -> LoadedWord:
        """Fetch the word at an absolute control-store address."""
        resident = self.resident_at(address)
        return resident.program.word_at(address - resident.base)

    def find(self, name: str) -> ResidentProgram:
        for resident in self.residents:
            if resident.program.name == name:
                return resident
        raise AssemblerError(f"no resident program named {name!r}")
