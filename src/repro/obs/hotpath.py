"""Hot-path analysis: loops and traces out of a :class:`SimProfile`.

The profile-guided trace JIT (ROADMAP) needs more than per-address
counters: it needs to know *which address sequences* are hot, where
their back edges are, and how much of the run each one covers.  This
module reconstructs the dynamic control-flow graph from the
``edge_counts`` a :class:`~repro.obs.timeline.TraceRecorder` collects
(every terminator-produced transition between consecutively executed
microinstructions), derives basic blocks, dominators, back edges and
natural-loop nesting, and ranks the loops as :class:`HotTrace`
records — address sequences with iteration counts, cycle share and
coverage %, exactly the input a trace compiler stitches pre-decoded
plans from.

Everything here is a pure function of the profile, so an analysis of
a merged shard profile equals the analysis of the serial profile, and
a profile replayed from JSON (``repro profile --replay``) analyzes
identically to the live run that saved it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.timeline import SimProfile


@dataclass(frozen=True)
class BasicBlock:
    """A maximal straight-line run of executed addresses.

    ``executions`` is the entry count of the leader; ``cycles`` sums
    the profile's cycle counts over the member addresses.
    """

    start: int
    addresses: tuple[int, ...]
    executions: int
    cycles: int

    @property
    def end(self) -> int:
        return self.addresses[-1]


@dataclass(frozen=True)
class Loop:
    """One natural loop of the dynamic CFG.

    ``depth`` counts enclosing loops (0 = outermost); ``iterations``
    sums the back-edge traversal counts into the header.
    """

    header: int
    body: frozenset[int]
    back_edges: tuple[tuple[int, int], ...]
    iterations: int
    depth: int


@dataclass(frozen=True)
class HotTrace:
    """A ranked hot loop, rendered as an executable address sequence.

    ``path`` walks the loop body from the header along the hottest
    successors (execution order — what a trace JIT would compile);
    ``cycles`` and the shares cover the whole loop body, nested loops
    included, so ``coverage`` answers "how much of the run does
    compiling this region capture".
    """

    header: int
    path: tuple[int, ...]
    body: frozenset[int]
    iterations: int
    depth: int
    cycles: int
    cycle_share: float
    exec_share: float

    @property
    def coverage(self) -> float:
        """Alias for ``cycle_share`` (fraction of busy cycles, 0..1)."""
        return self.cycle_share


@dataclass
class HotPathAnalysis:
    """Everything :func:`analyze_profile` derives from one profile."""

    profile: SimProfile
    blocks: list[BasicBlock] = field(default_factory=list)
    loops: list[Loop] = field(default_factory=list)
    traces: list[HotTrace] = field(default_factory=list)

    def hottest(self) -> HotTrace | None:
        """The top-ranked trace (None when the run had no loops)."""
        return self.traces[0] if self.traces else None

    def loop_addresses(self) -> dict[int, int]:
        """address -> nesting depth + 1 of the innermost loop holding
        it (0 for addresses outside every loop); the heat report's
        loop column."""
        depth_of: dict[int, int] = {}
        for loop in self.loops:
            for address in loop.body:
                depth_of[address] = max(
                    depth_of.get(address, 0), loop.depth + 1
                )
        return depth_of

    def to_json(self) -> dict:
        """Deterministic summary (sorted keys, ranked order kept)."""
        return {
            "blocks": [
                {
                    "start": b.start,
                    "end": b.end,
                    "addresses": list(b.addresses),
                    "executions": b.executions,
                    "cycles": b.cycles,
                }
                for b in self.blocks
            ],
            "loops": [
                {
                    "header": lp.header,
                    "body": sorted(lp.body),
                    "back_edges": [list(e) for e in lp.back_edges],
                    "iterations": lp.iterations,
                    "depth": lp.depth,
                }
                for lp in self.loops
            ],
            "traces": [
                {
                    "header": t.header,
                    "path": list(t.path),
                    "iterations": t.iterations,
                    "depth": t.depth,
                    "cycles": t.cycles,
                    "cycle_share": round(t.cycle_share, 6),
                    "exec_share": round(t.exec_share, 6),
                }
                for t in self.traces
            ],
        }


# ----------------------------------------------------------------------
# Graph reconstruction
# ----------------------------------------------------------------------
def _graph(profile: SimProfile):
    """Successor/predecessor adjacency (sorted for determinism)."""
    succs: dict[int, list[int]] = {}
    preds: dict[int, list[int]] = {}
    nodes = set(profile.exec_counts.data)
    for (src, dst), _count in sorted(profile.edge_counts.items()):
        nodes.add(src)
        nodes.add(dst)
        succs.setdefault(src, []).append(dst)
        preds.setdefault(dst, []).append(src)
    return sorted(nodes), succs, preds


def _reverse_postorder(entry: int, succs: dict[int, list[int]]) -> list[int]:
    """Iterative DFS; only nodes reachable from ``entry`` appear."""
    order: list[int] = []
    seen: set[int] = set()
    stack: list[tuple[int, int]] = [(entry, 0)]
    seen.add(entry)
    while stack:
        node, i = stack.pop()
        children = succs.get(node, [])
        if i < len(children):
            stack.append((node, i + 1))
            child = children[i]
            if child not in seen:
                seen.add(child)
                stack.append((child, 0))
        else:
            order.append(node)
    order.reverse()
    return order


def _dominators(
    entry: int, rpo: list[int], preds: dict[int, list[int]]
) -> dict[int, int]:
    """Immediate dominators (Cooper-Harvey-Kennedy iterative scheme)."""
    index = {node: i for i, node in enumerate(rpo)}
    idom: dict[int, int] = {entry: entry}
    changed = True
    while changed:
        changed = False
        for node in rpo:
            if node == entry:
                continue
            new_idom = None
            for pred in preds.get(node, []):
                if pred not in idom or pred not in index:
                    continue
                if new_idom is None:
                    new_idom = pred
                else:
                    a, b = pred, new_idom
                    while a != b:
                        while index[a] > index[b]:
                            a = idom[a]
                        while index[b] > index[a]:
                            b = idom[b]
                    new_idom = a
            if new_idom is not None and idom.get(node) != new_idom:
                idom[node] = new_idom
                changed = True
    return idom


def _dominates(idom: dict[int, int], a: int, b: int) -> bool:
    """True iff ``a`` dominates ``b`` (walking the idom chain)."""
    node = b
    while True:
        if node == a:
            return True
        parent = idom.get(node)
        if parent is None or parent == node:
            return False
        node = parent


def _natural_loops(
    profile: SimProfile,
    rpo: list[int],
    succs: dict[int, list[int]],
    preds: dict[int, list[int]],
    idom: dict[int, int],
) -> list[Loop]:
    """Back edges -> natural loops, merged per header, depth-annotated."""
    reachable = set(rpo)
    bodies: dict[int, set[int]] = {}
    back_edges: dict[int, list[tuple[int, int]]] = {}
    for src in rpo:
        for dst in succs.get(src, []):
            if dst in reachable and _dominates(idom, dst, src):
                back_edges.setdefault(dst, []).append((src, dst))
                body = bodies.setdefault(dst, {dst})
                # Reverse reachability from the latch, stopping at the
                # header, gives the classic natural-loop body.
                stack = [src]
                while stack:
                    node = stack.pop()
                    if node in body:
                        continue
                    body.add(node)
                    stack.extend(
                        p for p in preds.get(node, []) if p in reachable
                    )
    loops: list[Loop] = []
    headers = sorted(bodies)
    for header in headers:
        body = frozenset(bodies[header])
        depth = sum(
            1 for other in headers
            if other != header
            and header in bodies[other]
            and body < frozenset(bodies[other])
        )
        edges = tuple(sorted(back_edges[header]))
        loops.append(
            Loop(
                header=header,
                body=body,
                back_edges=edges,
                iterations=int(sum(
                    profile.edge_counts.get(edge) for edge in edges
                )),
                depth=depth,
            )
        )
    return loops


def _basic_blocks(
    profile: SimProfile,
    entry: int,
    rpo: list[int],
    succs: dict[int, list[int]],
    preds: dict[int, list[int]],
) -> list[BasicBlock]:
    """Leaders (entry, join points, branch targets) -> block runs."""
    reachable = set(rpo)
    leaders = {entry}
    for node in rpo:
        if len(preds.get(node, [])) > 1:
            leaders.add(node)
        if len(succs.get(node, [])) > 1:
            leaders.update(s for s in succs[node] if s in reachable)
    blocks = []
    for leader in sorted(leaders):
        addresses = [leader]
        node = leader
        while True:
            following = succs.get(node, [])
            if len(following) != 1:
                break
            nxt = following[0]
            if nxt in leaders or nxt in addresses:
                break
            addresses.append(nxt)
            node = nxt
        blocks.append(
            BasicBlock(
                start=leader,
                addresses=tuple(addresses),
                executions=int(profile.exec_counts.get(leader)),
                cycles=int(sum(
                    profile.cycle_counts.get(a) for a in addresses
                )),
            )
        )
    return blocks


def _trace_path(
    profile: SimProfile, loop: Loop, succs: dict[int, list[int]]
) -> tuple[int, ...]:
    """Walk the loop body from its header along hottest successors."""
    path = [loop.header]
    node = loop.header
    visited = {loop.header}
    while True:
        candidates = [
            s for s in succs.get(node, []) if s in loop.body
        ]
        if not candidates:
            break
        # Hottest edge first; ties break on the lower address so the
        # path is stable across shard merges.
        node = max(
            candidates,
            key=lambda s: (profile.edge_counts.get((path[-1], s)), -s),
        )
        if node in visited:
            break  # closed the loop (or hit an inner cycle)
        visited.add(node)
        path.append(node)
    return tuple(path)


# ----------------------------------------------------------------------
def analyze_profile(profile: SimProfile) -> HotPathAnalysis:
    """Reconstruct the dynamic CFG and rank hot traces.

    Ranking is (cycles desc, header asc); every derived quantity is a
    pure function of the profile's counters, so merged-shard and
    replayed profiles analyze byte-identically to live serial runs.
    """
    analysis = HotPathAnalysis(profile=profile)
    if profile.entry is None or not profile.exec_counts:
        return analysis
    entry = profile.entry
    _nodes, succs, preds = _graph(profile)
    for adjacency in (succs, preds):
        for neighbours in adjacency.values():
            neighbours.sort()
    rpo = _reverse_postorder(entry, succs)
    idom = _dominators(entry, rpo, preds)
    analysis.blocks = _basic_blocks(profile, entry, rpo, succs, preds)
    analysis.loops = _natural_loops(profile, rpo, succs, preds, idom)
    busy = profile.busy_cycles or 1
    instructions = profile.instructions or 1
    traces = []
    for loop in analysis.loops:
        cycles = int(sum(
            profile.cycle_counts.get(a) for a in loop.body
        ))
        execs = int(sum(profile.exec_counts.get(a) for a in loop.body))
        traces.append(
            HotTrace(
                header=loop.header,
                path=_trace_path(profile, loop, succs),
                body=loop.body,
                iterations=loop.iterations,
                depth=loop.depth,
                cycles=cycles,
                cycle_share=cycles / busy,
                exec_share=execs / instructions,
            )
        )
    traces.sort(key=lambda t: (-t.cycles, t.header))
    analysis.traces = traces
    return analysis


def render_hot_traces(
    analysis: HotPathAnalysis, top: int = 5, *, loops: bool = False
) -> str:
    """The ``repro profile`` trace table (and optional loop forest)."""
    profile = analysis.profile
    lines = [
        f"hot traces — {profile.program} on {profile.machine}: "
        f"{len(analysis.traces)} loop(s), "
        f"{len(analysis.blocks)} basic block(s), "
        f"{profile.busy_cycles} busy cycles",
    ]
    if not analysis.traces:
        lines.append("  no loops detected (straight-line execution)")
    for rank, trace in enumerate(analysis.traces[:top], start=1):
        lines.append(
            f"  #{rank} loop@{trace.header:04d} depth={trace.depth} "
            f"{trace.iterations} iterations, {trace.cycles} cycles "
            f"({100.0 * trace.cycle_share:.1f}% of busy, "
            f"{100.0 * trace.exec_share:.1f}% of MIs)"
        )
        rendered = " -> ".join(f"{a:04d}" for a in trace.path)
        lines.append(f"     path: {rendered} -> {trace.header:04d}")
        for address in trace.path:
            text = profile.mi_text.get(address, "?")
            lines.append(
                f"       {address:04d} "
                f"x{int(profile.exec_counts.get(address)):<9d} {text}"
            )
    if loops and analysis.loops:
        lines.append("  loop forest:")
        for loop in sorted(analysis.loops, key=lambda l: (l.depth, l.header)):
            lines.append(
                f"    {'  ' * loop.depth}loop@{loop.header:04d} "
                f"body={len(loop.body)} addrs, "
                f"{loop.iterations} iterations, "
                f"back edges "
                + ", ".join(f"{s:04d}->{d:04d}" for s, d in loop.back_edges)
            )
    return "\n".join(lines)
