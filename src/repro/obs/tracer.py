"""Span-based tracers: the recording one and the free null one.

Every instrumented call site in the toolkit takes a tracer and defaults
to :data:`NULL_TRACER`.  The null tracer's methods are empty and its
``enabled`` flag is a class attribute ``False``, so hot paths guard
bulk work with ``if tracer.enabled:`` and pay only an attribute test
when tracing is off — the simulator additionally keeps its recorder
hook as a plain ``is not None`` check (see
:class:`repro.sim.simulator.Simulator`), keeping the disabled path
within noise of the uninstrumented loop (``bench_obs_overhead``).

Usage::

    tracer = Tracer()
    with tracer.span("legalize", cat="compile") as span:
        stats = legalize(mir, machine)
        span.set(ops_after=stats.ops_after)
    tracer.instant("regalloc.spill", cat="regalloc", victim="%t3")
"""

from __future__ import annotations

import time

from repro.obs.events import (
    CAT_WARNING,
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TRACK_COMPILE,
    Event,
)


class NullSpan:
    """Context manager that does nothing (reused singleton)."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False

    def set(self, **args) -> None:
        """Discard span arguments."""


#: The one null span every :class:`NullTracer` call returns.
NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer that records nothing; the default everywhere.

    All methods are no-ops; ``events`` is always an empty list.  Use
    the module-level :data:`NULL_TRACER` singleton rather than
    constructing new instances, so identity checks work too.
    """

    __slots__ = ()

    enabled = False

    def span(self, name: str, cat: str = "compile", **args) -> NullSpan:
        return NULL_SPAN

    def instant(self, name: str, cat: str = "compile", **args) -> None:
        pass

    def counter(self, name: str, value: float, cat: str = "compile") -> None:
        pass

    def warning(self, name: str, **args) -> None:
        pass

    def emit(self, event: Event) -> None:
        pass

    @property
    def events(self) -> list[Event]:
        return []


#: Shared do-nothing tracer (identity-comparable: ``tracer is NULL_TRACER``).
NULL_TRACER = NullTracer()


class Span:
    """An open interval on the compile timeline.

    Created by :meth:`Tracer.span`; records a :data:`PH_COMPLETE`
    event when the ``with`` block exits.  :meth:`set` attaches results
    discovered during the stage (op counts, spill counts, …) to the
    event's ``args``.
    """

    __slots__ = ("tracer", "name", "cat", "args", "depth", "_start")

    def __init__(self, tracer: "Tracer", name: str, cat: str, args: dict):
        self.tracer = tracer
        self.name = name
        self.cat = cat
        self.args = args
        self.depth = 0
        self._start = 0.0

    def __enter__(self) -> "Span":
        self.depth = len(self.tracer._stack)
        self.tracer._stack.append(self)
        self._start = self.tracer.now()
        return self

    def __exit__(self, *exc) -> bool:
        end = self.tracer.now()
        self.tracer._stack.pop()
        args = dict(self.args)
        args["depth"] = self.depth
        self.tracer.events.append(
            Event(
                name=self.name,
                cat=self.cat,
                ph=PH_COMPLETE,
                ts=self._start,
                dur=end - self._start,
                track=TRACK_COMPILE,
                args=args,
            )
        )
        return False

    def set(self, **args) -> None:
        """Attach (or overwrite) arguments on the span's event."""
        self.args.update(args)


class Tracer:
    """Collects :class:`Event` objects in memory.

    Compile-side timestamps come from ``time.perf_counter_ns`` relative
    to construction, expressed in microseconds (the Chrome trace unit).
    Simulator-side events arrive pre-stamped in cycles through
    :meth:`emit`.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: list[Event] = []
        self._origin = time.perf_counter_ns()
        self._stack: list[Span] = []

    # ------------------------------------------------------------------
    def now(self) -> float:
        """Microseconds since the tracer was created."""
        return (time.perf_counter_ns() - self._origin) / 1000.0

    def span(self, name: str, cat: str = "compile", **args) -> Span:
        """Open a span; use as a context manager."""
        return Span(self, name, cat, args)

    def instant(self, name: str, cat: str = "compile", **args) -> None:
        """Record a point event at the current time."""
        self.events.append(
            Event(name=name, cat=cat, ph=PH_INSTANT, ts=self.now(), args=args)
        )

    def counter(self, name: str, value: float, cat: str = "compile") -> None:
        """Record a sampled counter value."""
        self.events.append(
            Event(
                name=name,
                cat=cat,
                ph=PH_COUNTER,
                ts=self.now(),
                args={"value": value},
            )
        )

    def warning(self, name: str, **args) -> None:
        """Record a degradation warning (budget fallback, hazard).

        Warnings are ordinary instant events under the ``"warning"``
        category, so they survive every exporter and can be asserted
        on programmatically (e.g. by the fault campaign harness).
        """
        self.events.append(
            Event(name=name, cat=CAT_WARNING, ph=PH_INSTANT,
                  ts=self.now(), args=args)
        )

    def warnings(self) -> list[Event]:
        """All warning events recorded so far."""
        return [e for e in self.events if e.cat == CAT_WARNING]

    def emit(self, event: Event) -> None:
        """Append a pre-built event (simulator timeline, importers)."""
        self.events.append(event)
