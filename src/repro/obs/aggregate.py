"""Shard-mergeable campaign metrics (the fleet-level rollup).

Parallel campaigns (``--jobs``) and difftest sweeps produce one
profile, one cache-stats block and one classification tally *per
shard*; before this module each shard's telemetry was thrown away.
Here every counter family gets a **deterministic, associative,
commutative merge**, so any grouping of shard results folds to the
same :class:`CampaignMetrics` a serial run accumulates — merged
reports are byte-identical to serial ones, which is what lets the
``--jobs`` fan-out stay an implementation detail instead of an
observability regression.

Merge laws (property-tested in ``tests/obs/test_aggregate.py``):

* ``merge(a, b) == merge(b, a)`` (commutative),
* ``merge(a, empty) == a`` (identity),
* ``merge(merge(a, b), c) == merge(a, merge(b, c))`` (associative).

Counter families are sums; names fold into a sorted ``+``-joined set;
``entry`` takes the minimum; conflicting ``mi_text`` entries resolve
to the lexicographically smaller rendering (arbitrary but symmetric —
in practice the same address always renders the same text).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cache import CacheStats
from repro.obs.metrics import Counters
from repro.obs.timeline import SimProfile


# ----------------------------------------------------------------------
# Profile merging
# ----------------------------------------------------------------------
def _merge_names(a: str, b: str) -> str:
    """Fold two run names symmetrically (``+``-joined sorted set)."""
    parts = set(a.split("+")) | set(b.split("+"))
    parts.discard("")
    return "+".join(sorted(parts))


def merge_profiles(a: SimProfile, b: SimProfile) -> SimProfile:
    """Pure associative/commutative merge of two profiles."""
    merged = SimProfile(
        program=_merge_names(a.program, b.program),
        machine=_merge_names(a.machine, b.machine),
        entry=(
            a.entry if b.entry is None
            else b.entry if a.entry is None
            else min(a.entry, b.entry)
        ),
        exec_counts=Counters(a.exec_counts.data),
        cycle_counts=Counters(a.cycle_counts.data),
        edge_counts=Counters(a.edge_counts.data),
        field_util=Counters(a.field_util.data),
        mi_text=dict(a.mi_text),
        instructions=a.instructions + b.instructions,
        busy_cycles=a.busy_cycles + b.busy_cycles,
        trap_cycles=a.trap_cycles + b.trap_cycles,
        interrupt_cycles=a.interrupt_cycles + b.interrupt_cycles,
        polls=a.polls + b.polls,
        traps=a.traps + b.traps,
        interrupts=a.interrupts + b.interrupts,
        decodes=a.decodes + b.decodes,
    )
    merged.exec_counts.merge(b.exec_counts)
    merged.cycle_counts.merge(b.cycle_counts)
    merged.edge_counts.merge(b.edge_counts)
    merged.field_util.merge(b.field_util)
    for address, text in b.mi_text.items():
        existing = merged.mi_text.get(address)
        merged.mi_text[address] = (
            text if existing is None else min(existing, text)
        )
    return merged


def merge_cache_stats(a: CacheStats, b: CacheStats) -> CacheStats:
    """Pure field-wise sum of two compile-cache stat blocks."""
    return CacheStats(
        hits=a.hits + b.hits,
        misses=a.misses + b.misses,
        disk_hits=a.disk_hits + b.disk_hits,
        evictions=a.evictions + b.evictions,
        corrupt=a.corrupt + b.corrupt,
    )


# ----------------------------------------------------------------------
@dataclass
class CampaignMetrics:
    """One fleet-level rollup of campaign telemetry.

    Accumulated per run (serial path) or per shard (``--jobs`` path)
    and folded with :meth:`merge`; every family obeys the merge laws
    above, so the fold order never shows in the report.

    Attributes:
        runs: Simulated runs aggregated (golden + scenarios).
        profile: Merged execution profile across all runs.
        classifications: Fault-campaign outcome tallies
            (masked/recovered/sdc/detected/hang).
        difftest: Differential-testing tallies (``cases``,
            ``pairs.<axis>``, ``divergences.<axis>``).
        cache: Compile-cache probe totals.
        plan_cache: Decoded-engine plan-cache totals
            (``hits``/``misses``/``invalidations``).
        trace_cache: Traced-engine trace-cache totals (``hits``/
            ``misses``/``invalidations``/``bailouts``).
    """

    runs: int = 0
    profile: SimProfile = field(default_factory=SimProfile)
    classifications: Counters = field(default_factory=Counters)
    difftest: Counters = field(default_factory=Counters)
    cache: CacheStats = field(default_factory=CacheStats)
    plan_cache: Counters = field(default_factory=Counters)
    trace_cache: Counters = field(default_factory=Counters)

    # ------------------------------------------------------------------
    def merge(self, other: "CampaignMetrics") -> "CampaignMetrics":
        """Pure merge; the laws make any shard grouping equivalent."""
        merged = CampaignMetrics(
            runs=self.runs + other.runs,
            profile=merge_profiles(self.profile, other.profile),
            classifications=Counters(self.classifications.data),
            difftest=Counters(self.difftest.data),
            cache=merge_cache_stats(self.cache, other.cache),
            plan_cache=Counters(self.plan_cache.data),
            trace_cache=Counters(self.trace_cache.data),
        )
        merged.classifications.merge(other.classifications)
        merged.difftest.merge(other.difftest)
        merged.plan_cache.merge(other.plan_cache)
        merged.trace_cache.merge(other.trace_cache)
        return merged

    @classmethod
    def merged(cls, parts: list["CampaignMetrics"]) -> "CampaignMetrics":
        """Fold any number of shard rollups (empty list -> empty)."""
        rollup = cls()
        for part in parts:
            rollup = rollup.merge(part)
        return rollup

    # ------------------------------------------------------------------
    def add_run(
        self,
        profile: SimProfile | None = None,
        *,
        classification: str | None = None,
        plan_cache: dict | None = None,
        trace_cache: dict | None = None,
    ) -> None:
        """Accumulate one simulated run in place (serial hot path)."""
        self.runs += 1
        if profile is not None:
            self.profile = merge_profiles(self.profile, profile)
        if classification is not None:
            self.classifications.inc(classification)
        if plan_cache:
            for key, value in plan_cache.items():
                self.plan_cache.inc(key, value)
        if trace_cache:
            for key, value in trace_cache.items():
                self.trace_cache.inc(key, value)

    def add_cache(self, stats: CacheStats) -> None:
        """Fold one compile-cache stats block in place."""
        self.cache = merge_cache_stats(self.cache, stats)

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Deterministic dict form (sorted keys, no wall-clock)."""
        return {
            "runs": self.runs,
            "profile": self.profile.to_json(),
            "classifications": {
                str(k): v for k, v in sorted(self.classifications.items())
            },
            "difftest": {
                str(k): v for k, v in sorted(self.difftest.items())
            },
            "cache": self.cache.to_json(),
            "plan_cache": {
                str(k): int(v) for k, v in sorted(self.plan_cache.items())
            },
            "trace_cache": {
                str(k): int(v) for k, v in sorted(self.trace_cache.items())
            },
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CampaignMetrics":
        """Inverse of :meth:`to_json` (cache hit_rate is derived)."""
        cache = payload.get("cache", {})
        return cls(
            runs=payload.get("runs", 0),
            profile=SimProfile.from_json(payload.get("profile", {})),
            classifications=Counters(
                dict(payload.get("classifications", {}))
            ),
            difftest=Counters(dict(payload.get("difftest", {}))),
            cache=CacheStats(
                hits=cache.get("hits", 0),
                misses=cache.get("misses", 0),
                disk_hits=cache.get("disk_hits", 0),
                evictions=cache.get("evictions", 0),
                corrupt=cache.get("corrupt", 0),
            ),
            plan_cache=Counters(dict(payload.get("plan_cache", {}))),
            trace_cache=Counters(dict(payload.get("trace_cache", {}))),
        )

    def render(self) -> str:
        """Human-readable rollup summary."""
        profile = self.profile
        lines = [
            f"campaign metrics: {self.runs} runs, "
            f"{profile.instructions} MIs, "
            f"{profile.total_cycles()} cycles "
            f"({profile.traps} traps, {profile.interrupts} interrupts)",
        ]
        if self.classifications:
            tally = ", ".join(
                f"{name}={int(count)}"
                for name, count in sorted(self.classifications.items())
            )
            lines.append(f"  outcomes: {tally}")
        if self.difftest:
            tally = ", ".join(
                f"{name}={int(count)}"
                for name, count in sorted(self.difftest.items())
            )
            lines.append(f"  difftest: {tally}")
        if self.plan_cache:
            tally = ", ".join(
                f"{name}={int(count)}"
                for name, count in sorted(self.plan_cache.items())
            )
            lines.append(f"  plan cache: {tally}")
        if self.trace_cache:
            tally = ", ".join(
                f"{name}={int(count)}"
                for name, count in sorted(self.trace_cache.items())
            )
            lines.append(f"  trace cache: {tally}")
        if self.cache.probes():
            lines.append(
                f"  compile cache: {self.cache.hits} hits / "
                f"{self.cache.probes()} probes "
                f"({100.0 * self.cache.hit_rate():.1f}%)"
            )
        return "\n".join(lines)
