"""Exporters: JSON-lines, Chrome traces, Prometheus, flamegraphs.

Consumers and their formats:

* :func:`dump_jsonl` / :func:`load_jsonl` — lossless event streams for
  programmatic analysis (one ``Event.to_json`` dict per line);
* :func:`to_chrome_trace` / :func:`dump_chrome_trace` — the
  ``chrome://tracing`` / Perfetto *JSON Array Format*, with compile
  and simulator timelines on separate named threads;
* :func:`render_hotspots` / :func:`render_compile_report` — the
  human-readable tables behind the CLI's ``--stats`` flag;
* :func:`to_prometheus` — the Prometheus text exposition format, for
  scraping fleet-level :class:`~repro.obs.aggregate.CampaignMetrics`
  (and single profiles) into dashboards;
* :func:`to_collapsed_stacks` — Brendan-Gregg collapsed-stack lines
  (``frame;frame value``) that ``flamegraph.pl`` / speedscope render
  directly, with loop nesting as the stack;
* :func:`render_heat` — the annotated microcode disassembly heat
  report behind ``repro profile``.

Every profile-derived exporter is a pure function of its input, so
shard-merged and replayed profiles export byte-identically to live
serial runs.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import PH_COMPLETE, Event
from repro.obs.hotpath import HotPathAnalysis, analyze_profile
from repro.obs.metrics import stage_breakdown
from repro.obs.timeline import SimProfile

#: pid used for every toolkit event in Chrome traces.
TRACE_PID = 1


# ----------------------------------------------------------------------
# JSON-lines
def dump_jsonl(events: list[Event], path: str | Path) -> None:
    """Write one event per line (lossless round-trip format)."""
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json()) + "\n")


def load_jsonl(path: str | Path) -> list[Event]:
    """Inverse of :func:`dump_jsonl`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_json(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace-event format
def to_chrome_trace(events: list[Event]) -> dict:
    """Events as a Chrome trace-event JSON object.

    Each distinct ``track`` becomes a thread (with a ``thread_name``
    metadata record), so the wall-clock compile timeline and the
    cycle-clock simulator timeline render as separate rows.
    """
    tids: dict[str, int] = {}
    trace_events: list[dict] = []
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = len(tids) + 1
            tids[event.track] = tid
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": event.track},
            })
        record = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts,
            "pid": TRACE_PID,
            "tid": tid,
            "args": event.args,
        }
        if event.ph == PH_COMPLETE:
            record["dur"] = event.dur
        if event.ph == "i":
            record["s"] = "t"  # instant scope: thread
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def dump_chrome_trace(events: list[Event], path: str | Path) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, indent=1)


def write_trace(events: list[Event], path: str | Path) -> None:
    """Write a trace file, format chosen by extension.

    ``.jsonl`` → JSON-lines; anything else → Chrome trace JSON.
    """
    if str(path).endswith(".jsonl"):
        dump_jsonl(events, path)
    else:
        dump_chrome_trace(events, path)


# ----------------------------------------------------------------------
# Text reports
def render_hotspots(profile: SimProfile, top: int = 10) -> str:
    """The hot-spot report: top-N microinstructions by cycles.

    Includes the run totals, the ranked table and the control-word
    field utilisation — everything §3's speed claims need to be
    localised to individual microinstructions.
    """
    lines = [
        f"hot spots — {profile.program} on {profile.machine}: "
        f"{profile.instructions} MIs, {profile.busy_cycles} busy cycles"
        f" (+{profile.trap_cycles} trap, "
        f"+{profile.interrupt_cycles} interrupt)",
    ]
    spots = profile.hotspots(top)
    if spots:
        lines.append(f"{'addr':>6} {'cycles':>8} {'count':>7}  microinstruction")
        busy = profile.busy_cycles or 1
        for address, cycles, count, text in spots:
            share = 100.0 * cycles / busy
            lines.append(
                f"{address:6d} {cycles:8d} {count:7d}  {text}  ({share:.1f}%)"
            )
    if profile.field_util:
        executed = profile.instructions or 1
        pairs = ", ".join(
            f"{name} {100.0 * count / executed:.0f}%"
            for name, count in profile.field_util.top(8)
        )
        lines.append(f"field utilisation: {pairs}")
    if profile.polls or profile.traps or profile.interrupts:
        lines.append(
            f"{profile.polls} polls, {profile.traps} traps, "
            f"{profile.interrupts} interrupts serviced"
        )
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Prometheus text exposition format
def _prom_escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"')


def _prom_series(
    name: str, labels: dict, value, *, out: list[str]
) -> None:
    rendered = ",".join(
        f'{key}="{_prom_escape(str(val))}"'
        for key, val in sorted(labels.items())
    )
    out.append(f"{name}{{{rendered}}} {value}" if rendered
               else f"{name} {value}")


def to_prometheus(
    source,
    *,
    namespace: str = "repro",
    plan_cache: dict | None = None,
    trace_cache: dict | None = None,
) -> str:
    """Prometheus text format for a profile or a metrics rollup.

    ``source`` is a :class:`SimProfile` or a
    :class:`~repro.obs.aggregate.CampaignMetrics`; the rollup form
    additionally exposes classification, difftest, compile-cache,
    plan-cache and trace-cache counter families.  For a bare profile,
    ``plan_cache=`` / ``trace_cache=`` attach one run's cache
    counters (``RunResult.plan_cache`` / ``RunResult.trace_cache``) —
    a replayed profile carries none, so passing nothing keeps replay
    exports byte-identical to their original files.  Output is
    deterministically ordered (sorted labels and series), so scrapes
    of merged shard rollups are byte-identical to serial ones.
    """
    from repro.obs.aggregate import CampaignMetrics

    metrics = source if isinstance(source, CampaignMetrics) else None
    profile = metrics.profile if metrics is not None else source
    run_labels = {"program": profile.program, "machine": profile.machine}
    lines: list[str] = []

    def family(suffix: str, kind: str, help_text: str) -> str:
        name = f"{namespace}_{suffix}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        return name

    for attr, help_text in (
        ("instructions", "Microinstructions executed"),
        ("busy_cycles", "Cycles spent executing microinstructions"),
        ("trap_cycles", "Cycles charged to microtrap service"),
        ("interrupt_cycles", "Cycles charged to interrupt service"),
        ("traps", "Microtraps serviced"),
        ("interrupts", "Interrupts serviced"),
        ("polls", "poll micro-operations executed"),
        ("decodes", "Control-store words lowered to execution plans"),
    ):
        name = family(f"sim_{attr}_total", "counter", help_text)
        _prom_series(name, run_labels, getattr(profile, attr), out=lines)

    name = family("sim_address_cycles_total", "counter",
                  "Cycles spent per control-store address")
    for address, cycles in sorted(profile.cycle_counts.items()):
        _prom_series(
            name, {**run_labels, "address": address}, int(cycles), out=lines,
        )
    name = family("sim_address_executions_total", "counter",
                  "Executions per control-store address")
    for address, count in sorted(profile.exec_counts.items()):
        _prom_series(
            name, {**run_labels, "address": address}, int(count), out=lines,
        )

    if metrics is not None:
        name = family("campaign_runs_total", "counter",
                      "Simulated runs aggregated into this rollup")
        _prom_series(name, {}, metrics.runs, out=lines)
        name = family("campaign_outcomes_total", "counter",
                      "Fault-campaign outcome classifications")
        for cls, count in sorted(metrics.classifications.items()):
            _prom_series(
                name, {"classification": cls}, int(count), out=lines,
            )
        name = family("difftest_total", "counter",
                      "Differential-testing tallies")
        for key, count in sorted(metrics.difftest.items()):
            _prom_series(name, {"kind": key}, int(count), out=lines)
        name = family("plan_cache_total", "counter",
                      "Decoded-engine plan cache events")
        for key, count in sorted(metrics.plan_cache.items()):
            _prom_series(name, {"event": key}, int(count), out=lines)
        name = family("trace_cache_total", "counter",
                      "Traced-engine trace cache events")
        for key, count in sorted(metrics.trace_cache.items()):
            _prom_series(name, {"event": key}, int(count), out=lines)
        name = family("compile_cache_total", "counter",
                      "Compile cache events")
        for key, count in sorted(metrics.cache.to_json().items()):
            if key == "hit_rate":
                continue
            _prom_series(name, {"event": key}, int(count), out=lines)
    if plan_cache:
        name = family("plan_cache_total", "counter",
                      "Decoded-engine plan cache events")
        for key, count in sorted(plan_cache.items()):
            _prom_series(name, {"event": key}, int(count), out=lines)
    if trace_cache:
        name = family("trace_cache_total", "counter",
                      "Traced-engine trace cache events")
        for key, count in sorted(trace_cache.items()):
            _prom_series(name, {"event": key}, int(count), out=lines)
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Collapsed-stack flamegraph format
def to_collapsed_stacks(
    source: SimProfile | HotPathAnalysis, *, cycles: bool = True
) -> str:
    """Collapsed-stack lines (``flamegraph.pl`` / speedscope input).

    The "stack" of a microinstruction is its loop-nesting chain:
    ``program;loop@outer;loop@inner;addr:NNNN text``.  Values are
    cycles (default) or execution counts.  Lines are sorted, so equal
    profiles collapse identically byte for byte.
    """
    analysis = (
        source if isinstance(source, HotPathAnalysis)
        else analyze_profile(source)
    )
    profile = analysis.profile
    # address -> enclosing loop headers, outermost first.
    chains: dict[int, list[int]] = {}
    for loop in sorted(analysis.loops, key=lambda l: l.depth):
        for address in loop.body:
            chains.setdefault(address, []).append(loop.header)
    root = profile.program or "run"
    lines = []
    source_counts = profile.cycle_counts if cycles else profile.exec_counts
    for address, value in sorted(source_counts.items()):
        frames = [root]
        frames.extend(
            f"loop@{header:04d}" for header in chains.get(address, [])
        )
        text = profile.mi_text.get(address, "?").replace(";", ",")
        frames.append(f"{address:04d} {text}")
        lines.append(f"{';'.join(frames)} {int(value)}")
    return "\n".join(sorted(lines)) + ("\n" if lines else "")


def dump_flamegraph(source, path: str | Path) -> None:
    """Write :func:`to_collapsed_stacks` output to ``path``."""
    with open(path, "w") as handle:
        handle.write(to_collapsed_stacks(source))


# ----------------------------------------------------------------------
# Annotated disassembly heat report
def render_heat(
    source: SimProfile | HotPathAnalysis, *, bar_width: int = 24
) -> str:
    """Annotated microcode disassembly with per-address heat bars.

    One row per executed address in store order: loop-nesting marker,
    execution count, cycles, share of busy cycles and a proportional
    bar.  Deterministic for equal profiles (shard merges included).
    """
    analysis = (
        source if isinstance(source, HotPathAnalysis)
        else analyze_profile(source)
    )
    profile = analysis.profile
    depth_of = analysis.loop_addresses()
    busy = profile.busy_cycles or 1
    peak = max(
        (int(c) for _, c in profile.cycle_counts.items()), default=1
    ) or 1
    lines = [
        f"heat — {profile.program} on {profile.machine}: "
        f"{profile.instructions} MIs, {profile.busy_cycles} busy cycles",
        f"{'addr':>6} {'loop':<5} {'execs':>9} {'cycles':>9} "
        f"{'share':>6}  {'heat':<{bar_width}}  microinstruction",
    ]
    for address in sorted(profile.exec_counts.data):
        cycles = int(profile.cycle_counts.get(address))
        depth = depth_of.get(address, 0)
        marker = ("·" * depth) if depth else ""
        bar = "#" * max(
            1 if cycles else 0, round(bar_width * cycles / peak)
        )
        lines.append(
            f"{address:6d} {marker:<5} "
            f"{int(profile.exec_counts.get(address)):9d} {cycles:9d} "
            f"{100.0 * cycles / busy:5.1f}%  {bar:<{bar_width}}  "
            f"{profile.mi_text.get(address, '?')}"
        )
    return "\n".join(lines)


def render_compile_report(events: list[Event]) -> str:
    """Per-stage compile-time breakdown from a tracer's span events."""
    rows = stage_breakdown(events)
    if not rows:
        return "no compile spans recorded"
    lines = ["compile-time breakdown:"]
    for row in rows:
        extras = ", ".join(
            f"{key}={value}" for key, value in sorted(row.args.items())
            if isinstance(value, (int, float, str)) and key != "machine"
        )
        lines.append(
            f"  {'  ' * row.depth}{row.name:<{24 - 2 * row.depth}}"
            f"{row.micros / 1000.0:9.3f} ms  {100.0 * row.fraction:5.1f}%"
            + (f"  [{extras}]" if extras else "")
        )
    return "\n".join(lines)
