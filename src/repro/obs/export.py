"""Exporters: JSON-lines, Chrome trace-event JSON, text reports.

Three consumers, three formats:

* :func:`dump_jsonl` / :func:`load_jsonl` — lossless event streams for
  programmatic analysis (one ``Event.to_json`` dict per line);
* :func:`to_chrome_trace` / :func:`dump_chrome_trace` — the
  ``chrome://tracing`` / Perfetto *JSON Array Format*, with compile
  and simulator timelines on separate named threads;
* :func:`render_hotspots` / :func:`render_compile_report` — the
  human-readable tables behind the CLI's ``--stats`` flag.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.obs.events import PH_COMPLETE, Event
from repro.obs.metrics import stage_breakdown
from repro.obs.timeline import SimProfile

#: pid used for every toolkit event in Chrome traces.
TRACE_PID = 1


# ----------------------------------------------------------------------
# JSON-lines
def dump_jsonl(events: list[Event], path: str | Path) -> None:
    """Write one event per line (lossless round-trip format)."""
    with open(path, "w") as handle:
        for event in events:
            handle.write(json.dumps(event.to_json()) + "\n")


def load_jsonl(path: str | Path) -> list[Event]:
    """Inverse of :func:`dump_jsonl`."""
    events = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(Event.from_json(json.loads(line)))
    return events


# ----------------------------------------------------------------------
# Chrome trace-event format
def to_chrome_trace(events: list[Event]) -> dict:
    """Events as a Chrome trace-event JSON object.

    Each distinct ``track`` becomes a thread (with a ``thread_name``
    metadata record), so the wall-clock compile timeline and the
    cycle-clock simulator timeline render as separate rows.
    """
    tids: dict[str, int] = {}
    trace_events: list[dict] = []
    for event in events:
        tid = tids.get(event.track)
        if tid is None:
            tid = len(tids) + 1
            tids[event.track] = tid
            trace_events.append({
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": event.track},
            })
        record = {
            "name": event.name,
            "cat": event.cat,
            "ph": event.ph,
            "ts": event.ts,
            "pid": TRACE_PID,
            "tid": tid,
            "args": event.args,
        }
        if event.ph == PH_COMPLETE:
            record["dur"] = event.dur
        if event.ph == "i":
            record["s"] = "t"  # instant scope: thread
        trace_events.append(record)
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}


def dump_chrome_trace(events: list[Event], path: str | Path) -> None:
    """Write :func:`to_chrome_trace` output to ``path``."""
    with open(path, "w") as handle:
        json.dump(to_chrome_trace(events), handle, indent=1)


def write_trace(events: list[Event], path: str | Path) -> None:
    """Write a trace file, format chosen by extension.

    ``.jsonl`` → JSON-lines; anything else → Chrome trace JSON.
    """
    if str(path).endswith(".jsonl"):
        dump_jsonl(events, path)
    else:
        dump_chrome_trace(events, path)


# ----------------------------------------------------------------------
# Text reports
def render_hotspots(profile: SimProfile, top: int = 10) -> str:
    """The hot-spot report: top-N microinstructions by cycles.

    Includes the run totals, the ranked table and the control-word
    field utilisation — everything §3's speed claims need to be
    localised to individual microinstructions.
    """
    lines = [
        f"hot spots — {profile.program} on {profile.machine}: "
        f"{profile.instructions} MIs, {profile.busy_cycles} busy cycles"
        f" (+{profile.trap_cycles} trap, "
        f"+{profile.interrupt_cycles} interrupt)",
    ]
    spots = profile.hotspots(top)
    if spots:
        lines.append(f"{'addr':>6} {'cycles':>8} {'count':>7}  microinstruction")
        busy = profile.busy_cycles or 1
        for address, cycles, count, text in spots:
            share = 100.0 * cycles / busy
            lines.append(
                f"{address:6d} {cycles:8d} {count:7d}  {text}  ({share:.1f}%)"
            )
    if profile.field_util:
        executed = profile.instructions or 1
        pairs = ", ".join(
            f"{name} {100.0 * count / executed:.0f}%"
            for name, count in profile.field_util.top(8)
        )
        lines.append(f"field utilisation: {pairs}")
    if profile.polls or profile.traps or profile.interrupts:
        lines.append(
            f"{profile.polls} polls, {profile.traps} traps, "
            f"{profile.interrupts} interrupts serviced"
        )
    return "\n".join(lines)


def render_compile_report(events: list[Event]) -> str:
    """Per-stage compile-time breakdown from a tracer's span events."""
    rows = stage_breakdown(events)
    if not rows:
        return "no compile spans recorded"
    lines = ["compile-time breakdown:"]
    for row in rows:
        extras = ", ".join(
            f"{key}={value}" for key, value in sorted(row.args.items())
            if isinstance(value, (int, float, str)) and key != "machine"
        )
        lines.append(
            f"  {'  ' * row.depth}{row.name:<{24 - 2 * row.depth}}"
            f"{row.micros / 1000.0:9.3f} ms  {100.0 * row.fraction:5.1f}%"
            + (f"  [{extras}]" if extras else "")
        )
    return "\n".join(lines)
