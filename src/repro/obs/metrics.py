"""Counter primitives and derived compile-time metrics.

:class:`Counters` is the accumulation primitive both the simulator
profile (per-address cycles, control-field utilisation) and the
composition layer (conflict rejections) build on.
:func:`stage_breakdown` folds a tracer's span events into the
per-stage compile-time table the ``--stats`` flag prints.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.obs.events import PH_COMPLETE, TRACK_COMPILE, Event


class Counters:
    """A keyed tally: ``inc``/``get``/``top`` over a plain dict."""

    __slots__ = ("data",)

    def __init__(self, data: dict | None = None):
        self.data: dict = dict(data) if data else {}

    def inc(self, key, amount: float = 1) -> None:
        self.data[key] = self.data.get(key, 0) + amount

    def get(self, key, default: float = 0) -> float:
        return self.data.get(key, default)

    def items(self):
        return self.data.items()

    def total(self) -> float:
        return sum(self.data.values())

    def top(self, n: int) -> list[tuple]:
        """The ``n`` largest entries as (key, value), descending."""
        ranked = sorted(self.data.items(), key=lambda kv: (-kv[1], str(kv[0])))
        return ranked[:n]

    def merge(self, other: "Counters") -> None:
        for key, value in other.items():
            self.inc(key, value)

    def as_dict(self) -> dict:
        return dict(self.data)

    def __eq__(self, other) -> bool:
        """Value equality (the merge laws are stated over it)."""
        if isinstance(other, Counters):
            return self.data == other.data
        return NotImplemented

    __hash__ = None  # mutable; never a dict key

    def __len__(self) -> int:
        return len(self.data)

    def __bool__(self) -> bool:
        return bool(self.data)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Counters({self.data!r})"


@dataclass
class StageStat:
    """One row of the per-stage compile-time breakdown."""

    name: str
    micros: float
    fraction: float
    depth: int
    args: dict


def stage_breakdown(
    events: list[Event], cat_prefix: str = ""
) -> list[StageStat]:
    """Per-stage timing rows from span events, in recorded order.

    Only compile-track spans count (simulator events live on their own
    cycle-stamped track).  Spans are re-ordered by start time (a tracer
    appends them at *exit*, so nested spans precede their parents in
    ``events``) and fractions are computed against the outermost span's
    duration.  ``cat_prefix`` filters by category (``""`` keeps
    everything).
    """
    spans = [
        e
        for e in events
        if e.ph == PH_COMPLETE
        and e.track == TRACK_COMPILE
        and e.cat.startswith(cat_prefix)
    ]
    spans.sort(key=lambda e: (e.ts, -e.dur))
    if not spans:
        return []
    total = max((e.dur for e in spans if e.args.get("depth", 0) == 0),
                default=0.0) or max(e.dur for e in spans)
    rows = []
    for event in spans:
        rows.append(
            StageStat(
                name=event.name,
                micros=event.dur,
                fraction=event.dur / total if total else 0.0,
                depth=int(event.args.get("depth", 0)),
                args={k: v for k, v in event.args.items() if k != "depth"},
            )
        )
    return rows
