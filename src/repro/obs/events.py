"""Structured observability events (survey substrate S15).

Every measurement the toolkit takes — a compile stage finishing, a
microinstruction executing, a conflict-model rejection — is one
:class:`Event`.  The schema deliberately mirrors the Chrome trace-event
format (``ph``/``ts``/``dur``/``args``) so exporting to
``chrome://tracing`` / Perfetto is a field-for-field mapping, while the
JSON-lines exporter round-trips events losslessly for programmatic
analysis.

Two clocks coexist:

* **compile events** are stamped in wall-clock *microseconds* relative
  to the tracer's construction;
* **simulator events** are stamped in *cycles* of simulated time.

Events carry a ``track`` ("compile", "sim", …) so the two timelines
land on separate rows of a trace viewer instead of overlaying.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Chrome trace-event phase codes used by the toolkit.
PH_COMPLETE = "X"  #: a span with a duration
PH_INSTANT = "i"   #: a point-in-time marker
PH_COUNTER = "C"   #: a sampled counter value

#: Track names (rendered as thread rows in Chrome traces).
TRACK_COMPILE = "compile"
TRACK_SIM = "sim"
TRACK_FAULTS = "faults"

#: Category carried by warning events (budget exhaustion, restart
#: hazards, fault firings); filter traces on it to audit degradations.
CAT_WARNING = "warning"


@dataclass
class Event:
    """One observability event.

    Attributes:
        name: What happened, e.g. ``"parse"`` or ``"mi@0012"``.
        cat: Subsystem category (``"compile"``, ``"compose"``,
            ``"regalloc"``, ``"sim"``), used for filtering.
        ph: Chrome phase code (:data:`PH_COMPLETE`, :data:`PH_INSTANT`,
            :data:`PH_COUNTER`).
        ts: Timestamp — microseconds for compile-side events, cycles
            for simulator events.
        dur: Duration in the same unit as ``ts`` (spans only).
        track: Logical timeline the event belongs to.
        args: Free-form payload (always JSON-serialisable).
    """

    name: str
    cat: str = "compile"
    ph: str = PH_INSTANT
    ts: float = 0.0
    dur: float = 0.0
    track: str = TRACK_COMPILE
    args: dict = field(default_factory=dict)

    def to_json(self) -> dict:
        """Plain-dict form for the JSON-lines exporter."""
        record: dict = {
            "name": self.name,
            "cat": self.cat,
            "ph": self.ph,
            "ts": self.ts,
            "track": self.track,
        }
        if self.ph == PH_COMPLETE:
            record["dur"] = self.dur
        if self.args:
            record["args"] = self.args
        return record

    @classmethod
    def from_json(cls, record: dict) -> "Event":
        """Inverse of :meth:`to_json`."""
        return cls(
            name=record["name"],
            cat=record.get("cat", "compile"),
            ph=record.get("ph", PH_INSTANT),
            ts=record.get("ts", 0.0),
            dur=record.get("dur", 0.0),
            track=record.get("track", TRACK_COMPILE),
            args=record.get("args", {}),
        )
