"""Observability layer (survey substrate S15).

The shared measurement substrate behind every quantity the survey
compares — cycles, microinstruction counts, compaction ratios, trap
and interrupt latencies.  Three pieces:

* a **pipeline tracer** (:class:`Tracer` / :data:`NULL_TRACER`)
  threaded through every compiler stage and composition algorithm;
* **simulator instrumentation** (:class:`TraceRecorder`,
  :class:`SimProfile`) with per-address execution counts and
  control-store field utilisation;
* **exporters** for JSON-lines, Chrome ``chrome://tracing`` format
  and human-readable hot-spot / compile-time reports.

Everything defaults off: the :data:`NULL_TRACER` singleton and a
``recorder=None`` simulator cost one attribute test per call site.
"""

from repro.obs.aggregate import (
    CampaignMetrics,
    merge_cache_stats,
    merge_profiles,
)
from repro.obs.events import (
    CAT_WARNING,
    PH_COMPLETE,
    PH_COUNTER,
    PH_INSTANT,
    TRACK_COMPILE,
    TRACK_FAULTS,
    TRACK_SIM,
    Event,
)
from repro.obs.export import (
    dump_chrome_trace,
    dump_flamegraph,
    dump_jsonl,
    load_jsonl,
    render_compile_report,
    render_heat,
    render_hotspots,
    to_chrome_trace,
    to_collapsed_stacks,
    to_prometheus,
    write_trace,
)
from repro.obs.hotpath import (
    BasicBlock,
    HotPathAnalysis,
    HotTrace,
    Loop,
    analyze_profile,
    render_hot_traces,
)
from repro.obs.metrics import Counters, StageStat, stage_breakdown
from repro.obs.timeline import SimProfile, TraceRecorder
from repro.obs.tracer import NULL_TRACER, NullTracer, Span, Tracer

__all__ = [
    "BasicBlock",
    "CAT_WARNING",
    "CampaignMetrics",
    "Counters",
    "Event",
    "HotPathAnalysis",
    "HotTrace",
    "Loop",
    "NULL_TRACER",
    "NullTracer",
    "PH_COMPLETE",
    "PH_COUNTER",
    "PH_INSTANT",
    "SimProfile",
    "Span",
    "StageStat",
    "TRACK_COMPILE",
    "TRACK_FAULTS",
    "TRACK_SIM",
    "TraceRecorder",
    "Tracer",
    "analyze_profile",
    "dump_chrome_trace",
    "dump_flamegraph",
    "dump_jsonl",
    "load_jsonl",
    "merge_cache_stats",
    "merge_profiles",
    "render_compile_report",
    "render_heat",
    "render_hot_traces",
    "render_hotspots",
    "stage_breakdown",
    "to_chrome_trace",
    "to_collapsed_stacks",
    "to_prometheus",
    "write_trace",
]
