"""Cycle-level simulator instrumentation: recorder hook and profile.

The simulator calls a :class:`TraceRecorder` (when one is attached)
once per executed microinstruction and once per trap / serviced
interrupt.  The recorder accumulates a :class:`SimProfile` — the
per-address execution and cycle counts plus control-store field
utilisation that the hot-spot report ranks — and, when built with a
recording tracer, emits one cycle-stamped timeline event per
occurrence.

All bookkeeping happens *outside* the simulator's cycle arithmetic:
attaching a recorder never changes the simulated cycle counts, and a
detached simulator pays only an ``is not None`` test per loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.obs.events import PH_COMPLETE, PH_INSTANT, TRACK_SIM, Event
from repro.obs.metrics import Counters
from repro.obs.tracer import NULL_TRACER


@dataclass
class SimProfile:
    """Aggregated execution statistics of one (or more) simulated runs.

    Attributes:
        program: Name of the last program run under this profile.
        machine: Machine the runs executed on.
        entry: Absolute address of the first microinstruction executed
            (the CFG root the hot-path analyzer walks from); None until
            a run records one.
        exec_counts: Absolute control-store address -> times executed.
        cycle_counts: Absolute address -> cycles spent at that address.
        edge_counts: Dynamic control-flow edge ``(from, to)`` -> times
            taken between consecutively executed microinstructions.
            Trap restarts break the chain (the restart is not a
            sequenced edge), so the graph is exactly what the
            terminators produced.
        field_util: Control-word field name -> number of executed
            microinstructions that drive the field (utilisation of the
            horizontal word, per §2.1.4's encoding discussion).
        mi_text: Address -> human-readable microinstruction, for
            reports.
        instructions: Total microinstructions executed.
        busy_cycles: Cycles spent executing microinstructions.
        trap_cycles: Cycles charged to microtrap service routines.
        interrupt_cycles: Cycles charged to interrupt service.
        polls: Times a ``poll`` micro-operation was executed.
        traps: Microtraps serviced.
        interrupts: Interrupts serviced.
        decodes: Control-store words lowered to execution plans by the
            pre-decoded engine (plan-cache misses; re-decodes after a
            fault injector mutates a word count again).
    """

    program: str = ""
    machine: str = ""
    entry: int | None = None
    exec_counts: Counters = field(default_factory=Counters)
    cycle_counts: Counters = field(default_factory=Counters)
    edge_counts: Counters = field(default_factory=Counters)
    field_util: Counters = field(default_factory=Counters)
    mi_text: dict[int, str] = field(default_factory=dict)
    instructions: int = 0
    busy_cycles: int = 0
    trap_cycles: int = 0
    interrupt_cycles: int = 0
    polls: int = 0
    traps: int = 0
    interrupts: int = 0
    decodes: int = 0

    def hotspots(self, top: int = 10) -> list[tuple[int, int, int, str]]:
        """Top addresses by cycles: (address, cycles, count, text).

        Deterministically ordered: cycles descending, then address
        ascending — equal-cycle addresses cannot reorder across runs
        or shard merges.
        """
        ranked = sorted(
            self.cycle_counts.data.items(), key=lambda kv: (-kv[1], kv[0])
        )
        return [
            (address, int(cycles), int(self.exec_counts.get(address)),
             self.mi_text.get(address, "?"))
            for address, cycles in ranked[:top]
        ]

    def total_cycles(self) -> int:
        return self.busy_cycles + self.trap_cycles + self.interrupt_cycles

    # ------------------------------------------------------------------
    def to_json(self) -> dict:
        """Deterministic, replayable dict form (sorted keys throughout).

        Address keys are rendered as decimal strings (JSON object keys
        must be strings) and edges as ``"from->to"``;
        :meth:`from_json` inverts both.
        """
        return {
            "program": self.program,
            "machine": self.machine,
            "entry": self.entry,
            "exec_counts": {
                str(a): int(c) for a, c in sorted(self.exec_counts.items())
            },
            "cycle_counts": {
                str(a): int(c) for a, c in sorted(self.cycle_counts.items())
            },
            "edge_counts": {
                f"{a}->{b}": int(c)
                for (a, b), c in sorted(self.edge_counts.items())
            },
            "field_util": {
                name: int(c) for name, c in sorted(self.field_util.items())
            },
            "mi_text": {str(a): t for a, t in sorted(self.mi_text.items())},
            "instructions": self.instructions,
            "busy_cycles": self.busy_cycles,
            "trap_cycles": self.trap_cycles,
            "interrupt_cycles": self.interrupt_cycles,
            "polls": self.polls,
            "traps": self.traps,
            "interrupts": self.interrupts,
            "decodes": self.decodes,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "SimProfile":
        """Inverse of :meth:`to_json`."""
        def edge(key: str) -> tuple[int, int]:
            a, _, b = key.partition("->")
            return (int(a), int(b))

        return cls(
            program=payload.get("program", ""),
            machine=payload.get("machine", ""),
            entry=payload.get("entry"),
            exec_counts=Counters(
                {int(a): c for a, c in payload.get("exec_counts", {}).items()}
            ),
            cycle_counts=Counters(
                {int(a): c for a, c in payload.get("cycle_counts", {}).items()}
            ),
            edge_counts=Counters(
                {edge(k): c for k, c in payload.get("edge_counts", {}).items()}
            ),
            field_util=Counters(dict(payload.get("field_util", {}))),
            mi_text={
                int(a): t for a, t in payload.get("mi_text", {}).items()
            },
            instructions=payload.get("instructions", 0),
            busy_cycles=payload.get("busy_cycles", 0),
            trap_cycles=payload.get("trap_cycles", 0),
            interrupt_cycles=payload.get("interrupt_cycles", 0),
            polls=payload.get("polls", 0),
            traps=payload.get("traps", 0),
            interrupts=payload.get("interrupts", 0),
            decodes=payload.get("decodes", 0),
        )


class TraceRecorder:
    """The simulator's observability hook.

    Attach one via ``Simulator(..., recorder=TraceRecorder(tracer))``.
    With the default :data:`NULL_TRACER` only the profile is kept
    (cheap counters, no event list); with a recording tracer every
    microinstruction becomes a cycle-stamped span on the ``sim`` track.
    """

    def __init__(self, tracer=NULL_TRACER, *, profile: SimProfile | None = None):
        self.tracer = tracer
        self.profile = profile if profile is not None else SimProfile()
        #: address -> (text, field names, has_poll) — computed once.
        self._word_info: dict[int, tuple[str, tuple[str, ...], bool]] = {}
        #: previously executed address (dynamic-edge tracking); None at
        #: run entry and after a trap restart.
        self._last_address: int | None = None

    # ------------------------------------------------------------------
    def _info(self, address: int, loaded) -> tuple[str, tuple[str, ...], bool]:
        info = self._word_info.get(address)
        if info is None:
            instruction = loaded.instruction
            text = str(instruction)
            fields = tuple(loaded.settings)
            has_poll = any(p.op.op == "poll" for p in instruction.placed)
            info = (text, fields, has_poll)
            self._word_info[address] = info
            self.profile.mi_text[address] = text
        return info

    # ------------------------------------------------------------------
    def begin_run(self, program: str, machine: str, cycle: int) -> None:
        self.profile.program = program
        self.profile.machine = machine
        self._last_address = None
        if self.tracer.enabled:
            self.tracer.emit(
                Event(name=f"run {program}", cat="sim", ph=PH_INSTANT,
                      ts=cycle, track=TRACK_SIM,
                      args={"machine": machine})
            )

    def record_mi(self, address: int, loaded, cycle: int, mi_cycles: int) -> None:
        """One microinstruction executed at ``address`` for ``mi_cycles``."""
        profile = self.profile
        text, fields, has_poll = self._info(address, loaded)
        profile.exec_counts.inc(address)
        profile.cycle_counts.inc(address, mi_cycles)
        if profile.entry is None:
            profile.entry = address
        if self._last_address is not None:
            profile.edge_counts.inc((self._last_address, address))
        self._last_address = address
        profile.instructions += 1
        profile.busy_cycles += mi_cycles
        for name in fields:
            profile.field_util.inc(name)
        if has_poll:
            profile.polls += 1
        if self.tracer.enabled:
            self.tracer.emit(
                Event(name=f"mi@{address:04d}", cat="sim", ph=PH_COMPLETE,
                      ts=cycle, dur=mi_cycles, track=TRACK_SIM,
                      args={"mi": text})
            )

    def record_decode(self, address: int, cycle: int) -> None:
        """The decoded engine lowered the word at ``address`` to a plan."""
        self.profile.decodes += 1
        if self.tracer.enabled:
            self.tracer.emit(
                Event(name="sim.decode", cat="sim", ph=PH_INSTANT,
                      ts=cycle, track=TRACK_SIM, args={"at": address})
            )

    def record_trap(self, trap, address: int, cycle: int,
                    service_cycles: int) -> None:
        """A microtrap aborted the microprogram at ``address``."""
        self.profile.traps += 1
        self.profile.trap_cycles += service_cycles
        # The §2.1.5 restart is not a sequenced edge; break the chain
        # so the CFG only contains terminator-produced transitions.
        self._last_address = None
        if self.tracer.enabled:
            self.tracer.emit(
                Event(name=f"trap {type(trap).__name__}", cat="sim",
                      ph=PH_COMPLETE, ts=cycle, dur=service_cycles,
                      track=TRACK_SIM,
                      args={"at": address, "detail": str(trap)})
            )

    def record_interrupt(self, cycle: int, wait_cycles: int,
                         service_cycles: int) -> None:
        """A pending interrupt was serviced at a ``poll``."""
        self.profile.interrupts += 1
        self.profile.interrupt_cycles += service_cycles
        if self.tracer.enabled:
            self.tracer.emit(
                Event(name="interrupt", cat="sim", ph=PH_COMPLETE,
                      ts=cycle, dur=service_cycles, track=TRACK_SIM,
                      args={"wait_cycles": wait_cycles})
            )
