"""Parser for assertion expressions.

Used by S* programs' ``assert``/``pre:``/``post:``/``invariant:``
annotations.  Precedence, loosest first: ``implies`` < ``or`` < ``and``
< ``not`` < comparison < ``| ^`` < ``&`` < ``+ -`` < ``<< >>`` < ``*``
< unary ``- ~``.
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import Lexer, LexerSpec, TokenStream
from repro.verify.expr import (
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    Not,
    UnOp,
    Var,
)

_SPEC = LexerSpec(
    patterns=[
        (None, r"\s+"),
        ("NUMBER", r"0x[0-9a-fA-F]+|0b[01]+|[0-9]+"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_$.]*"),
        ("SHL", r"<<"), ("SHR", r">>"),
        ("LE", r"<="), ("GE", r">="),
        ("NEQ", r"#|!="), ("EQUALS", r"="),
        ("LT", r"<"), ("GT", r">"),
        ("PLUS", r"\+"), ("MINUS", r"-"), ("STAR", r"\*"),
        ("AMP", r"&"), ("PIPE", r"\|"), ("CARET", r"\^"),
        ("TILDE", r"~"),
        ("LPAREN", r"\("), ("RPAREN", r"\)"),
    ],
    keywords={"and", "or", "not", "implies", "true", "false"},
    keywords_case_insensitive=True,
)

_LEXER = Lexer(_SPEC)


def parse_assertion(text: str) -> Expr:
    """Parse an assertion string into an :class:`Expr`."""
    tokens = _LEXER.tokenize(text)
    expr = _implies(tokens)
    if not tokens.at_end():
        raise ParseError(
            f"trailing input in assertion: {tokens.current.value!r}",
            tokens.current.line,
            tokens.current.column,
        )
    return expr


def _implies(tokens: TokenStream) -> Expr:
    left = _or(tokens)
    if tokens.accept("IMPLIES"):
        return BoolOp("implies", left, _implies(tokens))  # right associative
    return left


def _or(tokens: TokenStream) -> Expr:
    left = _and(tokens)
    while tokens.accept("OR"):
        left = BoolOp("or", left, _and(tokens))
    return left


def _and(tokens: TokenStream) -> Expr:
    left = _not(tokens)
    while tokens.accept("AND"):
        left = BoolOp("and", left, _not(tokens))
    return left


def _not(tokens: TokenStream) -> Expr:
    if tokens.accept("NOT"):
        return Not(_not(tokens))
    return _comparison(tokens)


_RELOPS = {"EQUALS": "=", "NEQ": "#", "LT": "<", "LE": "<=", "GT": ">", "GE": ">="}


def _comparison(tokens: TokenStream) -> Expr:
    left = _bitor(tokens)
    if tokens.current.type in _RELOPS:
        op = _RELOPS[tokens.advance().type]
        return Compare(op, left, _bitor(tokens))
    return left


def _bitor(tokens: TokenStream) -> Expr:
    left = _bitand(tokens)
    while tokens.at("PIPE", "CARET"):
        op = "|" if tokens.advance().type == "PIPE" else "^"
        left = BinOp(op, left, _bitand(tokens))
    return left


def _bitand(tokens: TokenStream) -> Expr:
    left = _additive(tokens)
    while tokens.accept("AMP"):
        left = BinOp("&", left, _additive(tokens))
    return left


def _additive(tokens: TokenStream) -> Expr:
    left = _shift(tokens)
    while tokens.at("PLUS", "MINUS"):
        op = "+" if tokens.advance().type == "PLUS" else "-"
        left = BinOp(op, left, _shift(tokens))
    return left


def _shift(tokens: TokenStream) -> Expr:
    left = _multiplicative(tokens)
    while tokens.at("SHL", "SHR"):
        op = "<<" if tokens.advance().type == "SHL" else ">>"
        left = BinOp(op, left, _multiplicative(tokens))
    return left


def _multiplicative(tokens: TokenStream) -> Expr:
    left = _unary(tokens)
    while tokens.accept("STAR"):
        left = BinOp("*", left, _unary(tokens))
    return left


def _unary(tokens: TokenStream) -> Expr:
    if tokens.accept("MINUS"):
        return UnOp("-", _unary(tokens))
    if tokens.accept("TILDE"):
        return UnOp("~", _unary(tokens))
    return _primary(tokens)


def _primary(tokens: TokenStream) -> Expr:
    if tokens.accept("LPAREN"):
        inner = _implies(tokens)
        tokens.expect("RPAREN")
        return inner
    if tokens.at("NUMBER"):
        return Const(int(tokens.advance().value, 0))
    if tokens.accept("TRUE"):
        return Const(1)
    if tokens.accept("FALSE"):
        return Const(0)
    return Var(tokens.expect("IDENT").value)
