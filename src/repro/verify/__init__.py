"""Verification subsystem (survey substrate S12): S*/Strum-style
pre-/postcondition proofs over microprograms, with a bounded checker.
"""

from repro.verify.checker import BoundedChecker, CheckResult, VerificationReport
from repro.verify.expr import (
    TRUE,
    BinOp,
    BoolOp,
    Compare,
    Const,
    Expr,
    Not,
    UnOp,
    Var,
    conj,
    implies,
)
from repro.verify.hoare import (
    VAssert,
    VAssign,
    VIf,
    VParallel,
    VSeq,
    VStmt,
    VWhile,
    VerificationCondition,
    generate_vcs,
    weakest_precondition,
)
from repro.verify.parser import parse_assertion

__all__ = [
    "BinOp",
    "BoolOp",
    "BoundedChecker",
    "CheckResult",
    "Compare",
    "Const",
    "Expr",
    "Not",
    "TRUE",
    "UnOp",
    "VAssert",
    "VAssign",
    "VIf",
    "VParallel",
    "VSeq",
    "VStmt",
    "VWhile",
    "Var",
    "VerificationCondition",
    "VerificationReport",
    "conj",
    "generate_vcs",
    "implies",
    "parse_assertion",
    "weakest_precondition",
]
