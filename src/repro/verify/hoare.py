"""Weakest-precondition calculus over verification statements.

The S*/Strum verification model (survey §2.2.3, §2.2.5): programs are
developed together with pre-/postconditions, and an automatic verifier
checks the resulting verification conditions.  This module generates
the VCs; ``repro.verify.checker`` discharges them.

The statement language is deliberately the *verification view* of S*
programs: single-operator assignments, sequences, parallel assignment
(``cobegin`` — simultaneous substitution, which is exactly what makes
``cobegin x := y; y := x coend`` a swap), conditionals, and loops with
invariants.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import VerificationError
from repro.verify.expr import Expr, Not, TRUE, conj, implies


@dataclass(frozen=True)
class VAssign:
    """``target := expr`` at the verification level."""

    target: str
    expr: Expr


@dataclass(frozen=True)
class VParallel:
    """``cobegin a1; …; an coend`` — simultaneous assignments."""

    assigns: tuple[VAssign, ...]

    def __post_init__(self) -> None:
        targets = [a.target for a in self.assigns]
        if len(set(targets)) != len(targets):
            raise VerificationError(
                f"parallel assignment writes a target twice: {targets}"
            )


@dataclass(frozen=True)
class VSeq:
    body: tuple["VStmt", ...]


@dataclass(frozen=True)
class VIf:
    """Cascaded conditional (S*'s if-elif-fi)."""

    arms: tuple[tuple[Expr, "VStmt"], ...]
    otherwise: "VStmt | None" = None


@dataclass(frozen=True)
class VWhile:
    """``while t do S`` with a loop invariant."""

    condition: Expr
    invariant: Expr
    body: "VStmt" = None  # type: ignore[assignment]


@dataclass(frozen=True)
class VAssert:
    condition: Expr


VStmt = VAssign | VParallel | VSeq | VIf | VWhile | VAssert


@dataclass
class VerificationCondition:
    """One proof obligation: ``hypothesis implies goal``."""

    description: str
    formula: Expr

    def __str__(self) -> str:
        return f"{self.description}: {self.formula}"


def weakest_precondition(
    statement: VStmt,
    post: Expr,
    conditions: list[VerificationCondition],
    context: str = "",
) -> Expr:
    """wp(statement, post); side obligations are appended.

    Loops contribute their invariant-preservation and exit obligations
    to ``conditions`` and return the invariant as their precondition
    (the classical total-correctness-less treatment; termination is
    out of scope, as it was for Strum's verifier).
    """
    if isinstance(statement, VAssign):
        return post.substitute({statement.target: statement.expr})
    if isinstance(statement, VParallel):
        mapping = {a.target: a.expr for a in statement.assigns}
        return post.substitute(mapping)
    if isinstance(statement, VSeq):
        current = post
        for child in reversed(statement.body):
            current = weakest_precondition(child, current, conditions, context)
        return current
    if isinstance(statement, VIf):
        # wp(if t1 S1 elif t2 S2 ... else Sn fi, Q) =
        #   (t1 -> wp(S1,Q)) and (!t1 and t2 -> wp(S2,Q)) and ...
        terms = []
        negations: list[Expr] = []
        for test, body in statement.arms:
            body_wp = weakest_precondition(body, post, conditions, context)
            guard = conj(*negations, test)
            terms.append(implies(guard, body_wp))
            negations.append(Not(test))
        fallthrough = (
            weakest_precondition(statement.otherwise, post, conditions, context)
            if statement.otherwise is not None
            else post
        )
        terms.append(implies(conj(*negations), fallthrough))
        return conj(*terms)
    if isinstance(statement, VWhile):
        invariant = statement.invariant
        body_wp = weakest_precondition(
            statement.body, invariant, conditions, context
        )
        conditions.append(
            VerificationCondition(
                f"{context}loop invariant preserved",
                implies(conj(invariant, statement.condition), body_wp),
            )
        )
        conditions.append(
            VerificationCondition(
                f"{context}loop exit establishes postcondition",
                implies(conj(invariant, Not(statement.condition)), post),
            )
        )
        return invariant
    if isinstance(statement, VAssert):
        # {P} assert C {Q}: P must imply C, and C may strengthen Q's proof.
        return conj(statement.condition, post)
    raise VerificationError(f"unknown statement {statement!r}")


def generate_vcs(
    pre: Expr,
    statement: VStmt,
    post: Expr,
    context: str = "",
) -> list[VerificationCondition]:
    """All proof obligations for the Hoare triple {pre} S {post}."""
    conditions: list[VerificationCondition] = []
    precondition = weakest_precondition(statement, post, conditions, context)
    conditions.insert(
        0,
        VerificationCondition(
            f"{context}precondition establishes wp", implies(pre, precondition)
        ),
    )
    return conditions
