"""Bounded checker for verification conditions.

An honest stand-in for Strum's "automatic verifier" (survey §2.2.5):
a VC is checked by exhaustive evaluation over all variable assignments
at a reduced bit width (bitvector identities of the kind microcode
proofs need are typically width-independent), plus corner cases and
random probes at full width.  A failure is a *real* counterexample; a
pass is a bounded guarantee, and the result says which.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from repro.verify.expr import Expr
from repro.verify.hoare import VerificationCondition

#: Hard cap on exhaustive evaluations per VC.
EXHAUSTIVE_BUDGET = 1 << 16


@dataclass
class CheckResult:
    """Outcome of checking one verification condition."""

    condition: VerificationCondition
    passed: bool
    exhaustive_width: int | None = None
    counterexample: dict[str, int] | None = None
    probes: int = 0

    def __str__(self) -> str:
        if self.passed:
            kind = (
                f"exhaustive at {self.exhaustive_width} bits"
                if self.exhaustive_width
                else "sampled"
            )
            return f"PASS ({kind}, {self.probes} evaluations): {self.condition.description}"
        return (
            f"FAIL: {self.condition.description} "
            f"counterexample {self.counterexample}"
        )


@dataclass
class BoundedChecker:
    """Checks VCs by exhaustive small-width + sampled full-width runs.

    Attributes:
        width: Full (machine) width for sampled checks.
        small_width: Width for the exhaustive pass (auto-reduced until
            the variable grid fits the budget).
        samples: Random probes at full width.
        seed: RNG seed (results are deterministic).
    """

    width: int = 16
    small_width: int = 4
    samples: int = 200
    seed: int = 20250701

    def check(self, condition: VerificationCondition) -> CheckResult:
        variables = sorted(condition.formula.variables())
        probes = 0

        # Exhaustive pass at a width small enough to fit the budget.
        exhaustive_width: int | None = None
        if variables:
            width = self.small_width
            while width > 1 and (1 << (width * len(variables))) > EXHAUSTIVE_BUDGET:
                width -= 1
            if (1 << (width * len(variables))) <= EXHAUSTIVE_BUDGET:
                exhaustive_width = width
                space = [range(1 << width)] * len(variables)
                for values in itertools.product(*space):
                    env = dict(zip(variables, values))
                    probes += 1
                    if not condition.formula.evaluate(env, width):
                        # Reduced-width failures can be artifacts of
                        # width-dependent constants (e.g. a shift by
                        # 12 evaluated at 4 bits); only a counter-
                        # example confirmed at full width counts.
                        probes += 1
                        if not condition.formula.evaluate(env, self.width):
                            return CheckResult(
                                condition, False,
                                counterexample=env, probes=probes,
                            )
        else:
            probes += 1
            if not condition.formula.evaluate({}, self.width):
                return CheckResult(condition, False, counterexample={}, probes=probes)

        # Corner cases and random probes at full width.
        mask = (1 << self.width) - 1
        corners = [0, 1, 2, mask, mask - 1, mask >> 1, (mask >> 1) + 1]
        rng = random.Random(self.seed)
        probe_sets: list[dict[str, int]] = []
        for corner in corners:
            probe_sets.append({name: corner for name in variables})
        for _ in range(self.samples):
            probe_sets.append(
                {name: rng.randint(0, mask) for name in variables}
            )
        for env in probe_sets:
            probes += 1
            if not condition.formula.evaluate(env, self.width):
                return CheckResult(
                    condition, False, counterexample=env, probes=probes
                )
        return CheckResult(
            condition, True, exhaustive_width=exhaustive_width, probes=probes
        )

    def check_all(
        self, conditions: list[VerificationCondition]
    ) -> list[CheckResult]:
        return [self.check(condition) for condition in conditions]


@dataclass
class VerificationReport:
    """Aggregated outcome over a program's proof obligations."""

    results: list[CheckResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(result.passed for result in self.results)

    @property
    def failures(self) -> list[CheckResult]:
        return [result for result in self.results if not result.passed]

    def __str__(self) -> str:
        lines = [
            f"{len(self.results)} verification conditions, "
            f"{len(self.failures)} failed"
        ]
        lines.extend(str(result) for result in self.results)
        return "\n".join(lines)
