"""Bitvector expression language for verification conditions.

The assertion language of the S*/Strum verification subsystem (survey
§2.2.3, §2.2.5): fixed-width bitvector terms with arithmetic, logic
and shifts, plus boolean connectives for conditions.  Widths matter —
the survey's own example is the S* increment rule, whose instantiation
must account for overflow at 16 bits.

Expressions are immutable; ``evaluate`` interprets them against an
environment, ``substitute`` implements the assignment rule of the
weakest-precondition calculus, and ``variables`` feeds the bounded
checker.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import VerificationError


class Expr:
    """Base class for bitvector/boolean expressions."""

    def evaluate(self, env: dict[str, int], width: int) -> int:
        raise NotImplementedError

    def substitute(self, mapping: dict[str, "Expr"]) -> "Expr":
        raise NotImplementedError

    def variables(self) -> set[str]:
        raise NotImplementedError


def _mask(width: int) -> int:
    return (1 << width) - 1


@dataclass(frozen=True)
class Var(Expr):
    """A program variable (bitvector at the ambient width)."""

    name: str

    def evaluate(self, env: dict[str, int], width: int) -> int:
        try:
            return env[self.name] & _mask(width)
        except KeyError:
            raise VerificationError(f"unbound variable {self.name!r}") from None

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return mapping.get(self.name, self)

    def variables(self) -> set[str]:
        return {self.name}

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const(Expr):
    value: int

    def evaluate(self, env: dict[str, int], width: int) -> int:
        return self.value & _mask(width)

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return self

    def variables(self) -> set[str]:
        return set()

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class BinOp(Expr):
    """Bitvector binary operation (wraps at the ambient width)."""

    op: str  # + - * & | ^ << >>
    left: Expr
    right: Expr

    def evaluate(self, env: dict[str, int], width: int) -> int:
        a = self.left.evaluate(env, width)
        b = self.right.evaluate(env, width)
        mask = _mask(width)
        if self.op == "+":
            return (a + b) & mask
        if self.op == "-":
            return (a - b) & mask
        if self.op == "*":
            return (a * b) & mask
        if self.op == "&":
            return a & b
        if self.op == "|":
            return a | b
        if self.op == "^":
            return a ^ b
        if self.op == "<<":
            return (a << b) & mask if b < width else 0
        if self.op == ">>":
            return a >> b if b < width else 0
        raise VerificationError(f"unknown operator {self.op!r}")

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return BinOp(self.op, self.left.substitute(mapping),
                     self.right.substitute(mapping))

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class UnOp(Expr):
    """Bitvector unary operation."""

    op: str  # ~ (complement) | - (negate)
    operand: Expr

    def evaluate(self, env: dict[str, int], width: int) -> int:
        value = self.operand.evaluate(env, width)
        mask = _mask(width)
        return (~value) & mask if self.op == "~" else (-value) & mask

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return UnOp(self.op, self.operand.substitute(mapping))

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"{self.op}{self.operand}"


@dataclass(frozen=True)
class Compare(Expr):
    """Comparison yielding a boolean (0/1)."""

    op: str  # = # < <= > >=
    left: Expr
    right: Expr

    def evaluate(self, env: dict[str, int], width: int) -> int:
        a = self.left.evaluate(env, width)
        b = self.right.evaluate(env, width)
        result = {
            "=": a == b, "#": a != b, "<": a < b,
            "<=": a <= b, ">": a > b, ">=": a >= b,
        }[self.op]
        return int(result)

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return Compare(self.op, self.left.substitute(mapping),
                       self.right.substitute(mapping))

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    """Boolean connective over conditions."""

    op: str  # and | or | implies
    left: Expr
    right: Expr

    def evaluate(self, env: dict[str, int], width: int) -> int:
        a = bool(self.left.evaluate(env, width))
        if self.op == "and":
            return int(a and bool(self.right.evaluate(env, width)))
        if self.op == "or":
            return int(a or bool(self.right.evaluate(env, width)))
        if self.op == "implies":
            return int((not a) or bool(self.right.evaluate(env, width)))
        raise VerificationError(f"unknown connective {self.op!r}")

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return BoolOp(self.op, self.left.substitute(mapping),
                      self.right.substitute(mapping))

    def variables(self) -> set[str]:
        return self.left.variables() | self.right.variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class Not(Expr):
    operand: Expr

    def evaluate(self, env: dict[str, int], width: int) -> int:
        return int(not self.operand.evaluate(env, width))

    def substitute(self, mapping: dict[str, Expr]) -> Expr:
        return Not(self.operand.substitute(mapping))

    def variables(self) -> set[str]:
        return self.operand.variables()

    def __str__(self) -> str:
        return f"(not {self.operand})"


#: The trivially true condition.
TRUE = Const(1)


def implies(antecedent: Expr, consequent: Expr) -> Expr:
    """Convenience constructor for implications."""
    return BoolOp("implies", antecedent, consequent)


def conj(*terms: Expr) -> Expr:
    """Conjunction of conditions (TRUE when empty)."""
    result: Expr | None = None
    for term in terms:
        result = term if result is None else BoolOp("and", result, term)
    return result if result is not None else TRUE
