"""The declarative pass manager every front end compiles through.

A :class:`Pipeline` is an ordered list of named :class:`Stage`\\ s over
one shared :class:`CompileContext`.  The pipeline — not the front ends
— owns every cross-cutting concern that PRs 1–3 had to hand-thread
through five compiler drivers:

* cache get-or-compile wrapping (``cache=``),
* the ``compile`` span plus one obs span per stage, with each stage's
  headline numbers attached as span attributes,
* structured per-stage diagnostics collected on the context,
* state dumps after any stage (``dump_after=``).

A front end contributes its language-specific stages (parse, sema,
codegen) and declares the shared tail (legalize, restart, regalloc,
compose, assemble) from :mod:`repro.pipeline.stages`; adding a new
cross-cutting feature is then one change here, not five.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable

from repro.errors import ReproError
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.pipeline.result import CompileResult, Diagnostic
from repro.regalloc.linear_scan import AllocationResult

if TYPE_CHECKING:  # import at runtime would cycle through repro.lang
    from repro.lang.common.legalize import LegalizeStats


class PipelineError(ReproError):
    """A pipeline was misconfigured or driven with bad arguments."""


@dataclass
class CompileContext:
    """Everything one compilation carries between stages.

    Stages read what earlier stages produced and fill in their own
    slot; ``scratch`` holds language-private state (par groups,
    codegen counters, explicit composition groups) without widening
    the shared contract.
    """

    source: str
    lang: str
    machine: MicroArchitecture
    options: dict
    tracer: object = NULL_TRACER
    # Produced along the way:
    ast: object = None
    mir: object = None
    legalize_stats: LegalizeStats | None = None
    allocation: AllocationResult | None = None
    restart_hazards: list = field(default_factory=list)
    composed: object = None
    loaded: object = None
    scratch: dict = field(default_factory=dict)
    diagnostics: list[Diagnostic] = field(default_factory=list)
    dumps: dict[str, str] = field(default_factory=dict)

    def opt(self, name: str, default=None):
        """A compile option, falling back to ``default``."""
        value = self.options.get(name)
        return default if value is None else value

    def warn(self, stage: str, name: str, **data) -> None:
        """Record a degradation: tracer warning + warning diagnostic."""
        self.tracer.warning(name, lang=self.lang, **data)
        self.diagnostics.append(
            Diagnostic(stage=stage, severity="warning",
                       data={"event": name, **data})
        )


@dataclass(frozen=True)
class Stage:
    """One named pass: ``run(ctx)`` mutates the context.

    ``run`` returns the stage's headline numbers (or ``None``); the
    pipeline attaches them to the stage's obs span and records them as
    the stage's info diagnostic.
    """

    name: str
    run: Callable[[CompileContext], dict | None]


def default_result(ctx: CompileContext) -> CompileResult:
    """Build the standard :class:`CompileResult` from a finished context.

    Front ends that skip legalization or allocation (S* binds
    everything explicitly) get faithful placeholder records.
    """
    from repro.lang.common.legalize import LegalizeStats

    n_ops = ctx.mir.n_ops() if ctx.mir is not None else 0
    return CompileResult(
        mir=ctx.mir,
        composed=ctx.composed,
        loaded=ctx.loaded,
        legalize_stats=ctx.legalize_stats
        or LegalizeStats(ops_before=n_ops, ops_after=n_ops),
        allocation=ctx.allocation or AllocationResult(allocator="explicit-binding"),
        restart_hazards=list(ctx.restart_hazards),
        diagnostics=list(ctx.diagnostics),
        dumps=dict(ctx.dumps),
    )


def render_state(ctx: CompileContext) -> str:
    """The most-evolved program representation the context holds.

    After assembly that is the control-store listing; after
    composition the composed program; once codegen has run, the
    micro-IR; before that, the AST.
    """
    if ctx.loaded is not None:
        return ctx.loaded.listing(ctx.machine)
    if ctx.composed is not None:
        return str(ctx.composed)
    if ctx.mir is not None:
        return str(ctx.mir)
    return repr(ctx.ast)


def _cache_value(value):
    """Canonicalize one option value for the content-address key.

    Composer/allocator instances participate by ``name``/class name
    only (their behaviour is fully determined by construction in
    practice); plain values pass through.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return name
    return type(value).__name__


@dataclass(frozen=True)
class Pipeline:
    """A named sequence of stages compiled against one context.

    Attributes:
        lang: Language name (cache key component, span attribute).
        stages: The ordered passes.
        option_defaults: Every compile option the pipeline accepts,
            with its default — unknown keywords are rejected, so a
            typoed option fails loudly instead of silently compiling
            with defaults.
        result_factory: Builds the final result from the context
            (front ends with extra counters override this).
    """

    lang: str
    stages: tuple[Stage, ...]
    option_defaults: dict = field(default_factory=dict)
    result_factory: Callable[[CompileContext], CompileResult] = default_result

    def stage_names(self) -> tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def cache_options(self, options: dict) -> dict:
        """The canonicalised option dict that keys the compile cache."""
        return {name: _cache_value(value)
                for name, value in sorted(options.items())}

    def _resolve_options(self, options: dict) -> dict:
        unknown = set(options) - set(self.option_defaults)
        if unknown:
            raise PipelineError(
                f"{self.lang}: unknown compile option(s) "
                f"{', '.join(sorted(unknown))}; accepted: "
                f"{', '.join(sorted(self.option_defaults))}"
            )
        resolved = dict(self.option_defaults)
        resolved.update(options)
        return resolved

    def _dump_stages(self, dump_after) -> frozenset:
        if dump_after is None:
            return frozenset()
        if dump_after == "all":
            return frozenset(self.stage_names())
        requested = (
            dump_after if isinstance(dump_after, (list, tuple, set, frozenset))
            else [dump_after]
        )
        unknown = set(requested) - set(self.stage_names())
        if unknown:
            raise PipelineError(
                f"{self.lang}: no stage named "
                f"{', '.join(sorted(str(s) for s in unknown))}; stages are "
                f"{', '.join(self.stage_names())}"
            )
        return frozenset(requested)

    def run(
        self,
        source: str,
        machine: MicroArchitecture,
        *,
        tracer=NULL_TRACER,
        cache=None,
        dump_after=None,
        **options,
    ) -> CompileResult:
        """Compile ``source`` for ``machine`` through every stage.

        ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
        recompilation of identical (source, language, machine
        description, options) inputs.  ``dump_after`` (a stage name, a
        collection of them, or ``"all"``) captures the rendered
        program state after the named stage(s) into ``result.dumps``
        — and bypasses the cache, since a cached result carries no
        dumps.
        """
        resolved = self._resolve_options(options)
        if cache is not None and dump_after is None:
            return cache.get_or_compile(
                source, self.lang, machine,
                self.cache_options(resolved),
                lambda: self.run(source, machine, tracer=tracer, **resolved),
                tracer=tracer,
            )
        dump_stages = self._dump_stages(dump_after)
        ctx = CompileContext(
            source=source, lang=self.lang, machine=machine,
            options=resolved, tracer=tracer,
        )
        with tracer.span("compile", lang=self.lang, machine=machine.name):
            for stage in self.stages:
                with tracer.span(stage.name) as span:
                    info = stage.run(ctx) or {}
                    if info:
                        span.set(**info)
                ctx.diagnostics.append(Diagnostic(stage=stage.name, data=info))
                if stage.name in dump_stages:
                    ctx.dumps[stage.name] = render_state(ctx)
        return self.result_factory(ctx)
