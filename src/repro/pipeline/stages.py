"""The shared pipeline tail every front end declares.

These factories build the cross-cutting stages — legalize, restart
safety, register allocation, composition, assembly — that the five
language drivers used to hand-roll.  Each returns a plain
:class:`~repro.pipeline.core.Stage`; front ends pick the variants that
match their semantics (e.g. allocation policy ``"auto"`` for
programmer-bound languages, ``transform=False`` where the §2.1.5
idempotence transform cannot place temporaries).
"""

from __future__ import annotations

from typing import Callable

from repro.asm.assembler import assemble
from repro.compose.base import compose_program
from repro.pipeline.core import CompileContext, Stage
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


def legalize_stage() -> Stage:
    """Rewrite the micro-IR into machine-legal operations."""

    def run(ctx: CompileContext) -> dict:
        # Lazy: a top-level import of repro.lang.common would trigger
        # repro.lang's package init, which imports the front ends,
        # which import this module — a cycle.
        from repro.lang.common.legalize import legalize

        stats = legalize(ctx.mir, ctx.machine)
        ctx.legalize_stats = stats
        return {"ops_before": stats.ops_before, "ops_after": stats.ops_after}

    return Stage("legalize", run)


def restart_stage(transform_available: bool = True) -> Stage:
    """§2.1.5 restart-hazard analysis, and the idempotence transform
    when ``restart_safe=True`` and the language can host it.

    Languages that bind registers explicitly (S*) pass
    ``transform_available=False``: hazards are analyzed and reported,
    and asking for the transform anyway degrades to a warning — the
    programmer must restructure by hand, as the survey's schema model
    implies.
    """

    def run(ctx: CompileContext) -> dict:
        from repro.lang.common.restart import apply_restart_safety

        requested = bool(ctx.opt("restart_safe", False))
        transform = requested and transform_available
        ctx.restart_hazards = apply_restart_safety(
            ctx.mir, ctx.machine, transform=transform, tracer=ctx.tracer
        )
        if requested and not transform_available and ctx.restart_hazards:
            ctx.warn(
                "restart", "restart.transform_unavailable",
                hazards=len(ctx.restart_hazards),
                detail=f"{ctx.lang} binds registers explicitly; "
                       "restructure by hand",
            )
        return {"hazards": len(ctx.restart_hazards),
                "transformed": transform}

    return Stage("restart", run)


def regalloc_stage(policy: str = "always") -> Stage:
    """Bind virtual registers to physical ones.

    ``policy="always"`` runs an allocator unconditionally (symbolic
    variable languages).  ``policy="auto"`` allocates only when
    virtuals remain — programmer-bound languages normally have none,
    but legalization and the restart transform may introduce
    temporaries.  The allocator comes from the ``allocator`` option,
    a language-chosen default stashed in ``ctx.scratch["allocator"]``
    (YALLL's par-aware graph colouring), or linear scan.
    """
    if policy not in ("always", "auto"):
        raise ValueError(f"unknown regalloc policy {policy!r}")

    def run(ctx: CompileContext) -> dict:
        allocator = ctx.opt("allocator") or ctx.scratch.get("allocator")
        if policy == "auto" and allocator is None and not ctx.mir.virtual_regs():
            ctx.allocation = AllocationResult(allocator="none")
        else:
            allocator = allocator or LinearScanAllocator(tracer=ctx.tracer)
            ctx.allocation = allocator.allocate(ctx.mir, ctx.machine)
        return {"allocator": ctx.allocation.allocator,
                "spilled": ctx.allocation.n_spilled,
                "registers": ctx.allocation.registers_used}

    return Stage("regalloc", run)


def compose_stage(
    default_composer: Callable[[CompileContext], object],
) -> Stage:
    """Pack micro-operations into microinstructions.

    The ``composer`` option wins; otherwise ``default_composer(ctx)``
    supplies the language's historical choice (which may depend on
    other options — YALLL's ``optimize`` toggle — or on codegen
    results — S*'s explicit groups).
    """

    def run(ctx: CompileContext) -> dict:
        composer = ctx.opt("composer") or default_composer(ctx)
        ctx.composed = compose_program(ctx.mir, ctx.machine, composer,
                                       ctx.tracer)
        return {"words": ctx.composed.n_instructions(),
                "compaction": round(ctx.composed.compaction_ratio(), 3)}

    return Stage("compose", run)


def assemble_stage() -> Stage:
    """Encode the composed program into loadable control words."""

    def run(ctx: CompileContext) -> dict:
        ctx.loaded = assemble(ctx.composed, ctx.machine)
        return {"words": len(ctx.loaded)}

    return Stage("assemble", run)


def standard_tail(
    *,
    legalize: bool = True,
    transform_available: bool = True,
    regalloc: str | None = "always",
    default_composer: Callable[[CompileContext], object],
) -> tuple[Stage, ...]:
    """The shared back half of a front end's pipeline.

    ``legalize=False`` / ``regalloc=None`` drop those stages entirely
    (S* programs are written against the machine's actual
    micro-operations and registers; anything else is a semantic
    error there).
    """
    stages: list[Stage] = []
    if legalize:
        stages.append(legalize_stage())
    stages.append(restart_stage(transform_available=transform_available))
    if regalloc is not None:
        stages.append(regalloc_stage(policy=regalloc))
    stages.append(compose_stage(default_composer))
    stages.append(assemble_stage())
    return tuple(stages)
