"""The compile result record shared by every front end.

Historically this lived in ``repro.lang.yalll.compiler`` and the other
four front ends imported it from there — a layering smell (lang/X
depending on lang/Y) fixed by moving it under the pipeline spine.
``repro.lang.yalll`` keeps a deprecated re-export for old callers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.asm.assembler import LoadedProgram
from repro.compose.base import ComposedProgram
from repro.mir.program import MicroProgram
from repro.regalloc.linear_scan import AllocationResult

if TYPE_CHECKING:  # import at runtime would cycle through repro.lang
    from repro.lang.common.legalize import LegalizeStats


@dataclass(frozen=True)
class Diagnostic:
    """One structured per-stage record collected during compilation.

    Every pipeline stage contributes one ``info`` diagnostic carrying
    the stage's headline numbers (the same attributes its obs span
    gets); stages add ``warning`` diagnostics for degradations such as
    unfixable restart hazards.
    """

    stage: str
    severity: str = "info"
    data: dict = field(default_factory=dict)

    def __str__(self) -> str:
        details = ", ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.severity}] {self.stage}: {details}"


@dataclass
class CompileResult:
    """Everything a compilation run produced, for inspection."""

    mir: MicroProgram
    composed: ComposedProgram
    loaded: LoadedProgram
    legalize_stats: LegalizeStats
    allocation: AllocationResult
    #: §2.1.5 exposure: macro-visible writes a microtrap can replay.
    #: With ``restart_safe=True`` only unfixable cross-block hazards
    #: remain; otherwise every hazard found by analysis is listed.
    restart_hazards: list = field(default_factory=list)
    #: Structured per-stage diagnostics, in pipeline order.
    diagnostics: list[Diagnostic] = field(default_factory=list)
    #: Stage name -> rendered program state (``dump_after=`` requests).
    dumps: dict[str, str] = field(default_factory=dict)

    @property
    def n_instructions(self) -> int:
        return len(self.loaded)

    @property
    def restart_safe(self) -> bool:
        """True when no known microtrap-replay hazard remains."""
        return not self.restart_hazards

    @property
    def n_ops(self) -> int:
        return self.composed.n_ops()

    def warnings(self) -> list[Diagnostic]:
        """The warning-severity diagnostics, in pipeline order."""
        return [d for d in self.diagnostics if d.severity == "warning"]

    def stage_diagnostic(self, stage: str) -> Diagnostic | None:
        """The info diagnostic one named stage recorded, if any."""
        for diagnostic in self.diagnostics:
            if diagnostic.stage == stage and diagnostic.severity == "info":
                return diagnostic
        return None
