"""Unified compilation pipeline (survey substrate S18).

One declarative pass manager (:class:`Pipeline` of named
:class:`Stage`\\ s over a shared :class:`CompileContext`) owns
everything the five language drivers used to duplicate: cache
wrapping, per-stage obs spans, legalization, §2.1.5 restart safety,
conditional register allocation, composition and assembly.  Front
ends contribute parse/sema/codegen stages plus a declaration of the
shared tail (:func:`standard_tail`), and register a
``LanguageSpec`` in :mod:`repro.registry`.
"""

from repro.pipeline.core import (
    CompileContext,
    Pipeline,
    PipelineError,
    Stage,
    default_result,
    render_state,
)
from repro.pipeline.result import CompileResult, Diagnostic
from repro.pipeline.stages import (
    assemble_stage,
    compose_stage,
    legalize_stage,
    regalloc_stage,
    restart_stage,
    standard_tail,
)

__all__ = [
    "CompileContext",
    "CompileResult",
    "Diagnostic",
    "Pipeline",
    "PipelineError",
    "Stage",
    "assemble_stage",
    "compose_stage",
    "default_result",
    "legalize_stage",
    "regalloc_stage",
    "render_state",
    "restart_stage",
    "standard_tail",
]
