"""The four surveyed language front ends (S8–S11, plus MPL) plus shared
infrastructure (lexing, legalization, restart safety)."""

from repro.lang.empl import compile_empl
from repro.lang.mpl import compile_mpl
from repro.lang.simpl import compile_simpl
from repro.lang.sstar import compile_sstar, verify_sstar
from repro.lang.yalll import compile_yalll

__all__ = [
    "compile_empl",
    "compile_mpl",
    "compile_simpl",
    "compile_sstar",
    "compile_yalll",
    "verify_sstar",
]
