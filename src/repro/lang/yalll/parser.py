"""YALLL parser: line-oriented recursive descent.

Accepts the survey's §2.2.4 syntax, e.g.::

    reg str = db
    reg tbl = sb
    reg char = mbr

    loop:
        load char,str
        jump out if char = 0
        add  mar,char,tbl
        load char,mar
        stor char,str
        add  str,str,1
        jump loop
    out: exit
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import EOF, NEWLINE, Lexer, LexerSpec, TokenStream
from repro.lang.yalll.ast import (
    Binding,
    CallInstr,
    CompareCondition,
    Condition,
    ExitInstr,
    FlagCondition,
    Instruction,
    JumpInstr,
    LabelDef,
    MaskArm,
    MJumpInstr,
    Number,
    Operand,
    ParGroup,
    PollInstr,
    ProcDef,
    RegRef,
    RetInstr,
    YalllProgram,
)

#: opcode -> operand count for the uniform register instructions.
THREE_OPERAND = {"add", "sub", "and", "or", "xor", "nand", "nor"}
TWO_OPERAND = {"inc", "dec", "not", "neg", "move"}
SHIFT = {"shl", "shr", "sar", "rol", "ror"}

_KEYWORDS = (
    THREE_OPERAND
    | TWO_OPERAND
    | SHIFT
    | {
        "reg", "proc", "put", "load", "stor", "jump", "mjump", "call",
        "ret", "exit", "poll", "if", "default", "par", "endpar",
    }
)

_FLAGS = {
    "zero": "Z", "nonzero": "NZ", "carry": "C", "nocarry": "NC",
    "neg": "N", "pos": "NN", "uf": "UF",
}

_SPEC = LexerSpec(
    patterns=[
        (None, r"[ \t\r]+"),
        # A ternary mask like 10x1 (hex literals take precedence via the
        # lookahead, so 0x10 still lexes as a number).
        ("MASK", r"(?!0x[0-9a-fA-F])[01][01x]*x[01x]*"),
        ("NUMBER", r"0x[0-9a-fA-F]+|0o[0-7]+|0b[01]+|[0-9]+"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
        ("ARROW", r"->"),
        ("COLON", r":"),
        ("COMMA", r","),
        ("EQUALS", r"="),
        ("NEQ", r"#"),
        ("LPAREN", r"\("),
        ("RPAREN", r"\)"),
        ("LE", r"<="),
        ("GE", r">="),
        ("LT", r"<"),
        ("GT", r">"),
    ],
    keywords=_KEYWORDS,
    keywords_case_insensitive=True,
    line_comment=";",
    keep_newlines=True,
)

_LEXER = Lexer(_SPEC)


def _number(text: str) -> int:
    return int(text, 0) if text.startswith("0") and len(text) > 1 else int(text)


def parse_yalll(source: str) -> YalllProgram:
    """Parse YALLL source text into a :class:`YalllProgram`."""
    tokens = _LEXER.tokenize(source)
    program = YalllProgram()
    tokens.skip_newlines()
    while not tokens.at_end():
        _parse_line(tokens, program)
        tokens.skip_newlines()
    return program


def _parse_line(tokens: TokenStream, program: YalllProgram) -> None:
    token = tokens.current
    if token.type == "REG":
        tokens.advance()
        name = tokens.expect("IDENT").value
        tokens.expect("EQUALS")
        physical = tokens.expect("IDENT").value
        program.bindings[name] = physical
        program.items.append(Binding(name, physical, token.line))
        return
    if token.type == "PROC":
        tokens.advance()
        name = tokens.expect("IDENT").value
        tokens.accept("COLON")
        program.items.append(ProcDef(name, token.line))
        return
    if token.type == "IDENT" and tokens.peek(1).type == "COLON":
        label = tokens.advance().value
        tokens.advance()
        program.items.append(LabelDef(label, token.line))
        if not tokens.at(NEWLINE, EOF):
            _parse_line(tokens, program)
        return
    if token.type == "PAR":
        tokens.advance()
        tokens.skip_newlines()
        members: list[Instruction] = []
        while not tokens.at("ENDPAR"):
            if tokens.at(EOF):
                raise ParseError("par without endpar", token.line, 0)
            member = _parse_instruction(tokens)
            if not isinstance(member, Instruction):
                raise ParseError(
                    "only plain instructions may appear inside par",
                    token.line, 0,
                )
            members.append(member)
            tokens.skip_newlines()
        tokens.advance()  # endpar
        program.items.append(ParGroup(tuple(members), token.line))
        return
    program.items.append(_parse_instruction(tokens))


def _operand(tokens: TokenStream) -> Operand:
    if tokens.at("NUMBER"):
        return Number(_number(tokens.advance().value))
    return RegRef(tokens.expect("IDENT").value)


def _reg(tokens: TokenStream) -> RegRef:
    return RegRef(tokens.expect("IDENT").value)


def _parse_instruction(tokens: TokenStream):
    token = tokens.advance()
    opcode = token.type.lower()
    line = token.line
    if opcode in THREE_OPERAND:
        dest = _reg(tokens)
        tokens.expect("COMMA")
        a = _operand(tokens)
        tokens.expect("COMMA")
        b = _operand(tokens)
        return Instruction(opcode, (dest, a, b), line)
    if opcode in TWO_OPERAND:
        dest = _reg(tokens)
        tokens.expect("COMMA")
        return Instruction(opcode, (dest, _operand(tokens)), line)
    if opcode in SHIFT:
        dest = _reg(tokens)
        tokens.expect("COMMA")
        a = _operand(tokens)
        tokens.expect("COMMA")
        count = tokens.expect("NUMBER")
        return Instruction(opcode, (dest, a, Number(_number(count.value))), line)
    if opcode == "put":
        dest = _reg(tokens)
        tokens.expect("COMMA")
        value = tokens.expect("NUMBER")
        return Instruction("put", (dest, Number(_number(value.value))), line)
    if opcode in ("load", "stor"):
        a = _reg(tokens)
        tokens.expect("COMMA")
        b = _reg(tokens)
        return Instruction(opcode, (a, b), line)
    if opcode == "poll":
        return PollInstr(line)
    if opcode == "jump":
        target = tokens.expect("IDENT").value
        condition = None
        if tokens.accept("IF"):
            condition = _parse_condition(tokens)
        return JumpInstr(target, condition, line)
    if opcode == "mjump":
        reg = _reg(tokens)
        tokens.expect("LPAREN")
        arms: list[MaskArm] = []
        default: str | None = None
        while True:
            tokens.skip_newlines()  # arms may continue across lines
            if tokens.accept("DEFAULT"):
                tokens.expect("ARROW")
                default = tokens.expect("IDENT").value
            else:
                mask_token = tokens.expect("MASK", "NUMBER", "IDENT")
                mask = mask_token.value.lower()
                if mask.startswith("0b"):
                    mask = mask[2:]
                if not mask or any(c not in "01x" for c in mask):
                    raise ParseError(
                        f"bad multiway mask {mask_token.value!r}",
                        mask_token.line,
                        mask_token.column,
                    )
                tokens.expect("ARROW")
                arms.append(MaskArm(mask, tokens.expect("IDENT").value))
            tokens.skip_newlines()
            if not tokens.accept("COMMA"):
                break
        tokens.skip_newlines()
        tokens.expect("RPAREN")
        if default is None:
            raise ParseError("mjump needs a default arm", line, 0)
        return MJumpInstr(reg, tuple(arms), default, line)
    if opcode == "call":
        return CallInstr(tokens.expect("IDENT").value, line)
    if opcode == "ret":
        return RetInstr(line)
    if opcode == "exit":
        value = None
        if tokens.at("IDENT"):
            value = RegRef(tokens.advance().value)
        return ExitInstr(value, line)
    raise ParseError(
        f"unknown instruction {token.value!r}", token.line, token.column
    )


def _parse_condition(tokens: TokenStream) -> Condition:
    token = tokens.expect("IDENT")
    lowered = token.value.lower()
    if lowered in _FLAGS and not tokens.at(
        "EQUALS", "NEQ", "LT", "GT", "LE", "GE"
    ):
        return FlagCondition(_FLAGS[lowered])
    reg = RegRef(token.value)
    relop_token = tokens.expect("EQUALS", "NEQ", "LT", "GT", "LE", "GE")
    relop = {
        "EQUALS": "=", "NEQ": "#", "LT": "<", "GT": ">", "LE": "<=", "GE": ">=",
    }[relop_token.type]
    if tokens.at("NUMBER"):
        value: Operand = Number(_number(tokens.advance().value))
    else:
        value = RegRef(tokens.expect("IDENT").value)
    return CompareCondition(reg, relop, value)
