"""YALLL abstract syntax (survey §2.2.4).

YALLL is deliberately low level — "the structure of YALLL is that of a
conventional assembly language" — so its AST is a flat list of items:
register bindings, labels, procedure markers and instructions.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class RegRef:
    """A register operand by name (bound, machine or symbolic)."""

    name: str


@dataclass(frozen=True)
class Number:
    """A numeric literal operand."""

    value: int


Operand = RegRef | Number


@dataclass(frozen=True)
class Binding:
    """``reg name = phys`` — binds a YALLL register to a machine one."""

    name: str
    physical: str
    line: int = 0


@dataclass(frozen=True)
class LabelDef:
    """``name:`` — a branch target."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class ProcDef:
    """``proc name:`` — entry of a microsubroutine."""

    name: str
    line: int = 0


@dataclass(frozen=True)
class Instruction:
    """A data-movement or arithmetic instruction."""

    opcode: str
    operands: tuple[Operand, ...]
    line: int = 0


@dataclass(frozen=True)
class FlagCondition:
    """``if carry`` style condition."""

    flag: str


@dataclass(frozen=True)
class CompareCondition:
    """``if reg = 0`` style condition."""

    reg: RegRef
    relop: str
    value: Operand


Condition = FlagCondition | CompareCondition


@dataclass(frozen=True)
class JumpInstr:
    """``jump label [if cond]``."""

    target: str
    condition: Condition | None = None
    line: int = 0


@dataclass(frozen=True)
class MaskArm:
    """One ``mask -> label`` arm of a multiway jump."""

    mask: str
    target: str


@dataclass(frozen=True)
class MJumpInstr:
    """``mjump reg (mask -> l, ..., default -> l)`` (§2.2.4's
    "fairly sophisticated" multiway branch with don't-care bits)."""

    reg: RegRef
    arms: tuple[MaskArm, ...]
    default: str
    line: int = 0


@dataclass(frozen=True)
class CallInstr:
    proc: str
    line: int = 0


@dataclass(frozen=True)
class RetInstr:
    line: int = 0


@dataclass(frozen=True)
class ExitInstr:
    """``exit [reg]`` — YALLL's exit-with-value."""

    value: RegRef | None = None
    line: int = 0


@dataclass(frozen=True)
class PollInstr:
    """``poll`` — explicit interrupt poll point (§2.1.5)."""

    line: int = 0


@dataclass(frozen=True)
class ParGroup:
    """``par`` … ``endpar`` — the survey's §2.1.4 compromise.

    "The programmer must denote which statements are not data
    dependent, i.e. could be executed in parallel if an unlimited
    number of resources were available" — leaving resource allocation
    (and therefore resource dependences) to the compiler.  The §3
    conclusions single this design point out as worth investigating;
    this extension implements it: the front end checks the declared
    independence, and allocation is steered so it does not reintroduce
    false dependences between the members.
    """

    members: tuple[Instruction, ...]
    line: int = 0


Item = (
    Binding
    | LabelDef
    | ProcDef
    | Instruction
    | JumpInstr
    | MJumpInstr
    | CallInstr
    | RetInstr
    | ExitInstr
    | PollInstr
    | ParGroup
)


@dataclass
class YalllProgram:
    """A parsed YALLL translation unit."""

    items: list[Item] = field(default_factory=list)
    bindings: dict[str, str] = field(default_factory=dict)

    def labels(self) -> set[str]:
        return {
            item.name
            for item in self.items
            if isinstance(item, (LabelDef, ProcDef))
        }
