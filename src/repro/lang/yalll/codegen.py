"""YALLL code generation: AST → micro-IR.

Name resolution follows the survey's model: names bound with ``reg``
become the bound physical registers; names matching machine registers
(case-insensitively, so the paper's ``mbr`` finds ``MBR``) are used
directly; anything else becomes a symbolic variable for the register
allocator — YALLL "views variables as general purpose registers with
the exception of mar and mbr" (§2.2.4).
"""

from __future__ import annotations

from repro.errors import SemanticError
from repro.machine.machine import MicroArchitecture
from repro.mir.block import Branch, Jump, MaskCase, Multiway
from repro.mir.operands import Imm, Reg, preg, vreg
from repro.mir.ops import mop
from repro.mir.program import MicroProgram, ProgramBuilder
from repro.lang.yalll.ast import (
    Binding,
    CallInstr,
    CompareCondition,
    ExitInstr,
    FlagCondition,
    Instruction,
    JumpInstr,
    LabelDef,
    MJumpInstr,
    Number,
    Operand,
    ParGroup,
    PollInstr,
    ProcDef,
    RegRef,
    RetInstr,
    YalllProgram,
)

#: relop -> branch condition after ``cmp a, b`` (computes a - b).
_SIMPLE_RELOPS = {"=": "Z", "#": "NZ", "<": "N", ">=": "NN"}


class YalllCodegen:
    """Generates a :class:`MicroProgram` from a parsed YALLL program."""

    def __init__(self, program: YalllProgram, machine: MicroArchitecture,
                 name: str = "yalll"):
        self.ast = program
        self.machine = machine
        self.builder = ProgramBuilder(name, machine)
        self._machine_regs = {
            reg_name.lower(): reg_name for reg_name in machine.registers.names()
        }
        for window in machine.registers.windows:
            self._machine_regs[window.lower()] = window
        self._labels = program.labels()
        #: (block label, per-member op index lists) for every par group
        #: (§2.1.4's compromise) — consumed by the par-aware allocator.
        self.par_groups: list[tuple[str, list[list[int]]]] = []

    # -- name resolution ---------------------------------------------------
    def resolve(self, ref: RegRef, line: int = 0) -> Reg:
        name = ref.name
        if name in self.ast.bindings:
            physical = self.ast.bindings[name]
            resolved = self._machine_regs.get(physical.lower())
            if resolved is None:
                raise SemanticError(
                    f"{name!r} bound to unknown machine register {physical!r}",
                    line,
                )
            return preg(resolved)
        if name.lower() in self._machine_regs:
            return preg(self._machine_regs[name.lower()])
        if name in self._labels:
            raise SemanticError(f"label {name!r} used as a register", line)
        return vreg(name)

    def operand_reg(self, operand: Operand, line: int = 0) -> Reg:
        """Resolve an operand to a register, materializing numbers."""
        if isinstance(operand, RegRef):
            return self.resolve(operand, line)
        resolved = self.builder.constant(operand.value)
        if isinstance(resolved, Reg):
            return resolved
        temp = self.builder.fresh_vreg("k")
        self.builder.emit(mop("movi", temp, Imm(operand.value), line=line))
        return temp

    # -- driver ------------------------------------------------------------
    def generate(self) -> MicroProgram:
        builder = self.builder
        builder.start_block("main")
        in_procedure = False
        for item in self.ast.items:
            if isinstance(item, Binding):
                continue
            if isinstance(item, LabelDef):
                builder.start_block(item.name)
                continue
            if isinstance(item, ProcDef):
                if builder.has_open_block:
                    if in_procedure:
                        raise SemanticError(
                            f"control falls into procedure {item.name!r}",
                            item.line,
                        )
                    builder.exit()
                builder.start_block(item.name)
                builder.declare_procedure(item.name, item.name)
                in_procedure = True
                continue
            if not builder.has_open_block:
                builder.start_block()  # unreachable continuation
            self._generate_item(item)
        if builder.has_open_block:
            if in_procedure:
                raise SemanticError("procedure without ret", 0)
            builder.exit()
        return builder.finish()

    # -- per-item ------------------------------------------------------------
    def _generate_item(self, item) -> None:
        builder = self.builder
        if isinstance(item, Instruction):
            self._generate_instruction(item)
        elif isinstance(item, JumpInstr):
            self._generate_jump(item)
        elif isinstance(item, MJumpInstr):
            cases = tuple(MaskCase(arm.mask, arm.target) for arm in item.arms)
            builder.terminate(
                Multiway(self.resolve(item.reg, item.line), cases, item.default)
            )
        elif isinstance(item, CallInstr):
            builder.call(item.proc)
        elif isinstance(item, RetInstr):
            builder.ret()
        elif isinstance(item, ExitInstr):
            value = self.resolve(item.value, item.line) if item.value else None
            builder.exit(value)
        elif isinstance(item, PollInstr):
            builder.emit(mop("poll", line=item.line))
        elif isinstance(item, ParGroup):
            self._generate_par_group(item)
        else:  # pragma: no cover - parser produces no other items
            raise SemanticError(f"unexpected item {item!r}")

    def _generate_par_group(self, group: ParGroup) -> None:
        """§2.1.4's compromise: members are declared data independent.

        The declaration is *checked* (a lying program is rejected) and
        recorded so the allocator can avoid mapping different members'
        temporaries onto one register, which would manufacture the very
        resource dependences the programmer ruled out.
        """
        from repro.mir.deps import op_reads, op_writes

        builder = self.builder
        block = builder.current
        member_ranges: list[list[int]] = []
        for member in group.members:
            start = len(block.ops)
            self._generate_instruction(member)
            member_ranges.append(list(range(start, len(block.ops))))

        def resources(indices, getter):
            out: set[str] = set()
            for index in indices:
                out |= {
                    r for r in getter(block.ops[index], self.machine)
                    if not r.startswith("flag:") and r != "interrupt"
                }
            return out

        for position, left in enumerate(member_ranges):
            left_reads = resources(left, op_reads)
            left_writes = resources(left, op_writes)
            for right in member_ranges[position + 1:]:
                right_reads = resources(right, op_reads)
                right_writes = resources(right, op_writes)
                clash = (left_writes & (right_reads | right_writes)) | (
                    right_writes & left_reads
                )
                if clash:
                    raise SemanticError(
                        f"statements declared parallel are data dependent "
                        f"(on {sorted(clash)[0]})",
                        group.line,
                    )
        self.par_groups.append((block.label, member_ranges))

    def _generate_instruction(self, item: Instruction) -> None:
        builder = self.builder
        opcode, operands, line = item.opcode, item.operands, item.line
        if opcode in ("add", "sub", "and", "or", "xor", "nand", "nor"):
            dest = self.resolve(operands[0], line)
            a = self.operand_reg(operands[1], line)
            b = self.operand_reg(operands[2], line)
            builder.emit(mop(opcode, dest, a, b, line=line))
        elif opcode in ("inc", "dec", "not", "neg", "move"):
            dest = self.resolve(operands[0], line)
            a = self.operand_reg(operands[1], line)
            name = "mov" if opcode == "move" else opcode
            builder.emit(mop(name, dest, a, line=line))
        elif opcode in ("shl", "shr", "sar", "rol", "ror"):
            dest = self.resolve(operands[0], line)
            a = self.operand_reg(operands[1], line)
            assert isinstance(operands[2], Number)
            builder.emit(mop(opcode, dest, a, Imm(operands[2].value), line=line))
        elif opcode == "put":
            dest = self.resolve(operands[0], line)
            assert isinstance(operands[1], Number)
            builder.emit(mop("movi", dest, Imm(operands[1].value), line=line))
        elif opcode == "load":
            dest = self.resolve(operands[0], line)
            address = self.resolve(operands[1], line)
            self._emit_load(dest, address, line)
        elif opcode == "stor":
            source = self.resolve(operands[0], line)
            address = self.resolve(operands[1], line)
            self._emit_store(source, address, line)
        else:  # pragma: no cover - parser filters opcodes
            raise SemanticError(f"unknown opcode {opcode!r}", line)

    def _emit_load(self, dest: Reg, address: Reg, line: int) -> None:
        builder = self.builder
        mar, mbr = preg("MAR"), preg("MBR")
        if address != mar:
            builder.emit(mop("mov", mar, address, line=line))
        builder.emit(mop("read", mbr, mar, line=line))
        if dest != mbr:
            builder.emit(mop("mov", dest, mbr, line=line))

    def _emit_store(self, source: Reg, address: Reg, line: int) -> None:
        builder = self.builder
        mar, mbr = preg("MAR"), preg("MBR")
        if address != mar:
            builder.emit(mop("mov", mar, address, line=line))
        if source != mbr:
            builder.emit(mop("mov", mbr, source, line=line))
        builder.emit(mop("write", None, mar, mbr, line=line))

    def _generate_jump(self, item: JumpInstr) -> None:
        builder = self.builder
        condition = item.condition
        if condition is None:
            builder.terminate(Jump(item.target))
            return
        if isinstance(condition, FlagCondition):
            cont = builder.fresh_label("c")
            builder.terminate(Branch(condition.flag, item.target, cont))
            builder.start_block(cont)
            return
        assert isinstance(condition, CompareCondition)
        left = self.resolve(condition.reg, item.line)
        right = self.operand_reg(condition.value, item.line)
        builder.emit(mop("cmp", None, left, right, line=item.line))
        relop = condition.relop
        cont = builder.fresh_label("c")
        if relop in _SIMPLE_RELOPS:
            builder.terminate(Branch(_SIMPLE_RELOPS[relop], item.target, cont))
            builder.start_block(cont)
        elif relop == "<=":
            middle = builder.fresh_label("c")
            builder.terminate(Branch("Z", item.target, middle))
            builder.start_block(middle)
            builder.terminate(Branch("N", item.target, cont))
            builder.start_block(cont)
        elif relop == ">":
            middle = builder.fresh_label("c")
            builder.terminate(Branch("Z", cont, middle))
            builder.start_block(middle)
            builder.terminate(Branch("NN", item.target, cont))
            builder.start_block(cont)
        else:  # pragma: no cover - parser filters relops
            raise SemanticError(f"unknown relop {relop!r}", item.line)


def generate(ast: YalllProgram, machine: MicroArchitecture,
             name: str = "yalll") -> MicroProgram:
    """Convenience wrapper: AST → validated micro-IR program."""
    return YalllCodegen(ast, machine, name).generate()
