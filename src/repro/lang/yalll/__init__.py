"""YALLL — Yet Another Low Level Language (survey §2.2.4, [16])."""

from repro.lang.yalll.ast import YalllProgram
from repro.lang.yalll.codegen import YalllCodegen, generate
from repro.lang.yalll.compiler import CompileResult, compile_yalll
from repro.lang.yalll.parser import parse_yalll

__all__ = [
    "CompileResult",
    "YalllCodegen",
    "YalllProgram",
    "compile_yalll",
    "generate",
    "parse_yalll",
]
