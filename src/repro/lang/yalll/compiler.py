"""The YALLL compiler driver: source → loadable microcode.

Mirrors the survey's two real implementations (§2.2.4): the same front
end retargets by machine description, and the *optimization level*
differs — the HP back end packs microinstructions while the VAX back
end was left unoptimized ("the baroque structure of the VAX micro
architecture … discouraged the implementers from attempting any code
optimization").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.asm.assembler import LoadedProgram, assemble
from repro.compose.base import ComposedProgram, Composer, compose_program
from repro.compose.linear import SequentialComposer
from repro.compose.list_schedule import ListScheduler
from repro.lang.common.legalize import LegalizeStats, legalize
from repro.lang.common.restart import RestartHazard, apply_restart_safety
from repro.lang.yalll.codegen import YalllCodegen
from repro.lang.yalll.parser import parse_yalll
from repro.machine.machine import MicroArchitecture
from repro.mir.deps import op_reads, op_writes
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.graph_color import GraphColorAllocator
from repro.regalloc.linear_scan import AllocationResult, LinearScanAllocator


@dataclass
class CompileResult:
    """Everything a compilation run produced, for inspection."""

    mir: MicroProgram
    composed: ComposedProgram
    loaded: LoadedProgram
    legalize_stats: LegalizeStats
    allocation: AllocationResult
    #: §2.1.5 exposure: macro-visible writes a microtrap can replay.
    #: With ``restart_safe=True`` only unfixable cross-block hazards
    #: remain; otherwise every hazard found by analysis is listed.
    restart_hazards: list[RestartHazard] = field(default_factory=list)

    @property
    def n_instructions(self) -> int:
        return len(self.loaded)

    @property
    def restart_safe(self) -> bool:
        """True when no known microtrap-replay hazard remains."""
        return not self.restart_hazards

    @property
    def n_ops(self) -> int:
        return self.composed.n_ops()


def _par_interference(
    mir: MicroProgram,
    machine: MicroArchitecture,
    par_groups: list[tuple[str, list[list[int]]]],
) -> tuple[tuple[str, str], ...]:
    """Artificial interference between different members' virtuals."""
    pairs: set[tuple[str, str]] = set()
    for label, member_ranges in par_groups:
        block = mir.blocks[label]
        member_virtuals: list[set[str]] = []
        for indices in member_ranges:
            virtuals: set[str] = set()
            for index in indices:
                for getter in (op_reads, op_writes):
                    virtuals |= {
                        r for r in getter(block.ops[index], machine)
                        if r.startswith("%")
                    }
            member_virtuals.append(virtuals)
        for position, left in enumerate(member_virtuals):
            for right in member_virtuals[position + 1:]:
                for a in left:
                    for b in right:
                        if a != b:
                            pairs.add((min(a, b), max(a, b)))
    return tuple(sorted(pairs))


def compile_yalll(
    source: str,
    machine: MicroArchitecture,
    *,
    name: str = "yalll",
    optimize: bool = True,
    composer: Composer | None = None,
    allocator=None,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
) -> CompileResult:
    """Compile YALLL source for a machine.

    ``optimize=False`` reproduces the survey's unoptimized back end
    (one micro-operation per microinstruction).

    ``restart_safe=True`` applies the §2.1.5 idempotence transform
    after legalization, so a microtrap restart can never replay a
    macro-visible write (``incread``'s double increment).

    Programs using the ``par`` extension (§2.1.4's compromise) get the
    par-aware graph-colouring allocator by default, so the declared
    parallelism survives allocation.

    ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
    recompilation of identical inputs; custom composers/allocators
    participate in the key by ``name``/class name only.
    """
    if cache is not None:
        return cache.get_or_compile(
            source, "yalll", machine,
            {
                "name": name,
                "optimize": optimize,
                "composer": getattr(composer, "name", None),
                "allocator": type(allocator).__name__ if allocator else None,
                "restart_safe": restart_safe,
            },
            lambda: compile_yalll(
                source, machine, name=name, optimize=optimize,
                composer=composer, allocator=allocator,
                restart_safe=restart_safe, tracer=tracer,
            ),
            tracer=tracer,
        )
    with tracer.span("compile", lang="yalll", machine=machine.name):
        with tracer.span("parse"):
            ast = parse_yalll(source)
        with tracer.span("codegen") as span:
            codegen = YalllCodegen(ast, machine, name)
            mir = codegen.generate()
            span.set(ops=mir.n_ops(), par_groups=len(codegen.par_groups))
        if allocator is None and codegen.par_groups:
            # Pair computation must precede legalization: the recorded op
            # indices refer to the pristine micro-IR.
            allocator = GraphColorAllocator(
                extra_interference=_par_interference(
                    mir, machine, codegen.par_groups
                ),
                tracer=tracer,
            )
        with tracer.span("legalize") as span:
            stats = legalize(mir, machine)
            span.set(ops_before=stats.ops_before, ops_after=stats.ops_after)
        hazards = apply_restart_safety(
            mir, machine, transform=restart_safe, tracer=tracer
        )
        with tracer.span("regalloc") as span:
            allocation = (
                allocator or LinearScanAllocator(tracer=tracer)
            ).allocate(mir, machine)
            span.set(allocator=allocation.allocator,
                     spilled=allocation.n_spilled,
                     registers=allocation.registers_used)
        if composer is None:
            composer = (
                ListScheduler(tracer=tracer) if optimize
                else SequentialComposer(tracer=tracer)
            )
        with tracer.span("compose") as span:
            composed = compose_program(mir, machine, composer, tracer)
            span.set(words=composed.n_instructions(),
                     compaction=round(composed.compaction_ratio(), 3))
        with tracer.span("assemble") as span:
            loaded = assemble(composed, machine)
            span.set(words=len(loaded))
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
        restart_hazards=hazards,
    )
