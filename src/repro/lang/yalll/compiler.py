"""The YALLL front end: language-specific stages + registration.

Mirrors the survey's two real implementations (§2.2.4): the same front
end retargets by machine description, and the *optimization level*
differs — the HP back end packs microinstructions while the VAX back
end was left unoptimized ("the baroque structure of the VAX micro
architecture … discouraged the implementers from attempting any code
optimization").

All orchestration (cache, spans, legalize/restart/regalloc/compose/
assemble) lives in :mod:`repro.pipeline`; this module contributes
parse and codegen, the par-aware allocator choice, and the
``optimize`` composer toggle.
"""

from __future__ import annotations

from repro.compose.linear import SequentialComposer
from repro.compose.list_schedule import ListScheduler
from repro.lang.yalll.codegen import YalllCodegen
from repro.lang.yalll.parser import parse_yalll
from repro.machine.machine import MicroArchitecture
from repro.mir.deps import op_reads, op_writes
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import CompileResult, Pipeline, Stage, standard_tail
from repro.registry import LanguageSpec, register_language
from repro.regalloc.graph_color import GraphColorAllocator


def _par_interference(
    mir: MicroProgram,
    machine: MicroArchitecture,
    par_groups: list[tuple[str, list[list[int]]]],
) -> tuple[tuple[str, str], ...]:
    """Artificial interference between different members' virtuals."""
    pairs: set[tuple[str, str]] = set()
    for label, member_ranges in par_groups:
        block = mir.blocks[label]
        member_virtuals: list[set[str]] = []
        for indices in member_ranges:
            virtuals: set[str] = set()
            for index in indices:
                for getter in (op_reads, op_writes):
                    virtuals |= {
                        r for r in getter(block.ops[index], machine)
                        if r.startswith("%")
                    }
            member_virtuals.append(virtuals)
        for position, left in enumerate(member_virtuals):
            for right in member_virtuals[position + 1:]:
                for a in left:
                    for b in right:
                        if a != b:
                            pairs.add((min(a, b), max(a, b)))
    return tuple(sorted(pairs))


def _parse(ctx) -> None:
    ctx.ast = parse_yalll(ctx.source)


def _codegen(ctx) -> dict:
    codegen = YalllCodegen(ctx.ast, ctx.machine, ctx.opt("name", "yalll"))
    ctx.mir = codegen.generate()
    if ctx.opt("allocator") is None and codegen.par_groups:
        # Programs using the ``par`` extension (§2.1.4's compromise)
        # get the par-aware graph-colouring allocator by default, so
        # the declared parallelism survives allocation.  Pair
        # computation must precede legalization: the recorded op
        # indices refer to the pristine micro-IR.
        ctx.scratch["allocator"] = GraphColorAllocator(
            extra_interference=_par_interference(
                ctx.mir, ctx.machine, codegen.par_groups
            ),
            tracer=ctx.tracer,
        )
    return {"ops": ctx.mir.n_ops(), "par_groups": len(codegen.par_groups)}


def _default_composer(ctx):
    """``optimize=False`` reproduces the survey's unoptimized back end
    (one micro-operation per microinstruction)."""
    if ctx.opt("optimize", True):
        return ListScheduler(tracer=ctx.tracer)
    return SequentialComposer(tracer=ctx.tracer)


PIPELINE = Pipeline(
    lang="yalll",
    stages=(
        Stage("parse", _parse),
        Stage("codegen", _codegen),
        *standard_tail(default_composer=_default_composer),
    ),
    option_defaults={
        "name": "yalll",
        "optimize": True,
        "composer": None,
        "allocator": None,
        "restart_safe": False,
    },
)

SPEC = register_language(LanguageSpec(
    name="yalll",
    title="YALLL - Yet Another Low Level Language",
    section="2.2.4",
    pipeline=PIPELINE,
    capabilities=(
        "symbolic_variables",
        "register_allocation",
        "par_extension",
        "multiway_branch",
        "optimize_toggle",
    ),
    default_composer="list-schedule",
))


def compile_yalll(
    source: str,
    machine: MicroArchitecture,
    *,
    name: str = "yalll",
    optimize: bool = True,
    composer=None,
    allocator=None,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
    dump_after=None,
) -> CompileResult:
    """Compile YALLL source for a machine (see :data:`PIPELINE`)."""
    return PIPELINE.run(
        source, machine, tracer=tracer, cache=cache, dump_after=dump_after,
        name=name, optimize=optimize, composer=composer, allocator=allocator,
        restart_safe=restart_safe,
    )
