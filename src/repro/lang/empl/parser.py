"""EMPL parser (PL/I-flavoured, per the survey's §2.2.2 example).

A program is a sequence of declarations (``TYPE``, ``DECLARE``,
operator and procedure declarations) followed by executable statements.
``/* … */`` comments.  Example accepted verbatim (modulo identifier
spelling) from the survey::

    TYPE STACK
         DECLARE STK(16) FIXED;
         DECLARE STKPTR FIXED;
         DECLARE VALUE FIXED;
         INITIALLY DO; STKPTR = 0; END;
         PUSH: OPERATION ACCEPTS (VALUE)
               MICROOP: PUSH 3 0;
               IF STKPTR = 16
               THEN ERROR;
               ELSE DO; STKPTR = STKPTR + 1; STK(STKPTR) = VALUE; END
               END.
         POP: OPERATION RETURNS (VALUE)
               ...
               END.
    ENDTYPE;
    DECLARE ADDRESS_STK STACK;
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import Lexer, LexerSpec, TokenStream
from repro.lang.empl.ast import (
    ArrayRef,
    Assign,
    BinaryExpr,
    CallStmt,
    Condition,
    DoGroup,
    EmplProgram,
    ErrorStmt,
    Expr,
    GotoStmt,
    IfStmt,
    LabeledStmt,
    MicroOpSpecifier,
    NameRef,
    Number,
    OpCall,
    Operand,
    OperationDecl,
    ProcedureDecl,
    ReturnStmt,
    SimpleOperand,
    TypeDecl,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)

_KEYWORDS = {
    "declare", "fixed", "type", "endtype", "initially", "operation",
    "accepts", "returns", "microop", "procedure", "if", "then", "else",
    "do", "end", "while", "goto", "call", "return", "error", "xor",
    "shl", "shr",
}

_SPEC = LexerSpec(
    patterns=[
        (None, r"\s+"),
        ("NUMBER", r"0x[0-9a-fA-F]+|0b[01]+|[0-9]+"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
        ("LE", r"<="), ("GE", r">="),
        ("NEQ", r"#|\^="), ("EQUALS", r"="),
        ("LT", r"<"), ("GT", r">"),
        ("PLUS", r"\+"), ("MINUS", r"-"),
        ("STAR", r"\*"), ("SLASH", r"/"),
        ("AMP", r"&"), ("PIPE", r"\|"), ("TILDE", r"~"),
        ("LPAREN", r"\("), ("RPAREN", r"\)"),
        ("SEMI", r";"), ("COLON", r":"), ("COMMA", r","),
        ("DOT", r"\."),
    ],
    keywords=_KEYWORDS,
    keywords_case_insensitive=True,
    block_comment=("/*", "*/"),
)

_LEXER = Lexer(_SPEC)

_BINOPS = {
    "PLUS": "+", "MINUS": "-", "STAR": "*", "SLASH": "/",
    "AMP": "&", "PIPE": "|", "XOR": "xor", "SHL": "shl", "SHR": "shr",
}
_RELOPS = {
    "EQUALS": "=", "NEQ": "#", "LT": "<", "LE": "<=", "GT": ">", "GE": ">=",
}


def parse_empl(source: str) -> EmplProgram:
    """Parse EMPL source text."""
    tokens = _LEXER.tokenize(source)
    program = EmplProgram()
    while not tokens.at_end():
        if tokens.at("TYPE"):
            decl = _type_decl(tokens)
            program.types[decl.name.upper()] = decl
        elif tokens.at("DECLARE"):
            program.variables.extend(_declare(tokens))
        elif tokens.at("IDENT") and tokens.peek(1).type == "COLON" and (
            tokens.peek(2).type in ("OPERATION", "PROCEDURE")
        ):
            name = tokens.advance().value
            tokens.advance()  # colon
            if tokens.at("OPERATION"):
                operation = _operation(tokens, name)
                program.operations[name.upper()] = operation
            else:
                procedure = _procedure(tokens, name)
                program.procedures[name.upper()] = procedure
        else:
            program.body.append(_statement(tokens))
    return program


def _declare(tokens: TokenStream) -> list[VarDecl]:
    line = tokens.expect("DECLARE").line
    declarations: list[VarDecl] = []
    while True:
        name = tokens.expect("IDENT").value
        size = None
        if tokens.accept("LPAREN"):
            size = int(tokens.expect("NUMBER").value, 0)
            tokens.expect("RPAREN")
        if tokens.accept("FIXED"):
            type_name = "FIXED"
        elif tokens.at("IDENT"):
            type_name = tokens.advance().value
        else:
            type_name = "FIXED"
        declarations.append(VarDecl(name, type_name, size, line))
        if not tokens.accept("COMMA"):
            break
    tokens.expect("SEMI")
    return declarations


def _type_decl(tokens: TokenStream) -> TypeDecl:
    line = tokens.expect("TYPE").line
    decl = TypeDecl(tokens.expect("IDENT").value, line=line)
    while not tokens.at("ENDTYPE"):
        if tokens.at("DECLARE"):
            decl.fields.extend(_declare(tokens))
        elif tokens.accept("INITIALLY"):
            decl.initially = _statement(tokens)
        elif tokens.at("IDENT") and tokens.peek(1).type == "COLON":
            name = tokens.advance().value
            tokens.advance()
            operation = _operation(tokens, name)
            decl.operations[name.upper()] = operation
        else:
            raise ParseError(
                f"unexpected {tokens.current.type} in TYPE body",
                tokens.current.line,
                tokens.current.column,
            )
    tokens.expect("ENDTYPE")
    tokens.accept("SEMI")
    return decl


def _operation(tokens: TokenStream, name: str) -> OperationDecl:
    line = tokens.expect("OPERATION").line
    operation = OperationDecl(name, line=line)
    if tokens.accept("ACCEPTS"):
        tokens.expect("LPAREN")
        params = [tokens.expect("IDENT").value]
        while tokens.accept("COMMA"):
            params.append(tokens.expect("IDENT").value)
        tokens.expect("RPAREN")
        operation.accepts = tuple(params)
    if tokens.accept("RETURNS"):
        tokens.expect("LPAREN")
        operation.returns = tokens.expect("IDENT").value
        tokens.expect("RPAREN")
    if tokens.accept("MICROOP"):
        tokens.expect("COLON")
        micro_name = tokens.expect("IDENT").value
        params = []
        while tokens.at("NUMBER"):
            params.append(int(tokens.advance().value, 0))
        tokens.expect("SEMI")
        operation.microop = MicroOpSpecifier(micro_name, tuple(params))
    body: list = []
    while not tokens.at("END"):
        if tokens.at("DECLARE"):
            operation.declares.extend(_declare(tokens))
        else:
            body.append(_statement(tokens))
    tokens.expect("END")
    tokens.expect("DOT")
    operation.body = DoGroup(body) if len(body) != 1 else body[0]
    return operation


def _procedure(tokens: TokenStream, name: str) -> ProcedureDecl:
    line = tokens.expect("PROCEDURE").line
    tokens.expect("SEMI")
    body: list = []
    while not tokens.at("END"):
        body.append(_statement(tokens))
    tokens.expect("END")
    tokens.accept("SEMI") or tokens.accept("DOT")
    return ProcedureDecl(name, DoGroup(body), line)


def _operand(tokens: TokenStream) -> Operand:
    if tokens.at("NUMBER"):
        return Number(int(tokens.advance().value, 0))
    name = tokens.expect("IDENT").value
    if tokens.accept("LPAREN"):
        index = _simple_operand(tokens)
        tokens.expect("RPAREN")
        return ArrayRef(name, index)
    return NameRef(name)


def _simple_operand(tokens: TokenStream) -> SimpleOperand:
    if tokens.at("NUMBER"):
        return Number(int(tokens.advance().value, 0))
    return NameRef(tokens.expect("IDENT").value)


def _condition(tokens: TokenStream) -> Condition:
    left = _operand(tokens)
    relop = tokens.expect(*_RELOPS)
    right = _operand(tokens)
    return Condition(left, _RELOPS[relop.type], right)


def _expression(tokens: TokenStream) -> Expr:
    if tokens.accept("MINUS"):
        return UnaryExpr("-", _operand(tokens))
    if tokens.accept("TILDE"):
        return UnaryExpr("~", _operand(tokens))
    # ``name(args)`` is lexically ambiguous: operator invocation or
    # array element.  Multiple arguments or no trailing operator mean a
    # call (codegen still falls back to array semantics for declared
    # arrays); a trailing binary operator forces the array reading,
    # since EMPL's one-operator rule forbids calls inside expressions.
    if tokens.at("IDENT") and tokens.peek(1).type == "LPAREN":
        name = tokens.advance().value
        tokens.advance()
        args: list[SimpleOperand] = []
        if not tokens.at("RPAREN"):
            args.append(_simple_operand(tokens))
            while tokens.accept("COMMA"):
                args.append(_simple_operand(tokens))
        tokens.expect("RPAREN")
        if len(args) == 1 and tokens.current.type in _BINOPS:
            left: Operand = ArrayRef(name, args[0])
            op = _BINOPS[tokens.advance().type]
            return BinaryExpr(op, left, _operand(tokens))
        return OpCall(name, tuple(args))
    left = _operand(tokens)
    if tokens.current.type in _BINOPS:
        op = _BINOPS[tokens.advance().type]
        right = _operand(tokens)
        return BinaryExpr(op, left, right)
    return UnaryExpr("", left)


def _statement(tokens: TokenStream):
    token = tokens.current
    if token.type == "IDENT" and tokens.peek(1).type == "COLON":
        label = tokens.advance().value
        tokens.advance()
        return LabeledStmt(label, _statement(tokens), token.line)
    if tokens.accept("IF"):
        condition = _condition(tokens)
        tokens.expect("THEN")
        then_body = _statement(tokens)
        else_body = _statement(tokens) if tokens.accept("ELSE") else None
        return IfStmt(condition, then_body, else_body, token.line)
    if tokens.accept("WHILE"):
        condition = _condition(tokens)
        tokens.expect("DO")
        tokens.accept("SEMI")
        body: list = []
        while not tokens.at("END"):
            body.append(_statement(tokens))
        tokens.expect("END")
        tokens.accept("SEMI")
        return WhileStmt(condition, DoGroup(body), token.line)
    if tokens.accept("DO"):
        tokens.accept("SEMI")
        body = []
        while not tokens.at("END"):
            body.append(_statement(tokens))
        tokens.expect("END")
        tokens.accept("SEMI")
        return DoGroup(body, token.line)
    if tokens.accept("GOTO"):
        label = tokens.expect("IDENT").value
        tokens.expect("SEMI")
        return GotoStmt(label, token.line)
    if tokens.accept("CALL"):
        name = tokens.expect("IDENT").value
        args: tuple[SimpleOperand, ...] = ()
        if tokens.accept("LPAREN"):
            collected = [_simple_operand(tokens)]
            while tokens.accept("COMMA"):
                collected.append(_simple_operand(tokens))
            tokens.expect("RPAREN")
            args = tuple(collected)
        tokens.expect("SEMI")
        return CallStmt(name, args, token.line)
    if tokens.accept("RETURN"):
        tokens.expect("SEMI")
        return ReturnStmt(token.line)
    if tokens.accept("ERROR"):
        tokens.expect("SEMI")
        return ErrorStmt(token.line)
    # Assignment or bare operator invocation.
    if token.type == "IDENT" and tokens.peek(1).type == "LPAREN":
        # Could be ``arr(i) = e;`` or ``PUSH(stk, x);``
        checkpoint_name = tokens.advance().value
        tokens.advance()
        args = [_simple_operand(tokens)]
        while tokens.accept("COMMA"):
            args.append(_simple_operand(tokens))
        tokens.expect("RPAREN")
        if tokens.accept("SEMI"):
            return CallStmt(checkpoint_name, tuple(args), token.line)
        tokens.expect("EQUALS")
        if len(args) != 1:
            raise ParseError(
                "array target takes one index", token.line, token.column
            )
        expr = _expression(tokens)
        tokens.expect("SEMI")
        return Assign(ArrayRef(checkpoint_name, args[0]), expr, token.line)
    target = _operand(tokens)
    tokens.expect("EQUALS")
    expr = _expression(tokens)
    tokens.expect("SEMI")
    return Assign(target, expr, token.line)
