"""EMPL compiler driver (survey §2.2.2).

Pipeline: parse → code generation (with operator inlining and MICROOP
hardware escapes) → legalization → register allocation (EMPL variables
are symbolic, so allocation is mandatory — the feature the survey
notes only "two or three" languages offered) → composition → assembly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.assembler import assemble
from repro.compose.base import Composer, compose_program
from repro.compose.list_schedule import ListScheduler
from repro.lang.common.legalize import legalize
from repro.lang.common.restart import apply_restart_safety
from repro.lang.empl.codegen import EmplCodegen
from repro.lang.empl.parser import parse_empl
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.linear_scan import LinearScanAllocator


@dataclass
class EmplCompileResult(CompileResult):
    """CompileResult plus EMPL-specific inlining counters."""

    inlined_ops: int = 0
    hardware_ops: int = 0


def compile_empl(
    source: str,
    machine: MicroArchitecture,
    *,
    name: str = "empl",
    composer: Composer | None = None,
    allocator: LinearScanAllocator | None = None,
    data_base: int = 0x6000,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
) -> EmplCompileResult:
    """Compile EMPL source for a machine.

    ``restart_safe=True`` applies the §2.1.5 idempotence transform
    after legalization, before the (mandatory) register allocation.

    ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
    recompilation of identical inputs; custom composers/allocators
    participate in the key by ``name``/class name only.
    """
    if cache is not None:
        return cache.get_or_compile(
            source, "empl", machine,
            {
                "name": name,
                "composer": getattr(composer, "name", None),
                "allocator": type(allocator).__name__ if allocator else None,
                "data_base": data_base,
                "restart_safe": restart_safe,
            },
            lambda: compile_empl(
                source, machine, name=name, composer=composer,
                allocator=allocator, data_base=data_base,
                restart_safe=restart_safe, tracer=tracer,
            ),
            tracer=tracer,
        )
    with tracer.span("compile", lang="empl", machine=machine.name):
        with tracer.span("parse"):
            ast = parse_empl(source)
        with tracer.span("codegen") as span:
            codegen = EmplCodegen(ast, machine, name, data_base=data_base)
            mir = codegen.generate()
            span.set(ops=mir.n_ops(), inlined=codegen.inlined_ops,
                     hardware=codegen.hardware_ops)
        with tracer.span("legalize") as span:
            stats = legalize(mir, machine)
            span.set(ops_before=stats.ops_before, ops_after=stats.ops_after)
        hazards = apply_restart_safety(
            mir, machine, transform=restart_safe, tracer=tracer
        )
        with tracer.span("regalloc") as span:
            allocation = (
                allocator or LinearScanAllocator(tracer=tracer)
            ).allocate(mir, machine)
            span.set(allocator=allocation.allocator,
                     spilled=allocation.n_spilled,
                     registers=allocation.registers_used)
        with tracer.span("compose") as span:
            composed = compose_program(
                mir, machine, composer or ListScheduler(tracer=tracer), tracer
            )
            span.set(words=composed.n_instructions(),
                     compaction=round(composed.compaction_ratio(), 3))
        with tracer.span("assemble") as span:
            loaded = assemble(composed, machine)
            span.set(words=len(loaded))
    return EmplCompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=stats,
        allocation=allocation,
        restart_hazards=hazards,
        inlined_ops=codegen.inlined_ops,
        hardware_ops=codegen.hardware_ops,
    )
