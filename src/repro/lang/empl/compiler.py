"""EMPL front end stages + registration (survey §2.2.2).

Pipeline: parse → code generation (with operator inlining and MICROOP
hardware escapes) → shared tail.  EMPL variables are symbolic, so
allocation is mandatory (policy ``"always"`` — the feature the survey
notes only "two or three" languages offered) and the default composer
is the critical-path list scheduler.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compose.list_schedule import ListScheduler
from repro.lang.empl.codegen import EmplCodegen
from repro.lang.empl.parser import parse_empl
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import (
    CompileResult,
    Pipeline,
    Stage,
    default_result,
    standard_tail,
)
from repro.registry import LanguageSpec, register_language


@dataclass
class EmplCompileResult(CompileResult):
    """CompileResult plus EMPL-specific inlining counters."""

    inlined_ops: int = 0
    hardware_ops: int = 0


def _parse(ctx) -> None:
    ctx.ast = parse_empl(ctx.source)


def _codegen(ctx) -> dict:
    codegen = EmplCodegen(
        ctx.ast, ctx.machine, ctx.opt("name", "empl"),
        data_base=ctx.opt("data_base", 0x6000),
    )
    ctx.mir = codegen.generate()
    ctx.scratch["inlined_ops"] = codegen.inlined_ops
    ctx.scratch["hardware_ops"] = codegen.hardware_ops
    return {"ops": ctx.mir.n_ops(), "inlined": codegen.inlined_ops,
            "hardware": codegen.hardware_ops}


def _result(ctx) -> EmplCompileResult:
    base = default_result(ctx)
    return EmplCompileResult(
        **vars(base),
        inlined_ops=ctx.scratch.get("inlined_ops", 0),
        hardware_ops=ctx.scratch.get("hardware_ops", 0),
    )


PIPELINE = Pipeline(
    lang="empl",
    stages=(
        Stage("parse", _parse),
        Stage("codegen", _codegen),
        *standard_tail(
            default_composer=lambda ctx: ListScheduler(tracer=ctx.tracer),
        ),
    ),
    option_defaults={
        "name": "empl",
        "composer": None,
        "allocator": None,
        "data_base": 0x6000,
        "restart_safe": False,
    },
    result_factory=_result,
)

SPEC = register_language(LanguageSpec(
    name="empl",
    title="EMPL - Extensible MicroProgramming Language",
    section="2.2.2",
    pipeline=PIPELINE,
    capabilities=(
        "symbolic_variables",
        "register_allocation",
        "extensible_operators",
        "hardware_escape",
    ),
    default_composer="list-schedule",
))


def compile_empl(
    source: str,
    machine: MicroArchitecture,
    *,
    name: str = "empl",
    composer=None,
    allocator=None,
    data_base: int = 0x6000,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
    dump_after=None,
) -> EmplCompileResult:
    """Compile EMPL source for a machine (see :data:`PIPELINE`)."""
    return PIPELINE.run(
        source, machine, tracer=tracer, cache=cache, dump_after=dump_after,
        name=name, composer=composer, allocator=allocator,
        data_base=data_base, restart_safe=restart_safe,
    )
