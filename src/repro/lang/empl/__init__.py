"""EMPL — Extensible MicroProgramming Language (§2.2.2, [8])."""

from repro.lang.empl.ast import EmplProgram
from repro.lang.empl.codegen import EmplCodegen, generate
from repro.lang.empl.compiler import EmplCompileResult, compile_empl
from repro.lang.empl.parser import parse_empl

__all__ = [
    "EmplCodegen",
    "EmplCompileResult",
    "EmplProgram",
    "compile_empl",
    "generate",
    "parse_empl",
]
