"""EMPL abstract syntax (survey §2.2.2, DeWitt [8]).

EMPL is the survey's closest approximation to a conventional high level
language: symbolic global variables (not registers), PL/I-flavoured
statements, *extensible operators* carrying an optional ``MICROOP``
escape, and SIMULA-class-like extension types (``TYPE … ENDTYPE``)
bundling fields, an ``INITIALLY`` block and operations.
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- operands and expressions -------------------------------------------------
@dataclass(frozen=True)
class NameRef:
    ident: str


@dataclass(frozen=True)
class Number:
    value: int


@dataclass(frozen=True)
class ArrayRef:
    """``arr(index)`` — EMPL arrays are 1-based, as in the example."""

    name: str
    index: "SimpleOperand"


SimpleOperand = NameRef | Number
Operand = NameRef | Number | ArrayRef


@dataclass(frozen=True)
class BinaryExpr:
    """``A op B`` — one operator per expression (§2.2.2)."""

    op: str  # + - * / & | xor shl shr
    left: Operand
    right: Operand


@dataclass(frozen=True)
class UnaryExpr:
    op: str  # "-" | "~" | "" (plain operand)
    operand: Operand


@dataclass(frozen=True)
class OpCall:
    """Invocation of a declared operator: ``PUSH(stk, x)``."""

    name: str
    args: tuple[SimpleOperand, ...]


Expr = BinaryExpr | UnaryExpr | OpCall


# -- statements ---------------------------------------------------------------
@dataclass(frozen=True)
class Condition:
    left: Operand
    relop: str
    right: Operand


@dataclass
class Assign:
    target: Operand  # NameRef or ArrayRef
    expr: Expr
    line: int = 0


@dataclass
class IfStmt:
    condition: Condition
    then_body: "Stmt"
    else_body: "Stmt | None" = None
    line: int = 0


@dataclass
class WhileStmt:
    condition: Condition
    body: "Stmt" = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class DoGroup:
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class GotoStmt:
    label: str
    line: int = 0


@dataclass
class LabeledStmt:
    label: str
    statement: "Stmt" = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class CallStmt:
    """``CALL proc;`` or an operator used as a statement."""

    name: str
    args: tuple[SimpleOperand, ...] = ()
    line: int = 0


@dataclass
class ReturnStmt:
    line: int = 0


@dataclass
class ErrorStmt:
    """``ERROR;`` — abort the microprogram with the error marker."""

    line: int = 0


Stmt = (
    Assign | IfStmt | WhileStmt | DoGroup | GotoStmt | LabeledStmt
    | CallStmt | ReturnStmt | ErrorStmt
)


# -- declarations ----------------------------------------------------------------
@dataclass
class VarDecl:
    """``DECLARE name FIXED;`` / ``DECLARE name(n) FIXED;`` /
    ``DECLARE name sometype;`` (extension-type instantiation)."""

    name: str
    type_name: str = "FIXED"
    array_size: int | None = None
    line: int = 0


@dataclass
class MicroOpSpecifier:
    """``MICROOP: name a b;`` — tells the compiler the machine may have
    a microoperation implementing this operator directly (§2.2.2)."""

    name: str
    params: tuple[int, ...] = ()


@dataclass
class OperationDecl:
    """``name: OPERATION ACCEPTS (a, b) RETURNS (r); … END.``"""

    name: str
    accepts: tuple[str, ...] = ()
    returns: str | None = None
    microop: MicroOpSpecifier | None = None
    body: Stmt | None = None
    #: DECLAREs inside the body — EMPL has only global variables, so
    #: these become globals name-mangled per operation.
    declares: list[VarDecl] = field(default_factory=list)
    line: int = 0


@dataclass
class TypeDecl:
    """``TYPE name … ENDTYPE;`` — the SIMULA-class-like extension."""

    name: str
    fields: list[VarDecl] = field(default_factory=list)
    initially: Stmt | None = None
    operations: dict[str, OperationDecl] = field(default_factory=dict)
    line: int = 0


@dataclass
class ProcedureDecl:
    """``name: PROCEDURE; … END;`` — parameterless (§2.2.2)."""

    name: str
    body: Stmt = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class EmplProgram:
    """A parsed EMPL translation unit."""

    types: dict[str, TypeDecl] = field(default_factory=dict)
    operations: dict[str, OperationDecl] = field(default_factory=dict)
    variables: list[VarDecl] = field(default_factory=list)
    procedures: dict[str, ProcedureDecl] = field(default_factory=dict)
    body: list[Stmt] = field(default_factory=list)
