"""EMPL code generation: AST → micro-IR.

Faithful to the survey's account of DeWitt's implementation sketch
(§2.2.2):

* variables are symbolic globals — virtual registers for the allocator,
  *not* machine registers;
* arrays live in a main-memory data segment (EMPL "makes no difference
  between variables residing in registers and variables residing in
  main memory");
* operator invocations are **textually inlined** ("a call to an
  operator which is not hardware supported is textually replaced by
  the statements that form its body … this will lead to an increase in
  the size of the produced code") unless the operator's ``MICROOP``
  escape names an operation the target machine actually has;
* extension-type instances mangle their fields per object and run
  their ``INITIALLY`` block at program start;
* ``*`` and ``/`` are language primitives with no hardware on most
  machines — they inline shift-add / repeated-subtraction loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang.empl.ast import (
    ArrayRef,
    Assign,
    BinaryExpr,
    CallStmt,
    Condition,
    DoGroup,
    EmplProgram,
    ErrorStmt,
    Expr,
    GotoStmt,
    IfStmt,
    LabeledStmt,
    NameRef,
    Number,
    OpCall,
    Operand,
    OperationDecl,
    ReturnStmt,
    SimpleOperand,
    UnaryExpr,
    VarDecl,
    WhileStmt,
)
from repro.machine.machine import MicroArchitecture
from repro.mir.block import Branch, Jump
from repro.mir.operands import Imm, Reg, preg, vreg
from repro.mir.ops import mop
from repro.mir.program import MicroProgram, ProgramBuilder

_BINOP_TO_MIR = {"+": "add", "-": "sub", "&": "and", "|": "or", "xor": "xor"}
_RELOP_TO_COND = {"=": "Z", "#": "NZ", "<": "N", ">=": "NN"}

#: Maximum operator-inlining depth (recursion guard).
MAX_INLINE_DEPTH = 16

#: Exit value of the ERROR statement.
ERROR_MARKER = 0xFFFF


@dataclass
class _Array:
    base: int
    size: int


@dataclass
class _InlineContext:
    """Environment while inlining an operator body."""

    env: dict[str, Operand]
    end_label: str


class EmplCodegen:
    """Generates micro-IR from a parsed EMPL program."""

    def __init__(
        self,
        program: EmplProgram,
        machine: MicroArchitecture,
        name: str = "empl",
        data_base: int = 0x6000,
    ):
        self.ast = program
        self.machine = machine
        self.builder = ProgramBuilder(name, machine)
        self.scalars: dict[str, Reg] = {}
        self.arrays: dict[str, _Array] = {}
        #: object name -> type name, for operator dispatch.
        self.objects: dict[str, str] = {}
        self._data_cursor = data_base
        self._inline_stack: list[_InlineContext] = []
        self._inline_names: list[str] = []
        #: (INITIALLY statement, field environment) per instance.
        self._initializers: list = []
        self.inlined_ops = 0
        self.hardware_ops = 0

    # -- declarations ---------------------------------------------------------
    def _declare_variable(self, decl: VarDecl, prefix: str = "") -> None:
        name = (prefix + decl.name).upper()
        if name in self.scalars or name in self.arrays:
            raise SemanticError(f"duplicate variable {decl.name!r}", decl.line)
        type_name = decl.type_name.upper()
        if type_name == "FIXED":
            if decl.array_size is not None:
                self.arrays[name] = _Array(self._data_cursor, decl.array_size)
                self._data_cursor += decl.array_size + 1  # 1-based indexing
            else:
                self.scalars[name] = vreg(f"g_{name}")
            return
        # Extension-type instantiation.
        type_decl = self.ast.types.get(type_name)
        if type_decl is None:
            raise SemanticError(
                f"unknown type {decl.type_name!r} for {decl.name!r}", decl.line
            )
        if decl.array_size is not None:
            raise SemanticError(
                f"arrays of extension types are not supported", decl.line
            )
        self.objects[name] = type_name
        for field_decl in type_decl.fields:
            self._declare_variable(field_decl, prefix=f"{name}$")
        if type_decl.initially is not None:
            env = self._field_env(name, type_decl)
            self._initializers.append((type_decl.initially, env))

    def _field_env(self, obj: str, type_decl) -> dict[str, Operand]:
        return {
            f.name.upper(): NameRef(f"{obj}${f.name.upper()}")
            for f in type_decl.fields
        }

    # -- name resolution ---------------------------------------------------
    def _substitute(self, ident: str) -> Operand | None:
        for context in reversed(self._inline_stack):
            if ident.upper() in context.env:
                return context.env[ident.upper()]
        return None

    def _resolve_simple(self, operand: SimpleOperand, line: int) -> Operand:
        """Resolve through inline environments (no code emitted)."""
        if isinstance(operand, Number):
            return operand
        substituted = self._substitute(operand.ident)
        if substituted is not None:
            return substituted
        return NameRef(operand.ident.upper())

    def value_of(self, operand: Operand, line: int) -> Reg:
        """Materialize an operand's value into a register."""
        if isinstance(operand, Number):
            return self._const(operand.value, line)
        if isinstance(operand, ArrayRef):
            return self._load_array(operand, line)
        resolved = self._resolve_simple(operand, line)
        if isinstance(resolved, Number):
            return self._const(resolved.value, line)
        if isinstance(resolved, ArrayRef):
            return self._load_array(resolved, line)
        name = resolved.ident.upper()
        if name in self.scalars:
            return self.scalars[name]
        if name in self.arrays:
            raise SemanticError(f"array {name!r} used without index", line)
        raise SemanticError(f"undeclared variable {name!r}", line)

    def _const(self, value: int, line: int) -> Reg:
        resolved = self.builder.constant(value)
        if isinstance(resolved, Reg):
            return resolved
        temp = self.builder.fresh_vreg("k")
        self.builder.emit(mop("movi", temp, Imm(value), line=line))
        return temp

    # -- arrays ------------------------------------------------------------
    def _array_address(self, ref: ArrayRef, line: int) -> Reg:
        name_op = self._substitute(ref.name)
        array_name = ref.name.upper()
        if isinstance(name_op, NameRef):
            array_name = name_op.ident.upper()
        array = self.arrays.get(array_name)
        if array is None:
            raise SemanticError(f"undeclared array {ref.name!r}", line)
        index = ref.index
        if isinstance(index, NameRef):
            index = self._resolve_simple(index, line)
        if isinstance(index, Number):
            if not 0 <= index.value <= array.size:
                raise SemanticError(
                    f"index {index.value} out of bounds for {ref.name!r}", line
                )
            return self._const(array.base + index.value, line)
        base = self._const(array.base, line)
        index_reg = self.value_of(index, line)
        address = self.builder.fresh_vreg("a")
        self.builder.emit(mop("add", address, base, index_reg, line=line))
        return address

    def _load_array(self, ref: ArrayRef, line: int) -> Reg:
        address = self._array_address(ref, line)
        mar, mbr = preg("MAR"), preg("MBR")
        self.builder.emit(mop("mov", mar, address, line=line))
        self.builder.emit(mop("read", mbr, mar, line=line))
        temp = self.builder.fresh_vreg("e")
        self.builder.emit(mop("mov", temp, mbr, line=line))
        return temp

    def _store_array(self, ref: ArrayRef, value: Reg, line: int) -> None:
        address = self._array_address(ref, line)
        mar, mbr = preg("MAR"), preg("MBR")
        self.builder.emit(mop("mov", mar, address, line=line))
        self.builder.emit(mop("mov", mbr, value, line=line))
        self.builder.emit(mop("write", None, mar, mbr, line=line))

    # -- driver ------------------------------------------------------------
    def generate(self) -> MicroProgram:
        for decl in self.ast.variables:
            self._declare_variable(decl)
        builder = self.builder
        builder.start_block("main")
        for statement, env in self._initializers:
            self._inline_stack.append(_InlineContext(env, ""))
            self._statement(statement)
            self._inline_stack.pop()
        for statement in self.ast.body:
            self._statement(statement)
        if not builder.current.terminated:
            builder.exit()
        for procedure in self.ast.procedures.values():
            entry = f"proc_{procedure.name.upper()}"
            builder.start_block(entry)
            builder.declare_procedure(procedure.name.upper(), entry)
            self._statement(procedure.body)
            if builder.has_open_block:
                builder.ret()
        # EMPL variables are global, observable state: they must still
        # hold their values when the microprogram exits (§2.2.2).
        builder.program.live_at_exit = {
            str(register)
            for name, register in self.scalars.items()
            if not name.startswith("$")
        }
        return builder.finish()

    # -- statements ------------------------------------------------------------
    def _statement(self, statement) -> None:
        builder = self.builder
        if isinstance(statement, DoGroup):
            for child in statement.body:
                self._statement(child)
        elif isinstance(statement, Assign):
            self._assign(statement)
        elif isinstance(statement, IfStmt):
            then_label = builder.fresh_label("then")
            other = builder.fresh_label("else")
            done = builder.fresh_label("fi")
            self._branch(statement.condition, then_label,
                         other if statement.else_body else done,
                         statement.line)
            builder.start_block(then_label)
            self._statement(statement.then_body)
            if not builder.current.terminated:
                builder.terminate(Jump(done))
            if statement.else_body is not None:
                builder.start_block(other)
                self._statement(statement.else_body)
            builder.start_block(done)
        elif isinstance(statement, WhileStmt):
            head = builder.fresh_label("wh")
            body = builder.fresh_label("do")
            done = builder.fresh_label("od")
            builder.terminate(Jump(head))
            builder.start_block(head)
            self._branch(statement.condition, body, done, statement.line)
            builder.start_block(body)
            self._statement(statement.body)
            if not builder.current.terminated:
                builder.terminate(Jump(head))
            builder.start_block(done)
        elif isinstance(statement, GotoStmt):
            builder.terminate(Jump(f"u_{statement.label.upper()}"))
        elif isinstance(statement, LabeledStmt):
            builder.start_block(f"u_{statement.label.upper()}")
            self._statement(statement.statement)
        elif isinstance(statement, CallStmt):
            self._call_statement(statement)
        elif isinstance(statement, ReturnStmt):
            if self._inline_stack and self._inline_stack[-1].end_label:
                builder.terminate(Jump(self._inline_stack[-1].end_label))
                builder.start_block()
            else:
                builder.ret()
                builder.start_block()
        elif isinstance(statement, ErrorStmt):
            marker = self._const(ERROR_MARKER, statement.line)
            builder.exit(marker)
            builder.start_block()
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    def _assign(self, statement: Assign) -> None:
        value = self._expression(statement.expr, statement.line)
        target = statement.target
        if isinstance(target, NameRef):
            resolved = self._resolve_simple(target, statement.line)
            if isinstance(resolved, ArrayRef):
                self._store_array(resolved, value, statement.line)
                return
            if isinstance(resolved, Number):
                raise SemanticError("assignment to a constant", statement.line)
            target = resolved
            name = target.ident.upper()
            if name in self.arrays:
                raise SemanticError(
                    f"array {name!r} assigned without index", statement.line
                )
            dest = self.scalars.get(name)
            if dest is None:
                raise SemanticError(f"undeclared variable {name!r}", statement.line)
            self.builder.emit(mop("mov", dest, value, line=statement.line))
        elif isinstance(target, ArrayRef):
            self._store_array(target, value, statement.line)
        else:  # pragma: no cover
            raise SemanticError("bad assignment target", statement.line)

    def _call_statement(self, statement: CallStmt) -> None:
        name = statement.name.upper()
        if name in self.ast.procedures and not statement.args:
            self.builder.call(name)
            return
        self._invoke_operation(
            name, tuple(statement.args), statement.line, want_result=False
        )

    # -- conditions ---------------------------------------------------------
    def _branch(
        self, condition: Condition, true_label: str, false_label: str, line: int
    ) -> None:
        builder = self.builder
        left = self.value_of(condition.left, line)
        right = self.value_of(condition.right, line)
        builder.emit(mop("cmp", None, left, right, line=line))
        relop = condition.relop
        if relop in _RELOP_TO_COND:
            builder.terminate(Branch(_RELOP_TO_COND[relop], true_label, false_label))
        elif relop == "<=":
            middle = builder.fresh_label("le")
            builder.terminate(Branch("Z", true_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("N", true_label, false_label))
        elif relop == ">":
            middle = builder.fresh_label("gt")
            builder.terminate(Branch("Z", false_label, middle))
            builder.start_block(middle)
            builder.terminate(Branch("NN", true_label, false_label))
        else:  # pragma: no cover
            raise SemanticError(f"unknown relop {relop!r}", line)

    # -- expressions ---------------------------------------------------------
    def _expression(self, expr: Expr, line: int) -> Reg:
        builder = self.builder
        if isinstance(expr, UnaryExpr):
            if expr.op == "":
                return self.value_of(expr.operand, line)
            source = self.value_of(expr.operand, line)
            temp = builder.fresh_vreg("t")
            builder.emit(
                mop("neg" if expr.op == "-" else "not", temp, source, line=line)
            )
            return temp
        if isinstance(expr, BinaryExpr):
            return self._binary(expr, line)
        if isinstance(expr, OpCall):
            # ``STK(I)`` is lexically identical to an operator call;
            # names resolving to arrays mean indexing, not invocation.
            array_name = expr.name.upper()
            substituted = self._substitute(expr.name)
            if isinstance(substituted, NameRef):
                array_name = substituted.ident.upper()
            if array_name in self.arrays and len(expr.args) == 1:
                return self._load_array(ArrayRef(array_name, expr.args[0]), line)
            result = self._invoke_operation(
                expr.name.upper(), expr.args, line, want_result=True
            )
            assert result is not None
            return result
        raise SemanticError(f"unknown expression {expr!r}", line)  # pragma: no cover

    def _binary(self, expr: BinaryExpr, line: int) -> Reg:
        builder = self.builder
        if expr.op in ("shl", "shr"):
            if not isinstance(expr.right, Number):
                raise SemanticError("shift count must be a literal", line)
            left = self.value_of(expr.left, line)
            temp = builder.fresh_vreg("t")
            builder.emit(mop(expr.op, temp, left, Imm(expr.right.value), line=line))
            return temp
        left = self.value_of(expr.left, line)
        right = self.value_of(expr.right, line)
        if expr.op in _BINOP_TO_MIR:
            temp = builder.fresh_vreg("t")
            builder.emit(mop(_BINOP_TO_MIR[expr.op], temp, left, right, line=line))
            return temp
        if expr.op == "*":
            return self._multiply(left, right, line)
        if expr.op == "/":
            return self._divide(left, right, line)
        raise SemanticError(f"unknown operator {expr.op!r}", line)  # pragma: no cover

    def _multiply(self, left: Reg, right: Reg, line: int) -> Reg:
        builder = self.builder
        result = builder.fresh_vreg("t")
        if self.machine.has_op("mul"):
            self.hardware_ops += 1
            builder.emit(mop("mul", result, left, right, line=line))
            return result
        # Inline shift-add multiplication (code growth, as §2.2.2 warns).
        self.inlined_ops += 1
        m = builder.fresh_vreg("m")
        n = builder.fresh_vreg("n")
        bit = builder.fresh_vreg("b")
        builder.emit(mop("mov", m, left, line=line))
        builder.emit(mop("mov", n, right, line=line))
        builder.emit(mop("movi", result, Imm(0), line=line))
        head = builder.fresh_label("mul")
        body = builder.fresh_label("mb")
        skip = builder.fresh_label("ms")
        done = builder.fresh_label("md")
        builder.terminate(Jump(head))
        builder.start_block(head)
        zero = self._const(0, line)
        builder.emit(mop("cmp", None, n, zero, line=line))
        builder.terminate(Branch("Z", done, body))
        builder.start_block(body)
        one = self._const(1, line)
        builder.emit(mop("and", bit, n, one, line=line))
        builder.terminate(Branch("Z", skip, f"{skip}_add"))
        builder.start_block(f"{skip}_add")
        builder.emit(mop("add", result, result, m, line=line))
        builder.terminate(Jump(skip))
        builder.start_block(skip)
        builder.emit(mop("shl", m, m, Imm(1), line=line))
        builder.emit(mop("shr", n, n, Imm(1), line=line))
        builder.terminate(Jump(head))
        builder.start_block(done)
        return result

    def _divide(self, left: Reg, right: Reg, line: int) -> Reg:
        """Unsigned division by repeated subtraction."""
        builder = self.builder
        self.inlined_ops += 1
        quotient = builder.fresh_vreg("q")
        remainder = builder.fresh_vreg("r")
        builder.emit(mop("movi", quotient, Imm(0), line=line))
        builder.emit(mop("mov", remainder, left, line=line))
        head = builder.fresh_label("div")
        body = builder.fresh_label("db")
        done = builder.fresh_label("dd")
        builder.terminate(Jump(head))
        builder.start_block(head)
        builder.emit(mop("cmp", None, remainder, right, line=line))
        builder.terminate(Branch("N", done, body))
        builder.start_block(body)
        builder.emit(mop("sub", remainder, remainder, right, line=line))
        builder.emit(mop("inc", quotient, quotient, line=line))
        builder.terminate(Jump(head))
        builder.start_block(done)
        return quotient

    # -- operator invocation ---------------------------------------------------
    def _find_operation(
        self, name: str, args: tuple[SimpleOperand, ...], line: int
    ) -> tuple[OperationDecl, dict[str, Operand], tuple[SimpleOperand, ...]]:
        """Resolve an operator name to its declaration and base env.

        Object-qualified invocations (``PUSH(stack_obj, x)``) dispatch
        on the type of the first argument.
        """
        if args:
            first = args[0]
            if isinstance(first, NameRef):
                resolved = self._resolve_simple(first, line)
                if isinstance(resolved, NameRef):
                    obj = resolved.ident.upper()
                    type_name = self.objects.get(obj)
                    if type_name is not None:
                        type_decl = self.ast.types[type_name]
                        operation = type_decl.operations.get(name)
                        if operation is None:
                            raise SemanticError(
                                f"type {type_name} has no operation {name!r}",
                                line,
                            )
                        return operation, self._field_env(obj, type_decl), args[1:]
        operation = self.ast.operations.get(name)
        if operation is None:
            raise SemanticError(f"unknown operation {name!r}", line)
        return operation, {}, args

    def _invoke_operation(
        self,
        name: str,
        args: tuple[SimpleOperand, ...],
        line: int,
        want_result: bool,
    ) -> Reg | None:
        operation, env, rest = self._find_operation(name, args, line)
        if len(rest) != len(operation.accepts):
            raise SemanticError(
                f"operation {name!r} takes {len(operation.accepts)} "
                f"arguments, got {len(rest)}",
                line,
            )
        # Bind formals to actuals (substitution — no parameter passing,
        # consistent with §3's observation that no surveyed language
        # passes parameters to subroutines).
        for formal, actual in zip(operation.accepts, rest):
            env[formal.upper()] = self._resolve_simple(actual, line)
        # Operator-local DECLAREs become name-mangled globals (EMPL has
        # only global variables) visible through the inline environment.
        for decl in operation.declares:
            mangled = f"${name}${decl.name.upper()}"
            if mangled not in self.scalars and mangled not in self.arrays:
                self._declare_variable(
                    VarDecl(mangled, decl.type_name, decl.array_size, decl.line)
                )
            env.setdefault(decl.name.upper(), NameRef(mangled))

        result_reg: Reg | None = None
        if operation.returns is not None:
            returns = operation.returns.upper()
            if returns not in env:
                holder = f"$RET${name}"
                if holder not in self.scalars:
                    self.scalars[holder] = self.builder.fresh_vreg(f"ret_{name}")
                env[returns] = NameRef(holder)

        # Hardware escape: MICROOP names an op this machine provides.
        micro = operation.microop
        if micro is not None and self.machine.has_op(micro.name.lower()):
            self.hardware_ops += 1
            sources = [
                self.value_of(env[formal.upper()], line)
                for formal in operation.accepts
            ]
            dest = None
            if operation.returns is not None:
                dest = self.value_of(env[operation.returns.upper()], line)
            self.builder.emit(
                mop(micro.name.lower(), dest, *sources, line=line)
            )
            return dest if want_result else None

        # Textual inlining.
        if name in self._inline_names:
            raise SemanticError(f"recursive operator {name!r}", line)
        if len(self._inline_stack) >= MAX_INLINE_DEPTH:
            raise SemanticError("operator inlining too deep", line)
        self.inlined_ops += 1
        end_label = self.builder.fresh_label(f"end_{name}")
        self._inline_stack.append(_InlineContext(env, end_label))
        self._inline_names.append(name)
        if operation.body is not None:
            self._statement(operation.body)
        self._inline_names.pop()
        context = self._inline_stack.pop()
        if not self.builder.current.terminated:
            self.builder.terminate(Jump(end_label))
        self.builder.start_block(end_label)
        if want_result:
            if operation.returns is None:
                raise SemanticError(
                    f"operation {name!r} returns no value", line
                )
            self._inline_stack.append(context)
            result_reg = self.value_of(env[operation.returns.upper()], line)
            self._inline_stack.pop()
        return result_reg


def generate(
    ast: EmplProgram, machine: MicroArchitecture, name: str = "empl"
) -> MicroProgram:
    """Convenience wrapper: AST → micro-IR."""
    return EmplCodegen(ast, machine, name).generate()
