"""Table-driven lexer shared by all four front ends.

Each language supplies a :class:`LexerSpec` (token patterns, keywords,
comment syntax); the :class:`Lexer` produces a :class:`TokenStream`
with the peek/accept/expect helpers recursive-descent parsers need.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from repro.errors import LexError, ParseError

#: Token type of the synthetic end-of-input token.
EOF = "EOF"
#: Token type for newline tokens (only when a spec keeps them).
NEWLINE = "NEWLINE"


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position."""

    type: str
    value: str
    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.type}({self.value!r})@{self.line}:{self.column}"


@dataclass
class LexerSpec:
    """What a language's tokens look like.

    Attributes:
        patterns: Ordered ``(token_type, regex)`` pairs; first match
            wins.  A token type of ``None`` is skipped (whitespace).
        keywords: Words that turn an identifier into its own type
            (uppercased type name).
        keywords_case_insensitive: Fold case when matching keywords.
        line_comment: Prefix starting a comment that runs to newline.
        block_comment: ``(open, close)`` delimiters, if any.
        keep_newlines: Emit NEWLINE tokens (for line-oriented YALLL).
    """

    patterns: list[tuple[str | None, str]]
    keywords: set[str] = field(default_factory=set)
    keywords_case_insensitive: bool = False
    line_comment: str | None = None
    block_comment: tuple[str, str] | None = None
    keep_newlines: bool = False


class Lexer:
    """Compiles a :class:`LexerSpec` and tokenizes source text."""

    def __init__(self, spec: LexerSpec):
        self.spec = spec
        self._compiled = [
            (token_type, re.compile(pattern))
            for token_type, pattern in spec.patterns
        ]
        if spec.keywords_case_insensitive:
            self._keywords = {k.lower() for k in spec.keywords}
        else:
            self._keywords = set(spec.keywords)

    def tokenize(self, text: str) -> "TokenStream":
        tokens: list[Token] = []
        line, column = 1, 1
        position = 0
        length = len(text)
        spec = self.spec
        while position < length:
            # Comments.
            if spec.line_comment and text.startswith(spec.line_comment, position):
                end = text.find("\n", position)
                position = length if end < 0 else end
                continue
            if spec.block_comment and text.startswith(
                spec.block_comment[0], position
            ):
                close = text.find(
                    spec.block_comment[1], position + len(spec.block_comment[0])
                )
                if close < 0:
                    raise LexError("unterminated comment", line, column)
                consumed = text[position : close + len(spec.block_comment[1])]
                line += consumed.count("\n")
                if "\n" in consumed:
                    column = len(consumed) - consumed.rfind("\n")
                else:
                    column += len(consumed)
                position = close + len(spec.block_comment[1])
                continue
            if text[position] == "\n":
                if spec.keep_newlines and tokens and tokens[-1].type != NEWLINE:
                    tokens.append(Token(NEWLINE, "\n", line, column))
                line += 1
                column = 1
                position += 1
                continue
            matched = False
            for token_type, regex in self._compiled:
                match = regex.match(text, position)
                if match and match.end() > position:
                    value = match.group(0)
                    if token_type is not None:
                        resolved = self._classify(token_type, value)
                        tokens.append(Token(resolved, value, line, column))
                    column += len(value)
                    position = match.end()
                    matched = True
                    break
            if not matched:
                raise LexError(
                    f"unexpected character {text[position]!r}", line, column
                )
        tokens.append(Token(EOF, "", line, column))
        return TokenStream(tokens)

    def _classify(self, token_type: str, value: str) -> str:
        if token_type == "IDENT":
            needle = (
                value.lower()
                if self.spec.keywords_case_insensitive
                else value
            )
            if needle in self._keywords:
                return needle.upper()
        return token_type


class TokenStream:
    """Cursor over a token list with parser conveniences."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._index = 0

    @property
    def current(self) -> Token:
        return self._tokens[self._index]

    def peek(self, ahead: int = 0) -> Token:
        index = min(self._index + ahead, len(self._tokens) - 1)
        return self._tokens[index]

    def at(self, *types: str) -> bool:
        return self.current.type in types

    def advance(self) -> Token:
        token = self.current
        if token.type != EOF:
            self._index += 1
        return token

    def accept(self, *types: str) -> Token | None:
        """Consume and return the current token if it matches."""
        if self.at(*types):
            return self.advance()
        return None

    def expect(self, *types: str) -> Token:
        """Consume a token of the given type or raise ParseError."""
        if self.at(*types):
            return self.advance()
        expected = " or ".join(types)
        raise ParseError(
            f"expected {expected}, found {self.current.type} "
            f"({self.current.value!r})",
            self.current.line,
            self.current.column,
        )

    def skip_newlines(self) -> None:
        while self.at(NEWLINE):
            self.advance()

    def at_end(self) -> bool:
        return self.at(EOF)
