"""Microtrap restart safety (survey §2.1.5).

Under the survey's trap model a faulting microprogram is *restarted
from the beginning* after service, with macro-visible registers saved
and restored (they keep their values) while microregisters revert to
their entry values.  The survey's ``incread`` example::

    program incread(n)
    begin reg[n] := reg[n]+1; mbr := readmem(reg[n]) end

double-increments ``reg[n]`` when the memory fetch pagefaults, because
the increment to a macro-visible register survives the restart.

``analyze_restart_hazards`` finds writes to persistent state that can
be followed by a trap point; ``make_restart_safe`` applies the
classical idempotence transform within basic blocks — compute into a
microregister temporary, commit to the macro-visible register only
after the last trap point of the block.  Hazards spanning blocks are
reported, not silently fixed (the survey notes the general problem
"requires a too detailed analysis").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.machine.machine import MicroArchitecture
from repro.mir.liveness import program_successors
from repro.mir.operands import Reg, vreg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram
from repro.obs.tracer import NULL_TRACER

#: Operations that may raise a microtrap (pagefault on main memory).
TRAP_OPS = frozenset({"read", "write"})

#: Virtual-register prefix that allocators must keep out of
#: macro-visible registers (see repro.regalloc.constraints).
RESTART_TEMP_PREFIX = "_rs"


@dataclass(frozen=True)
class RestartHazard:
    """A write to persistent state that a later trap can replay."""

    block: str
    op_index: int
    register: str
    kind: str  # "intra-block" | "cross-block"

    def __str__(self) -> str:
        return (
            f"{self.block}[{self.op_index}]: write to macro-visible "
            f"{self.register} may replay after a microtrap ({self.kind})"
        )


def _macro_visible_names(machine: MicroArchitecture) -> set[str]:
    return {register.name for register in machine.registers.macro_visible()}


def _blocks_reaching_traps(program: MicroProgram) -> set[str]:
    """Labels of blocks from which a trap-capable op is reachable
    *without counting their own ops* (successor-reachability)."""
    has_trap = {
        label: any(op.op in TRAP_OPS for op in block.ops)
        for label, block in program.blocks.items()
    }
    successors = program_successors(program)
    reaches: set[str] = set()
    changed = True
    while changed:
        changed = False
        for label in program.blocks:
            if label in reaches:
                continue
            if any(
                has_trap[successor] or successor in reaches
                for successor in successors[label]
            ):
                reaches.add(label)
                changed = True
    return reaches


def analyze_restart_hazards(
    program: MicroProgram, machine: MicroArchitecture
) -> list[RestartHazard]:
    """All writes to macro-visible registers a later trap can replay."""
    persistent = _macro_visible_names(machine)
    if not persistent:
        return []
    hazards: list[RestartHazard] = []
    reaches_trap = _blocks_reaching_traps(program)
    for label, block in program.blocks.items():
        trap_indices = [
            index for index, op in enumerate(block.ops) if op.op in TRAP_OPS
        ]
        last_trap = trap_indices[-1] if trap_indices else -1
        for index, op in enumerate(block.ops):
            if op.dest is None or op.dest.virtual:
                continue
            if op.dest.name not in persistent:
                continue
            if index < last_trap:
                hazards.append(
                    RestartHazard(label, index, op.dest.name, "intra-block")
                )
            elif label in reaches_trap:
                hazards.append(
                    RestartHazard(label, index, op.dest.name, "cross-block")
                )
    return hazards


def make_restart_safe(
    program: MicroProgram, machine: MicroArchitecture
) -> list[RestartHazard]:
    """Apply the intra-block idempotence transform in place.

    Every macro-visible write that precedes a trap point in its block
    is redirected to a fresh microregister temporary; later reads in
    the block use the temporary, and a single commit move lands after
    the block's last trap point.  Returns the hazards that remain
    (cross-block), which callers should surface to the programmer.
    """
    persistent = _macro_visible_names(machine)
    counter = 0
    for block in program.blocks.values():
        trap_indices = [
            index for index, op in enumerate(block.ops) if op.op in TRAP_OPS
        ]
        if not trap_indices:
            continue
        last_trap = trap_indices[-1]
        renames: dict[Reg, Reg] = {}
        #: original register -> pending commit move (ordered dict).
        commits: dict[Reg, MicroOp] = {}
        new_ops: list[MicroOp] = []
        for index, op in enumerate(block.ops):
            op = op.rename(renames)
            writes_persistent = (
                op.dest is not None
                and not op.dest.virtual
                and op.dest.name in persistent
            )
            if writes_persistent and index < last_trap:
                counter += 1
                temp = vreg(f"{RESTART_TEMP_PREFIX}{counter}")
                original = op.dest
                op = op.with_operands(temp, op.srcs)
                renames[original] = temp
                commits[original] = mop(
                    "mov", original, temp, comment="restart commit"
                )
            elif writes_persistent:
                # A direct write past the last trap point supersedes any
                # staged value: cancel its commit, reads see the new value.
                renames.pop(op.dest, None)
                commits.pop(op.dest, None)
            new_ops.append(op)
        # Commit staged values after the block's last trap point (which
        # is also after every op here, since commits go to the tail).
        block.ops = new_ops + list(commits.values())
    return analyze_restart_hazards(program, machine)


def apply_restart_safety(
    program: MicroProgram,
    machine: MicroArchitecture,
    *,
    transform: bool,
    tracer=NULL_TRACER,
) -> list[RestartHazard]:
    """Analyze (and optionally fix) restart hazards; warn per hazard.

    The compilers call this between legalization and register
    allocation — the transform introduces ``_rs`` virtual temporaries
    the allocator must keep out of macro-visible registers (see
    ``repro.regalloc.constraints``).  Returns the hazards that remain:
    all of them when ``transform`` is false, only the unfixable
    cross-block ones when it is true.  Each surviving hazard also
    lands on the tracer as a ``restart.hazard`` warning event, so
    traces and ``--stats`` surface §2.1.5 exposure without the caller
    inspecting the compile result.
    """
    if transform:
        hazards = make_restart_safe(program, machine)
    else:
        hazards = analyze_restart_hazards(program, machine)
    for hazard in hazards:
        tracer.warning(
            "restart.hazard",
            block=hazard.block,
            op_index=hazard.op_index,
            register=hazard.register,
            kind=hazard.kind,
            fixed=False,
        )
    return hazards
