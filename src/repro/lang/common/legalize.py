"""Machine legalization: make a micro-program expressible on a target.

Code generators emit *semantic* micro-operations; real machines are
messier (survey §2.1.2: "the beautiful features that are available are
of no use, and the ones needed are not provided").  This pass rewrites
a program until every op exists on the target and every operand is
encodable:

* missing ops are expanded (``inc`` → ``add ONE``, ``nand`` → ``and`` +
  ``not``, ``rol`` → shift/or combination, …);
* shifts on machines that only shift one bit per word are unrolled;
* literals wider than the machine's immediate field are placed in
  constant-ROM slots, or synthesized with shift/or sequences when the
  ROM is full;
* operands violating register-class constraints (e.g. VAXm's
  "ALU results land in T0–T3 only") get copies through fresh virtual
  registers;
* multiway branches are lowered to compare/branch chains on machines
  without a hardware mask-table dispatch.

The op-count growth this pass causes on irregular machines is exactly
the code-quality penalty the survey reports for YALLL's VAX-11 back
end (experiment E4).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EncodingError, MIRError
from repro.machine.machine import MicroArchitecture
from repro.machine.opspec import OpSpec
from repro.machine.registers import CONST
from repro.mir.block import Branch, Fallthrough, Jump, Multiway, BasicBlock
from repro.mir.operands import Imm, Operand, Reg, preg, vreg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram


@dataclass
class LegalizeStats:
    """What legalization had to do (reported by experiment E4)."""

    ops_before: int = 0
    ops_after: int = 0
    expansions: dict[str, int] = field(default_factory=dict)
    multiway_lowered: int = 0

    def note(self, kind: str) -> None:
        self.expansions[kind] = self.expansions.get(kind, 0) + 1

    @property
    def growth(self) -> float:
        """Op-count growth factor caused by legalization."""
        return self.ops_after / self.ops_before if self.ops_before else 1.0


class Legalizer:
    """One legalization run over one program/machine pair."""

    def __init__(self, program: MicroProgram, machine: MicroArchitecture):
        self.program = program
        self.machine = machine
        self.stats = LegalizeStats(ops_before=program.n_ops())
        self._temp_counter = 0
        self._label_counter = 0

    # ------------------------------------------------------------------
    def run(self) -> LegalizeStats:
        for block in list(self.program.blocks.values()):
            block.ops = self._expand_ops(block.ops)
        self._enforce_dest_classes()
        if not self.machine.has_multiway_branch:
            self._lower_multiway()
        self.stats.ops_after = self.program.n_ops()
        return self.stats

    # -- helpers -----------------------------------------------------------
    def _temp(self, hint: str = "lg") -> Reg:
        self._temp_counter += 1
        return vreg(f"_{hint}{self._temp_counter}")

    def _label(self, hint: str = "_mw") -> str:
        self._label_counter += 1
        return f"{hint}{self._label_counter}"

    def _special_const(self, value: int) -> Reg | None:
        mask = self.machine.mask()
        table = {0: ("ZERO", "R0"), 1: ("ONE",), mask: ("MINUS1",)}
        for name in table.get(value & mask, ()):
            if name in self.machine.registers:
                return preg(name)
        return None

    def _const_reg(self, value: int) -> Reg | None:
        """A register already holding (or assignable to hold) ``value``."""
        value &= self.machine.mask()
        special = self._special_const(value)
        if special is not None:
            return special
        for slot, held in self.program.constants.items():
            if held == value:
                return preg(slot)
        used = set(self.program.constants)
        for register in self.machine.registers.in_class(CONST):
            if register.name.startswith("C") and register.name not in used:
                self.program.constants[register.name] = value
                return preg(register.name)
        return None

    def materialize(self, value: int, out: list[MicroOp]) -> Reg:
        """A register holding ``value``, emitting setup ops into ``out``."""
        register = self._const_reg(value)
        if register is not None:
            return register
        temp = self._temp("c")
        for op in self._expand_one(mop("movi", temp, Imm(value))) or [
            mop("movi", temp, Imm(value))
        ]:
            out.append(op)
        return temp

    # -- op expansion ---------------------------------------------------------
    def _expand_ops(self, ops: list[MicroOp]) -> list[MicroOp]:
        result: list[MicroOp] = []
        work = list(ops)
        guard = 0
        while work:
            guard += 1
            if guard > 100_000:
                raise MIRError("legalization did not converge")
            op = work.pop(0)
            expansion = self._expand_one(op)
            if expansion is None:
                result.append(op)
            else:
                work = expansion + work
        return result

    def _encodable(self, op: MicroOp) -> bool:
        """Whether some machine variant can encode this op's operands.

        Virtual-register operands are always considered encodable: the
        allocator assigns them physical registers that every selector
        field can name.
        """
        for spec in self.machine.op_variants(op.op):
            if self._variant_fits(spec, op):
                return True
        return False

    def _variant_fits(self, spec: OpSpec, op: MicroOp) -> bool:
        if len(op.srcs) != spec.n_srcs or (op.dest is None) == spec.has_dest:
            return False
        for field_name, value in spec.settings:
            fld = self.machine.control[field_name]
            if value == "$dest":
                operand: object = op.dest
            elif value.startswith("$src") or value.startswith("$imm"):
                index = int(value[4:])
                operand = op.srcs[index]
            else:
                if not fld.is_immediate and value not in fld.encodings:
                    return False
                continue
            if isinstance(operand, Reg):
                if fld.is_immediate:
                    return False
                if not operand.virtual and operand.name not in fld.encodings:
                    return False
            elif isinstance(operand, Imm):
                if not fld.is_immediate:
                    return False
                if not 0 <= operand.value <= fld.mask:
                    return False
        return True

    def _shift_by_one_only(self, name: str) -> bool:
        """Machine shifts a single bit per word (no count field)."""
        return all(
            "$imm1" not in dict(spec.settings).values()
            for spec in self.machine.op_variants(name)
        )

    def _expand_one(self, op: MicroOp) -> list[MicroOp] | None:
        """Expansion of one op, or None when it is fine as is."""
        machine = self.machine
        name = op.op

        # CHAMIL's datapath abstraction (§2.2.5): an indirect move is
        # routed through the machine's bus latches, hop by hop.
        if (
            name == "mov"
            and machine.datapath is not None
            and isinstance(op.srcs[0], Reg)
            and not op.srcs[0].virtual
            and op.dest is not None
            and not op.dest.virtual
            and not machine.datapath.is_direct(op.srcs[0].name, op.dest.name)
        ):
            route = machine.datapath.route(op.srcs[0].name, op.dest.name)
            if route is None:
                raise MIRError(
                    f"{machine.name}: no datapath from {op.srcs[0].name} "
                    f"to {op.dest.name}"
                )
            self.stats.note("datapath-route")
            return [
                mop("mov", preg(hop_dst), preg(hop_src), line=op.line)
                for hop_src, hop_dst in route
            ]

        if machine.has_op(name):
            if name in ("shl", "shr", "sar", "rol", "ror"):
                count = op.srcs[1].value if isinstance(op.srcs[1], Imm) else 1
                if count > 1 and self._shift_by_one_only(name):
                    self.stats.note(f"{name}-unroll")
                    first = op.with_operands(op.dest, (op.srcs[0], Imm(1)))
                    rest = [
                        op.with_operands(op.dest, (op.dest, Imm(1)))
                        for _ in range(count - 1)
                    ]
                    return [first, *rest]
                return None
            if name == "movi" and not self._encodable(op):
                return self._expand_wide_literal(op)
            return None

        # Missing op: synthesize from what the machine has.
        setup: list[MicroOp] = []
        if name == "inc" and machine.has_op("add"):
            self.stats.note("inc")
            one = self.materialize(1, setup)
            return [*setup, mop("add", op.dest, op.srcs[0], one, line=op.line)]
        if name == "dec" and machine.has_op("sub"):
            self.stats.note("dec")
            one = self.materialize(1, setup)
            return [*setup, mop("sub", op.dest, op.srcs[0], one, line=op.line)]
        if name == "neg" and machine.has_op("not"):
            self.stats.note("neg")
            temp = self._temp()
            one = self.materialize(1, setup)
            return [
                *setup,
                mop("not", temp, op.srcs[0], line=op.line),
                mop("add", op.dest, temp, one, line=op.line),
            ]
        if name in ("nand", "nor") and machine.has_op("not"):
            self.stats.note(name)
            base = "and" if name == "nand" else "or"
            temp = self._temp()
            return [
                mop(base, temp, op.srcs[0], op.srcs[1], line=op.line),
                mop("not", op.dest, temp, line=op.line),
            ]
        if name in ("rol", "ror") and machine.has_op("shl") and machine.has_op("shr"):
            self.stats.note(name)
            count = op.srcs[1].value if isinstance(op.srcs[1], Imm) else 1
            count %= machine.word_size
            if count == 0:
                return [mop("mov", op.dest, op.srcs[0], line=op.line)]
            left = count if name == "rol" else machine.word_size - count
            right = machine.word_size - left
            high = self._temp()
            low = self._temp()
            return [
                mop("shl", high, op.srcs[0], Imm(left), line=op.line),
                mop("shr", low, op.srcs[0], Imm(right), line=op.line),
                mop("or", op.dest, high, low, line=op.line),
            ]
        if name == "adc" and machine.has_op("add"):
            raise MIRError(
                f"{machine.name}: cannot synthesize add-with-carry"
            )
        raise MIRError(f"{machine.name}: no expansion for op {name!r}")

    def _expand_wide_literal(self, op: MicroOp) -> list[MicroOp]:
        """A literal wider than the machine's immediate field."""
        assert isinstance(op.srcs[0], Imm)
        value = op.srcs[0].value & self.machine.mask()
        setup: list[MicroOp] = []
        register = self._const_reg(value)
        if register is not None:
            self.stats.note("const-rom")
            return [mop("mov", op.dest, register, line=op.line)]
        self.stats.note("wide-literal")
        lit_width = self._literal_width()
        low = value & ((1 << lit_width) - 1)
        high = value >> lit_width
        high_reg = self._temp()
        low_reg = self._temp()
        return [
            *setup,
            mop("movi", high_reg, Imm(high), line=op.line),
            mop("shl", high_reg, high_reg, Imm(lit_width), line=op.line),
            mop("movi", low_reg, Imm(low), line=op.line),
            mop("or", op.dest, high_reg, low_reg, line=op.line),
        ]

    def _literal_width(self) -> int:
        for spec in self.machine.op_variants("movi"):
            for field_name, value in spec.settings:
                if value == "$imm0":
                    return self.machine.control[field_name].width
        raise MIRError(f"{self.machine.name}: movi has no literal field")

    # -- class enforcement ---------------------------------------------------
    def _enforce_dest_classes(self) -> None:
        """Copy through a temp when a physical dest violates its class."""
        for block in self.program.blocks.values():
            new_ops: list[MicroOp] = []
            for op in block.ops:
                spec = self._class_violation(op)
                if spec is None:
                    new_ops.append(op)
                    continue
                self.stats.note("dest-class-copy")
                temp = self._temp("cc")
                new_ops.append(op.with_operands(temp, op.srcs))
                new_ops.append(mop("mov", op.dest, temp, line=op.line))
            block.ops = new_ops

    def _class_violation(self, op: MicroOp) -> OpSpec | None:
        """The spec whose dest class the op's physical dest violates.

        Returns None when some variant accepts the operands as they
        are, or when the destination is virtual (the allocator will
        honour the constraint).
        """
        if op.dest is None or op.dest.virtual:
            return None
        violating = None
        for spec in self.machine.op_variants(op.op):
            if spec.dest_class is None:
                return None
            register = self.machine.registers[op.dest.name]
            if register.is_in(spec.dest_class):
                return None
            violating = spec
        return violating

    # -- multiway lowering ---------------------------------------------------
    def _lower_multiway(self) -> None:
        """Rewrite Multiway terminators into compare/branch chains."""
        for label in list(self.program.blocks):
            block = self.program.blocks[label]
            terminator = block.terminator
            if not isinstance(terminator, Multiway):
                continue
            self.stats.multiway_lowered += 1
            chain_label = self._chain(terminator)
            block.terminator = Fallthrough(chain_label)

    def _chain(self, terminator: Multiway) -> str:
        """Build the compare/branch chain blocks; returns its entry."""
        width = self.machine.word_size
        # Plan every test first: (label, ops, match_target) triples.
        plan: list[tuple[str, list[MicroOp], str]] = []
        always_match: str | None = None
        for case in terminator.cases:
            care = 0
            value = 0
            for position, bit in enumerate(reversed(case.mask)):
                if bit != "x":
                    care |= 1 << position
                    if bit == "1":
                        value |= 1 << position
            if care == 0:
                always_match = case.target
                break  # later cases are unreachable
            ops: list[MicroOp] = []
            if care == (1 << width) - 1:
                subject: Reg = terminator.reg
            else:
                subject = self._temp("mw")
                care_reg = self.materialize(care, ops)
                ops.append(mop("and", subject, terminator.reg, care_reg))
            value_reg = self.materialize(value, ops)
            ops.append(mop("cmp", None, subject, value_reg))
            plan.append((self._label(), self._expand_ops(ops), case.target))
        fallthrough = always_match or terminator.default
        if not plan:
            return fallthrough
        for index, (label, ops, match_target) in enumerate(plan):
            miss_target = plan[index + 1][0] if index + 1 < len(plan) else fallthrough
            chain = BasicBlock(label, ops=ops)
            chain.terminate(Branch("Z", match_target, miss_target))
            self.program.add_block(chain)
        return plan[0][0]


def legalize(program: MicroProgram, machine: MicroArchitecture) -> LegalizeStats:
    """Legalize a program for a machine (in place); returns stats."""
    return Legalizer(program, machine).run()
