"""Shared front-end infrastructure: lexing and machine legalization."""

from repro.lang.common.legalize import LegalizeStats, Legalizer, legalize
from repro.lang.common.lexer import (
    EOF,
    NEWLINE,
    Lexer,
    LexerSpec,
    Token,
    TokenStream,
)

__all__ = [
    "EOF",
    "LegalizeStats",
    "Legalizer",
    "Lexer",
    "LexerSpec",
    "NEWLINE",
    "Token",
    "TokenStream",
    "legalize",
]
