"""S* compiler driver (survey §2.2.3).

Pipeline: parse → bind-check + code generation → **no legalization and
no allocation** (S* programs are written against the machine's actual
micro-operations and registers; anything else is a semantic error) →
explicit composition validation → assembly.  Verification is a
separate entry point (:func:`repro.lang.sstar.verify_bridge.verify_sstar`).
"""

from __future__ import annotations

from repro.asm.assembler import assemble
from repro.compose.base import compose_program
from repro.lang.common.legalize import LegalizeStats
from repro.lang.common.restart import apply_restart_safety
from repro.lang.sstar.codegen import generate
from repro.lang.sstar.composer import SStarComposer
from repro.lang.sstar.parser import parse_sstar
from repro.lang.yalll.compiler import CompileResult
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.regalloc.linear_scan import AllocationResult


def compile_sstar(
    source: str,
    machine: MicroArchitecture,
    *,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
) -> CompileResult:
    """Compile S(M) source for machine M.

    S* binds registers explicitly, so there is no allocator to place
    the idempotence transform's temporaries: ``restart_safe=True``
    only *analyzes* §2.1.5 hazards and reports them (the programmer
    must restructure by hand, as the survey's schema model implies).

    ``cache`` (a :class:`repro.cache.CompileCache`) short-circuits
    recompilation of identical inputs.
    """
    if cache is not None:
        return cache.get_or_compile(
            source, "sstar", machine,
            {"restart_safe": restart_safe},
            lambda: compile_sstar(
                source, machine, restart_safe=restart_safe, tracer=tracer,
            ),
            tracer=tracer,
        )
    with tracer.span("compile", lang="sstar", machine=machine.name):
        with tracer.span("parse"):
            ast = parse_sstar(source)
        with tracer.span("codegen") as span:
            mir, groups = generate(ast, machine)
            span.set(ops=mir.n_ops(),
                     groups=sum(len(g) for g in groups.values()))
        hazards = apply_restart_safety(
            mir, machine, transform=False, tracer=tracer
        )
        if restart_safe and hazards:
            tracer.warning(
                "restart.transform_unavailable",
                lang="sstar",
                hazards=len(hazards),
                detail="S* binds registers explicitly; restructure by hand",
            )
        with tracer.span("compose") as span:
            composed = compose_program(
                mir, machine, SStarComposer(groups, tracer=tracer), tracer
            )
            span.set(words=composed.n_instructions(),
                     compaction=round(composed.compaction_ratio(), 3))
        with tracer.span("assemble") as span:
            loaded = assemble(composed, machine)
            span.set(words=len(loaded))
    return CompileResult(
        mir=mir,
        composed=composed,
        loaded=loaded,
        legalize_stats=LegalizeStats(
            ops_before=mir.n_ops(), ops_after=mir.n_ops()
        ),
        allocation=AllocationResult(allocator="explicit-binding"),
        restart_hazards=hazards,
    )
