"""S* front end stages + registration (survey §2.2.3).

Pipeline: parse → bind-check + code generation → **no legalization and
no allocation** (S* programs are written against the machine's actual
micro-operations and registers; anything else is a semantic error) →
explicit composition validation → assembly.  Verification is a
separate entry point (:func:`repro.lang.sstar.verify_bridge.verify_sstar`).

S* binds registers explicitly, so there is no allocator to place the
idempotence transform's temporaries: ``restart_safe=True`` only
*analyzes* §2.1.5 hazards and reports them (the programmer must
restructure by hand, as the survey's schema model implies).
"""

from __future__ import annotations

from repro.lang.sstar.codegen import generate
from repro.lang.sstar.composer import SStarComposer
from repro.lang.sstar.parser import parse_sstar
from repro.machine.machine import MicroArchitecture
from repro.obs.tracer import NULL_TRACER
from repro.pipeline import CompileResult, Pipeline, Stage, standard_tail
from repro.registry import LanguageSpec, register_language


def _parse(ctx) -> None:
    ctx.ast = parse_sstar(ctx.source)


def _codegen(ctx) -> dict:
    ctx.mir, groups = generate(ctx.ast, ctx.machine)
    ctx.scratch["groups"] = groups
    return {"ops": ctx.mir.n_ops(),
            "groups": sum(len(g) for g in groups.values())}


def _default_composer(ctx):
    return SStarComposer(ctx.scratch["groups"], tracer=ctx.tracer)


PIPELINE = Pipeline(
    lang="sstar",
    stages=(
        Stage("parse", _parse),
        Stage("codegen", _codegen),
        *standard_tail(
            legalize=False,
            transform_available=False,
            regalloc=None,
            default_composer=_default_composer,
        ),
    ),
    option_defaults={
        "restart_safe": False,
    },
)

SPEC = register_language(LanguageSpec(
    name="sstar",
    title="S* - a microprogramming language schema, instantiated as S(M)",
    section="2.2.3",
    pipeline=PIPELINE,
    capabilities=(
        "programmer_binding",
        "explicit_composition",
        "verification",
        "concurrency_constructs",
    ),
    default_composer="sstar-explicit",
))


def compile_sstar(
    source: str,
    machine: MicroArchitecture,
    *,
    restart_safe: bool = False,
    tracer=NULL_TRACER,
    cache=None,
    dump_after=None,
) -> CompileResult:
    """Compile S(M) source for machine M (see :data:`PIPELINE`)."""
    return PIPELINE.run(
        source, machine, tracer=tracer, cache=cache, dump_after=dump_after,
        restart_safe=restart_safe,
    )
