"""S* — a microprogramming language schema (§2.2.3, [4]) and its
instantiations S(M) against the toolkit's machine descriptions."""

from repro.lang.sstar.ast import SStarProgram
from repro.lang.sstar.codegen import SStarCodegen, generate
from repro.lang.sstar.compiler import compile_sstar
from repro.lang.sstar.composer import SStarComposer
from repro.lang.sstar.parser import parse_sstar
from repro.lang.sstar.verify_bridge import SStarVerifier, verify_sstar

__all__ = [
    "SStarCodegen",
    "SStarComposer",
    "SStarProgram",
    "SStarVerifier",
    "compile_sstar",
    "generate",
    "parse_sstar",
    "verify_sstar",
]
