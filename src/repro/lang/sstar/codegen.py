"""S(M) code generation: AST → micro-IR with programmer-composed MIs.

The defining property of S* (survey §2.2.3): **parallelism is
explicit** — the programmer composes microinstructions with
``cobegin``/``cocycle``/``dur``, and the compiler merely *checks* that
the composition is legal on M (field conflicts, unit capacities, phase
chaining) instead of discovering parallelism itself.  Accordingly,
every elementary statement must map to exactly one micro-operation of
M; a statement that would need several is rejected inside parallel
constructs.

``read``/``write``/``push``/``pop`` are *access-path sugar* that may
expand to short sequences in sequential context (moving through
MAR/MBR, adjusting the stack pointer).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SemanticError
from repro.lang.sstar.ast import (
    ArrayType,
    AssertStmt,
    AssignStmt,
    Cobegin,
    Cocycle,
    ConstRef,
    Dur,
    FieldRef,
    IfStmt,
    IndexRef,
    MemBinding,
    Operand,
    PopStmt,
    PushStmt,
    ReadStmt,
    Ref,
    Region,
    RegBinding,
    RegListBinding,
    RepeatStmt,
    ReturnStmt,
    CallStmt,
    ScratchBinding,
    Seq,
    SeqType,
    SStarProgram,
    StackType,
    SynDecl,
    Test,
    TupleType,
    VarDecl,
    VarRef,
    WhileStmt,
    WriteStmt,
)
from repro.machine.machine import MicroArchitecture
from repro.mir.block import Branch, Jump
from repro.mir.operands import Imm, Reg, preg
from repro.mir.ops import MicroOp, mop
from repro.mir.program import MicroProgram, ProgramBuilder

_RELOP_TO_COND = {"=": "Z", "#": "NZ", "<": "N", ">=": "NN"}


# -- storage resolution -------------------------------------------------------
@dataclass(frozen=True)
class RegStorage:
    register: str
    width: int


@dataclass(frozen=True)
class FieldStorage:
    register: str
    position: int
    width: int


@dataclass(frozen=True)
class ScratchStorage:
    slot: int


@dataclass(frozen=True)
class StackStorage:
    base: int
    pointer: str
    depth: int


Storage = RegStorage | FieldStorage | ScratchStorage | StackStorage


@dataclass
class GroupEntry:
    """Ops forming one programmer-composed microinstruction.

    ``kind`` selects the composer's placement discipline: ``cobegin``
    members all execute in one (composer-chosen) phase with parallel
    read-old semantics; ``cocycle`` members carry explicit phase
    positions; ``dur`` members are placed wherever a variant fits.
    """

    members: list[int] = field(default_factory=list)
    #: Phase hint per member (index-aligned); None = composer's choice.
    phases: list[int | None] = field(default_factory=list)
    kind: str = "cocycle"
    line: int = 0


class SStarCodegen:
    """Generates micro-IR plus the group map consumed by SStarComposer."""

    def __init__(
        self,
        program: SStarProgram,
        machine: MicroArchitecture,
    ):
        self.ast = program
        self.machine = machine
        self.builder = ProgramBuilder(program.name, machine)
        self._machine_regs = {
            name.lower(): name for name in machine.registers.names()
        }
        #: block label -> list of groups; op indices are block-relative.
        self.groups: dict[str, list[GroupEntry]] = {}
        #: group collection stack (None = sequential context).
        self._collecting: GroupEntry | None = None
        self._current_phase: int | None = None
        #: assert annotations encountered (for the verification bridge).
        self.assertions: list[AssertStmt] = []
        self._check_bindings()

    # -- binding validation ---------------------------------------------------
    def _check_bindings(self) -> None:
        for decl in self.ast.variables.values():
            binding = decl.binding
            if isinstance(binding, RegBinding):
                register = self._register(binding.register, decl.line)
                width = (
                    decl.type.width
                    if isinstance(decl.type, (SeqType, TupleType))
                    else None
                )
                if width is not None and width > self.machine.registers[register].width:
                    raise SemanticError(
                        f"{decl.name!r}: {width} bits do not fit register "
                        f"{register}",
                        decl.line,
                    )
            elif isinstance(binding, RegListBinding):
                if not isinstance(decl.type, ArrayType):
                    raise SemanticError(
                        f"{decl.name!r}: register-list binding needs an array",
                        decl.line,
                    )
                if len(binding.registers) != decl.type.length:
                    raise SemanticError(
                        f"{decl.name!r}: {decl.type.length} elements but "
                        f"{len(binding.registers)} registers",
                        decl.line,
                    )
                for register in binding.registers:
                    self._register(register, decl.line)
            elif isinstance(binding, ScratchBinding):
                if not isinstance(decl.type, ArrayType):
                    raise SemanticError(
                        f"{decl.name!r}: scratch binding needs an array",
                        decl.line,
                    )
                end = binding.base + decl.type.length
                if end > self.machine.scratchpad_size:
                    raise SemanticError(
                        f"{decl.name!r}: scratch slots {binding.base}..{end - 1} "
                        f"exceed local store ({self.machine.scratchpad_size})",
                        decl.line,
                    )
            elif isinstance(binding, MemBinding):
                if not isinstance(decl.type, StackType):
                    raise SemanticError(
                        f"{decl.name!r}: memory binding is for stacks",
                        decl.line,
                    )
                self._register(binding.pointer, decl.line)

    def _register(self, name: str, line: int) -> str:
        resolved = self._machine_regs.get(name.lower())
        if resolved is None:
            raise SemanticError(
                f"{name!r} is not a register of {self.machine.name}", line
            )
        return resolved

    # -- name resolution ---------------------------------------------------
    def _decl_of(self, name: str, line: int) -> tuple[VarDecl, int | None]:
        """Resolve through synonyms to (declaration, optional index)."""
        index: int | None = None
        seen: set[str] = set()
        while name in self.ast.synonyms:
            if name in seen:
                raise SemanticError(f"circular synonym {name!r}", line)
            seen.add(name)
            syn: SynDecl = self.ast.synonyms[name]
            if syn.index is not None:
                index = syn.index
            name = syn.target
        decl = self.ast.variables.get(name)
        if decl is None:
            raise SemanticError(f"undeclared variable {name!r}", line)
        return decl, index

    def storage_of(self, ref: Ref, line: int) -> Storage:
        if isinstance(ref, VarRef):
            decl, index = self._decl_of(ref.name, line)
            if index is not None:
                return self._element(decl, index, line)
            if isinstance(decl.type, ArrayType):
                raise SemanticError(
                    f"array {ref.name!r} used without index", line
                )
            if isinstance(decl.type, StackType):
                raise SemanticError(
                    f"stack {ref.name!r} needs push/pop", line
                )
            assert isinstance(decl.binding, RegBinding)
            return RegStorage(
                self._register(decl.binding.register, line), decl.type.width
            )
        if isinstance(ref, IndexRef):
            decl, _ = self._decl_of(ref.base, line)
            return self._element(decl, ref.index, line)
        if isinstance(ref, FieldRef):
            decl, _ = self._decl_of(ref.base, line)
            if not isinstance(decl.type, TupleType):
                raise SemanticError(
                    f"{ref.base!r} is not a tuple", line
                )
            layout = decl.type.layout()
            if ref.field not in layout:
                raise SemanticError(
                    f"tuple {ref.base!r} has no field {ref.field!r}", line
                )
            position, width = layout[ref.field]
            assert isinstance(decl.binding, RegBinding)
            return FieldStorage(
                self._register(decl.binding.register, line), position, width
            )
        raise SemanticError(f"bad reference {ref!r}", line)  # pragma: no cover

    def _element(self, decl: VarDecl, index: int, line: int) -> Storage:
        if not isinstance(decl.type, ArrayType):
            raise SemanticError(f"{decl.name!r} is not an array", line)
        if not decl.type.lo <= index <= decl.type.hi:
            raise SemanticError(
                f"index {index} out of bounds for {decl.name!r}", line
            )
        offset = index - decl.type.lo
        if isinstance(decl.binding, ScratchBinding):
            return ScratchStorage(decl.binding.base + offset)
        if isinstance(decl.binding, RegListBinding):
            return RegStorage(
                self._register(decl.binding.registers[offset], line),
                decl.type.element.width,
            )
        raise SemanticError(
            f"array {decl.name!r} has an unsupported binding", line
        )

    def stack_of(self, name: str, line: int) -> StackStorage:
        decl, _ = self._decl_of(name, line)
        if not isinstance(decl.type, StackType) or not isinstance(
            decl.binding, MemBinding
        ):
            raise SemanticError(f"{name!r} is not a memory-bound stack", line)
        return StackStorage(
            decl.binding.base,
            self._register(decl.binding.pointer, line),
            decl.type.depth,
        )

    def const_value(self, operand: ConstRef | int, line: int) -> int:
        value = operand.value if isinstance(operand, ConstRef) else operand
        return value & self.machine.mask()

    def _operand_value(self, operand: Operand, line: int):
        """Storage, or an int for constants (resolving const names)."""
        if isinstance(operand, ConstRef):
            return self.const_value(operand, line)
        if isinstance(operand, VarRef) and operand.name in self.ast.constants:
            return self.const_value(self.ast.constants[operand.name].value, line)
        return self.storage_of(operand, line)

    # -- op emission ------------------------------------------------------------
    def _emit(self, op: MicroOp, phase: int | None = None) -> int:
        block = self.builder.current
        index = len(block.ops)
        self.builder.emit(op)
        if self._collecting is not None:
            self._collecting.members.append(index)
            self._collecting.phases.append(
                phase if phase is not None else self._current_phase
            )
        return index

    def _const_reg(self, value: int, line: int) -> Reg:
        resolved = self.builder.constant(value)
        if isinstance(resolved, Reg):
            return resolved
        raise SemanticError(
            f"no constant register available for {value:#x} "
            f"(S(M) statements must stay elementary)",
            line,
        )

    # -- statement compilation ----------------------------------------------------
    def generate(self) -> MicroProgram:
        builder = self.builder
        builder.start_block("main")
        self.groups.setdefault("main", [])
        self._sequence(self.ast.body.body)
        if not builder.current.terminated:
            builder.exit()
        for procedure in self.ast.procedures.values():
            entry = f"proc_{procedure.name}"
            self._start_block(entry)
            builder.declare_procedure(procedure.name, entry)
            self._check_uses(procedure)
            self._statement(procedure.body)
            if not builder.current.terminated:
                builder.ret()
        return builder.finish()

    def _check_uses(self, procedure) -> None:
        if not procedure.uses:
            return
        allowed = set(procedure.uses)

        def refs(statement) -> None:
            if isinstance(statement, AssignStmt):
                names = [statement.dest, *statement.operands]
            elif isinstance(statement, ReadStmt):
                names = [statement.dest, statement.address]
            elif isinstance(statement, WriteStmt):
                names = [statement.address, statement.value]
            elif isinstance(statement, (Seq, Cobegin, Cocycle, Region)):
                for child in statement.body:
                    refs(child)
                return
            else:
                return
            for name in names:
                base = None
                if isinstance(name, VarRef):
                    base = name.name
                elif isinstance(name, (FieldRef, IndexRef)):
                    base = name.base
                if (
                    base is not None
                    and base not in allowed
                    and base not in self.ast.constants
                ):
                    raise SemanticError(
                        f"procedure {procedure.name!r} uses {base!r} which is "
                        f"not in its uses list",
                        procedure.line,
                    )

        refs(procedure.body)

    def _start_block(self, label: str | None = None):
        block = self.builder.start_block(label)
        self.groups.setdefault(block.label, [])
        return block

    def _sequence(self, statements: list) -> None:
        for statement in statements:
            self._statement(statement)

    def _statement(self, statement) -> None:
        builder = self.builder
        if isinstance(statement, Seq):
            self._sequence(statement.body)
        elif isinstance(statement, Region):
            # A region is already never reordered (S* compilation is
            # order-preserving); the marker is kept for documentation.
            self._sequence(statement.body)
        elif isinstance(statement, AssignStmt):
            self._assign(statement)
        elif isinstance(statement, ReadStmt):
            self._read(statement)
        elif isinstance(statement, WriteStmt):
            self._write(statement)
        elif isinstance(statement, PushStmt):
            self._push(statement)
        elif isinstance(statement, PopStmt):
            self._pop(statement)
        elif isinstance(statement, AssertStmt):
            self.assertions.append(statement)
        elif isinstance(statement, Cobegin):
            self._parallel_group(statement.body, statement.line, cocycle=False)
        elif isinstance(statement, Cocycle):
            self._parallel_group(statement.body, statement.line, cocycle=True)
        elif isinstance(statement, Dur):
            self._dur(statement)
        elif isinstance(statement, IfStmt):
            self._if(statement)
        elif isinstance(statement, WhileStmt):
            self._while(statement)
        elif isinstance(statement, RepeatStmt):
            self._repeat(statement)
        elif isinstance(statement, CallStmt):
            self.builder.call(statement.proc)
            self.groups.setdefault(self.builder.current.label, [])
        elif isinstance(statement, ReturnStmt):
            builder.ret()
            self._start_block()
        else:  # pragma: no cover
            raise SemanticError(f"unknown statement {statement!r}")

    # -- parallel constructs ---------------------------------------------------
    def _parallel_group(
        self, body: list, line: int, cocycle: bool
    ) -> None:
        if self._collecting is not None:
            raise SemanticError("nested parallel constructs beyond "
                                "cobegin-in-cocycle are not allowed", line)
        group = GroupEntry(kind="cocycle" if cocycle else "cobegin", line=line)
        self._collecting = group
        try:
            for position, statement in enumerate(body, start=1):
                self._current_phase = position if cocycle else None
                before = len(group.members)
                if isinstance(statement, Cobegin) and cocycle:
                    for inner in statement.body:
                        inner_before = len(group.members)
                        self._statement_elementary(inner, line)
                        if len(group.members) != inner_before + 1:
                            raise SemanticError(
                                "cobegin member is not elementary", line
                            )
                else:
                    self._statement_elementary(statement, line)
                    if len(group.members) != before + 1:
                        raise SemanticError(
                            ("cocycle" if cocycle else "cobegin")
                            + " member is not an elementary statement",
                            line,
                        )
        finally:
            self._collecting = None
            self._current_phase = None
        self.groups[self.builder.current.label].append(group)

    def _statement_elementary(self, statement, line: int) -> None:
        if isinstance(
            statement, (AssignStmt, ReadStmt, WriteStmt)
        ):
            self._statement(statement)
        else:
            raise SemanticError(
                f"only elementary statements may appear in parallel "
                f"constructs, got {type(statement).__name__}",
                line,
            )

    def _dur(self, statement: Dur) -> None:
        if self._collecting is not None:
            raise SemanticError("dur cannot nest in a parallel construct",
                                statement.line)
        group = GroupEntry(kind="dur", line=statement.line)
        self._collecting = group
        try:
            self._statement_elementary(statement.overlapped, statement.line)
            if not statement.body:
                raise SemanticError("dur needs a body", statement.line)
            self._statement_elementary(statement.body[0], statement.line)
        finally:
            self._collecting = None
        self.groups[self.builder.current.label].append(group)
        self._sequence(statement.body[1:])

    # -- elementary statements ---------------------------------------------------
    def _assign(self, statement: AssignStmt) -> None:
        line = statement.line
        dest = self.storage_of(statement.dest, line)
        values = [self._operand_value(o, line) for o in statement.operands]
        op = statement.op

        # Scratchpad access paths.
        if isinstance(dest, ScratchStorage):
            if op != "mov" or not isinstance(values[0], RegStorage):
                raise SemanticError(
                    "local store elements only accept register moves", line
                )
            self._emit(
                mop("stscr", None, preg(values[0].register), Imm(dest.slot),
                    line=line)
            )
            return
        if op == "mov" and isinstance(values[0], ScratchStorage):
            if not isinstance(dest, RegStorage):
                raise SemanticError(
                    "local store elements only load into registers", line
                )
            self._emit(
                mop("ldscr", preg(dest.register), Imm(values[0].slot), line=line)
            )
            return

        # Field access paths (tuple select / deposit).
        if isinstance(dest, FieldStorage):
            if op != "mov" or not isinstance(values[0], RegStorage):
                raise SemanticError(
                    "field deposit takes a plain register source", line
                )
            self._emit(
                mop("dep", preg(dest.register), preg(values[0].register),
                    Imm(dest.position), Imm(dest.width), line=line)
            )
            return
        if op == "mov" and isinstance(values[0], FieldStorage):
            source = values[0]
            self._emit(
                mop("ext", preg(dest.register), preg(source.register),
                    Imm(source.position), Imm(source.width), line=line)
            )
            return

        assert isinstance(dest, RegStorage)
        if op == "mov" and isinstance(values[0], int):
            self._emit(
                mop("movi", preg(dest.register), Imm(values[0]), line=line)
            )
            return
        if op in ("shl", "shr"):
            source = self._as_reg(values[0], line)
            count = values[1]
            assert isinstance(count, int)
            self._emit(
                mop(op, preg(dest.register), source, Imm(count), line=line)
            )
            return
        sources = [self._as_reg(v, line) for v in values]
        if not self.machine.has_op(op):
            raise SemanticError(
                f"{self.machine.name} has no micro-operation {op!r}; not an "
                f"elementary statement of S({self.machine.name})",
                line,
            )
        self._emit(mop(op, preg(dest.register), *sources, line=line))

    def _as_reg(self, value, line: int) -> Reg:
        if isinstance(value, RegStorage):
            return preg(value.register)
        if isinstance(value, int):
            return self._const_reg(value, line)
        raise SemanticError(
            "operand is not a register or constant (not elementary)", line
        )

    def _read(self, statement: ReadStmt) -> None:
        line = statement.line
        dest = self.storage_of(statement.dest, line)
        address = self._operand_value(statement.address, line)
        if not isinstance(dest, RegStorage):
            raise SemanticError("read destination must be a register", line)
        mar, mbr = preg("MAR"), preg("MBR")
        address_reg = self._as_reg(address, line)
        ops = 0
        if address_reg != mar:
            self._emit(mop("mov", mar, address_reg, line=line))
            ops += 1
        self._emit(mop("read", mbr, mar, line=line))
        if preg(dest.register) != mbr:
            self._emit(mop("mov", preg(dest.register), mbr, line=line))
            ops += 1
        if self._collecting is not None and ops:
            raise SemanticError(
                "read is only elementary as 'mbr := read(mar)'", line
            )

    def _write(self, statement: WriteStmt) -> None:
        line = statement.line
        address = self._as_reg(self._operand_value(statement.address, line), line)
        value = self._as_reg(self._operand_value(statement.value, line), line)
        mar, mbr = preg("MAR"), preg("MBR")
        ops = 0
        if address != mar:
            self._emit(mop("mov", mar, address, line=line))
            ops += 1
        if value != mbr:
            self._emit(mop("mov", mbr, value, line=line))
            ops += 1
        self._emit(mop("write", None, mar, mbr, line=line))
        if self._collecting is not None and ops:
            raise SemanticError(
                "write is only elementary as 'write(mar, mbr)'", line
            )

    def _push(self, statement: PushStmt) -> None:
        line = statement.line
        stack = self.stack_of(statement.stack, line)
        value = self._as_reg(self._operand_value(statement.value, line), line)
        if self._collecting is not None:
            raise SemanticError("push is not elementary", line)
        pointer = preg(stack.pointer)
        mar, mbr = preg("MAR"), preg("MBR")
        self._emit(mop("inc", pointer, pointer, line=line))
        self._emit(mop("mov", mar, pointer, line=line))
        self._emit(mop("mov", mbr, value, line=line))
        self._emit(mop("write", None, mar, mbr, line=line))

    def _pop(self, statement: PopStmt) -> None:
        line = statement.line
        stack = self.stack_of(statement.stack, line)
        dest = self.storage_of(statement.dest, line)
        if self._collecting is not None:
            raise SemanticError("pop is not elementary", line)
        if not isinstance(dest, RegStorage):
            raise SemanticError("pop destination must be a register", line)
        pointer = preg(stack.pointer)
        mar, mbr = preg("MAR"), preg("MBR")
        self._emit(mop("mov", mar, pointer, line=line))
        self._emit(mop("read", mbr, mar, line=line))
        self._emit(mop("mov", preg(dest.register), mbr, line=line))
        self._emit(mop("dec", pointer, pointer, line=line))

    # -- control flow ---------------------------------------------------------
    def _branch(self, test: Test, true_label: str, false_label: str) -> None:
        builder = self.builder
        if test.flag is not None:
            builder.terminate(Branch(test.flag, true_label, false_label))
            return
        left = self._as_reg(self._operand_value(test.left, test.line), test.line)
        right = self._as_reg(self._operand_value(test.right, test.line), test.line)
        self._emit(mop("cmp", None, left, right, line=test.line))
        relop = test.relop
        if relop in _RELOP_TO_COND:
            builder.terminate(
                Branch(_RELOP_TO_COND[relop], true_label, false_label)
            )
        elif relop == "<=":
            middle = builder.fresh_label("le")
            builder.terminate(Branch("Z", true_label, middle))
            self._start_block(middle)
            builder.terminate(Branch("N", true_label, false_label))
        elif relop == ">":
            middle = builder.fresh_label("gt")
            builder.terminate(Branch("Z", false_label, middle))
            self._start_block(middle)
            builder.terminate(Branch("NN", true_label, false_label))
        else:  # pragma: no cover
            raise SemanticError(f"unknown relop {relop!r}", test.line)

    def _if(self, statement: IfStmt) -> None:
        builder = self.builder
        done = builder.fresh_label("fi")
        for test, body in statement.arms:
            then_label = builder.fresh_label("then")
            next_label = builder.fresh_label("el")
            self._branch(test, then_label, next_label)
            self._start_block(then_label)
            self._statement(body)
            if not builder.current.terminated:
                builder.terminate(Jump(done))
            self._start_block(next_label)
        if statement.otherwise is not None:
            self._statement(statement.otherwise)
        self._start_block(done)

    def _while(self, statement: WhileStmt) -> None:
        builder = self.builder
        head = builder.fresh_label("wh")
        body = builder.fresh_label("do")
        done = builder.fresh_label("od")
        builder.terminate(Jump(head))
        self._start_block(head)
        self._branch(statement.test, body, done)
        self._start_block(body)
        self._statement(statement.body)
        if not builder.current.terminated:
            builder.terminate(Jump(head))
        self._start_block(done)

    def _repeat(self, statement: RepeatStmt) -> None:
        builder = self.builder
        head = builder.fresh_label("rp")
        done = builder.fresh_label("un")
        builder.terminate(Jump(head))
        self._start_block(head)
        self._sequence(statement.body)
        check = builder.fresh_label("ck")
        if not builder.current.terminated:
            builder.terminate(Jump(check))
        self._start_block(check)
        self._branch(statement.test, done, head)
        self._start_block(done)


def generate(
    ast: SStarProgram, machine: MicroArchitecture
) -> tuple[MicroProgram, dict[str, list[GroupEntry]]]:
    """AST → (micro-IR, programmer-composition group map)."""
    codegen = SStarCodegen(ast, machine)
    program = codegen.generate()
    return program, codegen.groups
