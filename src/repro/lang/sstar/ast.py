"""S* abstract syntax (survey §2.2.3, Dasgupta [4]).

S* is a *language schema*: the compound statements and declaration
structure below are fixed, while the elementary statements of an
instantiation S(M) are whatever micro-operations machine M provides.
Variables are meaningless until bound to machine storage — every
``var`` carries a ``bind`` clause (registers, scratchpad slots, memory
regions), and ``syn`` introduces synonyms (the paper's renaming of
``localstore`` elements to ``mpr``/``mpnd``/``product``).
"""

from __future__ import annotations

from dataclasses import dataclass, field


# -- types ---------------------------------------------------------------
@dataclass(frozen=True)
class SeqType:
    """``seq [hi..lo] bit`` — a bitstring."""

    hi: int
    lo: int

    @property
    def width(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True)
class ArrayType:
    """``array [lo..hi] of seq…``."""

    lo: int
    hi: int
    element: SeqType

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1


@dataclass(frozen=True)
class TupleField:
    name: str
    type: SeqType


@dataclass(frozen=True)
class TupleType:
    """``tuple f1: seq…; …; fn: seq… end`` — fields high to low.

    A reference to the whole tuple denotes the concatenation of all
    fields (the paper's IR / IR.opcode convenience).
    """

    fields: tuple[TupleField, ...]

    @property
    def width(self) -> int:
        return sum(f.type.width for f in self.fields)

    def layout(self) -> dict[str, tuple[int, int]]:
        """Field name -> (bit position of LSB, width), high-to-low."""
        result: dict[str, tuple[int, int]] = {}
        position = self.width
        for fld in self.fields:
            position -= fld.type.width
            result[fld.name] = (position, fld.type.width)
        return result


@dataclass(frozen=True)
class StackType:
    """``stack [n] of seq… with push, pop``."""

    depth: int
    element: SeqType


SType = SeqType | ArrayType | TupleType | StackType


# -- bindings ---------------------------------------------------------------
@dataclass(frozen=True)
class RegBinding:
    """Bound to one machine register."""

    register: str


@dataclass(frozen=True)
class RegListBinding:
    """Array bound to an explicit register list."""

    registers: tuple[str, ...]


@dataclass(frozen=True)
class ScratchBinding:
    """Array bound to consecutive scratchpad slots starting at base."""

    base: int


@dataclass(frozen=True)
class MemBinding:
    """Stack bound to a main-memory region with a pointer register."""

    base: int
    pointer: str


Binding = RegBinding | RegListBinding | ScratchBinding | MemBinding


@dataclass
class VarDecl:
    name: str
    type: SType
    binding: Binding
    line: int = 0


@dataclass
class ConstDecl:
    name: str
    value: int
    line: int = 0


@dataclass
class SynDecl:
    """``syn new = old`` or ``syn new = arr[k]``."""

    name: str
    target: str
    index: int | None = None
    line: int = 0


# -- operands / elementary statements -------------------------------------------
@dataclass(frozen=True)
class VarRef:
    name: str


@dataclass(frozen=True)
class FieldRef:
    """``t.field`` on a tuple-typed variable."""

    base: str
    field: str


@dataclass(frozen=True)
class IndexRef:
    """``arr[k]`` with a constant index."""

    base: str
    index: int


@dataclass(frozen=True)
class ConstRef:
    value: int


Ref = VarRef | FieldRef | IndexRef
Operand = VarRef | FieldRef | IndexRef | ConstRef


@dataclass(frozen=True)
class AssignStmt:
    """``dst := src`` / ``dst := a op b`` / ``dst := op a`` —
    an elementary statement of S(M)."""

    dest: Ref
    op: str  # "mov", "add", "sub", "and", "or", "xor", "not", "neg",
             # "shl", "shr", "inc", "dec"
    operands: tuple[Operand, ...]
    line: int = 0


@dataclass(frozen=True)
class ReadStmt:
    """``x := read(addr)`` — main memory fetch through MAR/MBR."""

    dest: Ref
    address: Operand
    line: int = 0


@dataclass(frozen=True)
class WriteStmt:
    """``write(addr, value)``."""

    address: Operand
    value: Operand
    line: int = 0


@dataclass(frozen=True)
class PushStmt:
    stack: str
    value: Operand
    line: int = 0


@dataclass(frozen=True)
class PopStmt:
    dest: Ref
    stack: str
    line: int = 0


@dataclass(frozen=True)
class AssertStmt:
    """``assert "condition";`` — a proof annotation."""

    text: str
    line: int = 0


# -- tests ------------------------------------------------------------------
@dataclass(frozen=True)
class Test:
    """A hardware-testable condition of M: ``x = 0``, ``x < y``, flags."""

    left: Operand | None
    relop: str | None
    right: Operand | None
    flag: str | None = None
    line: int = 0


# -- compound statements ----------------------------------------------------
@dataclass
class Cobegin:
    """All members execute in the same microcycle (one MI, one phase)."""

    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class Cocycle:
    """Members occupy successive phases of one microinstruction."""

    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class Dur:
    """``dur S0 do S1; …; Sn end`` — S0 overlaps the sequence."""

    overlapped: "Stmt" = None  # type: ignore[assignment]
    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class Region:
    """Hand-optimized section: the compiler must not reorder it."""

    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class Seq:
    """``begin S1; …; Sn end``."""

    body: list["Stmt"] = field(default_factory=list)
    line: int = 0


@dataclass
class IfStmt:
    """``if t1 then S1 elif t2 then S2 … else Sn fi``."""

    arms: list[tuple[Test, "Stmt"]] = field(default_factory=list)
    otherwise: "Stmt | None" = None
    line: int = 0


@dataclass
class WhileStmt:
    test: Test = None  # type: ignore[assignment]
    body: "Stmt" = None  # type: ignore[assignment]
    invariant: str | None = None
    line: int = 0


@dataclass
class RepeatStmt:
    """``repeat S1; …; Sn until t``."""

    body: list["Stmt"] = field(default_factory=list)
    test: Test = None  # type: ignore[assignment]
    invariant: str | None = None
    line: int = 0


@dataclass
class CallStmt:
    proc: str
    line: int = 0


@dataclass
class ReturnStmt:
    line: int = 0


Stmt = (
    AssignStmt | ReadStmt | WriteStmt | PushStmt | PopStmt | AssertStmt
    | Cobegin | Cocycle | Dur | Region | Seq | IfStmt | WhileStmt
    | RepeatStmt | CallStmt | ReturnStmt
)


@dataclass
class ProcDecl:
    """``proc name (uses v1, v2); S end`` — parameterless, with the
    paper's parenthesized list of variables used in the body."""

    name: str
    uses: tuple[str, ...] = ()
    body: Stmt = None  # type: ignore[assignment]
    line: int = 0


@dataclass
class SStarProgram:
    """A parsed S(M) program."""

    name: str
    pre: str | None = None
    post: str | None = None
    variables: dict[str, VarDecl] = field(default_factory=dict)
    constants: dict[str, ConstDecl] = field(default_factory=dict)
    synonyms: dict[str, SynDecl] = field(default_factory=dict)
    procedures: dict[str, ProcDecl] = field(default_factory=dict)
    body: Seq = field(default_factory=Seq)
