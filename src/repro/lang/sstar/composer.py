"""The S* "composer": validates programmer-composed microinstructions.

The survey's §3 observation — "since composition depends on used
resources … the alternative in which the programmer has to specify
microinstruction composition while the compiler allocates resources is
not possible" — is embodied here: S* programs arrive with registers
bound *and* composition specified, and this pass only (a) picks a
concrete variant per op honouring the construct's phase discipline and
(b) rejects compositions that violate the machine's conflict model.

Phase discipline per construct:

* ``cobegin`` — all members execute in one phase, simultaneously.
  Hardware same-phase semantics is reads-before-writes, so a flow
  dependence between members is *reinterpreted* as an anti dependence:
  ``cobegin x := y; y := x coend`` is the parallel swap, exactly as the
  verification subsystem's parallel-assignment rule models it.
* ``cocycle`` — member *k* executes in phase *k*; values chain
  forward through the microinstruction (needs a chaining machine).
* ``dur`` — the overlapped statement joins the first body statement's
  microinstruction wherever a variant fits.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.compose.base import MicroInstruction, PlacedOp
from repro.compose.common import edge_kinds, emit_block_stats
from repro.compose.conflicts import ConflictModel, Relations
from repro.errors import ConflictError
from repro.lang.sstar.codegen import GroupEntry
from repro.machine.machine import MicroArchitecture
from repro.mir.block import BasicBlock
from repro.mir.deps import ANTI, FLOW, build_dependence_graph
from repro.obs.tracer import NULL_TRACER


@dataclass
class SStarComposer:
    """Composer driven by the S* group map (one group = one MI)."""

    groups: dict[str, list[GroupEntry]]
    name: str = "sstar-explicit"
    tracer: object = NULL_TRACER

    def compose_block(
        self, block: BasicBlock, machine: MicroArchitecture
    ) -> list[MicroInstruction]:
        model = ConflictModel(machine)
        graph = build_dependence_graph(block, machine)
        kinds = edge_kinds(graph)
        grouped: set[int] = set()
        instructions: list[MicroInstruction] = []
        groups = self.groups.get(block.label, [])
        for group in groups:
            grouped.update(group.members)

        group_index = 0
        op_index = 0
        while op_index < len(block.ops):
            if (
                group_index < len(groups)
                and groups[group_index].members
                and groups[group_index].members[0] == op_index
            ):
                group = groups[group_index]
                instructions.append(
                    self._compose_group(group, block, machine, model, kinds)
                )
                op_index = max(group.members) + 1
                group_index += 1
            else:
                instruction = MicroInstruction()
                op = block.ops[op_index]
                if self._try_variants(
                    model, instruction, op, None, {}, machine
                ) is None:
                    raise ConflictError(
                        f"{block.label}: {op} (line {op.line}) has no "
                        f"encodable variant on {machine.name}"
                    )
                instructions.append(instruction)
                op_index += 1
        emit_block_stats(
            self.tracer, self.name, block, instructions, model,
            programmer_groups=len(groups),
        )
        return instructions

    # ------------------------------------------------------------------
    def _compose_group(
        self,
        group: GroupEntry,
        block: BasicBlock,
        machine: MicroArchitecture,
        model: ConflictModel,
        kinds,
    ) -> MicroInstruction:
        if group.kind == "cobegin":
            for phase in range(1, machine.n_phases + 1):
                instruction = self._try_group(
                    group, block, machine, model, kinds, forced_phase=phase
                )
                if instruction is not None:
                    return instruction
            raise ConflictError(
                f"{block.label}: cobegin at line {group.line} is not "
                f"co-executable in any single phase of {machine.name}"
            )
        instruction = self._try_group(
            group, block, machine, model, kinds, forced_phase=None
        )
        if instruction is None:
            raise ConflictError(
                f"{block.label}: {group.kind} at line {group.line} cannot "
                f"be composed on {machine.name}"
            )
        return instruction

    def _try_group(
        self,
        group: GroupEntry,
        block: BasicBlock,
        machine: MicroArchitecture,
        model: ConflictModel,
        kinds,
        forced_phase: int | None,
    ) -> MicroInstruction | None:
        instruction = MicroInstruction()
        positions: dict[int, int] = {}
        member_phase: dict[int, int] = {}
        for member, phase_hint in zip(group.members, group.phases):
            phase = forced_phase if forced_phase is not None else phase_hint
            relations = self._relations(
                member, positions, member_phase, kinds, phase, machine
            )
            placed = self._try_variants(
                model, instruction, block.ops[member], phase,
                relations, machine,
            )
            if placed is None:
                return None
            positions[member] = len(instruction.placed) - 1
            member_phase[member] = placed.phase(machine)
        return instruction

    def _relations(
        self,
        candidate: int,
        positions: dict[int, int],
        member_phase: dict[int, int],
        kinds,
        candidate_phase: int | None,
        machine: MicroArchitecture,
    ) -> Relations:
        """Dependence kinds from placed members to the candidate, with
        same-phase flow reinterpreted as anti (simultaneous read-old)."""
        relations: Relations = {}
        for placed_index, position in positions.items():
            pair = set(kinds.get((placed_index, candidate), set()))
            if not pair:
                continue
            if (
                FLOW in pair
                and candidate_phase is not None
                and member_phase.get(placed_index) == candidate_phase
            ):
                pair.discard(FLOW)
                pair.add(ANTI)
            relations[position] = pair
        return relations

    def _try_variants(
        self,
        model: ConflictModel,
        instruction: MicroInstruction,
        op,
        phase: int | None,
        relations: Relations,
        machine: MicroArchitecture,
    ) -> PlacedOp | None:
        for placed in model.placements(op):
            if phase is not None and placed.phase(machine) != phase:
                continue
            if model.can_add(instruction, placed, relations):
                instruction.placed.append(placed)
                return placed
        return None
