"""Parser for S(M) programs.

ASCII rendering of the survey's S* notation.  ``#`` comments run to end
of line; assertion annotations are double-quoted strings::

    program MPY;
    pre  "true";
    post "aluout = 0";

    var left_alu_in  : seq [15..0] bit bind R1;
    var right_alu_in : seq [15..0] bit bind R2;
    var aluout       : seq [15..0] bit bind ACC;
    var mpr          : seq [15..0] bit bind R4;
    const minus1 = dec (16) -1;
    syn m = mpr;

    begin
      repeat
        cocycle
          cobegin left_alu_in := product; right_alu_in := mpnd coend;
          aluout := left_alu_in + right_alu_in;
          product := aluout
        coend;
        ...
      until aluout = 0
    end
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang.common.lexer import Lexer, LexerSpec, TokenStream
from repro.lang.sstar.ast import (
    ArrayType,
    AssertStmt,
    AssignStmt,
    Cobegin,
    Cocycle,
    ConstDecl,
    ConstRef,
    Dur,
    FieldRef,
    IfStmt,
    IndexRef,
    MemBinding,
    Operand,
    PopStmt,
    ProcDecl,
    PushStmt,
    ReadStmt,
    Ref,
    Region,
    RegBinding,
    RegListBinding,
    RepeatStmt,
    ReturnStmt,
    CallStmt,
    ScratchBinding,
    Seq,
    SeqType,
    SStarProgram,
    StackType,
    SynDecl,
    Test,
    TupleField,
    TupleType,
    VarDecl,
    VarRef,
    WhileStmt,
    WriteStmt,
)

_KEYWORDS = {
    "program", "pre", "post", "var", "const", "syn", "proc", "uses",
    "seq", "bit", "array", "of", "tuple", "stack", "bind", "scratch",
    "mem", "ptr", "begin", "end", "cobegin", "cocycle", "coend", "dur",
    "do", "region", "if", "then", "elif", "else", "fi", "while", "inv",
    "repeat", "until", "call", "return", "read", "write", "push", "pop",
    "assert", "xor", "shl", "shr", "dec",
}

_SPEC = LexerSpec(
    patterns=[
        (None, r"\s+"),
        ("STRING", r'"[^"]*"'),
        ("NUMBER", r"0x[0-9a-fA-F]+|0b[01]+|[0-9]+"),
        ("IDENT", r"[A-Za-z_][A-Za-z0-9_]*"),
        ("ASSIGN", r":="),
        ("DOTDOT", r"\.\."),
        ("LE", r"<="), ("GE", r">="),
        ("NEQ", r"<>"), ("EQUALS", r"="),
        ("LT", r"<"), ("GT", r">"),
        ("PLUS", r"\+"), ("MINUS", r"-"),
        ("AMP", r"&"), ("PIPE", r"\|"), ("TILDE", r"~"),
        ("LPAREN", r"\("), ("RPAREN", r"\)"),
        ("LBRACK", r"\["), ("RBRACK", r"\]"),
        ("SEMI", r";"), ("COLON", r":"), ("COMMA", r","),
        ("DOT", r"\."),
    ],
    keywords=_KEYWORDS,
    keywords_case_insensitive=True,
    line_comment="#",
)

_LEXER = Lexer(_SPEC)

_BINOPS = {"PLUS": "add", "MINUS": "sub", "AMP": "and", "PIPE": "or",
           "XOR": "xor"}
_RELOPS = {"EQUALS": "=", "NEQ": "#", "LT": "<", "LE": "<=",
           "GT": ">", "GE": ">="}  # <> lexes as NEQ; # starts a comment
_FLAG_NAMES = {"z", "nz", "n", "nn", "c", "nc", "uf", "nuf"}

#: Tokens that end a statement list.
_LIST_ENDERS = ("END", "COEND", "UNTIL", "ELSE", "ELIF", "FI", "EOF")


def _number(tokens: TokenStream) -> int:
    sign = -1 if tokens.accept("MINUS") else 1
    return sign * int(tokens.expect("NUMBER").value, 0)


def parse_sstar(source: str) -> SStarProgram:
    """Parse an S(M) program."""
    tokens = _LEXER.tokenize(source)
    tokens.expect("PROGRAM")
    program = SStarProgram(tokens.expect("IDENT").value)
    tokens.expect("SEMI")
    if tokens.accept("PRE"):
        program.pre = tokens.expect("STRING").value.strip('"')
        tokens.expect("SEMI")
    if tokens.accept("POST"):
        program.post = tokens.expect("STRING").value.strip('"')
        tokens.expect("SEMI")
    while not tokens.at("BEGIN"):
        _declaration(tokens, program)
    program.body = _begin_seq(tokens)
    return program


def _declaration(tokens: TokenStream, program: SStarProgram) -> None:
    token = tokens.current
    if tokens.accept("VAR"):
        names = [tokens.expect("IDENT").value]
        while tokens.accept("COMMA"):
            names.append(tokens.expect("IDENT").value)
        tokens.expect("COLON")
        var_type = _type(tokens)
        tokens.expect("BIND")
        for index, name in enumerate(names):
            binding = _binding(tokens)
            if index + 1 < len(names):
                tokens.expect("COMMA")
            if name in program.variables:
                raise ParseError(f"duplicate variable {name!r}", token.line)
            program.variables[name] = VarDecl(name, var_type, binding, token.line)
        tokens.expect("SEMI")
    elif tokens.accept("CONST"):
        name = tokens.expect("IDENT").value
        tokens.expect("EQUALS")
        if tokens.accept("DEC"):  # the paper's ``dec (16) -1`` notation
            tokens.expect("LPAREN")
            tokens.expect("NUMBER")
            tokens.expect("RPAREN")
        value = _number(tokens)
        tokens.expect("SEMI")
        program.constants[name] = ConstDecl(name, value, token.line)
    elif tokens.accept("SYN"):
        while True:
            name = tokens.expect("IDENT").value
            tokens.expect("EQUALS")
            target = tokens.expect("IDENT").value
            index = None
            if tokens.accept("LBRACK"):
                index = _number(tokens)
                tokens.expect("RBRACK")
            program.synonyms[name] = SynDecl(name, target, index, token.line)
            if not tokens.accept("COMMA"):
                break
        tokens.expect("SEMI")
    elif tokens.accept("PROC"):
        name = tokens.expect("IDENT").value
        uses: tuple[str, ...] = ()
        if tokens.accept("LPAREN"):
            collected = [tokens.expect("IDENT").value]
            while tokens.accept("COMMA"):
                collected.append(tokens.expect("IDENT").value)
            tokens.expect("RPAREN")
            uses = tuple(collected)
        tokens.expect("SEMI")
        body = _statement(tokens)
        tokens.accept("SEMI")
        program.procedures[name] = ProcDecl(name, uses, body, token.line)
    else:
        raise ParseError(
            f"expected declaration, found {token.type}", token.line, token.column
        )


def _type(tokens: TokenStream):
    if tokens.accept("SEQ"):
        return _seq_type_tail(tokens)
    if tokens.accept("ARRAY"):
        tokens.expect("LBRACK")
        lo = _number(tokens)
        tokens.expect("DOTDOT")
        hi = _number(tokens)
        tokens.expect("RBRACK")
        tokens.expect("OF")
        tokens.expect("SEQ")
        return ArrayType(lo, hi, _seq_type_tail(tokens))
    if tokens.accept("TUPLE"):
        fields = []
        while not tokens.at("END"):
            field_name = tokens.expect("IDENT").value
            tokens.expect("COLON")
            tokens.expect("SEQ")
            fields.append(TupleField(field_name, _seq_type_tail(tokens)))
            tokens.accept("SEMI")
        tokens.expect("END")
        return TupleType(tuple(fields))
    if tokens.accept("STACK"):
        tokens.expect("LBRACK")
        depth = _number(tokens)
        tokens.expect("RBRACK")
        tokens.expect("OF")
        tokens.expect("SEQ")
        return StackType(depth, _seq_type_tail(tokens))
    raise ParseError(
        f"expected type, found {tokens.current.type}",
        tokens.current.line, tokens.current.column,
    )


def _seq_type_tail(tokens: TokenStream) -> SeqType:
    tokens.expect("LBRACK")
    hi = _number(tokens)
    tokens.expect("DOTDOT")
    lo = _number(tokens)
    tokens.expect("RBRACK")
    tokens.expect("BIT")
    return SeqType(hi, lo)


def _binding(tokens: TokenStream):
    if tokens.accept("SCRATCH"):
        tokens.expect("LBRACK")
        base = _number(tokens)
        tokens.expect("RBRACK")
        return ScratchBinding(base)
    if tokens.accept("MEM"):
        tokens.expect("LBRACK")
        base = _number(tokens)
        tokens.expect("RBRACK")
        tokens.expect("PTR")
        return MemBinding(base, tokens.expect("IDENT").value)
    if tokens.accept("LPAREN"):
        registers = [tokens.expect("IDENT").value]
        while tokens.accept("COMMA"):
            registers.append(tokens.expect("IDENT").value)
        tokens.expect("RPAREN")
        return RegListBinding(tuple(registers))
    return RegBinding(tokens.expect("IDENT").value)


# -- statements -----------------------------------------------------------
def _begin_seq(tokens: TokenStream) -> Seq:
    tokens.expect("BEGIN")
    body = _statement_list(tokens)
    tokens.expect("END")
    tokens.accept("SEMI")
    return Seq(body)


def _statement_list(tokens: TokenStream) -> list:
    statements = []
    while not tokens.at(*_LIST_ENDERS):
        statements.append(_statement(tokens))
        tokens.accept("SEMI")
    return statements


def _ref(tokens: TokenStream) -> Ref:
    name = tokens.expect("IDENT").value
    if tokens.accept("DOT"):
        return FieldRef(name, tokens.expect("IDENT").value)
    if tokens.accept("LBRACK"):
        index = _number(tokens)
        tokens.expect("RBRACK")
        return IndexRef(name, index)
    return VarRef(name)


def _operand(tokens: TokenStream) -> Operand:
    if tokens.at("NUMBER") or tokens.at("MINUS"):
        return ConstRef(_number(tokens))
    return _ref(tokens)


def _test(tokens: TokenStream) -> Test:
    line = tokens.current.line
    if tokens.at("IDENT") and tokens.current.value.lower() in _FLAG_NAMES:
        ahead = tokens.peek(1).type
        if ahead not in _RELOPS and ahead not in ("DOT", "LBRACK"):
            flag = tokens.advance().value.upper()
            return Test(None, None, None, flag=flag, line=line)
    left = _operand(tokens)
    relop_token = tokens.expect(*_RELOPS)
    right = _operand(tokens)
    return Test(left, _RELOPS[relop_token.type], right, line=line)


def _statement(tokens: TokenStream):
    token = tokens.current
    if tokens.accept("BEGIN"):
        body = _statement_list(tokens)
        tokens.expect("END")
        return Seq(body)
    if tokens.accept("COBEGIN"):
        body = _statement_list(tokens)
        tokens.expect("COEND")
        return Cobegin(body, token.line)
    if tokens.accept("COCYCLE"):
        body = _statement_list(tokens)
        tokens.expect("COEND", "END")
        return Cocycle(body, token.line)
    if tokens.accept("DUR"):
        overlapped = _statement(tokens)
        tokens.expect("DO")
        body = _statement_list(tokens)
        tokens.expect("END")
        return Dur(overlapped, body, token.line)
    if tokens.accept("REGION"):
        body = _statement_list(tokens)
        tokens.expect("END")
        return Region(body, token.line)
    if tokens.accept("IF"):
        statement = IfStmt(line=token.line)
        test = _test(tokens)
        tokens.expect("THEN")
        statement.arms.append((test, _statement_arm(tokens)))
        while tokens.accept("ELIF"):
            test = _test(tokens)
            tokens.expect("THEN")
            statement.arms.append((test, _statement_arm(tokens)))
        if tokens.accept("ELSE"):
            statement.otherwise = _statement_arm(tokens)
        tokens.expect("FI")
        return statement
    if tokens.accept("WHILE"):
        statement = WhileStmt(line=token.line)
        statement.test = _test(tokens)
        if tokens.accept("INV"):
            statement.invariant = tokens.expect("STRING").value.strip('"')
        tokens.expect("DO")
        statement.body = _statement(tokens)
        return statement
    if tokens.accept("REPEAT"):
        statement = RepeatStmt(line=token.line)
        statement.body = _statement_list(tokens)
        tokens.expect("UNTIL")
        statement.test = _test(tokens)
        if tokens.accept("INV"):
            statement.invariant = tokens.expect("STRING").value.strip('"')
        return statement
    if tokens.accept("CALL"):
        return CallStmt(tokens.expect("IDENT").value, token.line)
    if tokens.accept("RETURN"):
        return ReturnStmt(token.line)
    if tokens.accept("ASSERT"):
        text = tokens.expect("STRING").value.strip('"')
        return AssertStmt(text, token.line)
    if tokens.accept("WRITE"):
        tokens.expect("LPAREN")
        address = _operand(tokens)
        tokens.expect("COMMA")
        value = _operand(tokens)
        tokens.expect("RPAREN")
        return WriteStmt(address, value, token.line)
    if tokens.accept("PUSH"):
        tokens.accept("LPAREN")
        stack = tokens.expect("IDENT").value
        tokens.expect("COMMA")
        value = _operand(tokens)
        tokens.accept("RPAREN")
        return PushStmt(stack, value, token.line)
    # Assignment.
    dest = _ref(tokens)
    tokens.expect("ASSIGN")
    return _assignment_rhs(tokens, dest, token.line)


def _statement_arm(tokens: TokenStream):
    statement = _statement(tokens)
    tokens.accept("SEMI")
    return statement


def _assignment_rhs(tokens: TokenStream, dest: Ref, line: int):
    if tokens.accept("READ"):
        tokens.expect("LPAREN")
        address = _operand(tokens)
        tokens.expect("RPAREN")
        return ReadStmt(dest, address, line)
    if tokens.accept("POP"):
        tokens.accept("LPAREN")
        stack = tokens.expect("IDENT").value
        tokens.accept("RPAREN")
        return PopStmt(dest, stack, line)
    if tokens.accept("TILDE"):
        return AssignStmt(dest, "not", (_operand(tokens),), line)
    left = _operand(tokens)
    if tokens.current.type in _BINOPS:
        op = _BINOPS[tokens.advance().type]
        right = _operand(tokens)
        return AssignStmt(dest, op, (left, right), line)
    if tokens.at("SHL", "SHR"):
        op = tokens.advance().type.lower()
        count = _number(tokens)
        return AssignStmt(dest, op, (left, ConstRef(count)), line)
    return AssignStmt(dest, "mov", (left,), line)
